"""Overlap micro-benchmark — pipelined vs synchronous pencil transposes.

Measures one Table-6-style ``fft_cycle`` (4 transposes + 4 FFT stages)
on simulated ranks, synchronous ``alltoall`` against the staged
``PIPELINED`` path that posts the exchange for slab ``k`` while slab
``k-1`` runs its FFTs.

Two regimes are reported:

* **zero wire latency** — SimMPI moves payloads by reference through
  queues, so exchange "wire time" is near zero and there is nothing to
  hide; the staged path pays its staging/ack overhead and *loses*.
  This is the measured, explained bound for the bare container: on a
  single-core host the rank threads timeshare the CPU, so comm/compute
  overlap cannot manufacture wall-clock time that the latency-free
  exchange never spent.
* **modelled wire latency** — a deterministic :class:`FaultPlan` stalls
  every exchange's completion by a per-volume wire time ``D`` (the
  synchronous path pays ``D`` per full-volume alltoall, the pipelined
  path ``D/stages`` per slab — identical seconds per byte).  The delay
  stalls completion without consuming CPU, exactly like wire time, and
  the pipelined path hides most of it behind the fused FFT stages: the
  asserted win is >= 1.2x on the transpose cycle.

The asserted floor is deliberately below the measured ~1.5x so a noisy
shared runner does not flap; ``scripts/check_perf.py`` guards the
pipelined cycle's absolute cost separately via the committed baseline.
"""

from __future__ import annotations

import time

import numpy as np

from repro.mpi.simmpi import FaultEvent, FaultPlan, run_spmd
from repro.pencil.parallel_fft import PencilTransforms
from repro.pencil.transpose import TransposeMethod

from conftest import emit, fmt_row

NX, NY, NZ = 64, 24, 64
NRANKS, GRID = 4, (2, 2)
ITERS, WARM = 6, 1
STAGES = 4  # PipelinedTranspose default
#: modelled wire seconds for one full-volume exchange
WIRE_S = 0.030


def _wire_plan(op: str, delay: float, ncalls: int) -> FaultPlan:
    """Stall every one of the first ``ncalls`` ``op`` calls by ``delay``."""
    return FaultPlan(
        [
            FaultEvent("delay", rank=r, op=op, call=c, delay=delay)
            for r in range(NRANKS)
            for c in range(ncalls)
        ]
    )


def _cycle_time(method: TransposeMethod, plan: FaultPlan | None, wire: str = "full"):
    """Max-over-ranks seconds per fft_cycle, plus rank 0's overlap and
    precision counters."""

    def prog(comm):
        cart = comm.cart_create(GRID)
        tr = PencilTransforms(cart, NX, NY, NZ, dealias=True, method=method, wire=wire)
        d = tr.decomp
        rng = np.random.default_rng(comm.rank)
        spec = rng.standard_normal(d.y_pencil_shape) + 1j * rng.standard_normal(
            d.y_pencil_shape
        )
        for _ in range(WARM):
            spec = tr.fft_cycle(spec)
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(ITERS):
            spec = tr.fft_cycle(spec)
        comm.barrier()
        per_cycle = (time.perf_counter() - t0) / ITERS
        return per_cycle, tr.overlap_counters.snapshot(), tr.precision_counters.snapshot()

    results = run_spmd(NRANKS, prog, fault_plan=plan)
    return max(r[0] for r in results), results[0][1], results[0][2]


def test_overlap_transpose(benchmark):
    calls_sync = 4 * (ITERS + WARM)  # 4 transposes per cycle
    calls_pipe = 4 * STAGES * (ITERS + WARM)  # ... each in STAGES slabs

    # regime 1: zero wire latency (the bare container bound)
    t_sync0, _, _ = _cycle_time(TransposeMethod.ALLTOALL, None)
    t_pipe0, ov0, pc_full = _cycle_time(TransposeMethod.PIPELINED, None)

    # regime 2: modelled per-volume wire latency, identical seconds/byte
    t_sync, _, _ = _cycle_time(
        TransposeMethod.ALLTOALL, _wire_plan("alltoall", WIRE_S, calls_sync)
    )
    t_pipe, ov, _ = _cycle_time(
        TransposeMethod.PIPELINED,
        _wire_plan("ialltoallv", WIRE_S / STAGES, calls_pipe),
    )

    # mixed-precision wire: same cycle, float32/complex64 payloads
    _, _, pc_mixed = _cycle_time(TransposeMethod.PIPELINED, None, wire="mixed")
    wire_frac = pc_mixed["bytes_wire"] / max(pc_mixed["bytes_full"], 1)

    hidden0 = ov0["bytes_overlapped"] / max(ov0["bytes_completed"], 1)
    hidden = ov["bytes_overlapped"] / max(ov["bytes_completed"], 1)
    widths = (26, 12, 12, 8)
    lines = [
        f"overlap micro-benchmark — {NX}x{NY}x{NZ} fft_cycle on {NRANKS} ranks "
        f"({GRID[0]}x{GRID[1]}), {STAGES} stages",
        "",
        fmt_row(("regime", "sync", "pipelined", "ratio"), widths),
        fmt_row(
            (
                "zero wire latency",
                f"{t_sync0 * 1e3:.2f} ms",
                f"{t_pipe0 * 1e3:.2f} ms",
                f"{t_sync0 / t_pipe0:.2f}x",
            ),
            widths,
        ),
        fmt_row(
            (
                f"wire {WIRE_S * 1e3:.0f} ms/volume",
                f"{t_sync * 1e3:.2f} ms",
                f"{t_pipe * 1e3:.2f} ms",
                f"{t_sync / t_pipe:.2f}x",
            ),
            widths,
        ),
        "",
        f"hidden comm fraction: {hidden0:.0%} (no latency), {hidden:.0%} (with latency)",
        f"exposed wait per cycle: {ov['wait_seconds'] / (ITERS + WARM) * 1e3:.2f} ms",
        "",
        "bytes on the wire per rank (pipelined, zero-latency regime):",
        fmt_row(("wire mode", "full f64", "mixed f32", "ratio"), widths),
        fmt_row(
            (
                "payload bytes",
                f"{pc_full['bytes_wire'] / 1e6:.1f} MB",
                f"{pc_mixed['bytes_wire'] / 1e6:.1f} MB",
                f"{wire_frac:.2f}",
            ),
            widths,
        ),
        "",
        "zero-latency bound: queue exchanges cost ~nothing, so staging/ack",
        "overhead makes the pipelined path slower on a single-core host;",
        "with per-byte wire time the staged exchanges hide behind the fused",
        "FFT stages and the pipelined cycle wins.",
    ]
    emit("overlap_transpose", "\n".join(lines))

    # the latency-hiding win this PR exists for
    assert t_sync / t_pipe >= 1.2, (
        f"pipelined transpose cycle only {t_sync / t_pipe:.2f}x vs synchronous "
        f"under {WIRE_S * 1e3:.0f} ms/volume wire latency (expected >= 1.2x)"
    )
    # the overlap machinery really ran and really hid communication
    assert ov["posts"] == calls_pipe
    assert hidden >= 0.5, f"only {hidden:.0%} of exchange bytes were hidden"
    # the mixed wire really halves the payload (complex128 -> complex64)
    assert wire_frac <= 0.55, (
        f"mixed wire moved {wire_frac:.0%} of the float64 bytes (expected <= 55%)"
    )

    benchmark(lambda: _cycle_time(TransposeMethod.PIPELINED, None))
