"""Transform pipeline — naive vs planned vs threaded (paper §4.3/§4.4).

The nonlinear-term transform chain (3 velocity fields forward, 5
quadratic products backward, every RK substep) is the dominant serial
cost of a DNS step.  This bench times one full chain on the 64x65x64
grid through three paths:

* **naive** — the seed's per-call :func:`to_quadrature_grid` /
  :func:`from_quadrature_grid` (fresh pad/scratch arrays every stage);
* **planned** — :class:`~repro.fft.pipeline.TransformPipeline` with the
  numpy backend and MEASURE planning (persistent pad workspaces, fused
  scaling, plan-selected strategies);
* **threaded** — the same pipeline on the scipy pocketfft backend with a
  ``workers`` pool (the paper's OpenMP-threaded FFTs, Table 3).

It also re-runs the 10-step 32^3 DNS with the naive and the planned
backend and checks the trajectories coincide — the planned pipeline is
an optimisation, not a different discretization.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import ChannelConfig, ChannelDNS
from repro.core.grid import ChannelGrid
from repro.core.timestepper import IMEXStepper
from repro.core.transforms import (
    NaiveTransformBackend,
    from_quadrature_grid,
    to_quadrature_grid,
)
from repro.fft.pipeline import TransformPipeline
from repro.fft.plans import PlanFlags, Planner, available_backends

from conftest import emit, fmt_row

GRID = (64, 65, 64)
SPEEDUP_FLOOR = 1.5


def _spectral_fields(grid, seed=0):
    """3 random spectral velocity fields."""
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(grid.spectral_shape)
        for _ in range(3)
    ]


def _products(up, vp, wp):
    """The paper's five quadratic fields (step (g)); like the solver, each
    variant forms them from its *own* forward outputs, so the backward
    transforms see the memory layout that variant produces."""
    ww = wp * wp
    return [up * up - ww, vp * vp - ww, up * vp, up * wp, vp * wp]


def _time_interleaved(fns, rounds=9, batch_seconds=0.5):
    """Per-fn mean seconds, median over interleaved rounds.

    The variants alternate within every round, so slow drift in machine
    load (a shared-CPU reality) hits all of them alike instead of
    whichever happened to be measured last; the median keeps one noisy
    round from deciding the result in either direction.
    """
    for fn in fns:
        fn()
    samples = [[] for _ in fns]
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            n = 0
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < batch_seconds:
                fn()
                n += 1
            samples[i].append((time.perf_counter() - t0) / n)
    return [float(np.median(s)) for s in samples]


def test_transform_pipeline(benchmark):
    g = ChannelGrid(*GRID)
    specs = _spectral_fields(g)
    naive_products = _products(*(to_quadrature_grid(s, g) for s in specs))

    def naive_chain():
        for s in specs:
            to_quadrature_grid(s, g)
        for p in naive_products:
            from_quadrature_grid(p, g)

    def make_variant(pipe):
        prods = _products(*pipe.to_physical_many(specs))

        def chain():
            pipe.to_physical_many(specs)
            pipe.from_physical_many(prods)

        return chain

    variants = {}
    planned = TransformPipeline(g, backend="numpy", flags=PlanFlags.MEASURE, planner=Planner())
    planned_chain = make_variant(planned)
    variants["planned (numpy)"] = (planned_chain, planned)

    if "scipy" in available_backends():
        workers = os.cpu_count() or 1
        threaded = TransformPipeline(
            g, backend="scipy", workers=workers, flags=PlanFlags.MEASURE, planner=Planner()
        )
        variants[f"planned (scipy, workers={workers})"] = (make_variant(threaded), threaded)

    names = list(variants)
    timed = _time_interleaved([naive_chain] + [variants[n][0] for n in names])
    t_naive = timed[0]
    rows = [("naive (seed)", t_naive, 1.0, "-")]
    times = {}
    for name, t in zip(names, timed[1:]):
        times[name] = t
        strategies = ",".join(p.strategy for p in variants[name][1].plans())
        rows.append((name, t, t_naive / t, strategies))

    lines = [
        "Transform pipeline — nonlinear-term chain, "
        f"3 forward + 5 backward fields on {GRID[0]}x{GRID[1]}x{GRID[2]}",
        "",
        fmt_row(("variant", "s/chain", "speedup", "plan strategies"), (30, 10, 9, 40)),
    ]
    for name, t, ratio, strat in rows:
        lines.append(fmt_row((name, f"{t:.4f}", f"{ratio:.2f}x", strat), (30, 10, 9, 40)))

    # -- trajectory identity: planned backend reproduces the naive run ----
    cfg = ChannelConfig(nx=32, ny=33, nz=32, dt=2e-4, seed=3)
    dns = ChannelDNS(cfg)  # planned pipeline backend (the default)
    dns.initialize()
    ref = ChannelDNS(cfg)
    ref.stepper = IMEXStepper(
        ref.grid, nu=cfg.nu, dt=cfg.dt, forcing=cfg.forcing, scheme=cfg.scheme,
        backend=NaiveTransformBackend(ref.grid),
    )
    ref.initialize()
    dns.run(10)
    ref.run(10)
    dv = float(np.abs(dns.state.v - ref.state.v).max())
    de = abs(dns.kinetic_energy() - ref.kinetic_energy())
    lines += [
        "",
        "10-step 32^3 DNS, planned vs naive backend (same seed, same dt):",
        f"  max |v - v_ref|   = {dv:.3e}",
        f"  |KE - KE_ref|     = {de:.3e}",
        f"  counters: {dns.backend.counters.report()}",
    ]

    best = min(times.values())
    lines += ["", f"best planned speedup: {t_naive / best:.2f}x (floor {SPEEDUP_FLOOR}x)"]
    emit("transform_pipeline", "\n".join(lines))

    assert dv == 0.0, "planned pipeline diverged from the naive trajectory"
    assert t_naive / best >= SPEEDUP_FLOOR, (
        f"pipeline speedup {t_naive / best:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
    benchmark(planned_chain)
