"""Table 2 — single-core N-S time-advance performance counters.

The paper reads IBM HPM counters on one BG/Q core and concludes the
kernel is memory-bandwidth bound and that SIMD compilation raises the
counted flop rate while *lowering* performance.  The counter simulator
derives the same readout from a traffic model of the banded solver; the
bench prints it against the paper's measurements and additionally times
the *real* advance kernel of this package to confirm the memory-bound
character on the host CPU.
"""

from __future__ import annotations

import numpy as np

from repro.core import ChannelConfig, ChannelDNS
from repro.perfmodel import paper_data as P
from repro.perfmodel.counters import simulate_hpm_counters

from conftest import emit, fmt_row


def test_table02(benchmark):
    rows = []
    for simd, key in ((True, "SIMD"), (False, "NoSIMD")):
        c = simulate_hpm_counters(simd)
        p = P.TABLE2[key]
        rows.append((key, c, p))

    widths = (26, 12, 12, 12, 12)
    lines = [
        "Table 2 — single-core N-S advance on Mira (simulated HPM vs paper)",
        fmt_row(("quantity", "SIMD model", "SIMD paper", "noSIMD mod", "noSIMD pap"), widths),
    ]
    simd_c, simd_p = rows[0][1], rows[0][2]
    sc_c, sc_p = rows[1][1], rows[1][2]
    for label, attr, pkey in [
        ("GFlops", "gflops", "gflops"),
        ("GFlops (% of peak)", "gflops_pct", "gflops_pct"),
        ("Instructions per cycle", "ipc", "ipc"),
        ("Load hit in L1 (%)", "l1_pct", "l1_pct"),
        ("Load hit in L2 (%)", "l2_pct", "l2_pct"),
        ("Load hit in DDR (%)", "ddr_pct", "ddr_pct"),
        ("DDR traffic (B/cycle)", "ddr_bytes_per_cycle", "ddr_bytes_per_cycle"),
        ("Elapsed time (s)", "elapsed", "elapsed"),
    ]:
        lines.append(
            fmt_row(
                (
                    label,
                    f"{getattr(simd_c, attr):.2f}",
                    f"{simd_p[pkey]:.2f}",
                    f"{getattr(sc_c, attr):.2f}",
                    f"{sc_p[pkey]:.2f}",
                ),
                widths,
            )
        )
    lines.append(
        "conclusions derived, as in the paper: memory-bound (~9% of peak flops,"
    )
    lines.append(
        ">90% of STREAM DDR bandwidth); SIMD raises counted flops ~4.3x yet runs slower."
    )
    emit("table02_single_core", "\n".join(lines))

    # shape assertions
    assert simd_c.gflops > 3 * sc_c.gflops
    assert simd_c.elapsed > sc_c.elapsed
    assert sc_c.ddr_bytes_per_cycle / 18.0 > 0.9
    assert sc_c.gflops_pct < 12.0

    # benchmark the real advance kernel (one RK3 step of a small channel)
    dns = ChannelDNS(ChannelConfig(nx=16, ny=32, nz=16, dt=2e-4, init_amplitude=0.3))
    dns.initialize()
    state = dns.state

    def advance():
        dns.stepper.step(state)

    benchmark(advance)
