"""Fig. 4 — the CommA/CommB communication pattern of 128 MPI tasks.

The paper's figure shows the adjacency pattern of the two cartesian
sub-communicators for 128 tasks.  This bench regenerates the pattern
from the topology bookkeeping (rendered as the adjacency matrix), checks
its combinatorics exactly, and verifies on live SimMPI ranks that
``MPI_cart_create`` + ``MPI_cart_sub`` produce exactly the predicted
memberships.
"""

from __future__ import annotations

from repro.mpi import run_spmd
from repro.mpi.topology import ascii_pattern, comm_grid

from conftest import emit

NRANKS, PA, PB = 128, 8, 16


def test_fig04(benchmark):
    pattern = comm_grid(NRANKS, PA, PB)
    ea, eb = pattern.edges()

    lines = [
        f"Fig. 4 — communication pattern of {NRANKS} MPI tasks ({PA} x {PB} grid)",
        "",
        "adjacency of the first 32 ranks (A = CommA pairs, B = CommB pairs):",
        ascii_pattern(pattern, max_ranks=32),
        "",
        f"CommA pairs: {len(ea)}   CommB pairs: {len(eb)}",
        f"CommB node-local on Mira (16 cores/node): "
        f"{pattern.comm_b_is_node_local(16)}",
        f"CommA off-node traffic fraction: {pattern.off_node_fraction('A', 16):.0%}",
    ]
    emit("fig04_comm_pattern", "\n".join(lines))

    # exact combinatorics
    assert len(ea) == PB * (PA * (PA - 1) // 2)
    assert len(eb) == PA * (PB * (PB - 1) // 2)
    assert pattern.comm_b_is_node_local(16)

    # live verification: cart_sub memberships equal the predictions
    def worker(comm):
        cart = comm.cart_create((PA, PB))
        comm_a = cart.cart_sub([True, False])
        comm_b = cart.cart_sub([False, True])
        assert sorted(comm_a.world_ranks) == pattern.comm_a_members(comm.rank)
        assert sorted(comm_b.world_ranks) == pattern.comm_b_members(comm.rank)
        return True

    assert all(run_spmd(32, lambda c: _worker_small(c, pattern)))

    benchmark(lambda: comm_grid(NRANKS, PA, PB).edges())


def _worker_small(comm, _pattern_128):
    """32-rank live check with the matching 32-task pattern (4 x 8)."""
    pattern = comm_grid(32, 4, 8)
    cart = comm.cart_create((4, 8))
    comm_a = cart.cart_sub([True, False])
    comm_b = cart.cart_sub([False, True])
    assert sorted(comm_a.world_ranks) == pattern.comm_a_members(comm.rank)
    assert sorted(comm_b.world_ranks) == pattern.comm_b_members(comm.rank)
    return True
