"""Table 4 — single-node threading of the on-node data reordering.

The reorder ``A(i,j,k) -> A(j,k,i)`` is pure memory movement: the paper
measures its DDR traffic rising with threads until saturation near
16 B/cycle and then *falling* from contention, with speedup capped near
6x.  The thread model reproduces the rise-then-fall; the real reorder
kernel (with the paper's chunked decomposition) is measured for the
bytes-moved accounting.
"""

from __future__ import annotations

import numpy as np

from repro.pencil.reorder import chunked_reorder, reorder
from repro.perfmodel import paper_data as P
from repro.perfmodel.machine import MIRA
from repro.perfmodel.threading import ThreadScalingModel

from conftest import emit, fmt_row


def test_table04(benchmark):
    model = ThreadScalingModel(MIRA)

    widths = (9, 14, 14, 12, 12)
    lines = [
        "Table 4 — data-reordering thread scaling on Mira",
        fmt_row(("threads", "model B/cyc", "paper B/cyc", "model spdup", "paper spdup"), widths),
    ]
    for threads, (bpc, spd) in P.TABLE4_MIRA.items():
        lines.append(
            fmt_row(
                (
                    threads,
                    f"{model.reorder_bytes_per_cycle(threads):.1f}",
                    bpc,
                    f"{model.reorder_speedup(threads):.2f}",
                    spd,
                ),
                widths,
            )
        )
    lines.append("traffic saturates near the 18 B/cycle DDR peak, then contention bites;")
    lines.append("speedup caps far below the compute kernels' (Table 3) — as measured.")
    emit("table04_reorder_threading", "\n".join(lines))

    # shape assertions: linear ramp, saturation level, rise-then-fall
    assert abs(model.reorder_bytes_per_cycle(2) - P.TABLE4_MIRA[2][0]) < 0.1
    peak_threads = max(P.TABLE4_MIRA, key=lambda t: model.reorder_bytes_per_cycle(t))
    assert 8 <= peak_threads <= 32
    assert model.reorder_bytes_per_cycle(64) < model.reorder_bytes_per_cycle(peak_threads)

    # real kernel: measure and sanity-check the chunked decomposition
    rng = np.random.default_rng(0)
    a = rng.standard_normal((96, 64, 48))
    plain, nbytes = reorder(a)
    chunked, _ = chunked_reorder(a, nchunks=8)
    np.testing.assert_array_equal(plain, chunked)
    assert nbytes == 2 * a.nbytes

    benchmark(lambda: reorder(a))
