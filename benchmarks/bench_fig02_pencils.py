"""Fig. 2 — pencil decomposition and the transpose cycle.

The figure is a schematic of the y/z/x pencil orientations and the data
movement between them.  This bench exercises the real thing: a full
spectral -> physical -> spectral pipeline (steps a-f and back of §2.3)
on a PA x PB SimMPI process grid, verifying the global decomposition
arithmetic, round-trip exactness, and the per-stage timer breakdown.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid
from repro.mpi import run_spmd
from repro.pencil import PencilTransforms
from repro.pencil.decomp import PencilDecomp

from conftest import emit

NX, NY, NZ = 32, 24, 32
PA, PB = 2, 3


def test_fig02(benchmark):
    grid = ChannelGrid(NX, NY, NZ)
    rng = np.random.default_rng(1)
    spec = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(
        grid.spectral_shape
    )
    spec[0, 0] = rng.standard_normal(NY)
    half = NZ // 2
    for j in range(1, half):
        spec[0, grid.mz - j] = np.conj(spec[0, j])

    # decomposition bookkeeping: pencils tile the global array exactly
    shapes = []
    total_modes = 0
    for rank in range(PA * PB):
        d = PencilDecomp.for_rank(
            grid.mx, grid.mz, NY, grid.nxq, grid.nzq, PA, PB, rank
        )
        d.validate()
        shapes.append((rank, d.y_pencil_shape, d.z_pencil_shape_phys, d.x_pencil_shape_phys))
        total_modes += d.y_pencil_shape[0] * d.y_pencil_shape[1]
    assert total_modes == grid.mx * grid.mz

    def worker(comm):
        cart = comm.cart_create((PA, PB))
        tr = PencilTransforms(cart, NX, NY, NZ, dealias=True)
        d = tr.decomp
        local = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
        phys = tr.to_physical(local)
        back = tr.from_physical(phys)
        return float(np.abs(back - local).max()), dict(tr.timers.elapsed)

    results = run_spmd(PA * PB, worker)
    err = max(r[0] for r in results)
    timers = results[0][1]

    lines = [
        f"Fig. 2 — pencil decomposition on a {PA} x {PB} process grid "
        f"(grid {NX} x {NY} x {NZ})",
        "",
        f"{'rank':>5} {'y-pencil':>14} {'z-pencil':>14} {'x-pencil':>14}",
    ]
    for rank, yp, zp, xp in shapes:
        lines.append(f"{rank:>5} {str(yp):>14} {str(zp):>14} {str(xp):>14}")
    lines += [
        "",
        f"round-trip max error through 4 transposes + 4 transforms: {err:.2e}",
        f"rank-0 stage timers: " + ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in timers.items()),
    ]
    emit("fig02_pencils", "\n".join(lines))

    assert err < 1e-12
    assert timers["transpose"] > 0 and timers["fft"] > 0

    benchmark(lambda: run_spmd(PA * PB, worker))
