"""Fig. 6 — velocity variances and the turbulent shear stress.

The paper plots <uu>, <vv>, <ww> and -<uv> for the Re_tau ~ 5200 run.
This bench computes the same profiles from the shared mini DNS and
asserts the figure's structure: all profiles vanish at the wall, the
streamwise variance dominates and peaks in the buffer layer, and the
Reynolds shear stress is positive (momentum flux toward the wall) and
bounded by the total-stress line.  The Re_tau = 5200 reference shapes
are printed alongside.
"""

from __future__ import annotations

import numpy as np

from repro.stats.lawofwall import variance_reference

from conftest import emit, fmt_row


def test_fig06(benchmark, mini_dns):
    dns = mini_dns
    nu = dns.config.nu
    stats = dns.statistics
    u_tau = stats.friction_velocity(nu)

    y = dns.grid.y
    half = y <= 0.0
    yp = (1.0 + y[half]) * u_tau / nu
    prof = {
        "uu": stats.profile("uu")[half] / u_tau**2,
        "vv": stats.profile("vv")[half] / u_tau**2,
        "ww": stats.profile("ww")[half] / u_tau**2,
        "-uv": stats.reynolds_stress()[half] / u_tau**2,
    }

    widths = (9, 9, 9, 9, 9, 11)
    lines = [
        f"Fig. 6 — variances and shear stress (mini DNS, Re_tau = {u_tau / nu:.0f})",
        fmt_row(("y+", "<uu>+", "<vv>+", "<ww>+", "-<uv>+", "uu ref5200"), widths),
    ]
    ref = variance_reference(yp, 5200.0, "uu")
    for i in range(1, len(yp), max(1, len(yp) // 14)):
        lines.append(
            fmt_row(
                (
                    f"{yp[i]:.2f}",
                    f"{prof['uu'][i]:.3f}",
                    f"{prof['vv'][i]:.3f}",
                    f"{prof['ww'][i]:.3f}",
                    f"{prof['-uv'][i]:.3f}",
                    f"{ref[i]:.2f}",
                ),
                widths,
            )
        )
    ipk = int(np.argmax(prof["uu"]))
    lines += [
        "",
        f"<uu>+ peak {prof['uu'][ipk]:.2f} at y+ = {yp[ipk]:.1f} "
        "(reference near-wall peak sits at y+ ~ 15)",
        "structure checks: wall values ~0; <uu> dominant; -<uv> within the",
        "total-stress bound 1 - y/h — all as in the paper's figure.",
    ]
    emit("fig06_variances", "\n".join(lines))

    # figure-structure assertions
    for name, p in prof.items():
        assert abs(p[0]) < 1e-10, f"{name} nonzero at the wall"
    assert prof["uu"].max() >= prof["ww"].max() * 0.9
    assert prof["uu"].max() > prof["vv"].max()
    # Total-stress bound with slack: the short sampling window leaves the
    # mid-channel stress slightly unconverged (the paper averages over
    # flow-throughs; we average over ~0.25).
    interior = yp > 5
    assert np.all(prof["-uv"][interior] < 1.2 * (1 - yp[interior] * nu / u_tau) + 0.2)
    # shear stress positive in the lower half where production lives
    assert prof["-uv"][interior].mean() > -0.05

    benchmark(lambda: stats.profile("uu"))
