"""Tables 7 & 9 — strong scaling of a full RK3 timestep on four machines.

The machine model regenerates the paper's Table 9 (transpose / FFT /
N-S advance / total per timestep) on the Table 7 grids, and the bench
asserts the paper's qualitative findings: near-perfect Mira MPI scaling
(97% at 786K vs 131K), the ~80% hybrid headline, excellent on-node
scaling everywhere, and the Blue Waters transpose collapse.  A real
distributed timestep runs on SimMPI ranks as the measured kernel.
"""

from __future__ import annotations

from repro.core.solver import ChannelConfig
from repro.mpi import run_spmd
from repro.pencil.distributed import DistributedChannelDNS
from repro.perfmodel import paper_data as P
from repro.perfmodel.machine import BLUE_WATERS, LONESTAR, MIRA, STAMPEDE
from repro.perfmodel.timestep import ParallelLayout, TimestepModel

from conftest import emit, fmt_row

CASES = [
    ("Mira (MPI)", MIRA, "mpi"),
    ("Mira (Hybrid)", MIRA, "hybrid"),
    ("Lonestar", LONESTAR, "mpi"),
    ("Stampede", STAMPEDE, "mpi"),
    ("Blue Waters", BLUE_WATERS, "mpi"),
]


def grid_for(key: str):
    return P.TABLE7[key.split(" (")[0]]


def test_table09(benchmark):
    widths = (10, 9, 7, 7, 8, 9, 7, 7, 8)
    lines = ["Tables 7 & 9 — strong scaling of one RK3 timestep", ""]
    lines.append("Table 7 grids:")
    for system, (nx, ny, nz) in P.TABLE7.items():
        dof = 3 * (nx // 2) * (nz - 1) * ny
        lines.append(f"  {system:12s} {nx:>6} x {ny:>5} x {nz:>6}  ({dof / 1e9:6.1f}e9 DOF)")
    lines.append("")

    efficiencies = {}
    for key, mach, mode in CASES:
        model = TimestepModel(mach, *grid_for(key))
        lines.append(f"{key}:")
        lines.append(
            fmt_row(
                ("cores", "T mod", "F mod", "A mod", "tot mod", "T pap", "F pap", "A pap",
                 "tot pap"),
                widths,
            )
        )
        cores_list = sorted(P.TABLE9[key])
        base = None
        for cores in cores_list:
            s = model.section_times(ParallelLayout(mach, cores, mode=mode))
            paper = P.TABLE9[key][cores]
            if base is None:
                base = (cores, s.total)
            lines.append(
                fmt_row(
                    (
                        f"{cores:,}",
                        f"{s.transpose:.2f}",
                        f"{s.fft:.2f}",
                        f"{s.advance:.2f}",
                        f"{s.total:.2f}",
                        paper[0],
                        paper[1],
                        paper[2],
                        paper[3],
                    ),
                    widths,
                )
            )
        eff = base[1] * base[0] / (
            model.section_times(ParallelLayout(mach, cores_list[-1], mode=mode)).total
            * cores_list[-1]
        )
        efficiencies[key] = eff
        lines.append(f"  strong-scaling efficiency at {cores_list[-1]:,} cores: {eff:.0%}")
        lines.append("")
    emit("table09_strong_scaling", "\n".join(lines))

    # golden-shape assertions (paper §5.1)
    assert efficiencies["Mira (MPI)"] > 0.85  # paper: 97%
    assert 0.60 < efficiencies["Mira (Hybrid)"] < 1.0  # paper headline: ~80%... vs 65K
    assert efficiencies["Blue Waters"] < 0.45  # paper: 28%
    assert efficiencies["Lonestar"] > 0.85

    # every modelled entry within 2x of the paper's measurement
    for key, mach, mode in CASES:
        model = TimestepModel(mach, *grid_for(key))
        for cores, row in P.TABLE9[key].items():
            s = model.section_times(ParallelLayout(mach, cores, mode=mode))
            for mv, pv in zip(s.as_tuple(), row):
                assert 0.5 < mv / pv < 2.0, (key, cores)

    # measured kernel: one real distributed timestep on SimMPI ranks
    cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.3, seed=1)

    def one_step(comm):
        dns = DistributedChannelDNS(comm, cfg, pa=2, pb=2)
        dns.initialize()
        dns.run(1)
        return True

    benchmark(lambda: run_spmd(4, one_step))
