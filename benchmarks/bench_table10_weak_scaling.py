"""Tables 8 & 10 — weak scaling of a full RK3 timestep.

The paper grows the streamwise extent with the core count (Table 8
grids) and finds: the N-S advance weak-scales perfectly, the FFT
degrades (N log N plus cache effects as x lines lengthen, §5.2), and the
transpose dominates the overall efficiency loss.  The model regenerates
Table 10 and the bench asserts those three findings.
"""

from __future__ import annotations

from repro.perfmodel import paper_data as P
from repro.perfmodel.machine import BLUE_WATERS, LONESTAR, MIRA, STAMPEDE
from repro.perfmodel.timestep import ParallelLayout, TimestepModel

from conftest import emit, fmt_row

CASES = [
    ("Mira (MPI)", MIRA, "mpi", "Mira"),
    ("Mira (Hybrid)", MIRA, "hybrid", "Mira"),
    ("Lonestar", LONESTAR, "mpi", "Lonestar"),
    ("Stampede", STAMPEDE, "mpi", "Stampede"),
    ("Blue Waters", BLUE_WATERS, "mpi", "Blue Waters"),
]


def test_table10(benchmark):
    widths = (10, 8, 9, 7, 7, 8, 9, 7, 7, 8)
    lines = ["Tables 8 & 10 — weak scaling of one RK3 timestep (Nx grows with cores)", ""]
    summaries = {}
    for key, mach, mode, grid_key in CASES:
        nxs, ny, nz = P.TABLE8[grid_key]
        lines.append(f"{key} (Ny={ny}, Nz={nz}):")
        lines.append(
            fmt_row(
                ("cores", "Nx", "T mod", "F mod", "A mod", "tot mod", "T pap", "F pap",
                 "A pap", "tot pap"),
                widths,
            )
        )
        fft_times = []
        adv_times = []
        totals = []
        for (cores, paper), nx in zip(sorted(P.TABLE10[key].items()), nxs):
            model = TimestepModel(mach, nx, ny, nz)
            s = model.section_times(ParallelLayout(mach, cores, mode=mode))
            fft_times.append(s.fft)
            adv_times.append(s.advance)
            totals.append(s.total)
            lines.append(
                fmt_row(
                    (
                        f"{cores:,}",
                        nx,
                        f"{s.transpose:.2f}",
                        f"{s.fft:.2f}",
                        f"{s.advance:.2f}",
                        f"{s.total:.2f}",
                        paper[0],
                        paper[1],
                        paper[2],
                        paper[3],
                    ),
                    widths,
                )
            )
        summaries[key] = (fft_times, adv_times, totals)
        lines.append(f"  weak efficiency: {totals[0] / totals[-1]:.0%}")
        lines.append("")
    lines.append("the advance column is flat (perfect weak scaling), the FFT column")
    lines.append("grows (N log N + cache, §5.2), and the transpose dominates the loss.")
    emit("table10_weak_scaling", "\n".join(lines))

    # golden shapes
    fft, adv, totals = summaries["Mira (MPI)"]
    assert max(adv) / min(adv) < 1.05  # advance weak-scales perfectly
    assert fft[-1] > 1.5 * fft[0]  # FFT degrades with growing Nx
    assert 0.5 < totals[0] / totals[-1] < 1.0  # overall efficiency loss, bounded

    fft_bw, adv_bw, totals_bw = summaries["Blue Waters"]
    assert totals_bw[-1] > 2.0 * totals_bw[0]  # Gemini collapse (paper: 48.5%)

    # every modelled entry within ~2x of the paper's measurement
    for key, mach, mode, grid_key in CASES:
        nxs, ny, nz = P.TABLE8[grid_key]
        for (cores, row), nx in zip(sorted(P.TABLE10[key].items()), nxs):
            model = TimestepModel(mach, nx, ny, nz)
            s = model.section_times(ParallelLayout(mach, cores, mode=mode))
            for mv, pv in zip(s.as_tuple(), row):
                assert 0.45 < mv / pv < 2.2, (key, cores)

    # measured kernel: the model evaluation itself (it is the deliverable)
    model = TimestepModel(MIRA, 18432, 1536, 12288)

    def evaluate():
        for cores in (65536, 131072, 262144):
            model.section_times(ParallelLayout(MIRA, cores, mode="mpi"))

    benchmark(evaluate)
