"""Solve share of a DNS timestep — before/after the blocked solve engine.

The tentpole claim of the solve-engine PR is end-to-end, not kernel-deep:
the implicit wall-normal solves (three-plus batched banded solves per RK
substep) must stop dominating the ``ns_advance`` section.  This bench
runs the same small turbulent channel three ways,

* **before** — row-at-a-time sweeps (``FoldedLU.solve_reference``
  monkeypatched over ``solve``) with separate per-variable solves,
* **unfused** — blocked engine, separate omega_y / phi / mean solves,
* **fused**  — blocked engine with the shared-factor omega+phi sweep
  (the production default),

and reports the per-step wall-clock of each, the time spent under the
``SOLVE`` timer section, and the solve share of a step.  Fused and
unfused trajectories must agree bit-for-bit; the fused engine path must
cut the solve time of the "before" configuration at least in half.
"""

from __future__ import annotations

import numpy as np

from repro.core import ChannelConfig, ChannelDNS
from repro.linalg.custom import FoldedLU

from conftest import emit, fmt_row

NSTEPS = 12


def make_dns(fused: bool) -> ChannelDNS:
    cfg = ChannelConfig(nx=24, ny=49, nz=24, re_tau=180.0, dt=2e-4,
                        init_amplitude=0.5, seed=11)
    dns = ChannelDNS(cfg)
    dns.stepper.fused_solves = fused
    dns.initialize()
    return dns


def run_timed(dns: ChannelDNS) -> dict:
    dns.run(2)  # warm transforms, engines and BLAS paths
    dns.stepper.timers.reset()
    dns.run(NSTEPS)
    t = dns.stepper.timers
    return {
        "step": t.total() / NSTEPS,
        "solve": t.elapsed[t.SOLVE] / NSTEPS,
        "advance": t.elapsed[t.ADVANCE] / NSTEPS,
        "state": dns.state,
    }


def test_substep_solver(benchmark):
    before_solve = FoldedLU.solve
    try:
        # "before": the pre-engine interpreted row sweeps on every solve
        FoldedLU.solve = FoldedLU.solve_reference
        res_before = run_timed(make_dns(fused=False))
    finally:
        FoldedLU.solve = before_solve
    res_unfused = run_timed(make_dns(fused=False))
    res_fused = run_timed(make_dns(fused=True))

    # correctness first: engine paths must agree with each other exactly
    # and with the row-sweep trajectory to solver tolerance
    for name in ("v", "omega_y", "u00", "w00"):
        a = getattr(res_fused["state"], name)
        b = getattr(res_unfused["state"], name)
        assert np.array_equal(a, b), f"fused/unfused trajectories split on {name}"
        c = getattr(res_before["state"], name)
        np.testing.assert_allclose(a, c, rtol=1e-8, atol=1e-10)

    widths = (10, 11, 11, 11, 12)
    lines = [
        f"Solve share of a timestep — 24x49x24 channel, {NSTEPS} steps,",
        "per-step seconds (SOLVE is timed inside ns_advance):",
        fmt_row(("config", "step", "ns_advance", "solve", "solve/step"), widths),
    ]
    for label, res in (("before", res_before), ("unfused", res_unfused),
                       ("fused", res_fused)):
        lines.append(
            fmt_row(
                (label, f"{res['step']:.4f}s", f"{res['advance']:.4f}s",
                 f"{res['solve']:.4f}s", f"{res['solve'] / res['step']:.1%}"),
                widths,
            )
        )
    speedup = res_before["solve"] / res_fused["solve"]
    lines += [
        f"engine solve speedup vs row sweeps: {speedup:.2f}x "
        "(fused engine vs solve_reference, same trajectory)",
    ]
    emit("substep_solver", "\n".join(lines))

    assert speedup >= 2.0, f"solve-engine speedup collapsed: {speedup:.2f}x"
    assert res_fused["solve"] <= res_unfused["solve"] * 1.25, (
        "fusing the omega/phi sweep should not slow the solve section down"
    )

    # benchmark one full production step (fused engine path)
    dns = make_dns(fused=True)
    dns.run(2)
    benchmark(dns.step)
