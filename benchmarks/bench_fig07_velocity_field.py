"""Fig. 7 — instantaneous streamwise velocity over the channel.

The paper shows u(x, y) across the full streamwise extent, with a zoom
demonstrating the multi-scale content.  This bench extracts the same
plane from the shared mini DNS, renders it as a text contour, produces
the zoom, and asserts the physical structure: no-slip walls, fast core,
and broadband (multi-scale) streamwise spectra.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import WallNormalOps
from repro.stats.fields import ascii_contour, multiscale_zoom, streamwise_velocity_plane
from repro.stats.spectra import energy_spectrum_x, spectral_decay

from conftest import emit


def test_fig07(benchmark, mini_dns):
    dns = mini_dns
    plane = streamwise_velocity_plane(dns, z_index=0)

    full, zoom = multiscale_zoom(plane, factor=4)
    art = ascii_contour(plane.T[::-1].T if False else plane, width=72, height=16)

    g = dns.grid
    ops = WallNormalOps(g)
    kx, e = energy_spectrum_x(g, ops, dns.state.u, g.ny // 2)

    lines = [
        "Fig. 7 — instantaneous streamwise velocity u(x, y) at one z plane",
        "(x ->, y up; darker = slower fluid near the walls)",
        "",
        art,
        "",
        f"zoomed corner shape: {zoom.shape} of {full.shape} "
        "(the paper's zoom shows the same multi-scale structure)",
        f"centreline streamwise spectrum: {len(kx)} modes, "
        f"decays {spectral_decay(e):.1f} decades to the cutoff",
    ]
    emit("fig07_velocity_field", "\n".join(lines))

    # physical structure of the figure
    assert np.abs(plane[:, 0]).max() < 1e-8  # no-slip lower wall
    assert np.abs(plane[:, -1]).max() < 1e-8  # no-slip upper wall
    centre = plane[:, plane.shape[1] // 2]
    assert centre.mean() > 5.0  # fast core in u_tau units
    assert e[0] > 0 and np.all(e >= 0)
    assert spectral_decay(e) > 2.0  # resolved, broadband field

    benchmark(lambda: streamwise_velocity_plane(dns, z_index=0))
