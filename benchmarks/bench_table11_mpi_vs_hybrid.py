"""Table 11 — MPI-everywhere vs hybrid MPI+OpenMP on Mira.

§5.3: "using only MPI results in sixteen times more MPI tasks that issue
256 times more messages that are 256 times smaller"; hybrid wins by
1.1-1.2x until the largest core count, where both saturate the torus and
the ratio returns to 1.  The model regenerates both the strong- and
weak-scaling comparison; the message-count arithmetic is verified
exactly from the communicator geometry, and the §5.3 aggregate flop
headline is reproduced.
"""

from __future__ import annotations

from repro.perfmodel import paper_data as P
from repro.perfmodel.machine import MIRA
from repro.perfmodel.timestep import ParallelLayout, TimestepModel

from conftest import emit, fmt_row


def test_table11(benchmark):
    strong = TimestepModel(MIRA, *P.TABLE7["Mira"])
    nxs, ny, nz = P.TABLE8["Mira"]

    widths = (10, 10, 10, 7, 10, 10, 7)
    lines = [
        "Table 11 — MPI vs Hybrid on Mira (total seconds per timestep)",
        "",
        "strong scaling:",
        fmt_row(("cores", "MPI mod", "Hyb mod", "ratio", "MPI pap", "Hyb pap", "ratio"),
                widths),
    ]
    model_ratios = {}
    for cores, (pm, ph) in sorted(P.TABLE11_STRONG.items()):
        mpi = strong.section_times(ParallelLayout(MIRA, cores, mode="mpi")).total
        hyb = strong.section_times(ParallelLayout(MIRA, cores, mode="hybrid")).total
        model_ratios[cores] = mpi / hyb
        lines.append(
            fmt_row(
                (f"{cores:,}", f"{mpi:.2f}", f"{hyb:.2f}", f"{mpi / hyb:.2f}",
                 pm, ph, f"{pm / ph:.2f}"),
                widths,
            )
        )
    lines += ["", "weak scaling:", fmt_row(
        ("cores", "MPI mod", "Hyb mod", "ratio", "MPI pap", "Hyb pap", "ratio"), widths)]
    for (cores, (pm, ph)), nx in zip(sorted(P.TABLE11_WEAK.items()), nxs):
        model = TimestepModel(MIRA, nx, ny, nz)
        mpi = model.section_times(ParallelLayout(MIRA, cores, mode="mpi")).total
        hyb = model.section_times(ParallelLayout(MIRA, cores, mode="hybrid")).total
        lines.append(
            fmt_row(
                (f"{cores:,}", f"{mpi:.2f}", f"{hyb:.2f}", f"{mpi / hyb:.2f}",
                 pm, ph, f"{pm / ph:.2f}"),
                widths,
            )
        )

    # §5.3 message arithmetic, exact from the layouts
    cores = 131072
    lay_mpi = ParallelLayout(MIRA, cores, mode="mpi")
    lay_hyb = ParallelLayout(MIRA, cores, mode="hybrid")
    task_ratio = lay_mpi.tasks / lay_hyb.tasks
    msg_mpi = lay_mpi.tasks * (lay_mpi.comm_a_size - 1 + lay_mpi.comm_b_size - 1)
    msg_hyb = lay_hyb.tasks * (lay_hyb.comm_a_size - 1 + lay_hyb.comm_b_size - 1)
    lines += [
        "",
        f"§5.3 arithmetic at {cores:,} cores: MPI has {task_ratio:.0f}x more tasks and",
        f"{msg_mpi / msg_hyb:.0f}x more messages per transpose "
        "(paper: 16x tasks, 256x messages)",
    ]

    agg = strong.aggregate_flops(ParallelLayout(MIRA, 786432, mode="hybrid"))
    lines += [
        "",
        f"aggregate at 786K cores: {agg['total_flops'] / 1e12:.0f} TF "
        f"({agg['peak_fraction']:.1%} of peak); on-node "
        f"{agg['on_node_flops'] / 1e12:.0f} TF   [paper: 271 TF / 2.7% / 906 TF]",
    ]
    emit("table11_mpi_vs_hybrid", "\n".join(lines))

    # golden shapes
    assert model_ratios[131072] > 1.05  # hybrid wins mid-scale
    assert abs(model_ratios[786432] - 1.0) < 0.06  # convergence at 786K
    assert task_ratio == 16.0
    assert 200 < msg_mpi / msg_hyb < 300  # the famous 256x
    assert 0.015 < agg["peak_fraction"] < 0.055

    benchmark(lambda: strong.section_times(ParallelLayout(MIRA, 786432, mode="hybrid")))
