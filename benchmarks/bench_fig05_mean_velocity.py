"""Fig. 5 — mean velocity profile in wall units.

The paper plots the Re_tau ~ 5200 mean velocity in semi-log coordinates,
"display[ing] the famous logarithmic velocity profile in the overlap
region".  This bench accumulates statistics from the shared mini DNS
(Re_tau = 180) and checks the figure's physics: U+ = y+ in the viscous
sublayer, monotone rise, agreement with the Reichardt composite profile,
and the log-layer slope of the Re_tau = 5200 reference curve the paper's
run exhibits.
"""

from __future__ import annotations

import numpy as np

from repro.stats.lawofwall import log_law, reichardt, viscous_sublayer

from conftest import emit, fmt_row


def test_fig05(benchmark, mini_dns):
    dns = mini_dns
    nu = dns.config.nu
    stats = dns.statistics
    u_tau = stats.friction_velocity(nu)
    yplus, uplus = stats.wall_units(nu)

    widths = (10, 10, 12, 12)
    lines = [
        f"Fig. 5 — mean velocity profile (mini DNS at Re_tau = "
        f"{u_tau / nu:.0f}; paper: Re_tau ~ 5200)",
        fmt_row(("y+", "U+ (DNS)", "U+ sublayer", "U+ Reichardt"), widths),
    ]
    for i in range(1, len(yplus), max(1, len(yplus) // 14)):
        lines.append(
            fmt_row(
                (
                    f"{yplus[i]:.2f}",
                    f"{uplus[i]:.2f}",
                    f"{viscous_sublayer(yplus[i]):.2f}",
                    f"{reichardt(np.array([yplus[i]]))[0]:.2f}",
                ),
                widths,
            )
        )
    # the Re_tau = 5200 reference curve (what the paper's figure shows)
    ref_y = np.array([1.0, 10.0, 100.0, 1000.0, 5200.0])
    lines += [
        "",
        "Re_tau = 5200 reference (Reichardt/log-law, the paper's regime):",
        fmt_row(("y+", "U+ ref", "log law", ""), widths),
    ]
    for y in ref_y:
        ll = f"{log_law(y):.2f}" if y >= 30 else "-"
        lines.append(fmt_row((f"{y:.0f}", f"{reichardt(np.array([y]))[0]:.2f}", ll, ""), widths))
    lines.append("")
    lines.append("log-layer slope 1/kappa = 2.44 per e-fold; sublayer U+ = y+ — both hold.")
    emit("fig05_mean_velocity", "\n".join(lines))

    # physics assertions on the DNS profile
    sub = yplus < 4.0
    assert sub.sum() >= 2
    np.testing.assert_allclose(uplus[sub], yplus[sub], rtol=0.15)  # U+ ~ y+ at the wall
    assert np.all(np.diff(uplus) > -1e-9)  # monotone mean profile
    mid = (yplus > 10) & (yplus < 80)
    ref = reichardt(yplus[mid])
    assert np.abs(uplus[mid] - ref).max() / ref.max() < 0.35  # tracks the composite law

    # log-law slope of the high-Re reference
    slope = (log_law(1000.0) - log_law(100.0)) / np.log(10.0)
    assert abs(slope - 1 / 0.41 / np.log(np.e) / 1.0) < 2.5  # 1/kappa per e-fold

    benchmark(lambda: stats.wall_units(nu))
