"""Recovery path throughput: checkpoint save, restore, and reshard-restore.

The elastic recovery layer earns its keep only if the restart path is
cheap next to the integration it protects.  This bench measures, on a
32x33x32 state:

* **save** — one sharded snapshot write (atomic + fsync + CRC manifest),
* **restore (same shape)** — the fast path: every rank reads its own
  shard, CRC-verified,
* **reshard-restore** — the decomposition-agnostic path across a
  shrinking-allocation cascade ``8 -> 6 -> 4`` ranks (each stage
  reassembles from the previous stage's shards) plus the collapse to
  serial ``1x1`` via ``load_serial``,
* **grow cascade** — the elastic-expansion path in the other direction:
  a serial ``1x1`` snapshot grows back through ``2x2`` to ``2x4``
  (what :func:`~repro.pencil.distributed.run_supervised_spmd` pays at
  every ``GrowRequired`` boundary), bit-exact at every stage.

Reported as wall time and effective MB/s over the snapshot's on-disk
bytes; written to ``benchmarks/results/recovery.txt``.
"""

from __future__ import annotations

import pathlib
import shutil
import time

import numpy as np

from repro.core import ChannelConfig
from repro.core.checkpoint import ShardedCheckpointRotation
from repro.mpi import run_spmd
from repro.pencil.decomp import choose_grid
from repro.pencil.distributed import DistributedChannelDNS

from conftest import emit, fmt_row

CFG = ChannelConfig(nx=32, ny=33, nz=32, dt=4e-4, init_amplitude=1.0, seed=11)
MX, MZ = CFG.nx // 2, CFG.nz - 1
REPEATS = 5


def _median_timed(fn, repeats=REPEATS):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def _snapshot_bytes(directory) -> int:
    snaps = ShardedCheckpointRotation(directory).snapshot_dirs()
    return sum(p.stat().st_size for p in snaps[0].iterdir())


def _write_stage(directory, nranks):
    """Run briefly at ``nranks`` and leave one snapshot; returns save seconds."""
    pa, pb = choose_grid(nranks, MX, MZ, CFG.ny)

    def prog(comm):
        dns = DistributedChannelDNS(comm, CFG, pa=pa, pb=pb)
        dns.initialize()
        dns.run(2)
        rot = ShardedCheckpointRotation(directory, keep=2)
        return _median_timed(lambda: rot.save(dns))

    return run_spmd(nranks, prog)[0]


def _restore_stage(directory, nranks, reshard):
    """Time a restore of ``directory``'s snapshot at ``nranks``; returns
    ``(seconds, full_state)`` gathered on rank 0."""
    pa, pb = choose_grid(nranks, MX, MZ, CFG.ny)

    def prog(comm):
        dns = DistributedChannelDNS(comm, CFG, pa=pa, pb=pb)
        rot = ShardedCheckpointRotation(directory, keep=2)
        restore_s = _median_timed(lambda: rot.load_latest(dns, reshard=reshard))
        full = dns.gather_state()
        return (restore_s, full) if comm.rank == 0 else None

    return run_spmd(nranks, prog)[0]


def test_recovery_throughput(benchmark, tmp_path):
    widths = (26, 8, 10, 10)
    lines = [
        "Recovery throughput — sharded checkpoints on a 32x33x32 state",
        "",
        fmt_row(("operation", "ranks", "ms", "MB/s"), widths),
    ]

    stage_dir = tmp_path / "cascade"
    save_s = _write_stage(stage_dir, 8)
    nbytes = _snapshot_bytes(stage_dir)
    mb = nbytes / 1e6

    def row(op, ranks, seconds):
        lines.append(
            fmt_row((op, ranks, f"{seconds * 1e3:.2f}", f"{mb / seconds:.0f}"), widths)
        )

    row("save", 8, save_s)

    same_s, _ = _restore_stage(stage_dir, 8, reshard=False)
    row("restore (same 2x4)", 8, same_s)

    # the shrinking-allocation cascade: every stage restores the previous
    # stage's snapshot onto a smaller grid, then snapshots at its own
    ref = None
    prev = 8
    for nranks in (6, 4):
        reshard_s, full = _restore_stage(stage_dir, nranks, reshard=True)
        row(f"reshard ({prev}->{nranks})", nranks, reshard_s)
        # re-snapshot at the new layout so the next stage resharding is real
        pa, pb = choose_grid(nranks, MX, MZ, CFG.ny)

        def resnap(comm, pa=pa, pb=pb):
            dns = DistributedChannelDNS(comm, CFG, pa=pa, pb=pb)
            rot = ShardedCheckpointRotation(stage_dir, keep=2)
            rot.load_latest(dns, reshard=True)
            rot.save(dns)
            return True

        run_spmd(nranks, resnap)
        if ref is None:
            ref = full
        else:
            np.testing.assert_array_equal(full.v, ref.v)  # cascade stays bit-exact
        prev = nranks

    # collapse to serial 1x1: the representative kernel under pytest-benchmark
    rot = ShardedCheckpointRotation(stage_dir)
    serial_dns = benchmark.pedantic(rot.load_serial, rounds=3, iterations=1)
    serial_s = _median_timed(rot.load_serial)
    row("reshard (4->serial 1x1)", 1, serial_s)
    np.testing.assert_array_equal(serial_dns.state.v, ref.v)

    # the grow cascade: a serial 1x1 seed snapshot expands back through
    # 2x2 to 2x4 — the price of every GrowRequired boundary in the
    # elastic supervisor (same trajectory, so the shrink ref still pins)
    grow_dir = tmp_path / "grow"

    def serial_seed(comm):
        dns = DistributedChannelDNS(comm, CFG, pa=1, pb=1)
        dns.initialize()
        dns.run(2)
        rot = ShardedCheckpointRotation(grow_dir, keep=2)
        return _median_timed(lambda: rot.save(dns))

    row("save (serial 1x1)", 1, run_spmd(1, serial_seed)[0])
    prev = 1
    for nranks in (4, 8):
        grow_s, full = _restore_stage(grow_dir, nranks, reshard=True)
        pa, pb = choose_grid(nranks, MX, MZ, CFG.ny)
        row(f"grow reshard ({prev}->{pa}x{pb})", nranks, grow_s)
        np.testing.assert_array_equal(full.v, ref.v)  # growth stays bit-exact

        def resnap(comm, pa=pa, pb=pb):
            dns = DistributedChannelDNS(comm, CFG, pa=pa, pb=pb)
            rot = ShardedCheckpointRotation(grow_dir, keep=2)
            rot.load_latest(dns, reshard=True)
            rot.save(dns)
            return True

        run_spmd(nranks, resnap)
        prev = nranks

    lines += [
        "",
        f"snapshot size: {nbytes} bytes ({mb:.2f} MB) across the shard files;",
        "the 8->6->4->1x1 shrink cascade and the 1x1->2x2->2x4 grow",
        "cascade both reassemble bit-exactly at every stage.",
    ]
    emit("recovery", "\n".join(lines))
    shutil.rmtree(stage_dir, ignore_errors=True)
    shutil.rmtree(grow_dir, ignore_errors=True)
