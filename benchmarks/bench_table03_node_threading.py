"""Table 3 — single-node threading of the FFT and N-S advance kernels.

The paper's Table 3 shows near-perfect OpenMP scaling of the two compute
kernels on Lonestar (up to 6 cores of a socket) and Mira (up to 64
threads — 4 hardware threads on each of 16 cores, with >200% per-core
efficiency).  CPython cannot run OpenMP-style threads, so the scaling is
reproduced by the calibrated thread model and printed against the paper;
the real FFT kernel is benchmarked single-threaded for reference.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel import paper_data as P
from repro.perfmodel.machine import LONESTAR, MIRA
from repro.perfmodel.threading import ThreadScalingModel

from conftest import emit, fmt_row


def test_table03(benchmark):
    mira = ThreadScalingModel(MIRA)
    lonestar = ThreadScalingModel(LONESTAR)

    widths = (9, 12, 14, 14, 12)
    lines = [
        "Table 3 — single-node thread scaling of FFT / N-S advance",
        "",
        "Lonestar (one socket):",
        fmt_row(("cores", "model", "paper FFT", "paper advance", "model eff"), widths),
    ]
    for cores, (fft, adv) in P.TABLE3_LONESTAR.items():
        s = lonestar.compute_speedup(cores)
        lines.append(
            fmt_row(
                (cores, f"{s:.2f}", fft, adv, f"{lonestar.compute_efficiency(cores):.0%}"),
                widths,
            )
        )
    lines += [
        "",
        "Mira (16 cores x 4 hardware threads):",
        fmt_row(("threads", "model", "paper FFT", "paper advance", "model eff"), widths),
    ]
    for threads, (fft, adv) in P.TABLE3_MIRA.items():
        s = mira.compute_speedup(threads)
        lines.append(
            fmt_row(
                (threads, f"{s:.2f}", fft, adv, f"{mira.compute_efficiency(threads):.0%}"),
                widths,
            )
        )
    lines.append("per-core efficiency exceeds 100% with hardware threads, as measured.")
    emit("table03_node_threading", "\n".join(lines))

    # shape assertions against the paper rows
    for threads, (fft, adv) in P.TABLE3_MIRA.items():
        model = mira.compute_speedup(threads)
        assert 0.85 * min(fft, adv) < model < 1.15 * max(fft, adv)
    assert mira.compute_efficiency(64) > 1.9  # the >200% headline

    # benchmark the real (single-threaded) FFT kernel the model stands for
    rng = np.random.default_rng(0)
    lines_data = rng.standard_normal((256, 1024))

    def fft_kernel():
        np.fft.rfft(lines_data, axis=1)

    benchmark(fft_kernel)
