"""Statistics-service load benchmark — queries/sec, cold store vs warm cache.

The serving read path (:mod:`repro.serving`) answers law-of-wall,
variance and spectrum queries from the versioned results store.  This
bench measures its throughput in the two regimes an operator cares
about:

* **cold** — every query hits the disk store (checksummed npz load +
  wall-unit reduction + interpolation); measured by clearing the service
  caches before each query;
* **warm** — every query is an LRU response-cache hit (the steady state
  of a high-QPS deployment where the hot query set fits the cache).

The store content is synthetic (law-of-wall reference curves across
four Re_tau, :mod:`repro.serving.synthetic`) so the bench runs in
milliseconds; the code path — load, verify, interpolate, cache — is
exactly production's.  The warm path is perf-gated as the
``stats_query_32`` case in ``benchmarks/results/baselines.json``
(see ``scripts/check_perf.py``); this bench additionally asserts the
``>= 10x`` warm/cold throughput floor from the PR-10 acceptance
criteria.

Run as a script (``python benchmarks/bench_stats_service.py [--report]``)
or under pytest (``pytest benchmarks/bench_stats_service.py``).
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.serving import StatisticsService
from repro.serving.synthetic import populate_store

sys.path.insert(0, str(Path(__file__).parent))
from conftest import emit, fmt_row  # noqa: E402

RE_TAUS = (180.0, 550.0, 1000.0, 2000.0)
#: acceptance floor: warm-cache throughput over cold-store throughput
SPEEDUP_FLOOR = 10.0


def _query_mix(service: StatisticsService) -> int:
    """One batch of 32 mixed queries (the stats_query_32 shape); returns
    the query count."""
    y_sweep = tuple(float(y) for y in np.geomspace(1.0, 150.0, 16))
    n = 0
    for re_tau in (180.0, 350.0, 550.0, 1500.0):
        service.law_of_wall(re_tau, y_sweep)
        for comp in ("u", "v", "w", "uv"):
            service.variance(re_tau, comp, y_sweep)
        service.spectrum(re_tau, "x", "u", 15.0)
        service.spectrum(re_tau, "z", "u", 15.0)
        service.spectrum(re_tau, "x", "w", 100.0)
        n += 8
    return n


def _qps(run_batch, *, min_time: float = 0.3) -> float:
    """Queries/sec of ``run_batch`` (returns its query count), autoranged."""
    total_q = 0
    t0 = time.perf_counter()
    while True:
        total_q += run_batch()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time:
            return total_q / elapsed


def measure_serving(store_root) -> dict:
    """Cold vs warm queries/sec against a populated store."""
    store = populate_store(store_root, RE_TAUS)
    service = StatisticsService(store, cache_size=256)

    def cold_batch() -> int:
        service.clear_caches()  # every query pays the disk store
        return _query_mix(service)

    cold_qps = _qps(cold_batch)
    cold_info = service.cache_info()

    service.clear_caches()
    _query_mix(service)  # prime: the next batches are pure cache hits
    warm_qps = _qps(lambda: _query_mix(service))
    warm_info = service.cache_info()

    return {
        "cold_qps": cold_qps,
        "warm_qps": warm_qps,
        "speedup": warm_qps / cold_qps,
        "cold_cache": cold_info,
        "warm_cache": warm_info,
    }


def _report(res: dict) -> str:
    widths = (28, 14)
    lines = [
        "Statistics service throughput — 32-query mix (law-of-wall,",
        f"variances, spectra) across Re_tau {RE_TAUS}",
        "",
        fmt_row(("regime", "queries/sec"), widths),
        fmt_row(("cold (store reads)", f"{res['cold_qps']:,.0f}"), widths),
        fmt_row(("warm (response cache)", f"{res['warm_qps']:,.0f}"), widths),
        "",
        f"warm/cold speedup: {res['speedup']:.1f}x (floor: {SPEEDUP_FLOOR:.0f}x)",
        f"warm cache: {res['warm_cache']['responses']['hits']} hits / "
        f"{res['warm_cache']['responses']['misses']} misses "
        f"({res['warm_cache']['responses']['size']} resident responses)",
    ]
    return "\n".join(lines)


def test_stats_service_throughput(tmp_path, benchmark):
    """Pytest entry: warm-path timing via pytest-benchmark + the floor."""
    store = populate_store(tmp_path / "store", RE_TAUS)
    service = StatisticsService(store, cache_size=256)
    _query_mix(service)  # warm
    benchmark(lambda: _query_mix(service))
    res = measure_serving(tmp_path / "store2")
    emit("stats_service", _report(res))
    assert res["speedup"] >= SPEEDUP_FLOOR, (
        f"warm cache only {res['speedup']:.1f}x over cold store "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the table and exit 0 even below the speedup floor",
    )
    args = parser.parse_args(argv)
    root = Path(tempfile.mkdtemp(prefix="stats-bench-"))
    try:
        res = measure_serving(root / "store")
    finally:
        shutil.rmtree(root, ignore_errors=True)
    emit("stats_service", _report(res))
    if res["speedup"] < SPEEDUP_FLOOR and not args.report:
        print(f"FAIL: speedup {res['speedup']:.1f}x below the {SPEEDUP_FLOOR}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
