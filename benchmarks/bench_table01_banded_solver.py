"""Table 1 — custom banded solver vs LAPACK-style reference paths.

Paper protocol: solve corner-banded systems of size N = 1024 at
bandwidths 3..15, real matrix / complex right-hand side, all times
normalized by the Netlib-LAPACK-style reference.

The paper's 4x speed-up has three structural sources, each measured
here directly:

1. **no corner padding** — the padded general band a LAPACK solver needs
   performs ~3-4x the floating-point work of the folded structure
   (``flop ratio`` column, counted exactly);
2. **real arithmetic** — promoting the matrix to complex (ZGBTRF-style,
   the ``MKL_C`` path) costs ~2-4x over the real path (measured);
3. **half the memory** — folded storage vs LAPACK's factor workspace
   (``memory ratio`` column, counted exactly).

Wall-clock columns are also reported.  Since the blocked solve engine
(:mod:`repro.linalg.engine`) replaced the row-at-a-time sweeps, the warm
custom path also *wins in wall-clock* against the scipy/LAPACK ``MKL_R``
analogue — asserted below — not just in flop/byte accounting; the
remaining honesty note is that cold factorization is still Python-loop
bound.  The retired row sweeps (``solve_reference``) are timed alongside
as the like-for-like interpreted baseline the engine is required to beat
by >= 2x at the production bandwidths.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.linalg

from repro.linalg.custom import FoldedLU
from repro.linalg.reference import netlib_banded_lu, netlib_banded_solve
from repro.linalg.structure import BandedSystemSpec, FoldedBanded

from conftest import emit, fmt_row
from repro.perfmodel import paper_data as P

N = 1024
NBATCH = 64  # wavenumber systems per call


def make_folded_batch(bandwidth: int, rng: np.random.Generator, nbatch: int = NBATCH):
    kl = ku = (bandwidth - 1) // 2
    spec = BandedSystemSpec(n=N, kl=kl, ku=ku, corner=kl)
    data = rng.standard_normal((nbatch, N, spec.window))
    mdiag = np.arange(N) - spec.jlo
    data[:, np.arange(N), mdiag] += 2.0 * bandwidth
    rhs = rng.standard_normal((nbatch, N)) + 1j * rng.standard_normal((nbatch, N))
    return spec, FoldedBanded(spec, data), rhs


def padded_ab_builder(spec: BandedSystemSpec):
    """Scatter indices: folded storage -> LAPACK diagonal-ordered padded band."""
    jlo = spec.jlo
    klp = int(max(np.arange(spec.n) - jlo))
    kup = int(max(jlo + spec.window - 1 - np.arange(spec.n)))
    i_idx = np.repeat(np.arange(spec.n), spec.window)
    j_idx = (jlo[:, None] + np.arange(spec.window)[None, :]).ravel()
    band_rows = kup + i_idx - j_idx

    def build(folded_system: np.ndarray, dtype=float) -> np.ndarray:
        ab = np.zeros((klp + kup + 1, spec.n), dtype=dtype)
        ab[band_rows, j_idx] = folded_system.ravel()
        return ab

    return klp, kup, build


def padded_band_flops(n: int, klp: int, kup: int) -> float:
    """Factor + solve multiply-adds of a general banded LU (no pivoting)."""
    return n * (2.0 * klp * (kup + 1) + 2.0 * (klp + kup) + 1.0)


def time_call(fn, repeats=2):
    fn()
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_table01(benchmark):
    rng = np.random.default_rng(0)
    rows = []
    engine_rows = []
    for bw in P.TABLE1_BANDWIDTHS:
        spec, fb, rhs = make_folded_batch(bw, rng)
        klp, kup, build = padded_ab_builder(spec)
        dense0 = FoldedBanded(spec, fb.data[:1]).to_dense()[0]

        def netlib_one():
            ab = netlib_banded_lu(dense0.astype(complex), klp, kup)
            netlib_banded_solve(ab, klp, kup, rhs[0])

        def mkl_r():
            for b in range(NBATCH):
                ab = build(fb.data[b])
                stacked = np.column_stack([rhs[b].real, rhs[b].imag])
                scipy.linalg.solve_banded((klp, kup), ab, stacked)

        def mkl_c():
            for b in range(NBATCH):
                ab = build(fb.data[b], complex)
                scipy.linalg.solve_banded((klp, kup), ab, rhs[b])

        def custom():
            FoldedLU(fb).solve(rhs)

        lu_warm = FoldedLU(fb)
        eng = lu_warm.engine()

        t_netlib = time_call(netlib_one, repeats=1) * NBATCH
        t_r = time_call(mkl_r)
        t_c = time_call(mkl_c)
        t_custom = time_call(custom)
        # interleave the warm-path measurements so machine-load drift hits
        # both sides equally; keep the best of several alternations
        eng.solve(rhs)
        lu_warm.solve_reference(rhs)
        t_engine = np.inf
        t_rowsweep = np.inf
        for _ in range(7):
            t0 = time.perf_counter()
            eng.solve(rhs)
            t_engine = min(t_engine, time.perf_counter() - t0)
            t0 = time.perf_counter()
            lu_warm.solve_reference(rhs)
            t_rowsweep = min(t_rowsweep, time.perf_counter() - t0)

        # correctness guard before reporting performance
        x = FoldedLU(fb).solve(rhs)
        ref0 = scipy.linalg.solve_banded((klp, kup), build(fb.data[0], complex), rhs[0])
        assert np.abs(x[0] - ref0).max() < 1e-8

        lu = FoldedLU(fb)
        flop_ratio = padded_band_flops(N, klp, kup) / (lu.factor_flops() + lu.solve_flops())
        mem_ratio = spec.lapack_storage() / spec.folded_storage()
        rows.append(
            (bw, t_r / t_netlib, t_c / t_netlib, t_custom / t_netlib, flop_ratio, mem_ratio)
        )
        engine_rows.append((bw, t_engine, t_rowsweep, t_r))

    widths = (9, 8, 8, 8, 10, 10, 9, 9, 9)
    lines = [
        f"Table 1 — corner-banded solves, N={N}, batch={NBATCH}, "
        "times normalized by the Netlib-style path",
        fmt_row(
            ("bandwidth", "MKL_R", "MKL_C", "Custom", "flopratio", "memratio",
             "pap.R", "pap.C", "pap.Cu"),
            widths,
        ),
    ]
    for bw, r, c, cu, fr, mr in rows:
        p = P.TABLE1[bw]
        lines.append(
            fmt_row(
                (bw, f"{r:.3f}", f"{c:.3f}", f"{cu:.3f}", f"{fr:.2f}x", f"{mr:.2f}x",
                 p["MKL_R"], p["MKL_C"], p["Custom_Lonestar"]),
                widths,
            )
        )
    ew = (9, 12, 12, 12, 9, 9)
    lines += [
        "flopratio = padded-general-band work / folded-structure work (the",
        "paper's eliminated flops); memratio = LAPACK factor storage / folded",
        "storage (the paper's halved memory).",
        "",
        "Warm-factor solve wall-clock (blocked engine vs retired row sweeps",
        "vs scipy/LAPACK MKL_R analogue), milliseconds per batched solve:",
        fmt_row(("bandwidth", "engine", "rowsweep", "MKL_R", "vs.row", "vs.MKLR"), ew),
    ]
    for bw, t_e, t_rs, t_mr in engine_rows:
        lines.append(
            fmt_row(
                (bw, f"{t_e * 1e3:.3f}ms", f"{t_rs * 1e3:.3f}ms", f"{t_mr * 1e3:.3f}ms",
                 f"{t_rs / t_e:.2f}x", f"{t_mr / t_e:.2f}x"),
                ew,
            )
        )
    lines += [
        "The engine must beat the row sweeps >= 2x at production bandwidths",
        "and at least match MKL_R in wall-clock (asserted).  Cold factoring",
        "remains Python-loop bound — the residual honesty note.",
    ]
    emit("table01_banded_solver", "\n".join(lines))

    for bw, r, c, cu, fr, mr in rows:
        assert cu < 1.0, f"custom slower than the Netlib path at bandwidth {bw}"
        assert mr > 1.7, f"memory ratio collapsed at bandwidth {bw}"
        if bw >= 7:
            assert mr > 1.85
            assert fr > 2.5, f"flop ratio collapsed at bandwidth {bw}"
    for bw, t_e, t_rs, t_mr in engine_rows:
        assert t_e <= t_mr, f"engine lost to the MKL_R path at bandwidth {bw}"
        if bw >= 7:
            assert t_rs / t_e >= 2.0, (
                f"engine speedup vs row sweeps collapsed at bandwidth {bw}: "
                f"{t_rs / t_e:.2f}x"
            )

    # benchmark the production kernel: warm batched engine solve at bandwidth 15
    spec, fb, rhs = make_folded_batch(15, rng)
    eng = FoldedLU(fb).engine()
    benchmark(lambda: eng.solve(rhs))
