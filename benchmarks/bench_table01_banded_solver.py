"""Table 1 — custom banded solver vs LAPACK-style reference paths.

Paper protocol: solve corner-banded systems of size N = 1024 at
bandwidths 3..15, real matrix / complex right-hand side, all times
normalized by the Netlib-LAPACK-style reference.

The paper's 4x speed-up has three structural sources, each measured
here directly:

1. **no corner padding** — the padded general band a LAPACK solver needs
   performs ~3-4x the floating-point work of the folded structure
   (``flop ratio`` column, counted exactly);
2. **real arithmetic** — promoting the matrix to complex (ZGBTRF-style,
   the ``MKL_C`` path) costs ~2-4x over the real path (measured);
3. **half the memory** — folded storage vs LAPACK's factor workspace
   (``memory ratio`` column, counted exactly).

Wall-clock columns are also reported, with an honesty note: the custom
solver is pure NumPy with a Python-level row loop, so against *compiled*
LAPACK (scipy) its structural advantage is buried under interpreter
overhead — the measured-time shape assertion is therefore made against
the like-for-like Netlib-style reference (also interpreted), while the
flop/memory assertions carry the paper's actual mechanism.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.linalg

from repro.linalg.custom import FoldedLU
from repro.linalg.reference import netlib_banded_lu, netlib_banded_solve
from repro.linalg.structure import BandedSystemSpec, FoldedBanded

from conftest import emit, fmt_row
from repro.perfmodel import paper_data as P

N = 1024
NBATCH = 64  # wavenumber systems per call


def make_folded_batch(bandwidth: int, rng: np.random.Generator, nbatch: int = NBATCH):
    kl = ku = (bandwidth - 1) // 2
    spec = BandedSystemSpec(n=N, kl=kl, ku=ku, corner=kl)
    data = rng.standard_normal((nbatch, N, spec.window))
    mdiag = np.arange(N) - spec.jlo
    data[:, np.arange(N), mdiag] += 2.0 * bandwidth
    rhs = rng.standard_normal((nbatch, N)) + 1j * rng.standard_normal((nbatch, N))
    return spec, FoldedBanded(spec, data), rhs


def padded_ab_builder(spec: BandedSystemSpec):
    """Scatter indices: folded storage -> LAPACK diagonal-ordered padded band."""
    jlo = spec.jlo
    klp = int(max(np.arange(spec.n) - jlo))
    kup = int(max(jlo + spec.window - 1 - np.arange(spec.n)))
    i_idx = np.repeat(np.arange(spec.n), spec.window)
    j_idx = (jlo[:, None] + np.arange(spec.window)[None, :]).ravel()
    band_rows = kup + i_idx - j_idx

    def build(folded_system: np.ndarray, dtype=float) -> np.ndarray:
        ab = np.zeros((klp + kup + 1, spec.n), dtype=dtype)
        ab[band_rows, j_idx] = folded_system.ravel()
        return ab

    return klp, kup, build


def padded_band_flops(n: int, klp: int, kup: int) -> float:
    """Factor + solve multiply-adds of a general banded LU (no pivoting)."""
    return n * (2.0 * klp * (kup + 1) + 2.0 * (klp + kup) + 1.0)


def time_call(fn, repeats=2):
    fn()
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_table01(benchmark):
    rng = np.random.default_rng(0)
    rows = []
    for bw in P.TABLE1_BANDWIDTHS:
        spec, fb, rhs = make_folded_batch(bw, rng)
        klp, kup, build = padded_ab_builder(spec)
        dense0 = FoldedBanded(spec, fb.data[:1]).to_dense()[0]

        def netlib_one():
            ab = netlib_banded_lu(dense0.astype(complex), klp, kup)
            netlib_banded_solve(ab, klp, kup, rhs[0])

        def mkl_r():
            for b in range(NBATCH):
                ab = build(fb.data[b])
                stacked = np.column_stack([rhs[b].real, rhs[b].imag])
                scipy.linalg.solve_banded((klp, kup), ab, stacked)

        def mkl_c():
            for b in range(NBATCH):
                ab = build(fb.data[b], complex)
                scipy.linalg.solve_banded((klp, kup), ab, rhs[b])

        def custom():
            FoldedLU(fb).solve(rhs)

        t_netlib = time_call(netlib_one, repeats=1) * NBATCH
        t_r = time_call(mkl_r)
        t_c = time_call(mkl_c)
        t_custom = time_call(custom)

        # correctness guard before reporting performance
        x = FoldedLU(fb).solve(rhs)
        ref0 = scipy.linalg.solve_banded((klp, kup), build(fb.data[0], complex), rhs[0])
        assert np.abs(x[0] - ref0).max() < 1e-8

        lu = FoldedLU(fb)
        flop_ratio = padded_band_flops(N, klp, kup) / (lu.factor_flops() + lu.solve_flops())
        mem_ratio = spec.lapack_storage() / spec.folded_storage()
        rows.append(
            (bw, t_r / t_netlib, t_c / t_netlib, t_custom / t_netlib, flop_ratio, mem_ratio)
        )

    widths = (9, 8, 8, 8, 10, 10, 9, 9, 9)
    lines = [
        f"Table 1 — corner-banded solves, N={N}, batch={NBATCH}, "
        "times normalized by the Netlib-style path",
        fmt_row(
            ("bandwidth", "MKL_R", "MKL_C", "Custom", "flopratio", "memratio",
             "pap.R", "pap.C", "pap.Cu"),
            widths,
        ),
    ]
    for bw, r, c, cu, fr, mr in rows:
        p = P.TABLE1[bw]
        lines.append(
            fmt_row(
                (bw, f"{r:.3f}", f"{c:.3f}", f"{cu:.3f}", f"{fr:.2f}x", f"{mr:.2f}x",
                 p["MKL_R"], p["MKL_C"], p["Custom_Lonestar"]),
                widths,
            )
        )
    lines += [
        "flopratio = padded-general-band work / folded-structure work (the",
        "paper's eliminated flops); memratio = LAPACK factor storage / folded",
        "storage (the paper's halved memory).  Wall-clock shape holds against",
        "the interpreted Netlib path; against compiled LAPACK the pure-NumPy",
        "custom loop pays interpreter overhead the paper's Fortran did not.",
    ]
    emit("table01_banded_solver", "\n".join(lines))

    for bw, r, c, cu, fr, mr in rows:
        assert cu < 1.0, f"custom slower than the Netlib path at bandwidth {bw}"
        assert mr > 1.7, f"memory ratio collapsed at bandwidth {bw}"
        if bw >= 7:
            assert mr > 1.85
            assert fr > 2.5, f"flop ratio collapsed at bandwidth {bw}"

    # benchmark the production kernel: batched factor+solve at bandwidth 15
    spec, fb, rhs = make_folded_batch(15, rng)
    benchmark(lambda: FoldedLU(fb).solve(rhs))
