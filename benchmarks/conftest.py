"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_table*.py`` / ``bench_fig*.py`` module regenerates one of
the paper's tables or figures, printing a paper-vs-reproduction table
and writing it under ``benchmarks/results/``.  All benches use the
pytest-benchmark fixture on a representative kernel so the whole harness
runs under ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core import ChannelConfig, ChannelDNS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a report and persist it to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 74}\n{text}\n{'=' * 74}")


def fmt_row(cells, widths) -> str:
    return " ".join(str(c).rjust(w) for c, w in zip(cells, widths))


@pytest.fixture(scope="session")
def mini_dns():
    """A small turbulent channel run shared by the figure benches.

    Re_tau = 180 on a 32 x 33 x 32 grid: enough steps for transients to
    decay and statistics to take shape, small enough to keep the harness
    fast.
    """
    cfg = ChannelConfig(
        nx=32,
        ny=33,
        nz=32,
        re_tau=180.0,
        dt=4e-4,
        init_amplitude=2.5,
        init_modes=6,
        seed=7,
    )
    dns = ChannelDNS(cfg)
    dns.initialize()
    dns.run(900)  # breakdown of the initial perturbations into turbulence
    dns.run(600, sample_every=10)
    return dns
