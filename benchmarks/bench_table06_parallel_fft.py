"""Table 6 — strong scaling of the parallel FFT: custom kernel vs P3DFFT.

Two layers of reproduction:

* **at scale (model)**: the calibrated machine model regenerates all
  four Table 6 datasets (Mira small/large grids, Lonestar, Stampede),
  preserving the paper's shape — the custom kernel wins everywhere on
  Mira (~2x), while on the InfiniBand machines P3DFFT wins at small core
  counts and the custom kernel overtakes it at scale;
* **functionally (SimMPI)**: both kernels actually run on simulated
  ranks, verifying identical mathematics and measuring the communicated
  volume difference from the Nyquist mode and the 3x buffer memory.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid
from repro.mpi import run_spmd
from repro.pencil import P3DFFTBaseline, PencilTransforms
from repro.pencil.transpose import TransposeMethod
from repro.perfmodel import paper_data as P
from repro.perfmodel.fftbench import ParallelFFTModel
from repro.perfmodel.machine import LONESTAR, MIRA, STAMPEDE

from conftest import emit, fmt_row

DATASETS = [
    ("Mira, 2048x1024x1024", MIRA, (2048, 1024, 1024), P.TABLE6_MIRA_SMALL),
    ("Mira, 18432x12288x12288", MIRA, (18432, 12288, 12288), P.TABLE6_MIRA_LARGE),
    ("Lonestar, 768x768x768", LONESTAR, (768, 768, 768), P.TABLE6_LONESTAR),
    ("Stampede, 1024x1024x1024", STAMPEDE, (1024, 1024, 1024), P.TABLE6_STAMPEDE),
]


def test_table06(benchmark):
    widths = (9, 11, 11, 8, 11, 11, 8)
    lines = ["Table 6 — parallel FFT cycle: P3DFFT vs customized kernel"]
    for name, mach, grid, table in DATASETS:
        lines += [
            "",
            f"{name}:",
            fmt_row(
                ("cores", "p3 model", "cu model", "ratio", "p3 paper", "cu paper", "ratio"),
                widths,
            ),
        ]
        fm = ParallelFFTModel(mach, *grid)
        for cores, (p3, cu) in table.items():
            a = fm.cycle_time(cores, "p3dfft").total
            b = fm.cycle_time(cores, "custom").total
            lines.append(
                fmt_row(
                    (
                        f"{cores:,}",
                        f"{a:.3f}",
                        f"{b:.3f}",
                        f"{a / b:.2f}",
                        "N/A" if p3 is None else p3,
                        cu,
                        "-" if p3 is None else f"{p3 / cu:.2f}",
                    ),
                    widths,
                )
            )
    lines.append("")
    lines.append("shape: custom always wins on Mira (paper 2.1-2.6x); on the IB")
    lines.append("machines P3DFFT wins small and the custom kernel wins at scale.")
    emit("table06_parallel_fft", "\n".join(lines))

    # golden-shape assertions
    fm = ParallelFFTModel(MIRA, 2048, 1024, 1024)
    for cores in P.TABLE6_MIRA_SMALL:
        assert fm.cycle_time(cores, "p3dfft").total > 1.3 * fm.cycle_time(cores, "custom").total
    lone = ParallelFFTModel(LONESTAR, 768, 768, 768)
    assert lone.cycle_time(24, "p3dfft").total < lone.cycle_time(24, "custom").total
    assert lone.cycle_time(1536, "p3dfft").total > 1.3 * lone.cycle_time(1536, "custom").total

    # functional layer: both kernels on SimMPI produce identical physics
    nx, ny, nz = 32, 16, 32
    grid = ChannelGrid(nx, ny, nz)
    rng = np.random.default_rng(0)
    spec = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(
        grid.spectral_shape
    )
    spec[0, 0] = rng.standard_normal(ny)
    half = nz // 2
    for j in range(1, half):
        spec[0, grid.mz - j] = np.conj(spec[0, j])

    def functional(comm):
        cart = comm.cart_create((2, 2))
        custom = PencilTransforms(cart, nx, ny, nz, dealias=False)
        pipelined = PencilTransforms(
            cart, nx, ny, nz, dealias=False, method=TransposeMethod.PIPELINED
        )
        p3 = P3DFFTBaseline(cart, nx, ny, nz)
        d = custom.decomp
        loc = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
        err = np.abs(custom.fft_cycle(loc) - loc).max()
        # the overlapped path is the same mathematics, bit for bit
        np.testing.assert_array_equal(pipelined.fft_cycle(loc), custom.fft_cycle(loc))
        assert pipelined.overlap_counters.posts > 0
        return err, p3.work_buffer_elements() / p3.input_elements(), (
            custom.comm_a.stats.bytes + custom.comm_b.stats.bytes,
            p3.comm_a.stats.bytes + p3.comm_b.stats.bytes,
        )

    results = run_spmd(4, functional)
    assert max(r[0] for r in results) < 1e-12
    assert all(r[1] == 3.0 for r in results)  # the 3x buffers are real

    benchmark(lambda: run_spmd(4, functional))
