"""Calibration of the machine-model constants against the paper's tables.

Not a pytest bench — run directly::

    python benchmarks/calibration.py          # report residuals
    python benchmarks/calibration.py --fit    # re-run the least-squares fits

The fitted constants live in :mod:`repro.perfmodel.machine` and
:mod:`repro.perfmodel.fftbench`; this script reproduces them and reports
the per-entry residuals recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from dataclasses import replace

import numpy as np

from repro.perfmodel import paper_data as P
from repro.perfmodel.fftbench import ParallelFFTModel
from repro.perfmodel.machine import BLUE_WATERS, LONESTAR, MIRA, STAMPEDE
from repro.perfmodel.timestep import ParallelLayout, TimestepModel

TIMESTEP_CASES = [
    ("Mira (MPI)", MIRA, "mpi", "Mira"),
    ("Mira (Hybrid)", MIRA, "hybrid", "Mira"),
    ("Lonestar", LONESTAR, "mpi", "Lonestar"),
    ("Stampede", STAMPEDE, "mpi", "Stampede"),
    ("Blue Waters", BLUE_WATERS, "mpi", "Blue Waters"),
]

FFT_CASES = [
    ("Mira small", MIRA, (2048, 1024, 1024), P.TABLE6_MIRA_SMALL),
    ("Mira large", MIRA, (18432, 12288, 12288), P.TABLE6_MIRA_LARGE),
    ("Lonestar", LONESTAR, (768, 768, 768), P.TABLE6_LONESTAR),
    ("Stampede", STAMPEDE, (1024, 1024, 1024), P.TABLE6_STAMPEDE),
]


def timestep_residuals() -> dict[str, list[float]]:
    """Log-ratio residuals (model/paper) per section over Tables 9-10."""
    out: dict[str, list[float]] = {}
    for key, mach, mode, grid_key in TIMESTEP_CASES:
        errs: list[float] = []
        model = TimestepModel(mach, *P.TABLE7[grid_key])
        for cores, row in P.TABLE9[key].items():
            s = model.section_times(ParallelLayout(mach, cores, mode=mode))
            errs += [np.log(m / p) for m, p in zip(s.as_tuple()[:3], row[:3])]
        nxs, ny, nz = P.TABLE8[grid_key]
        for (cores, row), nx in zip(sorted(P.TABLE10[key].items()), nxs):
            m10 = TimestepModel(mach, nx, ny, nz)
            s = m10.section_times(ParallelLayout(mach, cores, mode=mode))
            errs += [np.log(m / p) for m, p in zip(s.as_tuple()[:3], row[:3])]
        out[key] = errs
    return out


def fft_residuals() -> dict[str, list[float]]:
    out: dict[str, list[float]] = {}
    for name, mach, grid, table in FFT_CASES:
        fm = ParallelFFTModel(mach, *grid)
        errs: list[float] = []
        for cores, (p3, cu) in table.items():
            errs.append(np.log(fm.cycle_time(cores, "custom").total / cu))
            if p3 is not None:
                errs.append(np.log(fm.cycle_time(cores, "p3dfft").total / p3))
        out[name] = errs
    return out


def report() -> None:
    print("Timestep model residuals (Tables 9-10), log(model/paper):")
    for key, errs in timestep_residuals().items():
        arr = np.array(errs)
        print(
            f"  {key:16s} rms={np.sqrt((arr**2).mean()):.3f}  "
            f"max|err|={np.abs(arr).max():.3f}  (x{np.exp(np.abs(arr).max()):.2f})"
        )
    print("\nParallel-FFT model residuals (Table 6):")
    for key, errs in fft_residuals().items():
        arr = np.array(errs)
        print(
            f"  {key:16s} rms={np.sqrt((arr**2).mean()):.3f}  "
            f"max|err|={np.abs(arr).max():.3f}  (x{np.exp(np.abs(arr).max()):.2f})"
        )


def refit() -> None:
    """Re-run the per-machine least-squares fits (documentation of method)."""
    from scipy.optimize import minimize

    for key, mach, mode, grid_key in TIMESTEP_CASES:
        if mode != "mpi" or mach.name == "Mira":
            continue

        def obj(x, mach=mach, key=key, grid_key=grid_key):
            bw, adv, fft, cc = np.exp(x[0]), np.exp(x[1]), np.exp(x[2]), max(x[3], 0.0)
            m2 = replace(
                mach,
                network=replace(mach.network, alltoall_bw=bw),
                advance_gflops_per_core=adv,
                fft_gflops_per_core=fft,
                cache_penalty_coeff=cc,
            )
            errs = []
            model = TimestepModel(m2, *P.TABLE7[grid_key])
            for cores, row in P.TABLE9[key].items():
                s = model.section_times(ParallelLayout(m2, cores, mode="mpi"))
                errs += [np.log(m / p) for m, p in zip(s.as_tuple()[:3], row[:3])]
            return float(np.mean(np.array(errs) ** 2))

        x0 = [
            np.log(mach.network.alltoall_bw),
            np.log(mach.advance_gflops_per_core),
            np.log(mach.fft_gflops_per_core),
            mach.cache_penalty_coeff,
        ]
        res = minimize(obj, x0, method="Nelder-Mead", options={"maxiter": 400})
        bw, adv, fft = np.exp(res.x[:3])
        print(
            f"{mach.name}: alltoall_bw={bw:.3e} advance={adv:.2f} GF/core "
            f"fft={fft:.2f} GF/core cache_coeff={max(res.x[3], 0):.3f} "
            f"(rms {np.sqrt(res.fun):.3f})"
        )


if __name__ == "__main__":
    if "--fit" in sys.argv:
        refit()
    else:
        report()
