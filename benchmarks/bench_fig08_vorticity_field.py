"""Fig. 8 — instantaneous spanwise vorticity near the wall.

The paper shows omega_z in an (x, z) plane close to the wall, where the
mean shear dU/dy dominates and near-wall streaks modulate it.  The bench
extracts the plane from the shared mini DNS, renders it, and asserts the
figure's physics: omega_z ~ -dU/dy < 0 on average near the lower wall,
with spanwise-correlated fluctuations superposed.
"""

from __future__ import annotations

import numpy as np

from repro.stats.fields import ascii_contour, spanwise_vorticity_plane

from conftest import emit


def test_fig08(benchmark, mini_dns):
    dns = mini_dns
    yplus = 12.0
    plane = spanwise_vorticity_plane(dns, yplus=yplus)

    art = ascii_contour(plane, width=72, height=16)
    mean = plane.mean()
    fluct = plane.std()

    # expected mean shear at this height (wall units): dU+/dy+ ~ 1 near wall
    u_tau = dns.wall_shear_velocity()
    nu = dns.config.nu

    lines = [
        f"Fig. 8 — spanwise vorticity omega_z(x, z) at y+ ~ {yplus:.0f}",
        "(x ->, z up; the mean shear sets the background level, streaks modulate it)",
        "",
        art,
        "",
        f"plane mean omega_z = {mean:.2f} (u_tau²/nu units x nu: mean shear "
        "dominates, negative on the lower wall)",
        f"fluctuation rms = {fluct:.2f} "
        f"({fluct / abs(mean):.0%} of the mean — the streak modulation)",
    ]
    emit("fig08_vorticity_field", "\n".join(lines))

    assert plane.shape == (dns.grid.nxq, dns.grid.nzq)
    assert mean < 0.0  # omega_z ~ -du/dy with du/dy > 0 at the lower wall
    assert abs(mean) > 0.3 * u_tau**2 / nu * nu  # of order the wall shear
    assert fluct > 0.0

    benchmark(lambda: spanwise_vorticity_plane(dns, yplus=yplus))
