"""Table 5 — global communication vs CommA x CommB placement.

The paper times one full transpose cycle (x->z->y then y->z->x) on 8192
Mira cores and 384 Lonestar cores for a sweep of process-grid splits,
finding the code fastest when CommB stays inside a node.  The machine
model regenerates both sweeps; a functional sweep on SimMPI ranks runs
the *real* transpose cycle for each split to confirm the machinery (the
simulated wire carries no locality penalty, so only the model shows the
paper's ordering).
"""

from __future__ import annotations

import numpy as np

from repro.mpi import run_spmd
from repro.mpi.topology import comm_grid
from repro.pencil import PencilTransforms
from repro.perfmodel import paper_data as P
from repro.perfmodel.machine import LONESTAR, MIRA
from repro.perfmodel.timestep import TimestepModel

from conftest import emit, fmt_row


def test_table05(benchmark):
    mira_model = TimestepModel(MIRA, 2048, 1024, 1024)
    mira_sweep = mira_model.comm_grid_sweep(8192, list(P.TABLE5_MIRA.keys()))
    lone_model = TimestepModel(LONESTAR, 1536, 384, 1024)
    lone_sweep = lone_model.comm_grid_sweep(384, list(P.TABLE5_LONESTAR.keys()))

    widths = (16, 12, 12, 12, 10)
    lines = [
        "Table 5 — transpose cycle vs (CommA x CommB) placement",
        "",
        "Mira, 8192 cores, grid 2048 x 1024 x 1024:",
        fmt_row(("CommA x CommB", "model (s)", "model norm", "paper (s)", "paper nrm"), widths),
    ]
    m0 = mira_sweep[(512, 16)]
    p0 = P.TABLE5_MIRA[(512, 16)]
    for key, paper in P.TABLE5_MIRA.items():
        t = mira_sweep[key]
        lines.append(
            fmt_row(
                (f"{key[0]} x {key[1]}", f"{t:.3f}", f"{t / m0:.2f}", paper,
                 f"{paper / p0:.2f}"),
                widths,
            )
        )
    lines += ["", "Lonestar, 384 cores, grid 1536 x 384 x 1024:",
              fmt_row(("CommA x CommB", "model (s)", "model norm", "paper (s)", "paper nrm"),
                      widths)]
    l0 = lone_sweep[(32, 12)]
    q0 = P.TABLE5_LONESTAR[(32, 12)]
    for key, paper in P.TABLE5_LONESTAR.items():
        t = lone_sweep[key]
        lines.append(
            fmt_row(
                (f"{key[0]} x {key[1]}", f"{t:.3f}", f"{t / l0:.2f}", paper,
                 f"{paper / q0:.2f}"),
                widths,
            )
        )
    lines.append("node-local CommB wins on both machines, as the paper found; the")
    lines.append("model's normalized spread is compressed vs the measured 1.6x/1.3x.")
    emit("table05_comm_pattern", "\n".join(lines))

    # shape assertions: node-local CommB is fastest and cost is monotone
    # in CommB size across the node boundary
    mira_by_pb = [mira_sweep[k] for k in sorted(P.TABLE5_MIRA, key=lambda k: k[1])]
    assert mira_by_pb[0] == min(mira_by_pb)
    assert mira_by_pb[-1] > 1.3 * mira_by_pb[0]
    assert lone_sweep[(32, 12)] == min(lone_sweep.values())

    # locality bookkeeping matches the sweep's winner
    assert comm_grid(8192, 512, 16).comm_b_is_node_local(MIRA.cores_per_node)
    assert not comm_grid(8192, 16, 512).comm_b_is_node_local(MIRA.cores_per_node)

    # functional transpose cycle on SimMPI for one split (machinery check
    # + the kernel this bench times)
    nx, ny, nz = 32, 16, 32

    def cycle(comm):
        cart = comm.cart_create((2, 2))
        tr = PencilTransforms(cart, nx, ny, nz, dealias=False)
        local = np.zeros(tr.decomp.y_pencil_shape, complex)
        out = tr.fft_cycle(local)
        return out.shape == local.shape

    assert all(run_spmd(4, cycle))
    benchmark(lambda: run_spmd(4, cycle))
