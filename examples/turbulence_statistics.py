"""Turbulence statistics of a mini channel DNS vs the law of the wall.

Reproduces the *content* of the paper's Figs. 5-6 at laptop scale: run a
Re_tau = 180 channel long enough to accumulate statistics, then print the
mean-velocity profile in wall units against the viscous-sublayer and
Reichardt references, the velocity variances, and the Reynolds shear
stress with its total-stress balance check.  The paper's Re_tau = 5200
reference curves are printed alongside to show the Reynolds-number trend
(scale separation growing with Re_tau).

Run:  python examples/turbulence_statistics.py [nsteps]
"""

import sys
import time

import numpy as np

from repro import ChannelConfig, ChannelDNS
from repro.stats.lawofwall import reichardt, variance_reference, viscous_sublayer


def main(nsteps: int = 400) -> None:
    config = ChannelConfig(
        nx=32,
        ny=33,
        nz=32,
        re_tau=180.0,
        dt=2.5e-4,
        init_amplitude=0.6,
        init_modes=5,
        seed=7,
    )
    dns = ChannelDNS(config)
    dns.initialize()

    # let transients die before sampling
    warmup = nsteps // 4
    print(f"warming up {warmup} steps ...")
    t0 = time.perf_counter()
    dns.run(warmup)
    print(f"sampling over {nsteps - warmup} steps ...")
    dns.run(nsteps - warmup, sample_every=5)
    print(f"done in {time.perf_counter() - t0:.1f} s; {dns.statistics.nsamples} samples\n")

    stats = dns.statistics
    nu = config.nu
    u_tau = stats.friction_velocity(nu)
    re_tau_actual = u_tau / nu
    print(f"measured u_tau = {u_tau:.4f}, actual Re_tau = {re_tau_actual:.1f}\n")

    yplus, uplus = stats.wall_units(nu)
    print("=== Fig. 5: mean velocity profile (wall units) ===")
    print(f"{'y+':>8} {'U+ (DNS)':>9} {'y+ (visc)':>10} {'Reichardt':>10}")
    for i in range(1, len(yplus), max(1, len(yplus) // 12)):
        print(
            f"{yplus[i]:8.2f} {uplus[i]:9.2f} {viscous_sublayer(yplus[i]):10.2f} "
            f"{reichardt(np.array([yplus[i]]))[0]:10.2f}"
        )

    print("\n=== Fig. 6: variances and Reynolds shear stress (wall units) ===")
    y = dns.grid.y
    half = y <= 0.0
    yp = (1.0 + y[half]) * u_tau / nu
    rows = {
        "uu": stats.profile("uu")[half] / u_tau**2,
        "vv": stats.profile("vv")[half] / u_tau**2,
        "ww": stats.profile("ww")[half] / u_tau**2,
        "-uv": stats.reynolds_stress()[half] / u_tau**2,
    }
    ref5200 = {c: variance_reference(yp, 5200.0, c) for c in ("uu", "vv", "ww")}
    print(f"{'y+':>8} {'<uu>+':>8} {'<vv>+':>8} {'<ww>+':>8} {'-<uv>+':>8}   (5200 ref uu)")
    for i in range(1, len(yp), max(1, len(yp) // 12)):
        print(
            f"{yp[i]:8.2f} {rows['uu'][i]:8.3f} {rows['vv'][i]:8.3f} "
            f"{rows['ww'][i]:8.3f} {rows['-uv'][i]:8.3f}   ({ref5200['uu'][i]:6.2f})"
        )

    peak_i = int(np.argmax(rows["uu"]))
    print(
        f"\n<uu>+ peak: {rows['uu'][peak_i]:.2f} at y+ = {yp[peak_i]:.1f} "
        "(the near-wall streak signature; paper/reference peak near y+ ~ 15)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
