"""Pencil-decomposed parallel FFT on simulated MPI ranks.

Demonstrates the paper's §2.2-§2.3 machinery end to end on the SimMPI
substrate: a y-pencil spectral field is carried through transposes and
transforms to the physical grid and back, bit-identically to the serial
path; the FFTW-style transpose planner measures alltoall vs pairwise
exchange; and the customized (Nyquist-free, 1x-buffer) kernel is timed
against the P3DFFT-like baseline.

Run:  python examples/parallel_fft_demo.py
"""

import time

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.transforms import to_quadrature_grid
from repro.mpi import run_spmd
from repro.mpi.topology import ascii_pattern, comm_grid
from repro.pencil import P3DFFTBaseline, PencilTransforms

NX, NY, NZ = 64, 48, 64
PA, PB = 2, 2


def make_field(grid: ChannelGrid, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    spec = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(
        grid.spectral_shape
    )
    spec[0, 0] = rng.standard_normal(grid.ny)
    half = grid.nz // 2
    for j in range(1, half):
        spec[0, grid.mz - j] = np.conj(spec[0, j])
    return spec


def worker(comm, spec, phys_ref):
    cart = comm.cart_create((PA, PB))
    tr = PencilTransforms(cart, NX, NY, NZ, dealias=True)
    d = tr.decomp
    local = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])

    choices = tr.plan()
    phys = tr.to_physical(local)
    err_fwd = np.abs(phys - phys_ref[:, d.zq_slice, d.y_slice]).max()
    err_back = np.abs(tr.from_physical(phys) - local).max()

    # timing: custom vs P3DFFT-style cycles (no dealiasing, per Table 6)
    custom = PencilTransforms(cart, NX, NY, NZ, dealias=False)
    p3 = P3DFFTBaseline(cart, NX, NY, NZ)
    dc = custom.decomp
    loc_c = np.ascontiguousarray(spec[dc.x_slice, dc.z_spec_slice, :])
    full = np.zeros((NX // 2 + 1, NZ, NY), complex)
    halfz = NZ // 2
    full[: spec.shape[0], :halfz] = spec[:, :halfz]
    full[: spec.shape[0], halfz + 1 :] = spec[:, halfz:]
    d3 = p3.decomp
    loc_p = np.ascontiguousarray(full[d3.x_slice, d3.z_spec_slice, :])

    def cycle_time(kernel, local_block, repeats=3):
        kernel.fft_cycle(local_block)  # warm-up
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(repeats):
            kernel.fft_cycle(local_block)
        comm.barrier()
        return (time.perf_counter() - t0) / repeats

    t_custom = cycle_time(custom, loc_c)
    t_p3 = cycle_time(p3, loc_p)
    stats = (
        custom.comm_a.stats.messages + custom.comm_b.stats.messages,
        custom.comm_a.stats.bytes + custom.comm_b.stats.bytes,
        p3.comm_a.stats.messages + p3.comm_b.stats.messages,
        p3.comm_a.stats.bytes + p3.comm_b.stats.bytes,
    )
    return err_fwd, err_back, choices, t_custom, t_p3, stats


def main() -> None:
    grid = ChannelGrid(NX, NY, NZ)
    spec = make_field(grid)
    phys_ref = to_quadrature_grid(spec, grid)

    print(f"grid {NX} x {NY} x {NZ}, process grid {PA} x {PB} "
          f"({PA * PB} simulated ranks)\n")

    print("CommA/CommB pattern (Fig. 4 style, 16 ranks shown):")
    print(ascii_pattern(comm_grid(PA * PB, PA, PB)), "\n")

    results = run_spmd(PA * PB, worker, spec, phys_ref)
    err_fwd = max(r[0] for r in results)
    err_back = max(r[1] for r in results)
    print(f"forward transform max error vs serial reference: {err_fwd:.2e}")
    print(f"round-trip max error: {err_back:.2e}")
    print(f"planner choices: {results[0][2]}")

    t_custom = max(r[3] for r in results)
    t_p3 = max(r[4] for r in results)
    print("\nFFT-cycle timing on SimMPI (Table 6 protocol, functional):")
    print(f"  customized kernel : {t_custom * 1e3:8.2f} ms/cycle")
    print(f"  P3DFFT baseline   : {t_p3 * 1e3:8.2f} ms/cycle "
          f"(keeps Nyquist, 3x buffers, no planning)")
    print(f"  ratio             : {t_p3 / t_custom:.2f}x")
    print("  (SimMPI has no real network, so the paper's 2x+ communication")
    print("   advantage does not appear here; see examples/scaling_study.py")
    print("   for the at-scale comparison through the machine model.)")
    cm, cb, pm, pb_ = results[0][5]
    print("\ntranspose traffic per cycle (sub-communicators, all ranks):")
    print(f"  custom : {cm:5d} messages, {cb / 1e6:7.2f} MB")
    print(f"  p3dfft : {pm:5d} messages, {pb_ / 1e6:7.2f} MB "
          f"({pb_ / cb:.3f}x volume — the Nyquist modes ride along)")


if __name__ == "__main__":
    main()
