"""Regenerate the paper's scaling story from the calibrated machine models.

Prints, for each of the four benchmark systems, the modelled full-RK3
timestep broken into the paper's Transpose / FFT / N-S advance sections
(Tables 9-10 protocol), the MPI-vs-hybrid comparison on Mira (Table 11),
the CommA x CommB placement sweep (Table 5), and the §5.3 aggregate flop
rate headline.

Run:  python examples/scaling_study.py
"""

from repro.perfmodel import paper_data as P
from repro.perfmodel.machine import BLUE_WATERS, LONESTAR, MIRA, STAMPEDE
from repro.perfmodel.timestep import ParallelLayout, TimestepModel


def print_scaling(name, machine, grid, cores_list, mode="mpi"):
    model = TimestepModel(machine, *grid)
    print(f"--- {name} ({mode}), grid {grid[0]} x {grid[1]} x {grid[2]}")
    print(f"{'cores':>9} {'transpose':>10} {'fft':>8} {'advance':>8} {'total':>8} {'eff':>6}")
    base = None
    for cores in cores_list:
        s = model.section_times(ParallelLayout(machine, cores, mode=mode))
        if base is None:
            base = (cores, s.total)
        eff = base[1] * base[0] / (s.total * cores)
        print(
            f"{cores:>9,} {s.transpose:10.2f} {s.fft:8.2f} {s.advance:8.2f} "
            f"{s.total:8.2f} {eff:5.0%}"
        )
    print()


def main() -> None:
    print("=" * 68)
    print("Strong scaling of one RK3 timestep (modelled; paper Table 9)")
    print("=" * 68)
    print_scaling("Mira MPI", MIRA, P.TABLE7["Mira"], sorted(P.TABLE9["Mira (MPI)"]))
    print_scaling(
        "Mira Hybrid", MIRA, P.TABLE7["Mira"], sorted(P.TABLE9["Mira (Hybrid)"]), mode="hybrid"
    )
    print_scaling("Lonestar", LONESTAR, P.TABLE7["Lonestar"], sorted(P.TABLE9["Lonestar"]))
    print_scaling("Stampede", STAMPEDE, P.TABLE7["Stampede"], sorted(P.TABLE9["Stampede"]))
    print_scaling(
        "Blue Waters", BLUE_WATERS, P.TABLE7["Blue Waters"], sorted(P.TABLE9["Blue Waters"])
    )
    print("Note the Blue Waters transpose collapse — the 3-D Gemini torus")
    print("saturates where Mira's 5-D torus keeps scaling (paper §5.1).\n")

    print("=" * 68)
    print("MPI-everywhere vs hybrid MPI+OpenMP on Mira (paper Table 11)")
    print("=" * 68)
    model = TimestepModel(MIRA, *P.TABLE7["Mira"])
    print(f"{'cores':>9} {'MPI (s)':>9} {'Hybrid (s)':>11} {'ratio':>6}")
    for cores in sorted(P.TABLE11_STRONG):
        mpi = model.section_times(ParallelLayout(MIRA, cores, mode="mpi")).total
        hyb = model.section_times(ParallelLayout(MIRA, cores, mode="hybrid")).total
        print(f"{cores:>9,} {mpi:9.2f} {hyb:11.2f} {mpi / hyb:6.2f}")
    print("Hybrid wins until the torus saturates at the largest core count.\n")

    print("=" * 68)
    print("CommA x CommB placement sweep on Mira, 8192 cores (paper Table 5)")
    print("=" * 68)
    sweep_model = TimestepModel(MIRA, 2048, 1024, 1024)
    sweep = sweep_model.comm_grid_sweep(8192, list(P.TABLE5_MIRA.keys()))
    print(f"{'CommA x CommB':>14} {'cycle (s)':>10}  node-local CommB?")
    for (pa, pb), t in sweep.items():
        local = "yes" if pb <= MIRA.cores_per_node else "no"
        print(f"{pa:>6} x {pb:<5} {t:10.3f}  {local}")
    print("Keeping CommB inside the node is fastest, as the paper found.\n")

    print("=" * 68)
    print("Aggregate rate at 786K cores (paper §5.3 headline)")
    print("=" * 68)
    agg = model.aggregate_flops(ParallelLayout(MIRA, 786432, mode="hybrid"))
    print(f"  modelled aggregate : {agg['total_flops'] / 1e12:6.0f} TF "
          f"({agg['peak_fraction']:.1%} of peak)   [paper: 271 TF, 2.7%]")
    print(f"  on-node only       : {agg['on_node_flops'] / 1e12:6.0f} TF   [paper: 906 TF]")


if __name__ == "__main__":
    main()
