"""Distributed channel DNS on the pencil decomposition (SimMPI ranks).

Runs the same physical problem twice — once with the serial driver, once
distributed over a 2 x 2 process grid — and verifies the trajectories
agree to round-off, then reports the per-rank section timers (the
Transpose / FFT / N-S advance breakdown of the paper's Tables 9-10).

Run:  python examples/distributed_dns.py
"""

import time

import numpy as np

from repro import ChannelConfig, ChannelDNS, DistributedChannelDNS, run_spmd

CFG = ChannelConfig(nx=32, ny=33, nz=32, re_tau=180.0, dt=2e-4, init_amplitude=0.4, seed=3)
NSTEPS = 10
PA, PB = 2, 2


def worker(comm):
    dns = DistributedChannelDNS(comm, CFG, pa=PA, pb=PB)
    dns.initialize()
    t0 = time.perf_counter()
    dns.run(NSTEPS)
    elapsed = time.perf_counter() - t0
    full = dns.gather_state()
    return full, dns.divergence_norm(), dict(dns.timers.elapsed), elapsed


def main() -> None:
    print(f"serial reference: {NSTEPS} steps of {CFG.nx} x {CFG.ny} x {CFG.nz} ...")
    serial = ChannelDNS(CFG)
    serial.initialize()
    t0 = time.perf_counter()
    serial.run(NSTEPS)
    t_serial = time.perf_counter() - t0
    print(f"  {t_serial:.2f} s\n")

    print(f"distributed run on {PA} x {PB} simulated MPI ranks ...")
    results = run_spmd(PA * PB, worker)
    full, div, timers, t_par = results[0]

    print(f"  {t_par:.2f} s (threads share one interpreter — no speedup expected)\n")
    print("parity with the serial trajectory:")
    print(f"  max |v - v_serial|        = {np.abs(full.v - serial.state.v).max():.3e}")
    print(f"  max |omega - omega_serial| = "
          f"{np.abs(full.omega_y - serial.state.omega_y).max():.3e}")
    print(f"  max |U00 - U00_serial|    = {np.abs(full.u00 - serial.state.u00).max():.3e}")
    print(f"  global divergence          = {div:.3e}\n")

    total = sum(timers.values())
    print("rank-0 section breakdown (paper Tables 9-10 categories):")
    for name in ("transpose", "fft", "ns_advance"):
        t = timers.get(name, 0.0)
        print(f"  {name:12s} {t:8.3f} s  ({t / total:5.1%})")


if __name__ == "__main__":
    main()
