"""A production-style DNS workflow: grid sequencing, control, checkpoints,
supervised recovery, and run telemetry.

Mirrors how campaigns like the paper's Re_tau = 5200 run are actually
operated (at laptop scale):

1. develop turbulence on a coarse grid with an adaptive time step,
2. spectrally regrid the state onto a finer production grid,
3. continue with checkpointing and a mass-flux hold,
4. interrupt-and-restart, verifying exact continuation,
5. survive a mid-run blow-up under the watchdog-supervised harness —
   the health monitor detects the NaN, the supervisor rolls back to the
   last verified snapshot and retries, and the recovered trajectory is
   bit-exact; the whole episode (failure, rollback, dt policy) lands in
   a telemetry stream alongside per-step timings (docs/observability.md),
6. estimate what the *paper's* campaign costs through the machine model.

Run:  python examples/production_workflow.py
"""

import tempfile
import pathlib

import numpy as np

from repro import ChannelConfig, ChannelDNS
from repro.core.checkpoint import CheckpointRotation, load_checkpoint, save_checkpoint
from repro.core.control import CFLController, MassFluxController, current_bulk_velocity
from repro.core.health import HealthMonitor
from repro.core.supervisor import RunSupervisor, SupervisorPolicy
from repro.core.regrid import regrid_state
from repro.perfmodel.production import (
    PAPER_CORE_HOURS,
    plan_campaign,
)
from repro.telemetry import read_stream


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_campaign_"))

    # -- stage 1: coarse development run with adaptive dt ----------------
    coarse_cfg = ChannelConfig(
        nx=16, ny=25, nz=16, re_tau=180.0, dt=1e-4,
        init_amplitude=1.5, init_modes=5, seed=11,
    )
    coarse = ChannelDNS(coarse_cfg)
    coarse.initialize()
    cfl = CFLController(target=0.6, low=0.35, high=0.9)
    print("stage 1: coarse development (adaptive dt)")
    coarse.run(60, controllers=[cfl])
    print(f"  dt settled at {coarse.stepper.dt:.2e} "
          f"(CFL = {coarse.cfl_number():.2f}, {cfl.adjustments} adjustments)")
    print(f"  KE = {coarse.kinetic_energy():.2f}, div = {coarse.divergence_norm():.1e}\n")

    # -- stage 2: spectral regrid to the production grid -----------------
    prod_cfg = ChannelConfig(nx=32, ny=33, nz=32, re_tau=180.0, dt=coarse.stepper.dt)
    prod = ChannelDNS(prod_cfg)
    prod.initialize(regrid_state(coarse.state, coarse.grid, prod.grid))
    print("stage 2: regrid 16x25x16 -> 32x33x32 (exact on shared modes)")
    print(f"  post-regrid divergence: {prod.divergence_norm():.1e}\n")

    # -- stage 3: production segment with mass-flux hold + checkpoints ---
    q_target = current_bulk_velocity(prod)
    flux = MassFluxController(target=q_target, gain=5.0)
    ckpt = workdir / "segment1.npz"
    print("stage 3: production segment (mass flux held, checkpoint at the end)")
    prod.run(20, controllers=[flux])
    save_checkpoint(prod, ckpt)
    print(f"  bulk velocity {current_bulk_velocity(prod):.3f} "
          f"(target {q_target:.3f}); checkpoint -> {ckpt.name}\n")

    # -- stage 4: interrupt and restart -----------------------------------
    print("stage 4: restart from the checkpoint and verify exact continuation")
    straight = ChannelDNS(prod_cfg)
    straight.initialize(prod.state.copy())
    # the flux controller drifted the forcing away from the config value;
    # the checkpoint carries it, so the comparison run must too
    straight.stepper.forcing = prod.stepper.forcing
    straight.run(5)

    resumed = load_checkpoint(ckpt)
    resumed.run(5)
    err = float(np.abs(resumed.state.v - straight.state.v).max())
    print(f"  |restarted - uninterrupted| = {err:.2e} (bit-exact)\n")

    # -- stage 5: survive a blow-up under supervision ---------------------
    print("stage 5: supervised recovery from an injected mid-run blow-up")
    reference = ChannelDNS(prod_cfg)
    reference.initialize(resumed.state.copy())
    reference.run(12)

    supervised = ChannelDNS(prod_cfg, telemetry=workdir / "telemetry")
    supervised.initialize(resumed.state.copy())
    sup = RunSupervisor(
        supervised,
        CheckpointRotation(workdir / "rotation", keep=3),
        monitor=HealthMonitor(),
        policy=SupervisorPolicy(checkpoint_every=5),
    )

    crashed = []

    def cosmic_ray(dns):  # a one-shot NaN, as a node fault would leave
        if dns.step_count == supervised_start + 8 and not crashed:
            crashed.append(dns.step_count)
            dns.state.v[0, 0, 0] = np.nan

    supervised_start = supervised.step_count
    final = sup.run(12, callback=cosmic_ray)
    final.finalize_telemetry()
    err = float(np.abs(final.state.v - reference.state.v).max())
    print(f"  injected NaN at step +8; {sup.report()}")
    print(f"  |recovered - uninterrupted| = {err:.2e} (bit-exact)")
    events = [r["kind"] for r in read_stream(workdir / "telemetry" / "telemetry.jsonl")
              if r["type"] == "event"]
    print(f"  telemetry stream recorded the episode: {events}")
    print(f"  (breakdown: python -m repro.telemetry.report {workdir}/telemetry/telemetry.jsonl)\n")

    # -- stage 6: price the real campaign ---------------------------------
    print("stage 6: the paper's production campaign through the machine model")
    est = plan_campaign()
    print(f"  grid 10240 x 1536 x 7680 on 524,288 Mira cores (hybrid)")
    print(f"  modelled {est.seconds_per_step:.2f} s/step x {est.total_steps:,} steps")
    print(f"  -> {est.core_hours / 1e6:.0f} M core-hours over {est.wall_days:.0f} days")
    print(f"     (paper: ~{PAPER_CORE_HOURS / 1e6:.0f} M core-hours)")


if __name__ == "__main__":
    main()
