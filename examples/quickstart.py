"""Quickstart: a small turbulent channel DNS in a few lines.

Runs a laptop-scale version of the paper's production simulation —
same equations (Kim–Moin–Moser), same discretization (Fourier x/z,
7th-degree B-spline collocation in y), same RK3 IMEX time advance —
on a 32 x 33 x 32 grid at Re_tau = 180, and prints the solver's
built-in diagnostics.

Run:  python examples/quickstart.py
"""

import time

from repro import ChannelConfig, ChannelDNS


def main() -> None:
    config = ChannelConfig(
        nx=32,
        ny=33,
        nz=32,
        re_tau=180.0,
        dt=2e-4,
        init_amplitude=0.4,
        seed=1,
    )
    dns = ChannelDNS(config)
    dns.initialize()

    print(f"grid: {dns.grid}")
    print(f"nu = {config.nu:.5f} (Re_tau = {config.re_tau})")
    print(f"initial divergence: {dns.divergence_norm():.3e}")
    print(f"initial kinetic energy: {dns.kinetic_energy():.4f}\n")

    nsteps = 50
    t0 = time.perf_counter()
    for chunk in range(5):
        dns.run(nsteps // 5, sample_every=2)
        print(
            f"step {dns.step_count:4d}  t = {dns.state.time:.4f}  "
            f"KE = {dns.kinetic_energy():8.4f}  CFL = {dns.cfl_number():.3f}  "
            f"u_tau = {dns.wall_shear_velocity():.4f}  "
            f"div = {dns.divergence_norm():.2e}"
        )
    elapsed = time.perf_counter() - t0
    print(f"\n{nsteps} steps in {elapsed:.2f} s ({elapsed / nsteps * 1e3:.1f} ms/step)")

    stats = dns.statistics
    print(f"\nstatistics from {stats.nsamples} samples:")
    print(f"  bulk velocity      : {stats.bulk_velocity():.3f}")
    print(f"  friction velocity  : {stats.friction_velocity(config.nu):.3f}")
    yplus, uplus = stats.wall_units(config.nu)
    print("  mean profile (wall units):")
    for i in range(0, len(yplus), max(1, len(yplus) // 8)):
        print(f"    y+ = {yplus[i]:7.2f}   U+ = {uplus[i]:6.2f}")


if __name__ == "__main__":
    main()
