#!/usr/bin/env python
"""Scheduler smoke: run a small multi-job scenario, validate every
manager artefact, and optionally sweep a short scheduler chaos soak.

Runs two concurrent jobs (one of them losing a rank to an injected
fault) on a shared 5-rank pool through the
:class:`~repro.core.jobs.JobManager`, then checks the acceptance
criteria of the multi-job scheduler end to end:

* the manager-level ``events.jsonl`` parses, every record validates
  against schema v4, and every event carries its ``job`` tag;
* the lifecycle kinds are all present (``submitted`` / ``placed`` /
  ``completed``) plus the fault path (``quarantine`` / ``probe``);
* ``manifest.json`` carries the pool census and the submitted-job table;
* each placement of each job left its own nested supervised-run stream
  under ``job-<name>/placement-NN/``;
* both jobs finish healthy and land bit-for-bit on their own serial
  oracle trajectories (the fault-isolation contract).

With ``--seeds N`` it additionally runs an N-seed
:func:`~repro.chaos.run_scheduler_soak` sweep (2-3 concurrent jobs per
seed, randomized faults, preemptors, probed and sticky quarantines)
under a wall-clock guard and requires zero hangs and zero isolation
breaks.  CI uploads the produced directory, so every run leaves the
manager event streams behind as an inspectable artifact.

Usage:
    PYTHONPATH=src python scripts/scheduler_smoke.py [--out DIR]
        [--seeds N] [--timeout SECONDS]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.core import ChannelConfig, ChannelDNS  # noqa: E402
from repro.core.jobs import JobManager, JobSpec  # noqa: E402
from repro.mpi.pool import RankPool  # noqa: E402
from repro.mpi.simmpi import FaultEvent, FaultPlan  # noqa: E402
from repro.telemetry import read_manifest, read_stream  # noqa: E402

CFG_A = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)


def _serial(config, n_steps):
    dns = ChannelDNS(config)
    dns.initialize()
    dns.run(n_steps)
    return dns.state


def _bit_exact(full, ref) -> bool:
    return (
        all(
            np.array_equal(a, b)
            for a, b in (
                (full.v, ref.v),
                (full.omega_y, ref.omega_y),
                (full.u00, ref.u00),
                (full.w00, ref.w00),
            )
        )
        and full.time == ref.time
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="runs/scheduler-smoke",
                    help="manager telemetry directory (default: runs/scheduler-smoke)")
    ap.add_argument("--seeds", type=int, default=0,
                    help="extra scheduler-soak seeds to sweep (default: 0)")
    ap.add_argument("--timeout", type=float, default=300.0,
                    help="zero-hang wall-clock guard in seconds (default: 300)")
    args = ap.parse_args(argv)

    import dataclasses

    out = pathlib.Path(args.out)
    cfg_b = dataclasses.replace(CFG_A, seed=21)
    pool = RankPool(5)
    mgr = JobManager(pool, directory=out / "manager", prober=lambda _r: True)
    plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
    mgr.submit(JobSpec("alpha", CFG_A, n_steps=10, ranks=4, min_ranks=2,
                       checkpoint_every=5, fault_plans=[plan]))
    mgr.submit(JobSpec("beta", cfg_b, n_steps=6, ranks=2, min_ranks=2,
                       checkpoint_every=3))
    records = mgr.run(timeout=args.timeout)

    failures: list[str] = []
    if mgr.timed_out:
        failures.append(f"manager hit the {args.timeout}s zero-hang guard")
    if not plan.triggered:
        failures.append("the planned rank kill never fired")

    # -- manager stream: schema v4, job tags, lifecycle + fault kinds ----
    stream = out / "manager" / "events.jsonl"
    stream_records = list(read_stream(stream))  # parses AND validates
    events = [r for r in stream_records if r["type"] == "event"]
    untagged = [e for e in events if e.get("job") not in ("alpha", "beta")]
    if untagged:
        failures.append(f"{len(untagged)} manager events carry no valid job tag")
    kinds = {e["kind"] for e in events}
    for kind in ("submitted", "placed", "completed", "quarantine", "probe"):
        if kind not in kinds:
            failures.append(f"manager stream is missing a {kind!r} event")

    # -- manifest: pool census + job table -------------------------------
    manifest = read_manifest(out / "manager")
    pool_block = manifest.get("pool") or {}
    if pool_block.get("size") != 5:
        failures.append("manifest pool census does not record the pool size")
    if set(pool_block.get("jobs", {})) != {"alpha", "beta"}:
        failures.append("manifest pool block does not list the submitted jobs")

    # -- per-job streams nest under the manager directory ----------------
    for name, rec in records.items():
        for placement in range(rec.placements):
            pdir = out / "manager" / f"job-{name}" / f"placement-{placement:02d}"
            pstream = pdir / "events.jsonl"
            if not pstream.exists():
                failures.append(f"missing per-job stream {pstream}")
                continue
            list(read_stream(pstream))  # validates the nested stream too

    # -- outcomes + the bit-for-bit isolation contract -------------------
    for name, cfg, steps in (("alpha", CFG_A, 10), ("beta", cfg_b, 6)):
        rec = records[name]
        if rec.state != "completed":
            failures.append(f"job {name} ended {rec.state}: {rec.error}")
            continue
        if not _bit_exact(rec.result, _serial(cfg, steps)):
            failures.append(f"job {name} diverged from its serial oracle")
    if records["alpha"].outcome != "grown":
        failures.append(
            f"alpha should shrink then grow back (got {records['alpha'].outcome!r})"
        )

    for name, rec in sorted(records.items()):
        print(f"job {name:<6} {rec.state:<9} outcome={rec.outcome} "
              f"placements={rec.placements} shrinks={rec.counters.shrinks} "
              f"grows={rec.counters.grows} retries={rec.retries}")
    print(f"manager stream: {len(events)} tagged events, kinds={sorted(kinds)}")

    # -- optional short soak sweep ---------------------------------------
    if args.seeds > 0:
        from repro.chaos import run_scheduler_soak, scheduler_soak_summary

        results = run_scheduler_soak(
            range(args.seeds), out / "soak", timeout=args.timeout, verbose=True
        )
        summary = scheduler_soak_summary(results)
        print(f"soak summary: {summary}")
        if summary["hangs"]:
            failures.append(f"{summary['hangs']} soak scenario(s) hung")
        if summary["isolation_breaks"]:
            failures.append(
                f"{summary['isolation_breaks']} soak scenario(s) broke isolation"
            )
        if not summary["all_ok"]:
            bad = [(r.seed, r.outcomes, r.detail) for r in results if not r.ok]
            failures.append(f"unhealthy soak outcomes: {bad}")

    print()
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: scheduler events + manifest + nested streams valid, "
          f"jobs bit-exact on their oracles -> {out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
