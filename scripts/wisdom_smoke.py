#!/usr/bin/env python
"""Cold-vs-warm wisdom smoke: the second run must not re-time anything.

Runs the three self-tuning sites against one wisdom store — the
MEASURE-mode FFT planner (the non-contiguous-axis 1-D stages a 32^3
pencil run plans), the transpose method selection of a 2x2 pencil grid,
and the solve-engine panel-height selection — and records every decision
plus the planner wall time into a state file.

    python scripts/wisdom_smoke.py --wisdom w.json --state s.json --phase cold
    python scripts/wisdom_smoke.py --wisdom w.json --state s.json --phase warm

The cold phase asserts the sites really measured (MEASURE_STATS > 0)
and seeds the store.  The warm phase asserts the acceptance contract of
the wisdom store:

* zero MEASURE timing runs, counted at the sites themselves;
* bit-identical decisions to the cold run;
* planner setup at least 5x faster than cold (the same bound
  ``scripts/check_perf.py`` gates via the ``warm_wisdom_plan_32`` case).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.fft.plans import Planner, PlanFlags
from repro.linalg.custom import FoldedLU
from repro.linalg.structure import BandedSystemSpec, FoldedBanded
from repro.mpi.simmpi import run_spmd
from repro.pencil.parallel_fft import PencilTransforms
from repro.telemetry.baseline import WISDOM_PLAN_SET
from repro.tuning import MEASURE_STATS, WisdomStore

NX, NY, NZ = 32, 16, 32
MIN_WARM_SPEEDUP = 5.0


def _plan_ffts(store: WisdomStore) -> tuple[list[str], float]:
    """Plan the measuring 1-D stages on a fresh Planner; (strategies, seconds)."""
    t0 = time.perf_counter()
    planner = Planner(flags=PlanFlags.MEASURE, wisdom=store)
    plans = [planner.plan(k, s, a, nout=n) for k, s, a, n in WISDOM_PLAN_SET]
    return [p.strategy for p in plans], time.perf_counter() - t0


def _plan_transpose(wisdom_path: pathlib.Path) -> dict[str, str]:
    """Method choice of the 2x2 pencil transposes (store opened per rank)."""

    def prog(comm):
        store = WisdomStore(wisdom_path)
        cart = comm.cart_create((2, 2))
        tr = PencilTransforms(cart, NX, NY, NZ, dealias=False)
        choice = tr.plan(wisdom=store)
        return {k: v.value for k, v in choice.items()}

    return run_spmd(4, prog)[0]


def _plan_block(store: WisdomStore) -> int:
    """Panel height chosen by the measured solve engine."""
    rng = np.random.default_rng(0)
    spec = BandedSystemSpec(n=128, kl=3, ku=3, corner=3)
    data = rng.standard_normal((8, 128, spec.window))
    data[:, np.arange(128), spec.mdiag] += 14.0
    lu = FoldedLU(FoldedBanded(spec, data))
    return lu.engine(block="measure", wisdom=store).block


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--wisdom", required=True, help="wisdom store path (shared by both phases)")
    ap.add_argument("--state", required=True, help="JSON file carrying decisions cold -> warm")
    ap.add_argument("--phase", required=True, choices=("cold", "warm"))
    args = ap.parse_args(argv)

    wisdom_path = pathlib.Path(args.wisdom)
    state_path = pathlib.Path(args.state)
    store = WisdomStore(wisdom_path)

    MEASURE_STATS.reset()
    strategies, t_plan = _plan_ffts(store)
    transpose = _plan_transpose(wisdom_path)
    block = _plan_block(store)
    stats = MEASURE_STATS.snapshot()

    print(f"[{args.phase}] fft strategies {strategies}  transpose {transpose}  "
          f"block {block}  planner {t_plan * 1e3:.2f} ms")
    print(f"[{args.phase}] timing runs: {stats}")

    if args.phase == "cold":
        for name, count in stats.items():
            assert count > 0, f"cold phase never measured {name}"
        state_path.write_text(json.dumps({
            "strategies": strategies, "transpose": transpose,
            "block": block, "t_plan": t_plan,
        }))
        print(f"cold OK: {MEASURE_STATS.total()} timing runs, "
              f"{len(store)} wisdom entries recorded")
        return 0

    cold = json.loads(state_path.read_text())
    assert MEASURE_STATS.total() == 0, (
        f"warm start re-timed: {stats} (expected zero MEASURE timing runs)"
    )
    assert strategies == cold["strategies"], (strategies, cold["strategies"])
    assert transpose == cold["transpose"], (transpose, cold["transpose"])
    assert block == cold["block"], (block, cold["block"])
    speedup = cold["t_plan"] / max(t_plan, 1e-9)
    print(f"warm planner speedup: {speedup:.1f}x (floor {MIN_WARM_SPEEDUP:.0f}x)")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm planner setup only {speedup:.1f}x faster than cold"
    )
    print("warm OK: zero timing runs, identical decisions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
