#!/usr/bin/env bash
# Hot-path smoke check: tier-1 test suite plus a short DNS through the
# planned transform pipeline, verified bit-for-bit against the naive
# reference backend.  Run from the repository root:
#
#   scripts/smoke_hotpath.sh
#
# Exits non-zero on any test failure or on trajectory divergence.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== 10-step 32^3 DNS, planned vs naive transform backend =="
python - <<'EOF'
import numpy as np

from repro.core import ChannelConfig, ChannelDNS
from repro.core.timestepper import IMEXStepper
from repro.core.transforms import NaiveTransformBackend

cfg = ChannelConfig(nx=32, ny=33, nz=32, dt=2e-4, seed=3)
dns = ChannelDNS(cfg)  # planned pipeline backend (the default)
dns.initialize()
ref = ChannelDNS(cfg)
ref.stepper = IMEXStepper(
    ref.grid, nu=cfg.nu, dt=cfg.dt, forcing=cfg.forcing, scheme=cfg.scheme,
    backend=NaiveTransformBackend(ref.grid),
)
ref.initialize()
dns.run(10)
ref.run(10)

dv = float(np.abs(dns.state.v - ref.state.v).max())
de = abs(dns.kinetic_energy() - ref.kinetic_energy())
div = dns.divergence_norm()
print(f"max |v - v_ref| = {dv:.3e}")
print(f"|KE - KE_ref|   = {de:.3e}")
print(f"divergence norm = {div:.3e}")
print(dns.backend.counters.report())
assert dv == 0.0, "planned pipeline diverged from the naive trajectory"
assert de == 0.0, "kinetic energy diverged"
assert div < 1e-12, "velocity field not solenoidal"
print("smoke OK")
EOF

echo
echo "== banded solve engine micro-bench (n=1024, batch=64, bandwidth 7) =="
python - <<'EOF'
import time

import numpy as np

from repro.linalg.custom import FoldedLU
from repro.linalg.structure import BandedSystemSpec, FoldedBanded

rng = np.random.default_rng(0)
spec = BandedSystemSpec(n=1024, kl=3, ku=3, corner=3)
data = rng.standard_normal((64, 1024, spec.window))
data[:, np.arange(1024), spec.mdiag] += 14.0
lu = FoldedLU(FoldedBanded(spec, data))
rhs = rng.standard_normal((64, 1024)) + 1j * rng.standard_normal((64, 1024))
eng = lu.engine()

assert np.array_equal(eng.solve(rhs), lu.solve(rhs)), "engine != FoldedLU.solve"
np.testing.assert_allclose(eng.solve(rhs), lu.solve_reference(rhs), atol=1e-9)

t_eng = t_row = np.inf
for _ in range(7):  # interleaved so load drift hits both sides
    t0 = time.perf_counter(); eng.solve(rhs); t_eng = min(t_eng, time.perf_counter() - t0)
    t0 = time.perf_counter(); lu.solve_reference(rhs); t_row = min(t_row, time.perf_counter() - t0)
print(f"engine {t_eng*1e3:.2f} ms   row sweeps {t_row*1e3:.2f} ms   "
      f"speedup {t_row/t_eng:.2f}x")
assert t_row / t_eng >= 2.0, "solve-engine speedup regressed below 2x"
snap = eng.counters.snapshot()
eng.solve(rhs)
assert eng.counters.snapshot()["workspace_allocs"] == snap["workspace_allocs"], \
    "steady-state solve allocated workspace"
print("solver micro-bench OK")
EOF

echo
echo "== 10-step DNS trajectory identity: fused vs unfused solves =="
python - <<'EOF'
import numpy as np

from repro.core import ChannelConfig, ChannelDNS

cfg = ChannelConfig(nx=16, ny=25, nz=16, dt=2e-4, seed=3, init_amplitude=0.5)
fused = ChannelDNS(cfg)
fused.initialize()
unfused = ChannelDNS(cfg)
unfused.stepper.fused_solves = False
unfused.initialize()
fused.run(10)
unfused.run(10)
for name in ("v", "omega_y", "u00", "w00"):
    a = getattr(fused.state, name)
    b = getattr(unfused.state, name)
    assert np.array_equal(a, b), f"{name} diverged between fused and unfused solves"
t = fused.stepper.timers
print(t.report())
assert t.elapsed[t.SOLVE] > 0.0, "SOLVE section never timed"
print("trajectory identity OK")
EOF

echo
echo "== overlap micro-benchmark: pipelined vs synchronous pencil transposes =="
python -m pytest benchmarks/bench_overlap_transpose.py -q --benchmark-disable

echo
echo "== wisdom cold-vs-warm: second run skips MEASURE, identical plans =="
WISDOM_DIR="$(mktemp -d)"
python scripts/wisdom_smoke.py --wisdom "$WISDOM_DIR/wisdom.json" --state "$WISDOM_DIR/state.json" --phase cold
python scripts/wisdom_smoke.py --wisdom "$WISDOM_DIR/wisdom.json" --state "$WISDOM_DIR/state.json" --phase warm

echo
echo "== telemetry smoke: stream + manifest + trace, < 1% recorder overhead =="
python scripts/telemetry_smoke.py --out "$(mktemp -d)/telemetry" --steps 40

echo
echo "== scheduler smoke: multi-job manager, nested streams, bit-exact isolation =="
python scripts/scheduler_smoke.py --out "$(mktemp -d)/scheduler"

echo
echo "== kill-restart-verify: crash at step 7, supervised restart, identity at step 10 =="
python - <<'EOF'
import pathlib
import tempfile

import numpy as np

from repro.core import ChannelConfig, ChannelDNS, HealthMonitor, RunSupervisor, SupervisorPolicy
from repro.core.checkpoint import CheckpointRotation
from repro.mpi.simmpi import FaultEvent, FaultPlan, run_spmd
from repro.pencil.distributed import DistributedChannelDNS, run_supervised_spmd

cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)
workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_smoke_ft_"))

# serial: checkpoint at step 5, NaN "crash" at step 7, supervised restart
straight = ChannelDNS(cfg)
straight.initialize()
straight.run(10)

dns = ChannelDNS(cfg)
dns.initialize()
sup = RunSupervisor(
    dns,
    CheckpointRotation(workdir / "serial", keep=3),
    monitor=HealthMonitor(),
    policy=SupervisorPolicy(checkpoint_every=5),
)
crashed = []

def crash_once(d):
    if d.step_count == 7 and not crashed:
        crashed.append(7)
        d.state.v[0, 0, 0] = np.nan

final = sup.run(10, callback=crash_once)
assert crashed, "injected crash never fired"
assert sup.counters.rollbacks == 1, sup.report()
for name in ("v", "omega_y", "u00", "w00"):
    assert np.array_equal(getattr(final.state, name), getattr(straight.state, name)), \
        f"serial {name} diverged after supervised recovery"
print(f"serial:      {sup.report()}")

# distributed: rank 1 killed inside a pencil-transpose alltoall, job
# relaunched; identity is against an *uninterrupted distributed* run
# (distributed matches serial only to FFT round-off, itself bit-for-bit)
def straight_dist(comm):
    d = DistributedChannelDNS(comm, cfg, pa=2, pb=2)
    d.initialize()
    d.run(10)
    return d.gather_state()

ref = run_spmd(4, straight_dist)[0]
plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
full, log = run_supervised_spmd(
    4, cfg, pa=2, pb=2, n_steps=10, checkpoint_dir=workdir / "sharded",
    checkpoint_every=5, fault_plans=[plan],
)
assert plan.triggered, "the planned rank kill never fired"
assert [e.kind for e in log] == ["restart"], log
assert np.array_equal(full.v, ref.v), "distributed v diverged after restart"
assert np.array_equal(full.omega_y, ref.omega_y), "distributed omega_y diverged"
print(f"distributed: 1 restart ({log[0].detail.split('(')[0].strip()})")
print("kill-restart-verify OK")
EOF
