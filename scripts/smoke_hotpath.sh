#!/usr/bin/env bash
# Hot-path smoke check: tier-1 test suite plus a short DNS through the
# planned transform pipeline, verified bit-for-bit against the naive
# reference backend.  Run from the repository root:
#
#   scripts/smoke_hotpath.sh
#
# Exits non-zero on any test failure or on trajectory divergence.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== 10-step 32^3 DNS, planned vs naive transform backend =="
python - <<'EOF'
import numpy as np

from repro.core import ChannelConfig, ChannelDNS
from repro.core.timestepper import IMEXStepper
from repro.core.transforms import NaiveTransformBackend

cfg = ChannelConfig(nx=32, ny=33, nz=32, dt=2e-4, seed=3)
dns = ChannelDNS(cfg)  # planned pipeline backend (the default)
dns.initialize()
ref = ChannelDNS(cfg)
ref.stepper = IMEXStepper(
    ref.grid, nu=cfg.nu, dt=cfg.dt, forcing=cfg.forcing, scheme=cfg.scheme,
    backend=NaiveTransformBackend(ref.grid),
)
ref.initialize()
dns.run(10)
ref.run(10)

dv = float(np.abs(dns.state.v - ref.state.v).max())
de = abs(dns.kinetic_energy() - ref.kinetic_energy())
div = dns.divergence_norm()
print(f"max |v - v_ref| = {dv:.3e}")
print(f"|KE - KE_ref|   = {de:.3e}")
print(f"divergence norm = {div:.3e}")
print(dns.backend.counters.report())
assert dv == 0.0, "planned pipeline diverged from the naive trajectory"
assert de == 0.0, "kinetic energy diverged"
assert div < 1e-12, "velocity field not solenoidal"
print("smoke OK")
EOF
