#!/usr/bin/env bash
# Hot-path smoke check: tier-1 test suite plus a short DNS through the
# planned transform pipeline, verified bit-for-bit against the naive
# reference backend.  Run from the repository root:
#
#   scripts/smoke_hotpath.sh
#
# Exits non-zero on any test failure or on trajectory divergence.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== 10-step 32^3 DNS, planned vs naive transform backend =="
python - <<'EOF'
import numpy as np

from repro.core import ChannelConfig, ChannelDNS
from repro.core.timestepper import IMEXStepper
from repro.core.transforms import NaiveTransformBackend

cfg = ChannelConfig(nx=32, ny=33, nz=32, dt=2e-4, seed=3)
dns = ChannelDNS(cfg)  # planned pipeline backend (the default)
dns.initialize()
ref = ChannelDNS(cfg)
ref.stepper = IMEXStepper(
    ref.grid, nu=cfg.nu, dt=cfg.dt, forcing=cfg.forcing, scheme=cfg.scheme,
    backend=NaiveTransformBackend(ref.grid),
)
ref.initialize()
dns.run(10)
ref.run(10)

dv = float(np.abs(dns.state.v - ref.state.v).max())
de = abs(dns.kinetic_energy() - ref.kinetic_energy())
div = dns.divergence_norm()
print(f"max |v - v_ref| = {dv:.3e}")
print(f"|KE - KE_ref|   = {de:.3e}")
print(f"divergence norm = {div:.3e}")
print(dns.backend.counters.report())
assert dv == 0.0, "planned pipeline diverged from the naive trajectory"
assert de == 0.0, "kinetic energy diverged"
assert div < 1e-12, "velocity field not solenoidal"
print("smoke OK")
EOF

echo
echo "== banded solve engine micro-bench (n=1024, batch=64, bandwidth 7) =="
python - <<'EOF'
import time

import numpy as np

from repro.linalg.custom import FoldedLU
from repro.linalg.structure import BandedSystemSpec, FoldedBanded

rng = np.random.default_rng(0)
spec = BandedSystemSpec(n=1024, kl=3, ku=3, corner=3)
data = rng.standard_normal((64, 1024, spec.window))
data[:, np.arange(1024), spec.mdiag] += 14.0
lu = FoldedLU(FoldedBanded(spec, data))
rhs = rng.standard_normal((64, 1024)) + 1j * rng.standard_normal((64, 1024))
eng = lu.engine()

assert np.array_equal(eng.solve(rhs), lu.solve(rhs)), "engine != FoldedLU.solve"
np.testing.assert_allclose(eng.solve(rhs), lu.solve_reference(rhs), atol=1e-9)

t_eng = t_row = np.inf
for _ in range(7):  # interleaved so load drift hits both sides
    t0 = time.perf_counter(); eng.solve(rhs); t_eng = min(t_eng, time.perf_counter() - t0)
    t0 = time.perf_counter(); lu.solve_reference(rhs); t_row = min(t_row, time.perf_counter() - t0)
print(f"engine {t_eng*1e3:.2f} ms   row sweeps {t_row*1e3:.2f} ms   "
      f"speedup {t_row/t_eng:.2f}x")
assert t_row / t_eng >= 2.0, "solve-engine speedup regressed below 2x"
snap = eng.counters.snapshot()
eng.solve(rhs)
assert eng.counters.snapshot()["workspace_allocs"] == snap["workspace_allocs"], \
    "steady-state solve allocated workspace"
print("solver micro-bench OK")
EOF

echo
echo "== 10-step DNS trajectory identity: fused vs unfused solves =="
python - <<'EOF'
import numpy as np

from repro.core import ChannelConfig, ChannelDNS

cfg = ChannelConfig(nx=16, ny=25, nz=16, dt=2e-4, seed=3, init_amplitude=0.5)
fused = ChannelDNS(cfg)
fused.initialize()
unfused = ChannelDNS(cfg)
unfused.stepper.fused_solves = False
unfused.initialize()
fused.run(10)
unfused.run(10)
for name in ("v", "omega_y", "u00", "w00"):
    a = getattr(fused.state, name)
    b = getattr(unfused.state, name)
    assert np.array_equal(a, b), f"{name} diverged between fused and unfused solves"
t = fused.stepper.timers
print(t.report())
assert t.elapsed[t.SOLVE] > 0.0, "SOLVE section never timed"
print("trajectory identity OK")
EOF
