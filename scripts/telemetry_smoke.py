#!/usr/bin/env python
"""Telemetry smoke: record a small DNS run, validate every artefact,
assert the recorder overhead budget.

Runs a 32^3 serial DNS with ``telemetry=`` attached, then checks the
acceptance criteria of the observability layer end to end:

* the JSON-lines stream parses and every record validates against
  ``repro.telemetry.schema``;
* the manifest and the Chrome trace exist and are well-formed;
* the self-measured recorder overhead stays under the 1% budget
  (``--budget`` to override; the 32^3 step is heavy enough that the
  budget holds with margin — on the 16^3 toy grid it would not).

Exit 0 on success, 1 with a diagnostic on any violation.  CI uploads the
produced directory as a workflow artifact, so every run leaves behind an
openable trace and a stream ``python -m repro.telemetry.report`` accepts.

Usage:
    PYTHONPATH=src python scripts/telemetry_smoke.py [--out DIR]
        [--steps N] [--budget FRAC]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core import ChannelConfig, ChannelDNS  # noqa: E402
from repro.telemetry import read_manifest, read_stream  # noqa: E402
from repro.telemetry.report import breakdown, format_breakdown  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="runs/telemetry-smoke",
                    help="telemetry output directory (default: runs/telemetry-smoke)")
    ap.add_argument("--steps", type=int, default=60,
                    help="DNS steps to run (default: 60)")
    ap.add_argument("--budget", type=float, default=0.01,
                    help="max allowed recorder overhead fraction (default: 0.01)")
    args = ap.parse_args(argv)

    out = pathlib.Path(args.out)
    cfg = ChannelConfig(nx=32, ny=33, nz=32, dt=2e-4, seed=7, init_amplitude=0.5)
    dns = ChannelDNS(cfg, telemetry=out)
    dns.initialize()
    dns.run(args.steps)
    dns.finalize_telemetry()

    failures: list[str] = []

    stream = out / "telemetry.jsonl"
    records = list(read_stream(stream))  # parses AND validates every line
    steps = [r for r in records if r["type"] == "step"]
    summaries = [r for r in records if r["type"] == "summary"]
    if len(steps) != args.steps:
        failures.append(f"expected {args.steps} step records, got {len(steps)}")
    if len(summaries) != 1 or records[-1]["type"] != "summary":
        failures.append("stream does not end with exactly one summary record")

    manifest = read_manifest(out)
    if manifest["config"].get("nx") != cfg.nx:
        failures.append("manifest config does not match the run configuration")

    trace = out / "trace.json"
    doc = json.loads(trace.read_text())
    if not doc.get("traceEvents"):
        failures.append("trace.json has no events")

    overhead = summaries[0]["overhead_frac"] if summaries else None
    if overhead is None:
        failures.append("summary carries no overhead_frac")
    elif overhead >= args.budget:
        failures.append(
            f"recorder overhead {overhead:.2%} exceeds the "
            f"{args.budget:.0%} budget"
        )

    print(format_breakdown(breakdown(stream), title=f"section breakdown ({stream})"))
    print()
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: {len(records)} records, manifest + trace valid, "
          f"recorder overhead {overhead:.2%} < {args.budget:.0%} budget -> {out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
