#!/usr/bin/env python
"""Guard the hot paths: measure now, compare to the committed baseline.

Wraps :mod:`repro.telemetry.baseline`.  Exit status is the contract:
0 = no regression (or ``--record`` / ``--report`` mode), 1 = at least
one hot path regressed beyond tolerance.

    python scripts/check_perf.py --record              # (re)write the baseline
    python scripts/check_perf.py                       # blocking check
    python scripts/check_perf.py --report              # CI mode: print, never fail
    python scripts/check_perf.py --inject-slowdown 1.2 # prove the detector fires
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.telemetry import baseline as B  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", type=pathlib.Path, default=B.DEFAULT_BASELINE,
                    help="baseline file (default: the committed benchmarks/results/baselines.json)")
    ap.add_argument("--record", action="store_true", help="measure and (re)write the baseline file")
    ap.add_argument("--report", action="store_true",
                    help="print the comparison but always exit 0 (CI non-blocking mode)")
    ap.add_argument("--tolerance", type=float, default=None,
                    help=f"regression tolerance as a fraction (default: the baseline's, else {B.DEFAULT_TOLERANCE})")
    ap.add_argument("--repeats", type=int, default=5, help="samples per case (median taken)")
    ap.add_argument("--min-time", type=float, default=0.05, help="minimum seconds per sample batch")
    ap.add_argument("--inject-slowdown", type=float, default=1.0,
                    help="multiply current measurements by this factor (detector self-test)")
    args = ap.parse_args(argv)

    if args.record:
        doc = B.record_baselines(args.baseline, repeats=args.repeats, min_time=args.min_time)
        print(f"recorded {len(doc['cases'])} hot-path baselines -> {args.baseline}")
        for name, case in sorted(doc["cases"].items()):
            print(f"  {name:>22}: {case['median_s'] * 1e3:8.3f} ms  "
                  f"(normalized {case['normalized']:.3f})  [{case['guards']}]")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --record first", file=sys.stderr)
        return 0 if args.report else 2

    base = B.load_baselines(args.baseline)
    tol = args.tolerance if args.tolerance is not None else base.get("tolerance", B.DEFAULT_TOLERANCE)
    results = B.check_against(
        base,
        repeats=args.repeats,
        min_time=args.min_time,
        tolerance=tol,
        inject_slowdown=args.inject_slowdown,
    )
    print(B.format_check_report(results, tol))
    if args.report:
        return 0
    return 1 if any(r.status == "regressed" for r in results) else 0


if __name__ == "__main__":
    raise SystemExit(main())
