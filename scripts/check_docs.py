#!/usr/bin/env python
"""Markdown link checker for the repo docs.

Walks ``docs/*.md``, ``README.md``, ``DESIGN.md`` and ``EXPERIMENTS.md``
and verifies that every reference a reader could follow actually
resolves:

* inline markdown links ``[text](target)`` — relative targets must
  exist on disk (resolved against the referencing file, with a
  repo-root fallback); ``http(s)``/``mailto`` targets are recorded but
  not fetched (no network in CI);
* backticked repo paths like ``scripts/check_perf.py`` or
  ``docs/observability.md`` — any path-shaped reference with a tracked
  source extension must exist (resolved against the repo root, with an
  ``src/`` fallback for module paths like ``repro/telemetry/schema.py``).

Exit 0 when everything resolves, 1 with a per-reference diagnostic
otherwise.  Run it any time with::

    python scripts/check_docs.py [--root DIR]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: markdown inline link: [text](target)
_LINK = re.compile(r"\[[^][]*\]\(([^()\s]+)\)")
#: backticked path-shaped reference with a source extension; requires a
#: "/" so bare runtime names (`manifest.json`, `latest`) don't count
_BACKTICK_PATH = re.compile(r"`([A-Za-z0-9_.-]+(?:/[A-Za-z0-9_.-]+)+\.(?:md|py|json|sh|yml|yaml|txt|rst))`")
_EXTERNAL = ("http://", "https://", "mailto:")


def _doc_files(root: pathlib.Path) -> list[pathlib.Path]:
    files = sorted((root / "docs").glob("*.md"))
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        p = root / name
        if p.exists():
            files.append(p)
    return files


def _resolves(target: str, doc: pathlib.Path, root: pathlib.Path) -> bool:
    candidates = (doc.parent / target, root / target, root / "src" / target)
    return any(c.exists() for c in candidates)


def check_file(doc: pathlib.Path, root: pathlib.Path) -> tuple[list[str], int]:
    """(broken-reference diagnostics, references checked) for one file."""
    text = doc.read_text()
    broken: list[str] = []
    checked = 0
    rel = doc.relative_to(root)

    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue  # recorded, not fetched
        target = target.split("#", 1)[0]
        if not target:
            continue  # pure in-page anchor
        checked += 1
        if not _resolves(target, doc, root):
            line = text.count("\n", 0, match.start()) + 1
            broken.append(f"{rel}:{line}: broken link target {target!r}")

    for match in _BACKTICK_PATH.finditer(text):
        target = match.group(1)
        checked += 1
        if not _resolves(target, doc, root):
            line = text.count("\n", 0, match.start()) + 1
            broken.append(f"{rel}:{line}: referenced file {target!r} does not exist")

    return broken, checked


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: the parent of this script's directory)")
    args = ap.parse_args(argv)
    root = (
        pathlib.Path(args.root).resolve()
        if args.root
        else pathlib.Path(__file__).resolve().parents[1]
    )

    total_checked = 0
    failures: list[str] = []
    for doc in _doc_files(root):
        broken, checked = check_file(doc, root)
        total_checked += checked
        failures.extend(broken)
        status = "FAIL" if broken else "ok"
        print(f"  {status:4s}  {doc.relative_to(root)}  ({checked} refs)")

    if failures:
        print(f"\n{len(failures)} broken reference(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {total_checked} references across {len(_doc_files(root))} files all resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
