#!/usr/bin/env python
"""Statistics-service smoke: stream a run, publish, query, assert budgets.

Exercises the full serving pipeline (docs/statistics_service.md) end to
end on a 32^3 serial DNS and asserts its acceptance surface:

* **identity** — the streaming accumulator's profiles equal the batch
  ``RunningStatistics`` of the same run bit-for-bit (covariances) /
  to round-off (U, via a different summation route);
* **overhead** — the accumulator's self-measured sampling time stays
  under the same < 1% of run wall-time budget the telemetry recorder
  lives by (``--budget`` to override);
* **serving** — the published result answers law-of-wall, variance and
  spectrum queries, and a warm response cache beats the cold store
  (the full ≥ 10x throughput floor is asserted by
  ``benchmarks/bench_stats_service.py``; the smoke uses a noise-proof
  2x floor).

Exit 0 on success, 1 with a diagnostic on any violation.  CI uploads
the produced directory (store + report + summary.json) as a workflow
artifact alongside the telemetry smoke.

Usage:
    PYTHONPATH=src python scripts/stats_service_smoke.py [--out DIR]
        [--steps N] [--every N] [--budget FRAC]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.core import ChannelConfig, ChannelDNS  # noqa: E402
from repro.serving import StatisticsService, StatsStore  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="runs/stats-smoke",
                    help="artifact directory (default: runs/stats-smoke)")
    ap.add_argument("--steps", type=int, default=40,
                    help="DNS steps to run (default: 40)")
    ap.add_argument("--every", type=int, default=2,
                    help="sampling cadence in steps (default: 2)")
    ap.add_argument("--budget", type=float, default=0.01,
                    help="max sampling overhead fraction of run wall time (default: 0.01)")
    args = ap.parse_args(argv)

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    failures: list[str] = []
    report: list[str] = []

    # ---- streamed run (batch statistics sampled on the same cadence) ----
    cfg = ChannelConfig(nx=32, ny=33, nz=32, dt=2e-4, seed=7, init_amplitude=0.5)
    dns = ChannelDNS(cfg)
    dns.initialize()
    stream = dns.attach_streaming(every=args.every)
    t0 = time.perf_counter()
    dns.run(args.steps, sample_every=args.every)
    wall = time.perf_counter() - t0
    result = stream.result()

    expected = args.steps // args.every
    if result["nsamples"] != expected:
        failures.append(f"nsamples {result['nsamples']} != expected {expected}")

    # ---- identity: streamed vs batch over identical sampled states ----
    for name in ("uu", "vv", "ww", "uv"):
        if not np.array_equal(result[name], dns.statistics.profile(name)):
            failures.append(f"streamed {name} differs from batch profile (bit-compare)")
    du = np.max(np.abs(result["U"] - dns.statistics.profile("U")))
    if du > 1e-12:
        failures.append(f"streamed U off by {du:.3e} (> 1e-12)")
    report.append(f"identity: covariances bit-exact, max |dU| = {du:.3e}")

    # ---- overhead budget ----
    frac = stream.counters.sample_seconds / wall
    report.append(
        f"overhead: {stream.counters.sample_seconds * 1e3:.1f} ms sampling over "
        f"{wall:.2f} s run = {frac * 100:.3f}% (budget {args.budget * 100:.0f}%, "
        f"every={args.every})"
    )
    if frac > args.budget:
        failures.append(f"sampling overhead {frac:.4f} exceeds budget {args.budget}")

    # ---- publish + query ----
    store = StatsStore(out / "store")
    path = store.publish(result, cfg, step_count=dns.step_count,
                         sim_time=float(dns.state.time))
    report.append(f"published: {path.relative_to(out)}")

    service = StatisticsService(store)
    y_sweep = tuple(float(y) for y in np.geomspace(1.0, 100.0, 8))

    def mix() -> int:
        service.law_of_wall(cfg.re_tau, y_sweep)
        for comp in ("u", "v", "w", "uv"):
            service.variance(cfg.re_tau, comp, y_sweep)
        service.spectrum(cfg.re_tau, "x", "u", 15.0)
        service.spectrum(cfg.re_tau, "z", "u", 15.0)
        return 7

    def qps(batches: int, cold: bool) -> float:
        n = 0
        t = time.perf_counter()
        for _ in range(batches):
            if cold:
                service.clear_caches()
            n += mix()
        return n / (time.perf_counter() - t)

    law = service.law_of_wall(cfg.re_tau, y_sweep)
    if law["re_tau_sources"] != [cfg.re_tau]:
        failures.append(f"query answered from {law['re_tau_sources']}, not {cfg.re_tau}")
    if not all(np.isfinite(law["u_plus"])):
        failures.append("non-finite U+ in the law-of-wall response")

    cold_qps = qps(40, cold=True)
    service.clear_caches()
    mix()  # prime
    warm_qps = qps(40, cold=False)
    speedup = warm_qps / cold_qps
    info = service.cache_info()["responses"]
    report.append(
        f"serving: cold {cold_qps:,.0f} q/s, warm {warm_qps:,.0f} q/s "
        f"({speedup:.1f}x; cache {info['hits']} hits / {info['misses']} misses)"
    )
    if speedup < 2.0:
        failures.append(f"warm cache only {speedup:.2f}x over cold (smoke floor 2x)")

    # ---- artifacts ----
    (out / "report.txt").write_text("\n".join(report) + "\n")
    (out / "summary.json").write_text(json.dumps({
        "steps": args.steps,
        "every": args.every,
        "nsamples": result["nsamples"],
        "u_tau": result["u_tau"],
        "max_dU": float(du),
        "overhead_frac": frac,
        "cold_qps": cold_qps,
        "warm_qps": warm_qps,
        "speedup": speedup,
        "failures": failures,
    }, indent=2) + "\n")

    for line in report:
        print(line)
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nOK: streaming statistics service smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
