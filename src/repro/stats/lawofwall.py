"""Law-of-the-wall reference curves for Figs. 5 and 6.

The paper's Fig. 5 shows the mean velocity of the Re_tau ~ 5200 channel
in wall units, "display[ing] the famous logarithmic velocity profile in
the overlap region"; Fig. 6 shows the velocity variances and the
Reynolds shear stress.  These closed-form references reproduce the
figures' *shape* at any Reynolds number:

* ``viscous_sublayer``: U+ = y+ (exact as y+ -> 0),
* ``log_law``: U+ = ln(y+)/kappa + B with the classical constants,
* ``reichardt``: a smooth composite valid across the whole layer,
* ``variance_reference``: empirical near-wall variance shapes with the
  documented peak positions/heights (e.g. <uu>+ peaking ~ 8-9 at
  y+ ~ 15) blended to the correct outer decay, plus the exact total
  stress constraint ``-<uv>+ + dU+/dy+ = 1 - y/h`` for the shear stress.
"""

from __future__ import annotations

import numpy as np

KAPPA = 0.41
B_LOG = 5.2


def viscous_sublayer(yplus: np.ndarray) -> np.ndarray:
    """``U+ = y+`` — exact in the viscous sublayer."""
    return np.asarray(yplus, dtype=float)


def log_law(yplus: np.ndarray, kappa: float = KAPPA, b: float = B_LOG) -> np.ndarray:
    """``U+ = ln(y+)/kappa + B`` — the overlap-region log law."""
    return np.log(np.asarray(yplus, dtype=float)) / kappa + b


def reichardt(yplus: np.ndarray, kappa: float = KAPPA) -> np.ndarray:
    """Reichardt (1951) composite profile, smooth from the wall to the core."""
    yp = np.asarray(yplus, dtype=float)
    return (
        np.log1p(kappa * yp) / kappa
        + 7.8 * (1.0 - np.exp(-yp / 11.0) - (yp / 11.0) * np.exp(-yp / 3.0))
    )


def variance_reference(yplus: np.ndarray, re_tau: float, component: str) -> np.ndarray:
    """Empirical wall-units variance profiles (Fig. 6 overlay shapes).

    Peak positions/levels follow the consensus channel DNS shapes
    (Moser-Kim-Mansour 1999 lineage, amplitudes drifting up slowly with
    Re_tau): ``uu`` peaks near y+ = 15, ``ww`` near y+ = 40, ``vv`` near
    y+ = 70, all decaying toward the centreline; ``uv`` is the Reynolds
    shear stress magnitude rising to ~1 - y/h minus the viscous stress.
    """
    yp = np.asarray(yplus, dtype=float)
    eta = np.clip(yp / re_tau, 0.0, 1.0)  # y / h
    outer = (1.0 - eta) ** 2
    if component == "uu":
        peak = 7.0 + 0.7 * np.log10(re_tau / 180.0) * 3.0  # slow Re growth
        shape = (yp / 15.0) ** 2 * np.exp(2.0 * (1.0 - (yp / 15.0)))
        return peak * np.clip(shape, 0.0, 1.0) * (0.35 + 0.65 * outer) + 1.2 * _plateau(
            yp, re_tau
        )
    if component == "ww":
        peak = 2.0 + 0.5 * np.log10(re_tau / 180.0)
        shape = (yp / 40.0) ** 1.4 * np.exp(1.4 * (1.0 - (yp / 40.0)))
        return peak * np.clip(shape, 0.0, 1.0) * (0.4 + 0.6 * outer) + 0.8 * _plateau(
            yp, re_tau
        )
    if component == "vv":
        peak = 1.3 + 0.3 * np.log10(re_tau / 180.0)
        shape = (yp / 70.0) ** 1.6 * np.exp(1.6 * (1.0 - (yp / 70.0)))
        return peak * np.clip(shape, 0.0, 1.0) * (0.4 + 0.6 * outer) + 0.5 * _plateau(
            yp, re_tau
        )
    if component == "uv":
        # Total-stress constraint: -<uv>+ = 1 - y/h - dU+/dy+ with the
        # Reichardt profile supplying the viscous part.
        h = 1e-3
        dudy = (reichardt(yp + h) - reichardt(np.maximum(yp - h, 0.0))) / (
            2 * h
        )
        return np.clip(1.0 - eta - dudy, 0.0, None)
    raise ValueError(f"unknown component {component!r}")


def _plateau(yp: np.ndarray, re_tau: float) -> np.ndarray:
    """Mid-layer plateau factor rising over the buffer layer, dying at the core."""
    eta = np.clip(yp / re_tau, 0.0, 1.0)
    return np.tanh(yp / 30.0) * (1.0 - eta) ** 2


def total_stress_residual(
    yplus: np.ndarray,
    uv_plus: np.ndarray,
    dudy_plus: np.ndarray,
    re_tau: float,
) -> np.ndarray:
    """Momentum-balance check: ``-<uv>+ + dU+/dy+ - (1 - y/h)`` (=0 when
    statistics are converged) — a quantitative convergence diagnostic."""
    eta = np.asarray(yplus, dtype=float) / re_tau
    return -np.asarray(uv_plus) + np.asarray(dudy_plus) - (1.0 - eta)
