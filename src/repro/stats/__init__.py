"""Turbulence statistics references and field visualisation (Figs. 5-8).

* :mod:`repro.stats.lawofwall` — mean-velocity reference curves (viscous
  sublayer, log law, Reichardt's composite profile) and empirical
  variance shapes for the Fig. 5/6 overlays at arbitrary Re_tau,
* :mod:`repro.stats.fields` — instantaneous-field extraction (streamwise
  velocity planes, spanwise vorticity near the wall) with a text-mode
  renderer for Figs. 7/8,
* :mod:`repro.stats.spectra` — 1-D streamwise/spanwise energy spectra
  (the resolution diagnostic spectral DNS lives by).
"""

from repro.stats.lawofwall import (
    log_law,
    reichardt,
    variance_reference,
    viscous_sublayer,
)
from repro.stats.fields import (
    ascii_contour,
    spanwise_vorticity_plane,
    streamwise_velocity_plane,
)
from repro.stats.spectra import energy_spectrum_x, energy_spectrum_z

__all__ = [
    "ascii_contour",
    "energy_spectrum_x",
    "energy_spectrum_z",
    "log_law",
    "reichardt",
    "spanwise_vorticity_plane",
    "streamwise_velocity_plane",
    "variance_reference",
    "viscous_sublayer",
]
