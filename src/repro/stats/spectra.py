"""One-dimensional energy spectra — the spectral-DNS resolution diagnostic.

The paper's case for Fourier methods (§2) rests on resolution per mode;
the standard check that a DNS is resolved is that the 1-D energy spectra
fall by several decades before the grid cutoff.  These helpers compute
plane-averaged streamwise/spanwise spectra at a given wall distance from
velocity coefficient arrays.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.operators import WallNormalOps


def energy_spectrum_x(
    grid: ChannelGrid, ops: WallNormalOps, field: np.ndarray, y_index: int
) -> tuple[np.ndarray, np.ndarray]:
    """(kx, E(kx)): streamwise 1-D spectrum at one y plane, summed over kz.

    ``field`` is a spectral coefficient array ``(mx, mz, ny)``.  For
    each retained streamwise wavenumber, ``E(kx)`` sums ``|f(kx, kz)|^2``
    over every signed spanwise mode; the ``kx > 0`` rows are then doubled
    (reality condition: the stored half-spectrum represents +/-kx), so
    Parseval holds: ``sum_kx E(kx)`` is the plane's total energy in this
    field.  The streaming accumulator
    (:class:`repro.serving.StreamingStatistics`) reproduces this
    quantity per plane; identity is pinned by
    ``tests/serving/test_accumulators.py``.
    """
    vals = ops.values(field)[:, :, y_index]  # (mx, mz)
    e = (np.abs(vals) ** 2).sum(axis=1)
    e[1:] *= 2.0  # reality condition: kx > 0 counts twice
    return grid.kx.copy(), e


def energy_spectrum_z(
    grid: ChannelGrid, ops: WallNormalOps, field: np.ndarray, y_index: int
) -> tuple[np.ndarray, np.ndarray]:
    """(kz >= 0, E(kz)): spanwise 1-D spectrum at one y plane, summed over kx.

    The sum over streamwise modes applies the reality weight first
    (``kx > 0`` counts twice, matching :func:`energy_spectrum_x`), then
    the signed spanwise spectrum is folded onto ``kz >= 0`` by adding
    the ``-kz`` column into its ``+kz`` partner — so here too
    ``sum_kz E(kz)`` is the plane's total energy.
    """
    vals = ops.values(field)[:, :, y_index]  # (mx, mz)
    w = np.full(grid.mx, 2.0)
    w[0] = 1.0
    e_signed = (np.abs(vals) ** 2 * w[:, None]).sum(axis=0)  # over kx
    half = grid.nz // 2
    kz = grid.kz[:half]
    e = np.empty(half)
    e[0] = e_signed[0]
    for j in range(1, half):
        e[j] = e_signed[j] + e_signed[grid.mz - j]  # fold ±kz
    return kz.copy(), e


def spectral_decay(e: np.ndarray) -> float:
    """Decades of roll-off: log10(peak / tail) of a spectrum (resolution check)."""
    e = np.asarray(e, dtype=float)
    peak = e.max()
    tail = max(e[-1], np.finfo(float).tiny)
    return float(np.log10(peak / tail))
