"""Instantaneous-field extraction and rendering (Figs. 7-8).

Fig. 7 shows the streamwise velocity over a full (x, y) plane; Fig. 8
the spanwise vorticity ``omega_z = dv/dx - du/dy`` in an (x, z) plane
near the wall.  Both come straight out of a DNS state here, along with a
text-mode contour renderer so the "figures" are reproducible without a
plotting stack.
"""

from __future__ import annotations

import numpy as np

from repro.core.solver import ChannelDNS
from repro.core.transforms import to_quadrature_grid


def streamwise_velocity_plane(dns: ChannelDNS, z_index: int = 0) -> np.ndarray:
    """u(x, y) at one spanwise quadrature location (Fig. 7).

    Returns the ``(nxq, ny)`` slice of the dealiased physical velocity;
    ``z_index`` indexes the quadrature grid (``nzq`` points), not the
    coarse collocation grid.
    """
    u, _, _ = dns.physical_velocity()
    return u[:, z_index, :]


def spanwise_vorticity_plane(dns: ChannelDNS, yplus: float = 15.0) -> np.ndarray:
    """``omega_z(x, z) = dv/dx - du/dy`` at a near-wall plane (Fig. 8).

    ``yplus`` is the wall distance in viscous units; it is converted
    with the run's viscosity in ``u_tau = 1`` units
    (``y = -1 + yplus * nu``) and snapped to the nearest collocation
    plane of the *lower* wall.  Returns the ``(nxq, nzq)`` physical
    vorticity slice on the dealiased quadrature grid.
    """
    g = dns.grid
    s = dns.stepper
    state = dns.state
    if state is None:
        raise RuntimeError("initialize and run the DNS first")
    ops = s.ops
    # dv/dx: multiply v by i kx; du/dy: first-derivative collocation values
    dvdx = g.modes.ikx * ops.values(state.v)
    dudy = ops.dvalues(state.u)
    omega_z = to_quadrature_grid(dvdx - dudy, g)

    y_target = -1.0 + yplus * dns.config.nu  # u_tau = 1 units
    iy = int(np.argmin(np.abs(g.y - y_target)))
    return omega_z[:, :, iy]


def ascii_contour(
    field: np.ndarray,
    width: int = 72,
    height: int = 20,
    levels: str = " .:-=+*#%@",
) -> str:
    """Text-mode filled contour of a 2-D field.

    The field's first axis runs left-to-right across a row, the second
    axis bottom-to-top down the rows (so a ``(x, y)`` plane renders with
    the wall at the bottom); values map linearly onto ``levels``.
    """
    f = np.asarray(field, dtype=float)
    if f.ndim != 2:
        raise ValueError("need a 2-D field")
    # resample by block averaging onto (width, height)
    xi = np.linspace(0, f.shape[0], width + 1).astype(int)
    yi = np.linspace(0, f.shape[1], height + 1).astype(int)
    out = np.empty((height, width))
    for j in range(height):
        for i in range(width):
            block = f[xi[i] : max(xi[i + 1], xi[i] + 1), yi[j] : max(yi[j + 1], yi[j] + 1)]
            out[j, i] = block.mean()
    lo, hi = out.min(), out.max()
    scale = (len(levels) - 1) / (hi - lo) if hi > lo else 0.0
    rows = []
    for j in range(height - 1, -1, -1):  # y increasing upward
        rows.append("".join(levels[int((v - lo) * scale)] for v in out[j]))
    return "\n".join(rows)


def multiscale_zoom(field: np.ndarray, factor: int = 4) -> tuple[np.ndarray, np.ndarray]:
    """Full field plus a zoomed corner — Fig. 7's "zooming in ... highlights
    the multi-scale nature of the turbulence"."""
    f = np.asarray(field)
    nx, ny = f.shape
    return f, f[: max(nx // factor, 2), : max(ny // factor, 2)]
