"""Persistent plan wisdom: tuning decisions that survive process restarts.

The paper's production runs amortize tuning across restarts — FFTW plans
and transpose implementations are measured once per machine and reused
("the implementation with the best performance on simple tests is
selected and used for production", §4.3), which is exactly FFTW's wisdom
file contract.  Our MEASURE-mode planner (:mod:`repro.fft.plans`), the
solve-engine panel selection (:func:`repro.linalg.engine.measure_block`)
and :meth:`repro.pencil.transpose.GlobalTranspose.plan` historically
re-timed every candidate on every process start.  :class:`WisdomStore`
removes that cost: each MEASURE outcome is recorded into a versioned
on-disk JSON cache keyed by the decision domain, the shape/dtype/backend
key of the plan, and the *machine fingerprint* (hash of the same
machine facts the telemetry manifest pins), so a warm start loads the
decision instead of measuring it — and a foreign machine's wisdom is
ignored, never trusted.

Robustness contract (asserted by ``tests/tuning/test_wisdom.py``):

* **Atomic writes** — read-merge-replace through a unique temp file and
  ``os.replace``, guarded by a process-level lock; two SimMPI ranks (or
  two processes) recording different keys never clobber each other.
* **Corrupt/stale tolerance** — a truncated or non-JSON file, a schema
  version bump, or a fingerprint mismatch silently falls back to fresh
  measurement; every such skip is counted (``corrupt`` / ``stale``), not
  raised.
* **Env knob** — ``REPRO_WISDOM`` selects the store process-wide:
  unset/``off``/``0`` disables it, ``readonly:<path>`` loads but never
  writes, any other value is the store path.

:data:`MEASURE_STATS` counts the actual timing runs executed by every
self-tuning site, whether or not wisdom is on — the warm-start
acceptance check ("zero MEASURE timing runs") is asserted against it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
import time

from repro.telemetry.manifest import _machine

#: format version of the wisdom file; entries from other versions are stale
WISDOM_SCHEMA_VERSION = 1

#: env var selecting the process-wide default store (path | off | readonly:<path>)
ENV_WISDOM = "REPRO_WISDOM"

#: one process-level write lock: SimMPI ranks are threads, so in-process
#: concurrent writers serialize here; cross-process writers rely on the
#: read-merge-replace cycle staying atomic via ``os.replace``
_WRITE_LOCK = threading.Lock()


def machine_fingerprint() -> str:
    """Short stable hash of the telemetry manifest's machine facts."""
    canonical = json.dumps(_machine(), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def make_key(*parts) -> str:
    """Canonical string key from JSON-serializable parts (shapes, dtypes,
    backends, flags); tuples and numpy scalars normalize through ``str``."""
    return json.dumps([_jsonable(p) for p in parts], separators=(",", ":"))


def _jsonable(p):
    if isinstance(p, (list, tuple)):
        return [_jsonable(x) for x in p]
    if p is None or isinstance(p, (bool, int, float, str)):
        return p
    return str(p)


class MeasureStats:
    """Process-wide census of timing runs the self-tuning sites executed.

    Incremented by the sites themselves (wisdom on or off), so a warm
    start's "zero MEASURE timing runs" claim is a counter assertion, not
    an inference: ``fft_candidates_timed`` moves per timed candidate run
    in :meth:`~repro.fft.plans.FFTPlan._plan`, ``transpose_methods_timed``
    per method timed in :meth:`~repro.pencil.transpose.GlobalTranspose.plan`,
    ``engine_blocks_timed`` per candidate panel height timed in
    :func:`~repro.linalg.engine.measure_block`.
    """

    def __init__(self) -> None:
        self.fft_candidates_timed = 0
        self.transpose_methods_timed = 0
        self.engine_blocks_timed = 0

    def total(self) -> int:
        return (
            self.fft_candidates_timed
            + self.transpose_methods_timed
            + self.engine_blocks_timed
        )

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> dict:
        return {
            "fft_candidates_timed": self.fft_candidates_timed,
            "transpose_methods_timed": self.transpose_methods_timed,
            "engine_blocks_timed": self.engine_blocks_timed,
        }


#: the process-wide measurement census
MEASURE_STATS = MeasureStats()


class WisdomCounters:
    """Hit/miss/robustness accounting of one store (manifest provenance)."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stale = 0  # fingerprint or schema mismatch, entry ignored
        self.corrupt = 0  # unreadable file or entry, ignored
        self.writes = 0
        self.readonly_drops = 0  # record() calls swallowed by readonly mode

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "readonly_drops": self.readonly_drops,
        }

    def report(self) -> str:
        return (
            f"hits={self.hits}  misses={self.misses}  stale={self.stale}  "
            f"corrupt={self.corrupt}  writes={self.writes}"
        )


class WisdomStore:
    """Versioned on-disk cache of measured tuning decisions.

    Parameters
    ----------
    path:
        The wisdom JSON file (created on first record).
    readonly:
        Load decisions but never write (``REPRO_WISDOM=readonly:<path>``).
    fingerprint:
        Machine identity stamped on every entry; defaults to
        :func:`machine_fingerprint`.  Lookups only trust entries whose
        fingerprint matches — wisdom is per-machine, like FFTW's.
    counters:
        Optional shared :class:`WisdomCounters`.
    """

    def __init__(
        self,
        path,
        *,
        readonly: bool = False,
        fingerprint: str | None = None,
        counters: WisdomCounters | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.readonly = bool(readonly)
        self.fingerprint = fingerprint or machine_fingerprint()
        self.counters = counters if counters is not None else WisdomCounters()
        self._entries: dict[str, dict] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    # file I/O (corrupt/stale tolerant, atomic)
    # ------------------------------------------------------------------

    def _read_file(self, count: bool = True) -> dict[str, dict]:
        """Parse the wisdom file into valid entries; never raises."""
        try:
            raw = self.path.read_text()
        except OSError:
            return {}
        try:
            doc = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            if count:
                self.counters.corrupt += 1
            return {}
        if not isinstance(doc, dict) or not isinstance(doc.get("entries"), dict):
            if count:
                self.counters.corrupt += 1
            return {}
        if doc.get("schema") != WISDOM_SCHEMA_VERSION:
            if count:
                self.counters.stale += 1
            return {}
        entries: dict[str, dict] = {}
        for key, entry in doc["entries"].items():
            if not isinstance(entry, dict) or "value" not in entry or "fp" not in entry:
                if count:
                    self.counters.corrupt += 1
                continue
            entries[key] = entry
        return entries

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self._entries = self._read_file()
            self._loaded = True

    def _write_file(self, entries: dict[str, dict]) -> None:
        doc = {
            "schema": WISDOM_SCHEMA_VERSION,
            "updated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "entries": entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # unique temp name per writer: concurrent processes each replace
        # atomically instead of stomping a shared .tmp
        tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
        tmp.replace(self.path)

    # ------------------------------------------------------------------
    # the cache contract
    # ------------------------------------------------------------------

    def lookup(self, domain: str, key) -> dict | None:
        """The recorded decision for ``(domain, key)`` on this machine.

        Returns the entry's ``value`` dict, or None on miss.  Entries
        recorded by another machine count as ``stale`` and miss.
        """
        self._ensure_loaded()
        entry = self._entries.get(self._full_key(domain, key))
        if entry is None:
            self.counters.misses += 1
            return None
        if entry["fp"] != self.fingerprint:
            self.counters.stale += 1
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return entry["value"]

    def record(self, domain: str, key, value: dict, timings: dict | None = None) -> None:
        """Persist one measured decision (merge + atomic replace).

        ``value`` must be JSON-serializable; ``timings`` (the raw
        best-of-N measurements behind the decision) ride along for
        inspection but are not part of the decision.
        """
        entry = {
            "fp": self.fingerprint,
            "value": value,
            "timings": timings or {},
            "recorded": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        full = self._full_key(domain, key)
        self._ensure_loaded()
        self._entries[full] = entry  # warm the in-memory view either way
        if self.readonly:
            self.counters.readonly_drops += 1
            return
        with _WRITE_LOCK:
            merged = self._read_file(count=False)  # pick up concurrent writers
            merged[full] = entry
            self._write_file(merged)
            self._entries.update(merged)
        self.counters.writes += 1

    def _full_key(self, domain: str, key) -> str:
        if not isinstance(key, str):
            key = make_key(key) if not isinstance(key, (list, tuple)) else make_key(*key)
        return f"{domain}::{key}"

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def provenance(self) -> dict:
        """Manifest-ready summary of this store (see docs/observability.md)."""
        self._ensure_loaded()
        return {
            "enabled": True,
            "path": str(self.path),
            "readonly": self.readonly,
            "schema": WISDOM_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "entries": len(self._entries),
            **self.counters.snapshot(),
        }


# ----------------------------------------------------------------------
# the process-wide default store (REPRO_WISDOM)
# ----------------------------------------------------------------------

_STORE_CACHE: dict[str, WisdomStore | None] = {}


def default_store() -> WisdomStore | None:
    """The ``REPRO_WISDOM``-selected store, or None when wisdom is off.

    Cached per env value so every planner/transpose in the process shares
    one store (and its counters); tests that repoint the env get a fresh
    store for the new value.
    """
    env = os.environ.get(ENV_WISDOM, "").strip()
    if env in ("", "off", "0"):
        return None
    if env not in _STORE_CACHE:
        if env.startswith("readonly:"):
            _STORE_CACHE[env] = WisdomStore(env[len("readonly:"):], readonly=True)
        else:
            _STORE_CACHE[env] = WisdomStore(env)
    return _STORE_CACHE[env]


def wisdom_provenance() -> dict:
    """Provenance of the default store for the telemetry manifest
    (``{"enabled": False}`` when ``REPRO_WISDOM`` is off)."""
    store = default_store()
    if store is None:
        return {"enabled": False}
    return store.provenance()
