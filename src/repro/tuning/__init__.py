"""Persistent tuning wisdom (see :mod:`repro.tuning.wisdom`)."""

from repro.tuning.wisdom import (
    ENV_WISDOM,
    MEASURE_STATS,
    WISDOM_SCHEMA_VERSION,
    MeasureStats,
    WisdomCounters,
    WisdomStore,
    default_store,
    machine_fingerprint,
    make_key,
    wisdom_provenance,
)

__all__ = [
    "ENV_WISDOM",
    "MEASURE_STATS",
    "WISDOM_SCHEMA_VERSION",
    "MeasureStats",
    "WisdomCounters",
    "WisdomStore",
    "default_store",
    "machine_fingerprint",
    "make_key",
    "wisdom_provenance",
]
