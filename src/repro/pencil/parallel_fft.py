"""The customized parallel FFT kernel (paper §4.4).

Implements the full spectral <-> physical pipeline of the simulation loop
(paper §2.3 steps (a)-(f) and their reverses) on the pencil
decomposition:

    y-pencil spectral
      --(a) transpose CommB-->   z-pencil
      --(b) pad z-->  --(c) inverse FFT z-->
      --(d) transpose CommA-->   x-pencil
      --(e) pad x-->  --(f) inverse real FFT x-->   physical

The kernel embodies the two §4.4 distinctions from P3DFFT:

* **Nyquist dropping** — the stored x spectrum has ``nx/2`` modes and the
  z spectrum ``nz - 1``; the dropped modes never enter a transpose.
* **1x work buffer** — every stage consumes its input and hands over one
  intermediate of (at most) the padded size; no 3x staging buffers.

When a transpose's method is ``PIPELINED``, the adjacent FFT stage is
*fused into* the transpose: the exchange for slab ``k`` is posted
nonblocking while slab ``k-1`` (``to_physical``: pad + inverse FFT after
assembly) or ``k+1`` (``from_physical``: forward FFT + truncate before
posting) runs its transforms, hiding wire time behind compute.  The 1-D
FFTs are independent per pencil, so the fused path is bit-for-bit
identical to the synchronous one; its hidden compute is timed under the
nested ``overlap`` section and accounted in :attr:`overlap_counters`.

Construction is collective over the cartesian communicator.
"""

from __future__ import annotations

import numpy as np

from repro.fft.fourier import quadrature_points
from repro.fft.plans import Planner, default_planner
from repro.instrument import OverlapCounters, PrecisionCounters, SectionTimers
from repro.mpi.simmpi import CartesianCommunicator
from repro.pencil.decomp import PencilDecomp, block_size
from repro.pencil.transpose import GlobalTranspose, TransposeMethod


def _insert_fft_modes(uh: np.ndarray, npoints: int, axis: int) -> np.ndarray:
    """Zero-pad Nyquist-free FFT-ordered modes to a length-``npoints`` spectrum."""
    from repro.fft.fourier import _insert_modes_c

    return _insert_modes_c(uh, npoints, axis)


def _extract_fft_modes(uh_full: np.ndarray, nz: int, axis: int) -> np.ndarray:
    """Keep the ``nz - 1`` Nyquist-free modes from a full FFT spectrum."""
    from repro.fft.fourier import truncate_from_quadrature_c

    return truncate_from_quadrature_c(uh_full, nz, axis=axis)


class PencilTransforms:
    """Distributed spectral <-> physical transforms on a PA x PB grid.

    Parameters
    ----------
    cart:
        Cartesian communicator with ``dims = (pa, pb)``.
    nx, ny, nz:
        Global physical grid extents (x and z even).
    dealias:
        Pad to the 3/2 quadrature grid (production DNS) or transform on
        the bare grid (the Table 6 benchmark configuration, matching
        P3DFFT's feature set).
    method:
        Fixed transpose method, or None to keep the default (alltoall);
        call :meth:`plan` to measure and choose per communicator.
    timers:
        Optional :class:`SectionTimers` receiving transpose/fft sections.
    planner:
        :class:`~repro.fft.plans.Planner` supplying the per-pencil 1-D
        FFT plans; defaults to the process-wide shared cache, so the
        serial pipeline and every rank reuse each other's plans.
    wire:
        ``"full"`` (default) or ``"mixed"`` — mixed precision stages
        float64/complex128 transpose payloads as float32/complex64 on
        the wire with full-precision accumulation on assembly (see
        :mod:`repro.pencil.transpose`); byte savings are accounted in
        :attr:`precision_counters`.
    """

    drop_nyquist = True

    def __init__(
        self,
        cart: CartesianCommunicator,
        nx: int,
        ny: int,
        nz: int,
        dealias: bool = True,
        method: TransposeMethod | None = None,
        timers: SectionTimers | None = None,
        planner: Planner | None = None,
        wire: str = "full",
    ) -> None:
        if len(cart.dims) != 2:
            raise ValueError("need a 2-D cartesian communicator (pa, pb)")
        self.cart = cart
        self.pa, self.pb = cart.dims
        self.nx, self.ny, self.nz = nx, ny, nz
        self.dealias = dealias
        self.timers = timers or SectionTimers()
        self.planner = planner if planner is not None else default_planner()

        self.mx = nx // 2 if self.drop_nyquist else nx // 2 + 1
        self.mz = nz - 1 if self.drop_nyquist else nz
        self.nxq = quadrature_points(nx) if dealias else nx
        self.nzq = quadrature_points(nz) if dealias else nz

        self.decomp = PencilDecomp.for_rank(
            self.mx, self.mz, ny, self.nxq, self.nzq, self.pa, self.pb, cart.rank
        )
        self.decomp.validate()

        # CommA: ranks sharing the B coordinate (dim 0 varies).
        self.comm_a = cart.cart_sub([True, False])
        # CommB: ranks sharing the A coordinate (dim 1 varies).
        self.comm_b = cart.cart_sub([False, True])

        #: communication/compute overlap accounting, shared by the four
        #: transposes (populated only when a pipelined method is active)
        self.overlap_counters = OverlapCounters()
        #: mixed-precision wire accounting, shared by the four transposes
        self.precision_counters = PrecisionCounters()
        self.wire = wire

        kw = {"method": method} if method is not None else {}
        kw.update(
            timers=self.timers,
            overlap=self.overlap_counters,
            wire=wire,
            precision=self.precision_counters,
        )
        self.t_yz = GlobalTranspose(self.comm_b, split_axis=2, concat_axis=1, **kw)
        self.t_zy = GlobalTranspose(self.comm_b, split_axis=1, concat_axis=2, **kw)
        self.t_zx = GlobalTranspose(self.comm_a, split_axis=1, concat_axis=0, **kw)
        self.t_xz = GlobalTranspose(self.comm_a, split_axis=0, concat_axis=1, **kw)

    # ------------------------------------------------------------------
    # forward: spectral (y-pencil) -> physical (x-pencil)
    # ------------------------------------------------------------------

    def to_physical(self, spec: np.ndarray) -> np.ndarray:
        """Steps (a)-(f): y-pencil spectral block -> x-pencil physical block."""
        d, t = self.decomp, self.timers
        if spec.shape != d.y_pencil_shape:
            raise ValueError(f"expected {d.y_pencil_shape}, got {spec.shape}")
        if self.t_yz.method is TransposeMethod.PIPELINED:
            # transpose-then-compute fusion: assembled slab k runs its z
            # (then x) FFT stage while the exchange for slab k+1 flies
            with t.section(t.TRANSPOSE):
                zphys = self.t_yz.pipelined.execute(
                    np.ascontiguousarray(spec), post=self._z_stage_to_physical
                )
        else:
            with t.section(t.TRANSPOSE):
                zp = self.t_yz.execute(np.ascontiguousarray(spec))  # (mxa, mz, nyb)
            with t.section(t.FFT):
                zphys = self._z_stage_to_physical(zp, 0)  # (mxa, nzq, nyb)
        if self.t_zx.method is TransposeMethod.PIPELINED:
            with t.section(t.TRANSPOSE):
                phys = self.t_zx.pipelined.execute(zphys, post=self._x_stage_to_physical)
        else:
            with t.section(t.TRANSPOSE):
                xp = self.t_zx.execute(zphys)  # (mx, nzqa, nyb)
            with t.section(t.FFT):
                phys = self._x_stage_to_physical(xp, 0)
        return phys

    def from_physical(self, phys: np.ndarray) -> np.ndarray:
        """Reverse of :meth:`to_physical` (the Galerkin projection of step h)."""
        d, t = self.decomp, self.timers
        if phys.shape != d.x_pencil_shape_phys:
            raise ValueError(f"expected {d.x_pencil_shape_phys}, got {phys.shape}")
        if self.t_xz.method is TransposeMethod.PIPELINED:
            # compute-then-post fusion: slab k+1 runs its x FFT stage
            # while the exchange for slab k is still in flight
            with t.section(t.TRANSPOSE):
                zp = self.t_xz.pipelined.execute(phys, pre=self._x_stage_to_spectral)
        else:
            with t.section(t.FFT):
                xh = self._x_stage_to_spectral(phys, 0)
            with t.section(t.TRANSPOSE):
                zp = self.t_xz.execute(xh)  # (mxa, nzq, nyb)
        if self.t_zy.method is TransposeMethod.PIPELINED:
            with t.section(t.TRANSPOSE):
                spec = self.t_zy.pipelined.execute(zp, pre=self._z_stage_to_spectral)
        else:
            with t.section(t.FFT):
                zh = self._z_stage_to_spectral(zp, 0)
            with t.section(t.TRANSPOSE):
                spec = self.t_zy.execute(np.ascontiguousarray(zh))  # (mxa, mzb, ny)
        return spec

    # ------------------------------------------------------------------
    # per-slab FFT stages (slab-independent along the transpose stage
    # axis, so fused slabs reproduce the full-array results bitwise)
    # ------------------------------------------------------------------

    def _z_stage_to_physical(self, zp: np.ndarray, k: int) -> np.ndarray:
        """Pad the z spectrum and inverse-transform it (steps b-c)."""
        if self.drop_nyquist:
            zfull = _insert_fft_modes(zp, self.nzq, axis=1)
        else:
            # may alias zp (unpadded Nyquist-keeping case): scaling in
            # place is safe — zp is either the fresh transpose output or
            # the pipelined slab scratch, dead after this stage
            zfull = self._pad_full_spectrum(zp, self.nzq, axis=1)
        zfull *= self.nzq
        return self.planner.execute("ifft", zfull, axis=1)

    def _x_stage_to_physical(self, xp: np.ndarray, k: int) -> np.ndarray:
        """Pad the x spectrum and inverse-real-transform it (steps e-f)."""
        shape = list(xp.shape)
        shape[0] = self.nxq // 2 + 1
        xfull = np.zeros(shape, dtype=complex)
        xfull[: xp.shape[0]] = xp
        xfull *= self.nxq
        return self.planner.execute("irfft", xfull, axis=0, nout=self.nxq)

    def _x_stage_to_spectral(self, phys: np.ndarray, k: int) -> np.ndarray:
        """Forward x transform, truncated to the stored modes."""
        xh = self.planner.execute("rfft", phys, axis=0)
        xh = xh[: self.mx]  # truncate pad (+ Nyquist); stays contiguous
        xh /= self.nxq
        return xh

    def _z_stage_to_spectral(self, zp: np.ndarray, k: int) -> np.ndarray:
        """Forward z transform, truncated to the Nyquist-free modes."""
        zh = self.planner.execute("fft", zp, axis=1)
        zh /= self.nzq
        if self.drop_nyquist:
            zh = _extract_fft_modes(zh, self.nz, axis=1)
        else:
            zh = self._truncate_full_spectrum(zh, axis=1)
        return zh

    # ------------------------------------------------------------------
    # helpers for the Nyquist-keeping variant (P3DFFT layout)
    # ------------------------------------------------------------------

    def _pad_full_spectrum(self, zp: np.ndarray, npoints: int, axis: int) -> np.ndarray:
        if npoints == self.nz:
            return zp
        raise NotImplementedError("dealiasing requires the Nyquist-free layout")

    def _truncate_full_spectrum(self, zh: np.ndarray, axis: int) -> np.ndarray:
        return zh

    # ------------------------------------------------------------------
    # benchmark entry point (Table 6)
    # ------------------------------------------------------------------

    def fft_cycle(self, spec: np.ndarray) -> np.ndarray:
        """One parallel-FFT benchmark cycle: 4 transposes + 4 FFT stages.

        Matches the paper's Table 6 protocol: the data is transformed in
        two directions only (no y transform) and comes back spectral.
        """
        return self.from_physical(self.to_physical(spec))

    def plan(self, probe: np.ndarray | None = None, wisdom=None) -> dict[str, TransposeMethod]:
        """Collectively measure transpose methods and fix the best ones.

        ``wisdom`` (or the ``REPRO_WISDOM`` default) makes the choice
        persistent: a warmed machine re-plans without re-timing.
        """
        d = self.decomp
        if probe is None:
            probe = np.zeros(d.y_pencil_shape, dtype=complex)
        choice_yz = self.t_yz.plan(probe, wisdom=wisdom)
        self.t_zy.method = choice_yz
        probe_zx = np.zeros(d.z_pencil_shape_phys, dtype=complex)
        choice_zx = self.t_zx.plan(probe_zx, wisdom=wisdom)
        self.t_xz.method = choice_zx
        return {"CommB": choice_yz, "CommA": choice_zx}

    # ------------------------------------------------------------------
    # accounting (the §4.4 memory claim)
    # ------------------------------------------------------------------

    def work_buffer_elements(self) -> int:
        """Peak intermediate size: one padded z-pencil block (~1x input)."""
        return int(np.prod(self.decomp.z_pencil_shape_phys))

    def input_elements(self) -> int:
        return int(np.prod(self.decomp.y_pencil_shape))
