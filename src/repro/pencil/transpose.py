"""Global pencil transposes over sub-communicators (paper §4.3).

A global transpose redistributes a 3-D block: the axis that was local
becomes distributed and vice versa.  Concretely, each rank

1. splits its local array into ``P`` chunks along the axis that is about
   to become distributed,
2. exchanges chunks all-to-all within the sub-communicator,
3. concatenates the received chunks along the axis that becomes local.

Like FFTW 3.3's transpose planner, two implementations are available —
one MPI_alltoall-style collective and one pairwise MPI_sendrecv loop —
and a measuring planner picks whichever is faster on this machine for
this shape ("multiple implementations of the global transposes are
tested ... the implementation with the best performance on simple tests
is selected", §4.3).
"""

from __future__ import annotations

import enum
import time

import numpy as np

from repro.mpi.simmpi import Communicator


class TransposeMethod(enum.Enum):
    ALLTOALL = "alltoall"
    PAIRWISE = "pairwise_sendrecv"


class GlobalTranspose:
    """One direction of a pencil transpose bound to a sub-communicator.

    Parameters
    ----------
    comm:
        The sub-communicator (CommA or CommB) carrying the exchange.
    split_axis:
        Axis of the *input* that becomes distributed (chunked for sends).
    concat_axis:
        Axis of the *output* along which received chunks are concatenated
        (the axis that becomes local).
    split_sizes:
        Optional explicit chunk sizes along ``split_axis`` (block sizes of
        the receivers); defaults to near-equal blocks.
    method:
        Fixed method, or None to let :meth:`plan` measure and choose.
    """

    def __init__(
        self,
        comm: Communicator,
        split_axis: int,
        concat_axis: int,
        split_sizes: list[int] | None = None,
        method: TransposeMethod | None = None,
    ) -> None:
        self.comm = comm
        self.split_axis = split_axis
        self.concat_axis = concat_axis
        self.split_sizes = split_sizes
        self.method = method or TransposeMethod.ALLTOALL
        self.measured: dict[str, float] = {}

    # ------------------------------------------------------------------

    def _chunks(self, a: np.ndarray) -> list[np.ndarray]:
        p = self.comm.size
        n = a.shape[self.split_axis]
        if self.split_sizes is not None:
            if len(self.split_sizes) != p or sum(self.split_sizes) != n:
                raise ValueError(
                    f"split_sizes {self.split_sizes} incompatible with extent {n} over {p}"
                )
            bounds = np.concatenate([[0], np.cumsum(self.split_sizes)])
            return [
                np.ascontiguousarray(
                    a.take(range(bounds[i], bounds[i + 1]), axis=self.split_axis)
                )
                for i in range(p)
            ]
        from repro.pencil.decomp import block_slices

        slices = block_slices(n, p)
        idx: list[slice | None] = [slice(None)] * a.ndim
        out = []
        for s in slices:
            idx[self.split_axis] = s
            out.append(np.ascontiguousarray(a[tuple(idx)]))
        return out

    def _exchange_alltoall(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        return self.comm.alltoall(chunks)

    def _exchange_pairwise(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        """Pairwise sendrecv rounds (XOR schedule when P is a power of two,
        shifted ring otherwise)."""
        comm = self.comm
        p = comm.size
        received: list[np.ndarray | None] = [None] * p
        received[comm.rank] = chunks[comm.rank]
        for step in range(1, p):
            if p & (p - 1) == 0:
                peer = comm.rank ^ step
            else:
                peer = (comm.rank + step) % p
            sendpeer = peer if p & (p - 1) == 0 else (comm.rank - step) % p
            if p & (p - 1) == 0:
                received[peer] = comm.sendrecv(chunks[peer], dest=peer, source=peer, tag=step)
            else:
                received[sendpeer] = comm.sendrecv(
                    chunks[peer], dest=peer, source=sendpeer, tag=step
                )
        return received  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def execute(self, a: np.ndarray) -> np.ndarray:
        """Perform the transpose on this rank's block."""
        chunks = self._chunks(a)
        if self.method is TransposeMethod.ALLTOALL:
            received = self._exchange_alltoall(chunks)
        else:
            received = self._exchange_pairwise(chunks)
        return np.concatenate(received, axis=self.concat_axis)

    def plan(self, probe: np.ndarray) -> TransposeMethod:
        """Measure both methods on a probe array and fix the faster one.

        Collective: every member must call ``plan`` together.
        """
        timings = {}
        for method in TransposeMethod:
            self.method = method
            self.comm.barrier()
            t0 = time.perf_counter()
            self.execute(probe)
            self.comm.barrier()
            local = time.perf_counter() - t0
            timings[method.value] = max(self.comm.allgather(local))
        self.measured = timings
        best = min(timings, key=timings.get)
        self.method = TransposeMethod(best)
        return self.method
