"""Global pencil transposes over sub-communicators (paper §4.3).

A global transpose redistributes a 3-D block: the axis that was local
becomes distributed and vice versa.  Concretely, each rank

1. splits its local array into ``P`` chunks along the axis that is about
   to become distributed,
2. exchanges chunks all-to-all within the sub-communicator,
3. concatenates the received chunks along the axis that becomes local.

Like FFTW 3.3's transpose planner, multiple implementations are
available and a measuring planner picks whichever is fastest on this
machine for this shape ("multiple implementations of the global
transposes are tested ... the implementation with the best performance
on simple tests is selected", §4.3):

* ``ALLTOALL`` — one blocking collective exchange,
* ``PAIRWISE`` — a pairwise MPI_sendrecv loop (XOR schedule when P is a
  power of two, shifted ring otherwise),
* ``PIPELINED`` — a staged :class:`PipelinedTranspose`: the third axis
  (local on both sides of the transpose) is cut into slabs, each slab's
  exchange is posted nonblocking (``ialltoallv``) and the wait for slab
  *k* overlaps the post — and, through the ``pre``/``post`` compute
  hooks, the FFT work — of the neighbouring slabs.

Send chunks are built into persistent, double-buffered contiguous
staging buffers instead of per-call slice copies, so the steady-state
transpose cycle performs zero workspace allocations.  Two parities
suffice for the blocking methods because both are synchronizing: a rank
cannot finish exchange ``N+1`` before every peer has deposited into it,
which it only does after consuming (concatenating) exchange ``N`` — so
by the time parity ``N % 2`` is refilled for exchange ``N+2``, no peer
still reads it.  The pipelined method has no such global synchronization
and instead runs the explicit ack credit protocol of
:meth:`repro.mpi.simmpi.Request.wait_acks`.

Set ``REPRO_TRANSPOSE_METHOD`` (``alltoall`` / ``pairwise_sendrecv`` /
``pipelined``) to pin the method: :meth:`GlobalTranspose.plan` then
skips measurement and deterministically applies the pin on every rank.
Without a pin, :meth:`plan` consults the persistent
:class:`~repro.tuning.WisdomStore` (rank 0 looks up, the decision is
broadcast, so hit/miss patterns can never desynchronize the collective)
and only measures on a true miss — the FFTW §4.3 "plan once per
machine" contract.

**Mixed-precision wire mode** (``wire="mixed"``): float64/complex128
payloads are staged down to float32/complex64 before the exchange and
accumulated back at full precision during assembly (``np.copyto`` /
``np.concatenate`` up-cast on the receive side), halving the bytes on
the wire at a relative error bounded by the float32 epsilon per pass.
The staging pools were already keyed by dtype, so the narrow buffers
slot in unchanged; CRC integrity envelopes checksum whatever payload is
posted, and the overlap counters see the (halved) wire bytes.

Both staging pools (parity pairs and pipelined slab buffers) are LRU
caches capped at :data:`MAX_POOL_ENTRIES` distinct (shape, dtype) keys —
mixed precision doubles the dtype churn, and an unbounded pool would
leak across shape sweeps.  Evictions only drop this rank's reference;
in-flight receivers keep the underlying arrays alive.
"""

from __future__ import annotations

import enum
import os
import time
from collections import OrderedDict

import numpy as np

from repro.instrument import OverlapCounters, PrecisionCounters, SectionTimers
from repro.mpi.simmpi import Communicator


class TransposeMethod(enum.Enum):
    ALLTOALL = "alltoall"
    PAIRWISE = "pairwise_sendrecv"
    PIPELINED = "pipelined"


#: env var pinning the transpose method (checked by :meth:`GlobalTranspose.plan`)
ENV_METHOD = "REPRO_TRANSPOSE_METHOD"

#: LRU cap on distinct (shape, dtype) keys per staging/slab buffer pool
MAX_POOL_ENTRIES = 8

#: full-precision dtype -> wire dtype of the mixed-precision mode
_WIRE_NARROW = {
    np.dtype(np.float64): np.dtype(np.float32),
    np.dtype(np.complex128): np.dtype(np.complex64),
}


class GlobalTranspose:
    """One direction of a pencil transpose bound to a sub-communicator.

    Parameters
    ----------
    comm:
        The sub-communicator (CommA or CommB) carrying the exchange.
    split_axis:
        Axis of the *input* that becomes distributed (chunked for sends).
    concat_axis:
        Axis of the *output* along which received chunks are concatenated
        (the axis that becomes local).
    split_sizes:
        Optional explicit chunk sizes along ``split_axis`` (block sizes of
        the receivers); defaults to near-equal blocks.
    method:
        Fixed method, or None to let :meth:`plan` measure and choose.
    stages:
        Slab count of the pipelined method (bounded by the stage-axis
        extent; more stages expose more overlap at smaller messages).
    timers:
        Optional :class:`SectionTimers`; the pipelined path times hidden
        compute under the nested ``overlap`` section and emits comm-lane
        trace spans through ``timers.tracer``.
    overlap:
        Optional :class:`OverlapCounters` receiving posted / overlapped
        bytes and wait time from the pipelined path.
    counters:
        Optional :class:`~repro.instrument.TransformCounters`; staging
        buffers are registered as pipeline workspace so the
        zero-allocation invariant covers them.
    wire:
        ``"full"`` (default) stages payloads at their own dtype;
        ``"mixed"`` down-casts float64/complex128 to float32/complex64
        on the wire, with full-precision accumulation on assembly.
    precision:
        Optional :class:`~repro.instrument.PrecisionCounters` receiving
        the wire-vs-full byte accounting.
    """

    def __init__(
        self,
        comm: Communicator,
        split_axis: int,
        concat_axis: int,
        split_sizes: list[int] | None = None,
        method: TransposeMethod | None = None,
        stages: int = 4,
        timers: SectionTimers | None = None,
        overlap: OverlapCounters | None = None,
        counters=None,
        wire: str = "full",
        precision: PrecisionCounters | None = None,
    ) -> None:
        if wire not in ("full", "mixed"):
            raise ValueError(f"wire must be 'full' or 'mixed', got {wire!r}")
        self.comm = comm
        self.split_axis = split_axis
        self.concat_axis = concat_axis
        self.split_sizes = split_sizes
        self.method = method or TransposeMethod.ALLTOALL
        self.measured: dict[str, float] = {}
        self.timers = timers
        self.overlap = overlap
        self.counters = counters
        self.wire = wire
        self.precision = precision
        #: staging-allocation census: ``staging_allocs`` counts every
        #: allocation ever made (frozen after warm-up on a fixed shape
        #: set), ``staging_bytes`` the *live* pool footprint (evictions
        #: subtract), ``staging_evictions`` the LRU drops
        self.staging_allocs = 0
        self.staging_bytes = 0
        self.staging_evictions = 0
        self._staging: OrderedDict[tuple, list[list[np.ndarray]]] = OrderedDict()
        self._parity: dict[tuple, int] = {}
        self.pipelined = PipelinedTranspose(self, stages=stages)

    def _wire_dtype(self, dtype) -> np.dtype:
        """The dtype staged on the wire for a payload of ``dtype``."""
        dtype = np.dtype(dtype)
        if self.wire == "mixed":
            return _WIRE_NARROW.get(dtype, dtype)
        return dtype

    # ------------------------------------------------------------------
    # send-side staging
    # ------------------------------------------------------------------

    def _split_extents(self, n: int) -> list[int]:
        p = self.comm.size
        if self.split_sizes is not None:
            if len(self.split_sizes) != p or sum(self.split_sizes) != n:
                raise ValueError(
                    f"split_sizes {self.split_sizes} incompatible with extent {n} over {p}"
                )
            return list(self.split_sizes)
        from repro.pencil.decomp import block_size

        return [block_size(n, p, i) for i in range(p)]

    def _alloc_staging(self, shape: tuple[int, ...], dtype) -> list[list[np.ndarray]]:
        """One pair of parity buffers, each pre-cut into per-destination views."""
        extents = self._split_extents(shape[self.split_axis])
        pair: list[list[np.ndarray]] = []
        for _ in range(2):
            total = sum(
                int(np.prod([e if ax == self.split_axis else s
                             for ax, s in enumerate(shape)]))
                for e in extents
            )
            buf = np.empty(total, dtype=dtype)
            self.staging_allocs += 1
            self.staging_bytes += buf.nbytes
            if self.counters is not None:
                self.counters.count_workspace(buf)
            views, offset = [], 0
            for e in extents:
                chunk_shape = tuple(
                    e if ax == self.split_axis else s for ax, s in enumerate(shape)
                )
                n = int(np.prod(chunk_shape))
                views.append(buf[offset : offset + n].reshape(chunk_shape))
                offset += n
            pair.append(views)
        return pair

    def _evict_lru(self) -> None:
        """Drop the least-recently-used staging pair beyond the pool cap.

        Receivers still holding views of an evicted parity buffer keep
        the array alive through their references; eviction only removes
        this rank's pooled handle, so the protocol stays correct.
        """
        while len(self._staging) > MAX_POOL_ENTRIES:
            old_key, old_pair = self._staging.popitem(last=False)
            self._parity.pop(old_key, None)
            self.staging_bytes -= sum(v.nbytes for views in old_pair for v in views)
            self.staging_evictions += 1

    def _chunks(self, a: np.ndarray) -> list[np.ndarray]:
        """Fill the next staging parity with per-destination chunks of ``a``
        (down-casting to the wire dtype in the same write under mixed
        precision)."""
        wire_dtype = self._wire_dtype(a.dtype)
        key = (a.shape, a.dtype)
        pair = self._staging.get(key)
        if pair is None:
            pair = self._alloc_staging(a.shape, wire_dtype)
            self._staging[key] = pair
            self._parity[key] = 0
            self._evict_lru()
        else:
            self._staging.move_to_end(key)
        parity = self._parity[key]
        self._parity[key] = parity ^ 1
        views = pair[parity]
        extents = self._split_extents(a.shape[self.split_axis])
        idx: list[slice] = [slice(None)] * a.ndim
        start = 0
        for view, e in zip(views, extents):
            idx[self.split_axis] = slice(start, start + e)
            np.copyto(view, a[tuple(idx)])
            start += e
        if self.precision is not None:
            self.precision.exchanges += 1
            self.precision.casts += wire_dtype != a.dtype
            self.precision.bytes_full += a.nbytes
            self.precision.bytes_wire += sum(v.nbytes for v in views)
        return views

    # ------------------------------------------------------------------
    # exchange implementations
    # ------------------------------------------------------------------

    def _exchange_alltoall(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        return self.comm.alltoall(chunks)

    def _exchange_pairwise(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        """Pairwise sendrecv rounds (XOR schedule when P is a power of two,
        shifted ring otherwise)."""
        comm = self.comm
        p = comm.size
        received: list[np.ndarray | None] = [None] * p
        received[comm.rank] = chunks[comm.rank]
        for step in range(1, p):
            if p & (p - 1) == 0:
                peer = comm.rank ^ step
            else:
                peer = (comm.rank + step) % p
            sendpeer = peer if p & (p - 1) == 0 else (comm.rank - step) % p
            if p & (p - 1) == 0:
                received[peer] = comm.sendrecv(chunks[peer], dest=peer, source=peer, tag=step)
            else:
                received[sendpeer] = comm.sendrecv(
                    chunks[peer], dest=peer, source=sendpeer, tag=step
                )
        return received  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def execute(self, a: np.ndarray) -> np.ndarray:
        """Perform the transpose on this rank's block (output is a fresh array)."""
        if self.method is TransposeMethod.PIPELINED:
            return self.pipelined.execute(a)
        chunks = self._chunks(a)
        if self.method is TransposeMethod.ALLTOALL:
            received = self._exchange_alltoall(chunks)
        else:
            received = self._exchange_pairwise(chunks)
        # assembly up-casts back to the payload dtype when the wire ran
        # narrow (full-precision accumulation downstream of the exchange)
        return np.concatenate(received, axis=self.concat_axis, dtype=a.dtype)

    def _wisdom_key(self, probe: np.ndarray) -> list:
        return [
            self.comm.size,
            self.split_axis,
            self.concat_axis,
            self.split_sizes,
            list(probe.shape),
            str(probe.dtype),
            self.wire,
        ]

    def plan(self, probe: np.ndarray, wisdom=None) -> TransposeMethod:
        """Measure every method on a probe array and fix the fastest one.

        Collective: every member must call ``plan`` together.  When
        ``REPRO_TRANSPOSE_METHOD`` is set, measurement is skipped and the
        pinned method applied deterministically on every rank (the env is
        process-wide, so the choice is trivially collective).  Otherwise
        the wisdom store is consulted first — rank 0 alone looks up and
        the verdict is broadcast, so a store present on some ranks'
        filesystem view but not others can never desynchronize the
        collective — and only a true miss measures (recorded by rank 0).
        ``wisdom=None`` defers to the ``REPRO_WISDOM`` selection.
        """
        pinned = os.environ.get(ENV_METHOD)
        if pinned:
            self.method = TransposeMethod(pinned)
            self.measured = {}
            return self.method
        from repro.tuning import MEASURE_STATS, default_store

        wisdom = wisdom if wisdom is not None else default_store()
        key = self._wisdom_key(probe)
        hit = None
        if wisdom is not None:
            if self.comm.rank == 0:
                entry = wisdom.lookup("transpose", key)
                value = entry.get("method") if entry else None
            else:
                value = None
            value = self.comm.bcast(value, root=0)
            if value in (m.value for m in TransposeMethod):
                hit = TransposeMethod(value)
        if hit is not None:
            self.method = hit
            self.measured = {}
            return self.method
        timings = {}
        for method in TransposeMethod:
            self.method = method
            self.comm.barrier()
            t0 = time.perf_counter()
            self.execute(probe)
            self.comm.barrier()
            local = time.perf_counter() - t0
            timings[method.value] = max(self.comm.allgather(local))
            MEASURE_STATS.transpose_methods_timed += 1
        self.measured = timings
        best = min(timings, key=timings.get)
        self.method = TransposeMethod(best)
        if wisdom is not None and self.comm.rank == 0:
            wisdom.record("transpose", key, {"method": best}, timings)
        return self.method


class PipelinedTranspose:
    """Staged transpose overlapping each slab's exchange with compute.

    The stage axis — ``3 - split_axis - concat_axis``, the axis local on
    both sides of the transpose — is cut into ``stages`` near-equal
    slabs.  Slab ``k``'s exchange is posted (``ialltoallv``) before slab
    ``k-1``'s is waited on, so the wire time of one slab hides behind
    the staging/assembly — and, with the compute hooks, the FFT work —
    of its neighbours:

    * ``pre(slab, k)`` — compute-then-post (the ``from_physical``
      direction): transforms slab ``k`` *before* its chunks are posted,
      running while exchange ``k-1`` is still in flight.
    * ``post(slab, k)`` — transpose-then-compute (the ``to_physical``
      direction): transforms the assembled slab ``k`` while exchange
      ``k+1`` is in flight.

    Buffer ownership: posted chunks live in the owning
    :class:`GlobalTranspose`'s double-buffered staging; a parity buffer
    is refilled for slab ``k+1`` only after ``wait_acks`` confirms every
    receiver consumed slab ``k-1`` (the ack credit protocol — queued
    payloads travel by reference, so consumption must be acknowledged,
    not assumed).  Received chunks are assembled straight into the
    caller-owned output array (or a persistent slab buffer when a
    ``post`` hook reshapes the data), so the steady state allocates
    nothing beyond the returned output.

    Results are bit-for-bit identical to the synchronous methods: the
    same chunks travel, assembly is pure ``copyto``, and the hooks
    process exactly the slab the synchronous path would (1-D FFTs are
    independent per pencil, so slab-wise transforms reproduce the
    full-array transforms bitwise).
    """

    def __init__(self, base: GlobalTranspose, stages: int = 4) -> None:
        self.base = base
        self.stages = max(1, int(stages))
        self._slab_buffers: OrderedDict[tuple, np.ndarray] = OrderedDict()

    # -- geometry --------------------------------------------------------

    @property
    def stage_axis(self) -> int:
        return 3 - self.base.split_axis - self.base.concat_axis

    def _layout_for(self, posted: np.ndarray) -> tuple[list[int], list[int]]:
        """Per-source concat extents and offsets.

        One tiny int allgather per execute — deliberately *not* cached:
        a cache key would be built from per-rank local extents, and any
        rank-dependent hit/miss pattern would desynchronize the
        collective.
        """
        sizes = [
            int(s) for s in self.base.comm.allgather(posted.shape[self.base.concat_axis])
        ]
        offsets, acc = [], 0
        for s in sizes:
            offsets.append(acc)
            acc += s
        return sizes, offsets

    def _slab_buffer(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Persistent assembly buffer for the transposed slab (post-hook
        path); pooled LRU under the same :data:`MAX_POOL_ENTRIES` cap as
        the parity staging."""
        key = (shape, dtype)
        base = self.base
        buf = self._slab_buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            base.staging_allocs += 1
            base.staging_bytes += buf.nbytes
            if base.counters is not None:
                base.counters.count_workspace(buf)
            self._slab_buffers[key] = buf
            while len(self._slab_buffers) > MAX_POOL_ENTRIES:
                _, old = self._slab_buffers.popitem(last=False)
                base.staging_bytes -= old.nbytes
                base.staging_evictions += 1
        else:
            self._slab_buffers.move_to_end(key)
        return buf

    # -- hook timing -----------------------------------------------------

    def _run_hook(self, hook, slab: np.ndarray, k: int, in_flight: bool):
        base = self.base
        t0 = time.perf_counter()
        if in_flight and base.timers is not None:
            with base.timers.section(SectionTimers.OVERLAP):
                out = hook(slab, k)
        else:
            out = hook(slab, k)
        if in_flight and base.overlap is not None:
            base.overlap.overlap_seconds += time.perf_counter() - t0
        return out

    # -- the staged exchange ---------------------------------------------

    def execute(self, a: np.ndarray, pre=None, post=None) -> np.ndarray:
        """Transpose ``a`` (optionally fused with per-slab compute hooks)."""
        base = self.base
        comm = base.comm
        if a.ndim != 3:
            raise ValueError("pipelined transpose needs a 3-D block")
        stage_ax = self.stage_axis
        from repro.pencil.decomp import block_slices

        extent = a.shape[stage_ax]
        nstages = max(1, min(self.stages, extent))
        slabs = block_slices(extent, nstages)
        reqs: list = [None] * nstages
        t_posts = [0.0] * nstages
        out: np.ndarray | None = None
        my_split = 0
        sizes: list[int] = []
        offsets: list[int] = []

        def posted_slab(k: int) -> np.ndarray:
            idx: list[slice] = [slice(None)] * 3
            idx[stage_ax] = slabs[k]
            slab = a[tuple(idx)]
            if pre is not None:
                in_flight = any(r is not None for r in reqs[:k])
                slab = self._run_hook(pre, slab, k, in_flight)
            return slab

        def post_stage(k: int) -> np.ndarray:
            nonlocal my_split, sizes, offsets
            slab = posted_slab(k)
            if k == 0:
                sizes, offsets = self._layout_for(slab)
                my_split = base._split_extents(slab.shape[base.split_axis])[comm.rank]
            chunks = base._chunks(slab)
            t_posts[k] = time.perf_counter()
            reqs[k] = comm.ialltoallv(chunks)
            if base.overlap is not None:
                base.overlap.posts += 1
                base.overlap.bytes_posted += reqs[k].posted_bytes
            return slab

        def recv_views(target: np.ndarray, k_slice_in_stage) -> list[np.ndarray]:
            views = []
            for src in range(comm.size):
                idx: list[slice] = [slice(None)] * 3
                idx[base.concat_axis] = slice(offsets[src], offsets[src] + sizes[src])
                if k_slice_in_stage is not None:
                    idx[stage_ax] = k_slice_in_stage
                views.append(target[tuple(idx)])
            return views

        first_slab = post_stage(0)
        if post is None:
            # assemble every slab straight into the final output
            out_shape = list(first_slab.shape)
            out_shape[base.split_axis] = my_split
            out_shape[base.concat_axis] = sum(sizes)
            out_shape[stage_ax] = extent
            out = np.empty(tuple(out_shape), dtype=first_slab.dtype)

        for k in range(nstages):
            if k + 1 < nstages:
                if k >= 1:
                    reqs[k - 1].wait_acks()  # free the parity buffer k+1 reuses
                post_stage(k + 1)
            req = reqs[k]
            if post is None:
                req.wait(out=recv_views(out, slabs[k]))
            else:
                slab_extent = slabs[k].stop - slabs[k].start
                t_shape = [0, 0, 0]
                t_shape[base.split_axis] = my_split
                t_shape[base.concat_axis] = sum(sizes)
                t_shape[stage_ax] = slab_extent
                slab_buf = self._slab_buffer(tuple(t_shape), a.dtype)
                req.wait(out=recv_views(slab_buf, None))
                in_flight = k + 1 < nstages
                y = self._run_hook(post, slab_buf, k, in_flight)
                if out is None:
                    out_shape = list(y.shape)
                    out_shape[stage_ax] = extent
                    out = np.empty(tuple(out_shape), dtype=y.dtype)
                idx: list[slice] = [slice(None)] * 3
                idx[stage_ax] = slabs[k]
                np.copyto(out[tuple(idx)], y)
            if base.overlap is not None:
                base.overlap.waits += 1
                base.overlap.bytes_completed += req.posted_bytes
                base.overlap.bytes_overlapped += req.overlapped_bytes
                base.overlap.wait_seconds += req.waited_s
            tracer = base.timers.tracer if base.timers is not None else None
            if tracer is not None:
                tracer.add_complete(
                    f"ialltoallv s{k}",
                    t_posts[k],
                    time.perf_counter() - t_posts[k],
                    tid=1,
                    cat="comm",
                )
        # drain the tail acks so the next call may refill every parity
        for req in reqs[max(0, nstages - 2) :]:
            req.wait_acks()
        assert out is not None
        return out
