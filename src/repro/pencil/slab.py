"""Slab (planar / 1-D) decomposition — the alternative the paper rejects.

§2.2: "This pencil decomposition is used rather than the alternative
planar decomposition because it provides far greater flexibility with
respect to possible MPI communicator topologies and node counts."

A slab decomposition splits exactly one axis across all ranks:

* spectral state: x-modes split over P, z and y local,
* physical state: z split over P, x and y local,

with a *single* global transpose (over the world communicator) between
them.  Its two structural limits, demonstrated by tests and benches:

1. **rank-count ceiling** — P cannot exceed ``min(mx, nzq)``; the
   paper's production grid caps a slab code at ~5,120 ranks where the
   pencil code runs on 524,288 cores;
2. **monolithic all-to-all** — the one transpose spans all P ranks, so
   there is no node-local sub-communicator to exploit (the Table 5
   optimisation is unavailable).
"""

from __future__ import annotations

import numpy as np

from repro.fft.fourier import quadrature_points
from repro.instrument import SectionTimers
from repro.mpi.simmpi import Communicator
from repro.pencil.decomp import block_range
from repro.pencil.transpose import GlobalTranspose, TransposeMethod


def max_slab_ranks(nx: int, nz: int, dealias: bool = True) -> int:
    """The slab decomposition's hard rank-count ceiling for a grid."""
    mx = nx // 2
    nzq = quadrature_points(nz) if dealias else nz
    return min(mx, nzq)


class SlabTransforms:
    """Distributed spectral <-> physical transforms on a slab decomposition.

    Same mathematics as :class:`~repro.pencil.parallel_fft.PencilTransforms`
    (Nyquist-free, 3/2 dealiasing) with one world-communicator transpose.
    """

    def __init__(
        self,
        comm: Communicator,
        nx: int,
        ny: int,
        nz: int,
        dealias: bool = True,
        method: TransposeMethod | None = None,
        timers: SectionTimers | None = None,
    ) -> None:
        self.comm = comm
        self.nx, self.ny, self.nz = nx, ny, nz
        self.dealias = dealias
        self.timers = timers or SectionTimers()

        self.mx = nx // 2
        self.mz = nz - 1
        self.nxq = quadrature_points(nx) if dealias else nx
        self.nzq = quadrature_points(nz) if dealias else nz

        p = comm.size
        if p > max_slab_ranks(nx, nz, dealias):
            raise ValueError(
                f"slab decomposition cannot use {p} ranks on this grid "
                f"(ceiling: {max_slab_ranks(nx, nz, dealias)}) — "
                "the inflexibility the paper's pencil decomposition avoids"
            )
        self.x_slice = slice(*block_range(self.mx, p, comm.rank))
        self.zq_slice = slice(*block_range(self.nzq, p, comm.rank))
        kw = {"method": method} if method is not None else {}
        # one transpose: x-block spectral <-> z-block physical
        self.t_fwd = GlobalTranspose(comm, split_axis=1, concat_axis=0, **kw)
        self.t_bwd = GlobalTranspose(comm, split_axis=0, concat_axis=1, **kw)

    # ------------------------------------------------------------------

    @property
    def spectral_shape(self) -> tuple[int, int, int]:
        """(local x modes, all z modes, all y)."""
        return (self.x_slice.stop - self.x_slice.start, self.mz, self.ny)

    @property
    def physical_shape(self) -> tuple[int, int, int]:
        """(all x points, local z points, all y)."""
        return (self.nxq, self.zq_slice.stop - self.zq_slice.start, self.ny)

    def to_physical(self, spec: np.ndarray) -> np.ndarray:
        """Spectral slab -> physical slab: z-FFT local, one transpose, x-FFT."""
        from repro.fft.fourier import _insert_modes_c

        t = self.timers
        if spec.shape != self.spectral_shape:
            raise ValueError(f"expected {self.spectral_shape}, got {spec.shape}")
        with t.section(t.FFT):
            zfull = _insert_modes_c(spec, self.nzq, axis=1)
            zphys = np.fft.ifft(zfull * self.nzq, axis=1)  # (mx_loc, nzq, ny)
        with t.section(t.TRANSPOSE):
            xp = self.t_fwd.execute(zphys)  # (mx, nzq_loc, ny)
        with t.section(t.FFT):
            shape = list(xp.shape)
            shape[0] = self.nxq // 2 + 1
            xfull = np.zeros(shape, dtype=complex)
            xfull[: self.mx] = xp
            phys = np.fft.irfft(xfull * self.nxq, n=self.nxq, axis=0)
        return phys

    def from_physical(self, phys: np.ndarray) -> np.ndarray:
        from repro.fft.fourier import truncate_from_quadrature_c

        t = self.timers
        if phys.shape != self.physical_shape:
            raise ValueError(f"expected {self.physical_shape}, got {phys.shape}")
        with t.section(t.FFT):
            xh = np.fft.rfft(phys, axis=0) / self.nxq
            xh = np.ascontiguousarray(xh[: self.mx])
        with t.section(t.TRANSPOSE):
            zp = self.t_bwd.execute(xh)  # (mx_loc, nzq, ny)
        with t.section(t.FFT):
            zh = np.fft.fft(zp, axis=1) / self.nzq
            spec = truncate_from_quadrature_c(zh, self.nz, axis=1)
        return np.ascontiguousarray(spec)

    def fft_cycle(self, spec: np.ndarray) -> np.ndarray:
        return self.from_physical(self.to_physical(spec))
