"""Distributed channel DNS on the pencil decomposition.

Each SimMPI rank owns a y-pencil block of the spectral state (a slab of
(kx, kz) modes with all of y local), so the Helmholtz solves and the
whole Navier–Stokes time advance are rank-local — exactly the paper's
§2.2 design.  Only the nonlinear-term evaluation touches the network,
through the :class:`~repro.pencil.parallel_fft.PencilTransforms`
pipeline (4 global transposes per field per direction).

The distributed trajectory is bit-for-bit the serial one (up to FFT
round-off); ``tests/pencil/test_distributed.py`` pins that.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.initial import perturbed_state
from repro.core.solver import ChannelConfig
from repro.core.timestepper import ChannelState, IMEXStepper
from repro.core.velocity import recover_uw
from repro.instrument import SectionTimers
from repro.mpi.simmpi import Communicator
from repro.pencil.parallel_fft import PencilTransforms
from repro.pencil.transpose import TransposeMethod


class DistributedChannelDNS:
    """Per-rank distributed DNS driver (construct inside an SPMD function).

    Parameters
    ----------
    comm:
        World communicator of the SPMD program.
    config:
        The same :class:`~repro.core.solver.ChannelConfig` the serial
        driver takes.
    pa, pb:
        Process grid; ``pa * pb == comm.size``.
    telemetry:
        Optional structured run recording (:mod:`repro.telemetry`): a
        directory, :class:`~repro.telemetry.TelemetryConfig` or built
        :class:`~repro.telemetry.RunRecorder`.  Every rank writes its
        own ``telemetry-rankNNN.jsonl`` stream and ``trace-rankNNN.json``
        Chrome trace (merge with
        :func:`repro.telemetry.merge_traces`); rank 0 writes the run
        manifest.
    wire_precision:
        ``"full"`` (default) or ``"mixed"`` — mixed down-casts transpose
        payloads to float32/complex64 on the wire with float64
        accumulation in the solves; the trajectory then matches the
        full-precision one to the documented single-precision tolerance
        (DESIGN.md §6h), not bit-for-bit.
    """

    def __init__(
        self,
        comm: Communicator,
        config: ChannelConfig,
        pa: int,
        pb: int,
        method: TransposeMethod | None = None,
        telemetry=None,
        wire_precision: str = "full",
    ) -> None:
        if pa * pb != comm.size:
            raise ValueError(f"{pa} x {pb} != {comm.size} ranks")
        self.comm = comm
        self.config = config
        self.timers = SectionTimers()
        self.cart = comm.cart_create((pa, pb))
        self.grid = ChannelGrid(
            config.nx,
            config.ny,
            config.nz,
            lx=config.lx,
            lz=config.lz,
            degree=config.degree,
            stretch=config.stretch,
        )
        self.transforms = PencilTransforms(
            self.cart,
            config.nx,
            config.ny,
            config.nz,
            dealias=True,
            method=method,
            timers=self.timers,
            wire=wire_precision,
        )
        d = self.transforms.decomp
        self.decomp = d
        self.modes = self.grid.modes.slab(d.x_slice, d.z_spec_slice)
        self.stepper = IMEXStepper(
            self.grid,
            nu=config.nu,
            dt=config.dt,
            forcing=config.forcing,
            scheme=config.scheme,
            modes=self.modes,
            backend=self.transforms,
            reduce_max=lambda x: self.comm.allreduce(x, op=max),
            timers=self.timers,
        )
        self.state: ChannelState | None = None
        self.step_count = 0
        self.recorder = None
        self.streaming = None
        self._streaming_every = 0
        if telemetry is not None:
            from repro.telemetry import RunRecorder

            rec = (
                telemetry
                if isinstance(telemetry, RunRecorder)
                else RunRecorder(telemetry, rank=comm.rank, nranks=comm.size)
            )
            rec.attach(self)

    # ------------------------------------------------------------------

    def scatter_state(self, full: ChannelState) -> ChannelState:
        """This rank's slab of a full (serial-layout) state."""
        d = self.decomp
        owns_mean = self.modes.owns_mean
        return ChannelState(
            v=np.ascontiguousarray(full.v[d.x_slice, d.z_spec_slice]),
            omega_y=np.ascontiguousarray(full.omega_y[d.x_slice, d.z_spec_slice]),
            u00=full.u00.copy() if owns_mean else None,
            w00=full.w00.copy() if owns_mean else None,
            time=full.time,
        )

    def initialize(self, full_state: ChannelState | None = None) -> None:
        """Scatter an initial condition (default: the seeded perturbed state,
        generated identically on every rank)."""
        if full_state is None:
            cfg = self.config
            full_state = perturbed_state(
                self.grid,
                nu=cfg.nu,
                amplitude=cfg.init_amplitude,
                modes=cfg.init_modes,
                seed=cfg.seed,
                base=cfg.init_base,
                forcing=cfg.forcing,
            )
        state = self.scatter_state(full_state)
        state.u, state.w = recover_uw(
            self.modes, self.stepper.ops, state.v, state.omega_y, state.u00, state.w00
        )
        self.state = state

    def attach_streaming(self, stats=None, *, every: int = 1):
        """Attach a streaming-statistics accumulator (collective: every
        rank must attach with the same ``every`` — sampling reduces).

        See :meth:`repro.core.solver.ChannelDNS.attach_streaming`; here
        the accumulator holds this rank's partial sums, merged through
        the communicator on publish/checkpoint.  Returns the accumulator.
        """
        if stats is None:
            from repro.serving import StreamingStatistics

            stats = StreamingStatistics(self)
        self.streaming = stats
        self._streaming_every = max(1, int(every))
        return stats

    def step(self) -> None:
        if self.state is None:
            raise RuntimeError("call initialize() first")
        # the stepper shares self.timers: ns_advance covers the implicit
        # solves, fft/transpose come from the pencil pipeline, and
        # nonlinear_products spans the whole dealiased evaluation
        self.state = self.stepper.step(self.state)
        self.step_count += 1
        if self.streaming is not None and self.step_count % self._streaming_every == 0:
            with self.timers.section(self.timers.STATS):
                self.streaming.sample(self.state)
        if self.recorder is not None:
            self.recorder.record_step(self)

    def finalize_telemetry(self) -> None:
        """Close the attached recorder (summary record + final trace)."""
        if self.recorder is not None:
            self.recorder.close()

    def run(self, nsteps: int, controllers=()) -> None:
        """Advance ``nsteps``; ``controllers`` follow the serial protocol
        (e.g. a :class:`~repro.core.health.HealthMonitor` — its checks
        reduce globally, so every rank trips together)."""
        for _ in range(nsteps):
            self.step()
            for ctrl in controllers:
                ctrl(self)

    # ------------------------------------------------------------------

    def gather_state(self) -> ChannelState | None:
        """Reassemble the full state on world rank 0 (None elsewhere)."""
        s = self.state
        if s is None:
            raise RuntimeError("call initialize() first")
        pieces = self.comm.gather(
            (self.decomp.a, self.decomp.b, s.v, s.omega_y, s.u00, s.w00)
        )
        if pieces is None:
            return None
        g = self.grid
        full_v = np.zeros(g.spectral_shape, complex)
        full_o = np.zeros(g.spectral_shape, complex)
        u00 = w00 = None
        from repro.pencil.decomp import block_range

        for a, b, v, o, pu, pw in pieces:
            xs = slice(*block_range(self.transforms.mx, self.transforms.pa, a))
            zs = slice(*block_range(self.transforms.mz, self.transforms.pb, b))
            full_v[xs, zs] = v
            full_o[xs, zs] = o
            if pu is not None:
                u00, w00 = pu, pw
        full = ChannelState(v=full_v, omega_y=full_o, u00=u00, w00=w00, time=s.time)
        ops = self.stepper.ops
        full.u, full.w = recover_uw(g.modes, ops, full.v, full.omega_y, u00, w00)
        return full

    def divergence_norm(self) -> float:
        """Global max collocated divergence."""
        from repro.core.velocity import divergence

        s = self.state
        if s is None:
            raise RuntimeError("call initialize() first")
        local = float(
            np.abs(divergence(self.modes, self.stepper.ops, s.u, s.v, s.w)).max()
        )
        return self.comm.allreduce(local, op=max)

    def cfl_number(self) -> float:
        return self.stepper.cfl_number()

    def set_dt(self, dt: float) -> None:
        """Change the timestep (refactors the implicit banded systems)."""
        self.stepper.set_dt(dt)

    def state_finite(self) -> bool:
        """Global finiteness of the prognostic arrays (watchdog hook)."""
        s = self.state
        if s is None:
            raise RuntimeError("call initialize() first")
        local = True
        for arr in (s.v, s.omega_y, s.u00, s.w00):
            if arr is not None and not np.all(np.isfinite(arr)):
                local = False
                break
        return bool(self.comm.allreduce(int(local), op=min))

    # ------------------------------------------------------------------
    # sharded checkpointing
    # ------------------------------------------------------------------

    def save_checkpoint(self, directory, keep: int = 3):
        """Collectively write one sharded snapshot (one shard per rank)."""
        from repro.core.checkpoint import ShardedCheckpointRotation

        return ShardedCheckpointRotation(directory, keep=keep).save(self)

    def load_checkpoint(self, directory, reshard: bool = False):
        """Restore the newest verifiable sharded snapshot, in place.

        ``reshard=True`` accepts snapshots written under a different
        process grid (decomposition-agnostic restore)."""
        from repro.core.checkpoint import ShardedCheckpointRotation

        return ShardedCheckpointRotation(directory).load_latest(self, reshard=reshard)


def run_supervised_spmd(
    nranks: int,
    config: ChannelConfig,
    pa: int,
    pb: int,
    n_steps: int,
    checkpoint_dir,
    *,
    checkpoint_every: int = 5,
    keep: int = 3,
    max_restarts: int = 3,
    fault_plans: Sequence = (),
    monitor_factory: Callable[[], Any] | None = None,
    method: TransposeMethod | None = None,
    timeout: float | None = None,
    counters=None,
    elastic: bool = False,
    integrity: bool = False,
    min_ranks: int = 1,
    timers: SectionTimers | None = None,
    telemetry=None,
    wire_precision: str = "full",
    grow_source=None,
    max_ranks: int | None = None,
    should_stop: Callable[[], Any] | None = None,
    on_shrink: Callable[[Sequence[int], Sequence[int]], Any] | None = None,
    streaming_every: int = 0,
    publish=None,
):
    """Job-level supervised restart loop for the distributed DNS.

    Launches the SPMD program; when a rank dies (injected
    :class:`~repro.mpi.simmpi.RankFailure`, collective failure, or
    watchdog trip) the whole job is torn down — exactly like a node
    failure killing an MPI allocation — and relaunched, resuming from
    the newest verifiable sharded snapshot under ``checkpoint_dir``.
    Attempt ``i`` uses ``fault_plans[i]`` when provided (so tests inject
    a fault on the first attempt and restart clean).  Returns
    ``(final_full_state, recovery_log)``; the log holds
    :class:`~repro.core.supervisor.RecoveryEvent` entries.

    With ``elastic=True`` a rank death instead surfaces as a
    :class:`~repro.mpi.simmpi.ShrinkRequired` carrying the agreed
    survivor list: the supervisor re-plans the process grid for
    ``P' = len(survivors)`` via :func:`~repro.pencil.decomp.choose_grid`,
    relaunches at the reduced size, and the program restores through the
    resharding reader — the campaign *shrinks and continues* instead of
    demanding its full allocation back.  Shrinks do not consume the
    ``max_restarts`` budget (they are capacity loss, not retry churn);
    ``min_ranks`` bounds how far the job may degrade.  ``integrity=True``
    additionally turns silent payload corruption into typed, restartable
    failures via the CRC envelope layer.  ``timeout=None`` uses the
    env-overridable SimMPI default join timeout.

    Because the sharded restore is bit-exact, the recovered trajectory is
    bit-for-bit the uninterrupted one — and a degraded run is bit-for-bit
    a fresh run launched at the shrunken size from the same snapshot —
    pinned by ``tests/pencil/test_checkpoint.py`` and
    ``tests/pencil/test_elastic.py``.

    Elastic *expansion* is the symmetric move: ``grow_source`` (an
    ``available()``/``claim(n)`` two-phase view of a shared rank pool,
    e.g. :class:`~repro.mpi.pool.LeaseGrowSource`) is probed by rank 0
    at every checkpoint boundary; when free ranks can take the job back
    toward its original ``nranks``, the decision is broadcast and every
    rank raises the same :class:`~repro.mpi.simmpi.GrowRequired` — no
    rank is inside a collective, so the teardown is clean.  The
    supervisor then atomically claims the ranks (a concurrent job may
    win the race, in which case the run simply resumes at its current
    size), re-plans the grid and resumes through the resharding reader.
    Because restores are bit-exact and the trajectory is grid-invariant,
    the grown run is bit-identical to an uninterrupted run at the grown
    grid (pinned by ``tests/pencil/test_elastic.py``).  Growth never
    exceeds ``max_ranks`` (default: the launched ``nranks`` — a job the
    scheduler placed *below* its request passes its full request here)
    and never consumes the restart budget.

    ``should_stop`` is the scheduler's preemption hook, probed (rank 0,
    then broadcast) at the same boundaries: a truthy return — the reason
    — makes every rank raise
    :class:`~repro.mpi.simmpi.PreemptRequired` *after* the boundary
    snapshot landed, so preemption never loses checkpointed work.  The
    exception propagates to the caller (the
    :class:`~repro.core.jobs.JobManager` requeues the job).
    ``on_shrink(dead, survivors)`` is called with the agreed world-rank
    sets on every shrink, letting a pool quarantine the backing ranks
    while the job keeps running.

    ``telemetry`` (a directory or
    :class:`~repro.telemetry.TelemetryConfig`) turns on structured run
    recording: each attempt writes per-rank streams and traces under
    ``<dir>/attempt-NN/``, and a job-level ``events.jsonl`` (``rank=-1``)
    records every restart, shrink, grow, preemption and give-up decision
    of this loop.

    ``streaming_every=N`` (N > 0) attaches a
    :class:`~repro.serving.StreamingStatistics` accumulator sampling
    every N steps; its merged sums ride along with every boundary
    snapshot as a checksummed sidecar and are restored on every
    restart/reshard, so a recovered (or shrunken/grown) run loses no
    accumulated samples.  ``publish`` names a
    :class:`~repro.serving.StatsStore` root (or passes one): on normal
    completion the merged time averages are published there, keyed by
    the run's config fingerprint and Re_tau.
    """
    from repro.core.checkpoint import ShardedCheckpointRotation
    from repro.core.health import HealthCheckError
    from repro.core.supervisor import RecoveryEvent
    from repro.mpi.simmpi import (
        GrowRequired,
        PreemptRequired,
        RankFailure,
        ShrinkRequired,
        SimMPIError,
        run_spmd,
    )
    from repro.pencil.decomp import choose_grid

    log: list[RecoveryEvent] = []
    if timers is None:
        timers = SectionTimers()
    mx, mz = config.nx // 2, config.nz - 1
    rank_cap = nranks if max_ranks is None else max(max_ranks, nranks)

    def _grow_target(cur: int) -> int | None:
        """Largest feasible world size to grow to, or None.

        Capped at ``rank_cap`` and at what the source reports free;
        stepped down until :func:`choose_grid` accepts the count (a
        prime count with tight extents may admit no grid)."""
        if grow_source is None or cur >= rank_cap:
            return None
        avail = grow_source.available()
        if avail <= 0:
            return None
        for n in range(min(rank_cap, cur + avail), cur, -1):
            try:
                choose_grid(n, mx, mz, config.ny)
            except ValueError:
                continue
            return n
        return None

    tel_cfg = None
    job_rec = None
    if telemetry is not None:
        from dataclasses import replace as _replace

        from repro.telemetry import RunRecorder, TelemetryConfig

        tel_cfg = TelemetryConfig.coerce(telemetry)
        job_rec = RunRecorder(tel_cfg, rank=-1, nranks=nranks)

    def _make_prog(cur_pa: int, cur_pb: int, cur_attempt: int):
        if tel_cfg is not None:
            import pathlib as _pathlib

            attempt_tel = _replace(
                tel_cfg,
                directory=_pathlib.Path(tel_cfg.directory) / f"attempt-{cur_attempt:02d}",
            )
        else:
            attempt_tel = None

        def _prog(comm: Communicator):
            dns = DistributedChannelDNS(
                comm, config, pa=cur_pa, pb=cur_pb, method=method,
                telemetry=attempt_tel, wire_precision=wire_precision,
            )
            if streaming_every:
                # attach before the restore so load_latest can hand the
                # accumulator its sidecar (no samples lost on restart)
                dns.attach_streaming(every=int(streaming_every))
            rotation = ShardedCheckpointRotation(
                checkpoint_dir, keep=keep, counters=counters
            )
            # rank 0 decides restore-vs-initialize and broadcasts it: per-rank
            # filesystem checks could race against rank 0 creating the first
            # snapshot directory and leave ranks in different branches
            resume = comm.bcast(
                bool(rotation.snapshot_dirs()) if comm.rank == 0 else None, root=0
            )
            if resume:
                rotation.load_latest(dns, reshard=elastic)
            else:
                dns.initialize()
                rotation.save(dns)  # baseline: a restart must have a target
            if counters is not None and dns.recorder is not None:
                dns.recorder.set_recovery_counters(counters)
            monitor = monitor_factory() if monitor_factory is not None else None
            probed = should_stop is not None or grow_source is not None
            try:
                while dns.step_count < n_steps:
                    dns.step()
                    if monitor is not None:
                        monitor(dns)
                    at_boundary = (
                        dns.step_count % checkpoint_every == 0
                        or dns.step_count >= n_steps
                    )
                    if at_boundary:
                        rotation.save(dns)
                    if at_boundary and probed and dns.step_count < n_steps:
                        # scheduler control point: the boundary snapshot just
                        # landed, so a stop here loses nothing.  Rank 0 decides,
                        # everyone hears the same verdict, nobody is inside a
                        # collective when the typed control exception fires.
                        decision = None
                        if comm.rank == 0:
                            reason = should_stop() if should_stop is not None else None
                            if reason:
                                decision = ("stop", str(reason))
                            else:
                                target = _grow_target(comm.size)
                                if target is not None:
                                    decision = ("grow", target)
                        decision = comm.bcast(decision, root=0)
                        if decision is not None:
                            kind, val = decision
                            if kind == "stop":
                                raise PreemptRequired(val, step=dns.step_count)
                            raise GrowRequired(val, comm.size)
                if (
                    publish is not None
                    and dns.streaming is not None
                    and dns.streaming.total_samples > 0
                ):
                    # collective merge; rank 0 publishes into the store
                    stats = dns.streaming.result()
                    if comm.rank == 0:
                        from repro.serving.store import StatsStore

                        target = (
                            publish
                            if isinstance(publish, StatsStore)
                            else StatsStore(publish)
                        )
                        target.publish(
                            stats,
                            config,
                            step_count=dns.step_count,
                            sim_time=float(dns.state.time),
                        )
                        dns.streaming.counters.publishes += 1
                return dns.gather_state()
            finally:
                # runs on the failure path too, so a crashed attempt still
                # leaves a summary record behind for the post-mortem
                dns.finalize_telemetry()

        return _prog

    cur_n, cur_pa, cur_pb = nranks, pa, pb
    attempt = 0
    restarts_used = 0
    try:
        while True:
            plan = fault_plans[attempt] if attempt < len(fault_plans) else None
            try:
                results = run_spmd(
                    cur_n,
                    _make_prog(cur_pa, cur_pb, attempt),
                    timeout=timeout,
                    fault_plan=plan,
                    elastic=elastic,
                    integrity=integrity,
                )
                if job_rec is not None:
                    job_rec.record_event(
                        "complete",
                        step=n_steps,
                        detail=f"finished on {cur_n} ranks ({cur_pa}x{cur_pb})",
                        attempt=attempt,
                        info={"ranks": cur_n, "restarts": restarts_used},
                    )
                return results[0], log
            except ShrinkRequired as exc:
                nsurv = len(exc.survivors)
                # quarantine the dead ranks even when the job is about to
                # give up — the pool must stay honest either way
                if on_shrink is not None:
                    on_shrink(exc.dead, exc.survivors)
                if nsurv < min_ranks:
                    if job_rec is not None:
                        job_rec.record_event(
                            "giving_up",
                            step=-1,
                            detail=f"{nsurv} survivors < min_ranks={min_ranks}",
                            attempt=attempt,
                            info={"ranks": nsurv},
                        )
                    raise
                with timers.section(SectionTimers.ELASTIC):
                    new_pa, new_pb = choose_grid(nsurv, mx, mz, config.ny)
                detail = (
                    f"{exc}; re-planned {cur_pa}x{cur_pb} -> "
                    f"{new_pa}x{new_pb} on {nsurv} ranks"
                )
                log.append(
                    RecoveryEvent(
                        step=-1,
                        kind="shrink",
                        detail=detail,
                        attempt=attempt,
                        info={"ranks": nsurv, "pa": new_pa, "pb": new_pb},
                    )
                )
                if job_rec is not None:
                    job_rec.record_event(
                        "shrink",
                        step=-1,
                        detail=detail,
                        attempt=attempt,
                        info={"ranks": nsurv, "pa": new_pa, "pb": new_pb},
                    )
                if counters is not None:
                    counters.shrinks += 1
                cur_n, cur_pa, cur_pb = nsurv, new_pa, new_pb
                attempt += 1
            except GrowRequired as exc:
                with timers.section(SectionTimers.ELASTIC):
                    claimed = grow_source.claim(exc.ranks - cur_n)
                    if claimed:
                        new_n = exc.ranks
                        new_pa, new_pb = choose_grid(new_n, mx, mz, config.ny)
                    else:
                        # a concurrent job won the free ranks between probe
                        # and commit: resume at the current size, no event
                        new_n, new_pa, new_pb = cur_n, cur_pa, cur_pb
                if claimed:
                    detail = (
                        f"{exc}; re-planned {cur_pa}x{cur_pb} -> "
                        f"{new_pa}x{new_pb} on {new_n} ranks"
                    )
                    log.append(
                        RecoveryEvent(
                            step=-1,
                            kind="grow",
                            detail=detail,
                            attempt=attempt,
                            info={"ranks": new_n, "pa": new_pa, "pb": new_pb},
                        )
                    )
                    if job_rec is not None:
                        job_rec.record_event(
                            "grow",
                            step=-1,
                            detail=detail,
                            attempt=attempt,
                            info={"ranks": new_n, "pa": new_pa, "pb": new_pb},
                        )
                    if counters is not None:
                        counters.grows += 1
                cur_n, cur_pa, cur_pb = new_n, new_pa, new_pb
                attempt += 1
            except PreemptRequired as exc:
                detail = f"PreemptRequired: {exc}"
                log.append(
                    RecoveryEvent(
                        step=exc.step, kind="preempted", detail=detail, attempt=attempt
                    )
                )
                if job_rec is not None:
                    job_rec.record_event(
                        "preempted",
                        step=exc.step,
                        detail=detail,
                        attempt=attempt,
                        info={"ranks": cur_n, "reason": exc.reason},
                    )
                raise
            except (SimMPIError, RankFailure, HealthCheckError) as exc:
                step = getattr(exc, "step", None) or -1
                detail = f"{type(exc).__name__}: {exc}"
                log.append(
                    RecoveryEvent(step=step, kind="restart", detail=detail, attempt=attempt)
                )
                if counters is not None:
                    counters.restarts += 1
                restarts_used += 1
                if restarts_used > max_restarts:
                    if job_rec is not None:
                        job_rec.record_event(
                            "giving_up",
                            step=step,
                            detail=f"restart budget exhausted after {detail}",
                            attempt=attempt,
                            info={"restarts": restarts_used, "max_restarts": max_restarts},
                        )
                    raise
                if job_rec is not None:
                    job_rec.record_event(
                        "restart",
                        step=step,
                        detail=detail,
                        attempt=attempt,
                        info={"restarts": restarts_used, "max_restarts": max_restarts},
                    )
                attempt += 1
    finally:
        if job_rec is not None:
            job_rec.close()
