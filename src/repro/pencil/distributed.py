"""Distributed channel DNS on the pencil decomposition.

Each SimMPI rank owns a y-pencil block of the spectral state (a slab of
(kx, kz) modes with all of y local), so the Helmholtz solves and the
whole Navier–Stokes time advance are rank-local — exactly the paper's
§2.2 design.  Only the nonlinear-term evaluation touches the network,
through the :class:`~repro.pencil.parallel_fft.PencilTransforms`
pipeline (4 global transposes per field per direction).

The distributed trajectory is bit-for-bit the serial one (up to FFT
round-off); ``tests/pencil/test_distributed.py`` pins that.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.initial import perturbed_state
from repro.core.solver import ChannelConfig
from repro.core.timestepper import ChannelState, IMEXStepper
from repro.core.velocity import recover_uw
from repro.instrument import SectionTimers
from repro.mpi.simmpi import Communicator
from repro.pencil.parallel_fft import PencilTransforms
from repro.pencil.transpose import TransposeMethod


class DistributedChannelDNS:
    """Per-rank distributed DNS driver (construct inside an SPMD function).

    Parameters
    ----------
    comm:
        World communicator of the SPMD program.
    config:
        The same :class:`~repro.core.solver.ChannelConfig` the serial
        driver takes.
    pa, pb:
        Process grid; ``pa * pb == comm.size``.
    """

    def __init__(
        self,
        comm: Communicator,
        config: ChannelConfig,
        pa: int,
        pb: int,
        method: TransposeMethod | None = None,
    ) -> None:
        if pa * pb != comm.size:
            raise ValueError(f"{pa} x {pb} != {comm.size} ranks")
        self.comm = comm
        self.config = config
        self.timers = SectionTimers()
        self.cart = comm.cart_create((pa, pb))
        self.grid = ChannelGrid(
            config.nx,
            config.ny,
            config.nz,
            lx=config.lx,
            lz=config.lz,
            degree=config.degree,
            stretch=config.stretch,
        )
        self.transforms = PencilTransforms(
            self.cart,
            config.nx,
            config.ny,
            config.nz,
            dealias=True,
            method=method,
            timers=self.timers,
        )
        d = self.transforms.decomp
        self.decomp = d
        self.modes = self.grid.modes.slab(d.x_slice, d.z_spec_slice)
        self.stepper = IMEXStepper(
            self.grid,
            nu=config.nu,
            dt=config.dt,
            forcing=config.forcing,
            scheme=config.scheme,
            modes=self.modes,
            backend=self.transforms,
            reduce_max=lambda x: self.comm.allreduce(x, op=max),
            timers=self.timers,
        )
        self.state: ChannelState | None = None
        self.step_count = 0

    # ------------------------------------------------------------------

    def scatter_state(self, full: ChannelState) -> ChannelState:
        """This rank's slab of a full (serial-layout) state."""
        d = self.decomp
        owns_mean = self.modes.owns_mean
        return ChannelState(
            v=np.ascontiguousarray(full.v[d.x_slice, d.z_spec_slice]),
            omega_y=np.ascontiguousarray(full.omega_y[d.x_slice, d.z_spec_slice]),
            u00=full.u00.copy() if owns_mean else None,
            w00=full.w00.copy() if owns_mean else None,
            time=full.time,
        )

    def initialize(self, full_state: ChannelState | None = None) -> None:
        """Scatter an initial condition (default: the seeded perturbed state,
        generated identically on every rank)."""
        if full_state is None:
            cfg = self.config
            full_state = perturbed_state(
                self.grid,
                nu=cfg.nu,
                amplitude=cfg.init_amplitude,
                modes=cfg.init_modes,
                seed=cfg.seed,
                base=cfg.init_base,
                forcing=cfg.forcing,
            )
        state = self.scatter_state(full_state)
        state.u, state.w = recover_uw(
            self.modes, self.stepper.ops, state.v, state.omega_y, state.u00, state.w00
        )
        self.state = state

    def step(self) -> None:
        if self.state is None:
            raise RuntimeError("call initialize() first")
        # the stepper shares self.timers: ns_advance covers the implicit
        # solves, fft/transpose come from the pencil pipeline, and
        # nonlinear_products spans the whole dealiased evaluation
        self.state = self.stepper.step(self.state)
        self.step_count += 1

    def run(self, nsteps: int) -> None:
        for _ in range(nsteps):
            self.step()

    # ------------------------------------------------------------------

    def gather_state(self) -> ChannelState | None:
        """Reassemble the full state on world rank 0 (None elsewhere)."""
        s = self.state
        if s is None:
            raise RuntimeError("call initialize() first")
        pieces = self.comm.gather(
            (self.decomp.a, self.decomp.b, s.v, s.omega_y, s.u00, s.w00)
        )
        if pieces is None:
            return None
        g = self.grid
        full_v = np.zeros(g.spectral_shape, complex)
        full_o = np.zeros(g.spectral_shape, complex)
        u00 = w00 = None
        from repro.pencil.decomp import block_range

        for a, b, v, o, pu, pw in pieces:
            xs = slice(*block_range(self.transforms.mx, self.transforms.pa, a))
            zs = slice(*block_range(self.transforms.mz, self.transforms.pb, b))
            full_v[xs, zs] = v
            full_o[xs, zs] = o
            if pu is not None:
                u00, w00 = pu, pw
        full = ChannelState(v=full_v, omega_y=full_o, u00=u00, w00=w00, time=s.time)
        ops = self.stepper.ops
        full.u, full.w = recover_uw(g.modes, ops, full.v, full.omega_y, u00, w00)
        return full

    def divergence_norm(self) -> float:
        """Global max collocated divergence."""
        from repro.core.velocity import divergence

        s = self.state
        if s is None:
            raise RuntimeError("call initialize() first")
        local = float(
            np.abs(divergence(self.modes, self.stepper.ops, s.u, s.v, s.w)).max()
        )
        return self.comm.allreduce(local, op=max)

    def cfl_number(self) -> float:
        return self.stepper.cfl_number()
