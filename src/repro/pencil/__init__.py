"""Pencil decomposition, global transposes, and parallel FFT kernels.

This package is the distributed-memory heart of the paper (§2.2–2.3 and
§4.3–4.4), running on the simulated MPI substrate:

* :mod:`repro.pencil.decomp` — pencil descriptors and block arithmetic
  for the ``PA x PB`` process grid (paper Fig. 2),
* :mod:`repro.pencil.reorder` — the on-node transpose
  ``A(i,j,k) -> A(j,k,i)`` (§4.2, Table 4),
* :mod:`repro.pencil.transpose` — global transposes over the CommA/CommB
  sub-communicators, planned FFTW-style between ``alltoall`` and pairwise
  ``sendrecv`` implementations (§4.3),
* :mod:`repro.pencil.parallel_fft` — the customized parallel FFT kernel
  (Nyquist-free, 1x work buffer, dealiasing pads) of §4.4,
* :mod:`repro.pencil.p3dfft` — a baseline re-implementing P3DFFT's
  algorithmic choices (Nyquist kept, 3x buffers, no threading),
* :mod:`repro.pencil.distributed` — the distributed channel DNS driver,
  bit-for-bit reproducing the serial trajectories.
"""

from repro.pencil.decomp import PencilDecomp, block_range, block_slices
from repro.pencil.parallel_fft import PencilTransforms
from repro.pencil.p3dfft import P3DFFTBaseline
from repro.pencil.transpose import GlobalTranspose, TransposeMethod

__all__ = [
    "GlobalTranspose",
    "P3DFFTBaseline",
    "PencilDecomp",
    "PencilTransforms",
    "TransposeMethod",
    "block_range",
    "block_slices",
]
