"""Distributed turbulence statistics.

Plane-averaged covariances are weighted sums over wavenumbers, so each
rank accumulates its own mode block and one ``allreduce`` per profile
assembles the global average — no field data ever moves.  The result is
numerically identical to the serial
:class:`~repro.core.statistics.RunningStatistics` (pinned by tests).
"""

from __future__ import annotations

import numpy as np

from repro.core.modes import ModeSet
from repro.core.timestepper import ChannelState


class DistributedStatistics:
    """Per-rank accumulator with allreduce-on-read semantics."""

    PROFILES = ("U", "uu", "vv", "ww", "uv")

    def __init__(self, dns) -> None:
        self.dns = dns
        self.comm = dns.comm
        self.modes: ModeSet = dns.modes
        ny = dns.grid.ny
        self.nsamples = 0
        self._sums = {name: np.zeros(ny) for name in self.PROFILES}
        # Parseval weights for this rank's block: kx > 0 counts twice
        w = np.full(self.modes.shape, 2.0)
        w[self.modes.kx == 0.0, :] = 1.0
        self._weights = w[..., None]

    # ------------------------------------------------------------------

    def _covariance(self, f_vals: np.ndarray, g_vals: np.ndarray) -> np.ndarray:
        prod = np.real(f_vals * np.conj(g_vals)) * self._weights
        mean = self.modes.mean_index
        if mean is not None:
            prod[mean] = 0.0  # fluctuations exclude the mean mode
        return prod.sum(axis=(0, 1))

    def sample(self, state: ChannelState | None = None) -> None:
        """Accumulate one snapshot (collective: all ranks must call)."""
        dns = self.dns
        state = state if state is not None else dns.state
        if state is None:
            raise RuntimeError("no state to sample")
        ops = dns.stepper.ops
        u_vals = ops.values(state.u)
        v_vals = ops.values(state.v)
        w_vals = ops.values(state.w)
        if self.modes.owns_mean:
            self._sums["U"] += ops.values(state.u00)
        self._sums["uu"] += self._covariance(u_vals, u_vals)
        self._sums["vv"] += self._covariance(v_vals, v_vals)
        self._sums["ww"] += self._covariance(w_vals, w_vals)
        self._sums["uv"] += self._covariance(u_vals, v_vals)
        self.nsamples += 1

    # ------------------------------------------------------------------

    def profile(self, name: str) -> np.ndarray:
        """Global time-averaged profile (collective: performs an allreduce)."""
        if self.nsamples == 0:
            raise RuntimeError("no samples accumulated")
        total = self.comm.allreduce(self._sums[name])
        return total / self.nsamples

    def mean_velocity(self) -> np.ndarray:
        """Global mean streamwise profile ``U(y)`` (collective)."""
        return self.profile("U")

    def reynolds_stress(self) -> np.ndarray:
        """Global Reynolds shear stress ``-<u'v'>(y)`` (collective)."""
        return -self.profile("uv")

    def friction_velocity(self, nu: float) -> float:
        """``u_tau = sqrt(nu |dU/dy|_wall)``, both walls averaged (collective)."""
        a = self.dns.grid.basis.interpolate(self.mean_velocity())
        d_lo, d_up = self.dns.stepper.ops.wall_derivatives(a)
        return float(np.sqrt(nu * 0.5 * (abs(d_lo) + abs(d_up))))
