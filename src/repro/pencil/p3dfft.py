"""P3DFFT-like baseline parallel FFT (paper §4.4's comparison target).

Re-implements the algorithmic choices of P3DFFT 2.5.1 that the paper
identifies as the performance differences with the customized kernel:

1. **Keeps the Nyquist mode**: a real line of ``N`` points is stored as
   ``N/2 + 1`` complex values and the z spectrum keeps all ``N`` slots —
   both travel through every transpose, inflating communication volume by
   ``(N/2+1)/(N/2)`` in x and ``N/(N-1)`` in z.
2. **3x work buffers**: staging buffers three times the input size are
   allocated up front (P3DFFT's documented buffer discipline).  The
   allocation is real so memory-footprint comparisons are honest.
3. **No shared-memory parallelism** and **no 3/2 dealiasing support**:
   only the bare-grid transform is offered (the Table 6 benchmark is run
   exactly this way: "the padding and truncating of data for 3/2
   dealiasing is not performed, as this is not supported in P3DFFT").
4. **No planning, no overlap**: the transpose implementation is fixed
   (blocking alltoall) — the baseline never takes the pipelined
   communication/compute-overlap path of the custom kernel, matching
   P3DFFT 2.5.1's synchronous exchange.
"""

from __future__ import annotations

import numpy as np

from repro.instrument import SectionTimers
from repro.mpi.simmpi import CartesianCommunicator
from repro.pencil.parallel_fft import PencilTransforms
from repro.pencil.transpose import TransposeMethod


class P3DFFTBaseline(PencilTransforms):
    """Baseline kernel: Nyquist kept, 3x buffers, fixed transpose method."""

    drop_nyquist = False

    def __init__(
        self,
        cart: CartesianCommunicator,
        nx: int,
        ny: int,
        nz: int,
        timers: SectionTimers | None = None,
    ) -> None:
        super().__init__(
            cart,
            nx,
            ny,
            nz,
            dealias=False,
            method=TransposeMethod.ALLTOALL,
            timers=timers,
        )
        # P3DFFT's staging buffers: three times the input array, allocated
        # for real so the memory comparison with the custom kernel holds.
        self._work = np.empty(3 * self.input_elements(), dtype=complex)

    def work_buffer_elements(self) -> int:
        return self._work.size

    def plan(self, probe=None):  # pragma: no cover - guard
        raise NotImplementedError("P3DFFT has no transpose planner")
