"""On-node data reordering (paper §4.2, Table 4).

As part of the global transpose, the data on each node is reordered
``A(i,j,k) -> A(j,k,i)`` so that the upcoming transform axis is unit
stride.  The kernel is pure memory movement — the paper shows it
saturating DDR bandwidth at ~16 bytes/cycle and scaling poorly beyond
8 threads.  Here it is a strided copy; :func:`reorder` also reports the
bytes moved so the perf model and Table 4 bench can account traffic.

``chunked_reorder`` splits the copy into independent pieces, mirroring
the paper's OpenMP strategy of "maintaining multiple data streams from
memory" (threads do not help a NumPy copy, but the decomposition is the
same and lets the bench measure chunking overhead honestly).
"""

from __future__ import annotations

import numpy as np


def reorder(a: np.ndarray, perm: tuple[int, int, int] = (1, 2, 0)) -> tuple[np.ndarray, int]:
    """Contiguous axis permutation of a 3-D array; returns (array, bytes moved).

    The default permutation is the paper's ``A(i,j,k) -> A(j,k,i)``.
    """
    if a.ndim != 3:
        raise ValueError(f"reorder expects 3-D data, got {a.ndim}-D")
    out = np.ascontiguousarray(np.transpose(a, perm))
    return out, 2 * a.nbytes  # read + write


def chunked_reorder(
    a: np.ndarray, perm: tuple[int, int, int] = (1, 2, 0), nchunks: int = 1
) -> tuple[np.ndarray, int]:
    """Reorder split into ``nchunks`` independent slabs along the new axis 0.

    Each slab is an independent strided copy — the unit of work one
    OpenMP thread would take in the paper's implementation.
    """
    if a.ndim != 3:
        raise ValueError(f"reorder expects 3-D data, got {a.ndim}-D")
    moved = np.transpose(a, perm)
    out = np.empty(moved.shape, dtype=a.dtype)
    n0 = moved.shape[0]
    nchunks = max(1, min(nchunks, n0))
    bounds = np.linspace(0, n0, nchunks + 1, dtype=int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        out[lo:hi] = moved[lo:hi]
    return out, 2 * a.nbytes
