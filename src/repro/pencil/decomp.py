"""Pencil decomposition bookkeeping (paper §2.2, Fig. 2).

The three-dimensional data is decomposed over a ``PA x PB`` process grid.
Each process owns a *pencil* — full extent in one direction, blocks of
the other two:

=========  ================  =====================
pencil     local axes        distributed axes
=========  ================  =====================
y-pencil   y (wall-normal)   x over PA, z over PB
z-pencil   z (spanwise)      x over PA, y over PB
x-pencil   x (streamwise)    z over PA, y over PB
=========  ================  =====================

Transposing y <-> z pencils exchanges data within **CommB** (ranks that
share an A coordinate); z <-> x within **CommA**.  Block sizes follow the
standard "remainder to the first ranks" rule so any extent works on any
process count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.topology import factor_pairs


def choose_grid(
    nranks: int, mx: int, mz: int, ny: int, nzq: int | None = None
) -> tuple[int, int]:
    """Pick a valid ``(pa, pb)`` process grid for ``nranks`` ranks.

    Candidates come from :func:`repro.mpi.topology.factor_pairs`, filtered
    by the pencil-extent constraints (``mx >= pa``, ``mz >= pb``,
    ``ny >= pb``, ``nzq >= pa``).  Among the valid grids the most-square
    one wins; ties prefer the larger ``pb`` — CommB is the inner,
    consecutive-rank communicator the paper keeps node-local (Table 5).
    This is how the elastic supervisor re-plans the factorization after
    shrinking to a survivor count that the original grid cannot express.
    """
    if nzq is None:
        nzq = mz
    valid = [
        (pa, pb)
        for pa, pb in factor_pairs(nranks)
        if mx >= pa and mz >= pb and ny >= pb and nzq >= pa
    ]
    if not valid:
        raise ValueError(
            f"no valid (pa, pb) grid for {nranks} ranks with "
            f"mx={mx}, mz={mz}, ny={ny}, nzq={nzq}"
        )
    return min(valid, key=lambda g: (abs(g[0] - g[1]), -g[1]))


def block_range(n: int, p: int, i: int) -> tuple[int, int]:
    """Half-open index range of block ``i`` of ``n`` items over ``p`` parts."""
    if not 0 <= i < p:
        raise ValueError(f"block index {i} outside [0, {p})")
    base, rem = divmod(n, p)
    start = i * base + min(i, rem)
    size = base + (1 if i < rem else 0)
    return start, start + size


def block_slices(n: int, p: int) -> list[slice]:
    """All block slices of ``n`` items over ``p`` parts."""
    return [slice(*block_range(n, p, i)) for i in range(p)]


def block_size(n: int, p: int, i: int) -> int:
    start, stop = block_range(n, p, i)
    return stop - start


@dataclass(frozen=True)
class PencilDecomp:
    """Local-shape arithmetic for one rank of the process grid.

    Extents refer to the *spectral* representation (``mx``, ``mz``, ``ny``)
    plus the physical quadrature extents (``nxq``, ``nzq``) reached after
    padding.  Arrays are indexed ``(x, z, y)`` throughout.
    """

    mx: int
    mz: int
    ny: int
    nxq: int
    nzq: int
    pa: int
    pb: int
    a: int  # this rank's A coordinate
    b: int  # this rank's B coordinate

    # ------------------------------------------------------------------
    # local slices
    # ------------------------------------------------------------------

    @property
    def x_slice(self) -> slice:
        """Local spectral-x block (distributed over PA in y/z pencils)."""
        return slice(*block_range(self.mx, self.pa, self.a))

    @property
    def z_spec_slice(self) -> slice:
        """Local spectral-z block (distributed over PB in y pencils)."""
        return slice(*block_range(self.mz, self.pb, self.b))

    @property
    def y_slice(self) -> slice:
        """Local y block (distributed over PB in z/x pencils)."""
        return slice(*block_range(self.ny, self.pb, self.b))

    @property
    def zq_slice(self) -> slice:
        """Local quadrature-z block (distributed over PA in x pencils)."""
        return slice(*block_range(self.nzq, self.pa, self.a))

    # ------------------------------------------------------------------
    # local shapes
    # ------------------------------------------------------------------

    def _len(self, s: slice) -> int:
        return s.stop - s.start

    @property
    def y_pencil_shape(self) -> tuple[int, int, int]:
        """(x-block, z-spec-block, full y): the spectral state layout."""
        return (self._len(self.x_slice), self._len(self.z_spec_slice), self.ny)

    @property
    def z_pencil_shape_spec(self) -> tuple[int, int, int]:
        """(x-block, full spectral z, y-block): before the dealiasing pad."""
        return (self._len(self.x_slice), self.mz, self._len(self.y_slice))

    @property
    def z_pencil_shape_phys(self) -> tuple[int, int, int]:
        """(x-block, full quadrature z, y-block): after pad + inverse FFT."""
        return (self._len(self.x_slice), self.nzq, self._len(self.y_slice))

    @property
    def x_pencil_shape_spec(self) -> tuple[int, int, int]:
        """(full spectral x, quadrature-z block, y-block)."""
        return (self.mx, self._len(self.zq_slice), self._len(self.y_slice))

    @property
    def x_pencil_shape_phys(self) -> tuple[int, int, int]:
        """(full quadrature x, quadrature-z block, y-block): physical space."""
        return (self.nxq, self._len(self.zq_slice), self._len(self.y_slice))

    # ------------------------------------------------------------------

    @classmethod
    def for_rank(
        cls, mx: int, mz: int, ny: int, nxq: int, nzq: int, pa: int, pb: int, rank: int
    ) -> "PencilDecomp":
        """Decomposition seen by cartesian rank ``rank`` (row-major (a, b))."""
        a, b = divmod(rank, pb)
        return cls(mx=mx, mz=mz, ny=ny, nxq=nxq, nzq=nzq, pa=pa, pb=pb, a=a, b=b)

    def validate(self) -> None:
        """Sanity-check that every rank gets non-empty pencils."""
        for n, p, what in (
            (self.mx, self.pa, "x modes over PA"),
            (self.mz, self.pb, "z modes over PB"),
            (self.ny, self.pb, "y points over PB"),
            (self.nzq, self.pa, "z quadrature over PA"),
        ):
            if n < p:
                raise ValueError(f"cannot split {n} {what} over {p} processes")
