"""Streaming turbulence-statistics service.

Write path: :class:`StreamingStatistics` accumulates single-pass
statistics inside the step loop and publishes into a versioned
:class:`StatsStore`.  Read path: :class:`StatisticsService` answers
law-of-wall / variance / spectrum queries at arbitrary ``y+`` with an
LRU response cache.  Operator documentation lives in
``docs/statistics_service.md``; serving benchmarks in
``docs/benchmarks.md``.
"""

from repro.serving.accumulators import (
    REDUCTION_RTOL,
    STATS_FORMAT_VERSION,
    StreamingStatistics,
    sidecar_name,
)
from repro.serving.query import QUERY_FIELDS, StatisticsService
from repro.serving.store import (
    RESULT_ARRAYS,
    RESULT_FIELDS,
    STORE_FORMAT_VERSION,
    StatsStore,
)
from repro.serving.synthetic import populate_store, synthetic_result

__all__ = [
    "StreamingStatistics",
    "StatsStore",
    "StatisticsService",
    "RESULT_FIELDS",
    "RESULT_ARRAYS",
    "QUERY_FIELDS",
    "STATS_FORMAT_VERSION",
    "STORE_FORMAT_VERSION",
    "REDUCTION_RTOL",
    "sidecar_name",
    "synthetic_result",
    "populate_store",
]
