"""Versioned on-disk results store for published turbulence statistics.

One store directory holds the published statistics of many runs, keyed
by friction Reynolds number.  Layout::

    store/
      retau-00180.00/
        result-step000002000-a1b2c3d4.npz   # atomic, checksummed
        result-step000004000-a1b2c3d4.npz
        latest                              # name of the newest result
      retau-00550.00/
        ...

Each result file is written exactly like a checkpoint
(:mod:`repro.core.checkpoint`): temp file + fsync + ``os.replace``, a
CRC32 per array embedded in a JSON manifest, verified on read.  Results
are keyed by the run's config fingerprint
(:func:`repro.telemetry.manifest.config_fingerprint`) so two different
configurations at the same Re_tau never silently overwrite each other,
and rotated keep-K per Re_tau directory.  Every manifest and array
field is documented field-by-field in ``docs/statistics_service.md``
(enforced by ``tests/serving/test_docs.py`` against
:data:`RESULT_FIELDS`).
"""

from __future__ import annotations

import pathlib
import time

import numpy as np

from repro.core.checkpoint import (
    FORMAT_VERSION as _CONTAINER_VERSION,
    _atomic_write_npz,
    _atomic_write_text,
    _read_npz,
)
from repro.telemetry.manifest import config_fingerprint

#: results-store format version, with the accepted lineage spelled out
#: like the checkpoint format so readers can fail with a useful message
STORE_FORMAT_VERSION = 1
STORE_FORMAT_HISTORY: tuple[int, ...] = (1,)

#: manifest fields of a published result: ``{name: (required, description)}``
RESULT_FIELDS: dict[str, tuple[bool, str]] = {
    "format_version": (True, "container version of the shared checksummed-npz reader"),
    "store_version": (True, "results-store format version (currently 1)"),
    "kind": (True, 'record discriminator, always "stats-result"'),
    "re_tau": (True, "nominal friction Reynolds number of the run config"),
    "nu": (True, "kinematic viscosity (1 / re_tau for unit half-height)"),
    "u_tau": (True, "measured friction velocity from the mean-profile wall slope"),
    "fingerprint": (True, "sha256 of the canonical run-config serialization"),
    "config": (True, "JSON-safe snapshot of the run config behind the fingerprint"),
    "nsamples": (True, "snapshots folded into the time averages"),
    "step_count": (True, "driver step count when the result was published"),
    "sim_time": (True, "simulation time when the result was published"),
    "created": (True, "unix wall-clock time of the publish"),
}

#: array fields of a published result: ``{name: (required, description)}``
RESULT_ARRAYS: dict[str, tuple[bool, str]] = {
    "y": (True, "wall-normal collocation points, (ny,), channel in [-1, 1]"),
    "U": (True, "mean streamwise velocity profile, (ny,)"),
    "uu": (True, "streamwise velocity variance <u'u'>, (ny,)"),
    "vv": (True, "wall-normal velocity variance <v'v'>, (ny,)"),
    "ww": (True, "spanwise velocity variance <w'w'>, (ny,)"),
    "uv": (True, "Reynolds shear stress <u'v'>, (ny,)"),
    "kx": (True, "streamwise wavenumbers, (mx,), kx >= 0"),
    "kz": (True, "spanwise wavenumbers after ±kz folding, (nz//2,), kz >= 0"),
    "spec_x_u": (True, "streamwise 1-D energy spectrum E_u(kx, y), (mx, ny)"),
    "spec_x_v": (True, "streamwise 1-D energy spectrum E_v(kx, y), (mx, ny)"),
    "spec_x_w": (True, "streamwise 1-D energy spectrum E_w(kx, y), (mx, ny)"),
    "spec_z_u": (True, "spanwise 1-D energy spectrum E_u(kz, y), (nz//2, ny)"),
    "spec_z_v": (True, "spanwise 1-D energy spectrum E_v(kz, y), (nz//2, ny)"),
    "spec_z_w": (True, "spanwise 1-D energy spectrum E_w(kz, y), (nz//2, ny)"),
}

_LATEST = "latest"


def _retau_dirname(re_tau: float) -> str:
    return f"retau-{float(re_tau):08.2f}"


class StatsStore:
    """Publish and read versioned turbulence-statistics results.

    ``keep`` bounds the number of result files retained per Re_tau
    directory (keep-K rotation, oldest step first); ``keep=0`` disables
    rotation.
    """

    def __init__(self, root, keep: int = 3) -> None:
        self.root = pathlib.Path(root)
        self.keep = int(keep)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def publish(
        self,
        result: dict,
        config,
        *,
        step_count: int = 0,
        sim_time: float = 0.0,
    ) -> pathlib.Path:
        """Atomically publish one result (e.g. ``StreamingStatistics.result()``).

        ``result`` must carry every :data:`RESULT_ARRAYS` key plus
        ``nsamples`` and ``u_tau``; ``config`` is the run config whose
        ``re_tau``/``nu`` key the result.  Returns the published path.
        """
        cfg_dict, fp = config_fingerprint(config)
        re_tau = float(cfg_dict.get("re_tau", getattr(config, "re_tau", 0.0)))
        nu = float(getattr(config, "nu", 1.0 / re_tau if re_tau else 1.0))
        directory = self.root / _retau_dirname(re_tau)
        directory.mkdir(parents=True, exist_ok=True)
        missing = [k for k, (req, _) in RESULT_ARRAYS.items() if req and k not in result]
        if missing:
            raise ValueError(f"result missing required arrays: {missing}")
        manifest = {
            # container version of the shared checksummed-npz reader
            # (core.checkpoint); store_version is this store's own schema
            "format_version": _CONTAINER_VERSION,
            "store_version": STORE_FORMAT_VERSION,
            "kind": "stats-result",
            "re_tau": re_tau,
            "nu": nu,
            "u_tau": float(result["u_tau"]),
            "fingerprint": fp,
            "config": cfg_dict,
            "nsamples": int(result["nsamples"]),
            "step_count": int(step_count),
            "sim_time": float(sim_time),
            "created": time.time(),
        }
        arrays = {k: np.asarray(result[k]) for k in RESULT_ARRAYS}
        name = f"result-step{int(step_count):09d}-{fp[:8]}.npz"
        path = directory / name
        _atomic_write_npz(path, manifest, arrays)
        _atomic_write_text(directory / _LATEST, name + "\n")
        self._rotate(directory)
        return path

    def _rotate(self, directory: pathlib.Path) -> None:
        if self.keep <= 0:
            return
        results = sorted(directory.glob("result-*.npz"))
        for stale in results[: max(0, len(results) - self.keep)]:
            stale.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def re_taus(self) -> list[float]:
        """Friction Reynolds numbers with at least one published result."""
        out = []
        if not self.root.exists():
            return out
        for d in sorted(self.root.glob("retau-*")):
            if any(d.glob("result-*.npz")):
                try:
                    out.append(float(d.name.split("-", 1)[1]))
                except ValueError:
                    continue
        return out

    def latest_path(self, re_tau: float) -> pathlib.Path | None:
        """Path of the newest verified result at ``re_tau`` (or None).

        Follows the ``latest`` pointer when it names an existing file;
        otherwise falls back to the lexically newest ``result-*.npz``
        (the pointer write and the publish are separate atomic steps, so
        a crash can leave the pointer one publish behind).
        """
        directory = self.root / _retau_dirname(re_tau)
        pointer = directory / _LATEST
        if pointer.exists():
            name = pointer.read_text().strip()
            if (directory / name).exists():
                return directory / name
        results = sorted(directory.glob("result-*.npz"))
        return results[-1] if results else None

    def load(self, re_tau: float) -> tuple[dict, dict[str, np.ndarray]]:
        """Read and checksum-verify the newest result at ``re_tau``.

        Returns ``(manifest, arrays)``.  Raises :class:`FileNotFoundError`
        when no result is published at that Re_tau, :class:`ValueError`
        on a format-version mismatch, and
        :class:`~repro.core.checkpoint.CheckpointCorruptError` on a
        checksum failure.
        """
        path = self.latest_path(re_tau)
        if path is None:
            raise FileNotFoundError(f"no published result for re_tau={re_tau}")
        manifest, arrays = _read_npz(path, verify=True)
        version = int(manifest.get("store_version", -1))
        if version not in STORE_FORMAT_HISTORY:
            raise ValueError(
                f"{path.name}: store_version {version} not in supported "
                f"lineage {STORE_FORMAT_HISTORY}"
            )
        if manifest.get("kind") != "stats-result":
            raise ValueError(f"{path.name}: not a stats-result file")
        return manifest, arrays
