"""Closed-form synthetic results for benchmarks and serving tests.

The query layer and its load benchmark need a populated store without
paying for a DNS campaign.  :func:`synthetic_result` builds a complete,
schema-valid result dict (every :data:`repro.serving.store.RESULT_ARRAYS`
key) from the law-of-wall reference curves in
:mod:`repro.stats.lawofwall` — the same shapes the paper's Figs. 5-6
overlay — plus simple model spectra; :func:`populate_store` publishes a
family of them across Re_tau.  Benchmark numbers measured against a
synthetic store exercise exactly the production read path (checksummed
load, interpolation, caching): only the *content* is synthetic.
"""

from __future__ import annotations

import numpy as np

from repro.serving.store import StatsStore
from repro.stats.lawofwall import reichardt, variance_reference


def _config_stub(re_tau: float, ny: int, mx: int, nz: int) -> dict:
    """Minimal config dict for fingerprinting a synthetic publish."""
    return {
        "kind": "synthetic-lawofwall",
        "re_tau": float(re_tau),
        "nu": 1.0 / float(re_tau),
        "ny": int(ny),
        "nx": 2 * int(mx),
        "nz": int(nz),
    }


def synthetic_result(
    re_tau: float, *, ny: int = 65, mx: int = 16, nz: int = 32
) -> tuple[dict, dict]:
    """A full result dict shaped by the law-of-wall references.

    Returns ``(result, config_dict)`` ready for
    :meth:`~repro.serving.store.StatsStore.publish`.  ``u_tau`` is 1 (so
    wall units equal outer units scaled by Re_tau), the mean profile is
    Reichardt's composite, variances follow
    :func:`~repro.stats.lawofwall.variance_reference`, and the spectra
    are smooth ``k^-5/3``-flavoured model surfaces — enough structure to
    make interpolation and caching do real work.
    """
    re_tau = float(re_tau)
    u_tau = 1.0
    nu = 1.0 / re_tau
    # Chebyshev-like clustering toward the walls, y in [-1, 1]
    y = -np.cos(np.linspace(0.0, np.pi, ny))
    yplus_lo = (1.0 + y) * u_tau / nu  # distance from the lower wall
    yplus_up = (1.0 - y) * u_tau / nu  # distance from the upper wall
    yplus = np.minimum(yplus_lo, yplus_up)  # symmetric channel
    result: dict = {
        "y": y,
        "U": reichardt(yplus) * u_tau,
        "nsamples": 1,
        "u_tau": u_tau,
    }
    for name, comp in (("uu", "uu"), ("vv", "vv"), ("ww", "ww")):
        result[name] = variance_reference(yplus, re_tau, comp) * u_tau**2
    # the stress changes sign across the centreline (u'v' < 0 below it)
    uv_mag = variance_reference(yplus, re_tau, "uv") * u_tau**2
    result["uv"] = -np.sign(-y) * uv_mag
    kx = np.arange(mx, dtype=float)
    kz = np.arange(nz // 2, dtype=float)
    result["kx"] = kx
    result["kz"] = kz
    for c, amp in (("u", 1.0), ("v", 0.3), ("w", 0.5)):
        # E(k, y): inertial-range decay shaped by the local variance
        ex = (1.0 + kx[:, None]) ** (-5.0 / 3.0) * (amp + result["uu"][None, :])
        ez = (1.0 + kz[:, None]) ** (-5.0 / 3.0) * (amp + result["ww"][None, :])
        result[f"spec_x_{c}"] = ex
        result[f"spec_z_{c}"] = ez
    return result, _config_stub(re_tau, ny, mx, nz)


def populate_store(
    root,
    re_taus=(180.0, 550.0, 1000.0, 2000.0, 5200.0),
    *,
    ny: int = 65,
    mx: int = 16,
    nz: int = 32,
    keep: int = 3,
) -> StatsStore:
    """Publish a synthetic result at every requested Re_tau; returns the store."""
    store = StatsStore(root, keep=keep)
    for r in re_taus:
        result, cfg = synthetic_result(r, ny=ny, mx=mx, nz=nz)
        store.publish(result, cfg, step_count=1)
    return store
