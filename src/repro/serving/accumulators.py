"""Online streaming turbulence statistics (the service's write path).

The paper's deliverable is statistics — the law-of-wall profile
(Fig. 5), the velocity variances and Reynolds shear stress (Fig. 6) and
the 1-D energy spectra (Fig. 9) — but the batch helpers in
:mod:`repro.stats` and :mod:`repro.core.statistics` need the full
snapshot in hand.  :class:`StreamingStatistics` computes the same
quantities in a single pass *during* the run:

* **Single-pass accumulation** — per y-plane sums of the mean profile,
  the velocity covariances (``uu``, ``vv``, ``ww``, ``uv``) and the
  streamwise/spanwise 1-D energy spectra of all three components, using
  exactly the Parseval weighting of the batch path so a streamed run
  reproduces the batch numbers (bit-for-bit in serial, to the documented
  reduction tolerance across ranks — see ``docs/statistics_service.md``).
* **Rank-local partials** — each SimMPI rank accumulates only its own
  ``(kx, kz)`` block; :meth:`merged` folds the partials through one
  packed ``allreduce`` on the existing reductions.  No field data moves.
* **Resumability** — :meth:`save_to` writes the *merged* sums as an
  atomic, checksummed sidecar next to a checkpoint; :meth:`restore_from`
  reloads them as a decomposition-agnostic base so a crashed, restarted
  or elastically resharded run loses no accumulated samples.  The
  checkpoint rotations call both hooks automatically when a driver has
  an accumulator attached (``dns.attach_streaming(...)``).
* **Budgeted overhead** — sampling is timed under the ``stats``
  :class:`~repro.instrument.SectionTimers` section and self-measured in
  :class:`~repro.instrument.StatsCounters.sample_seconds`, surfaced as
  the telemetry stream's optional ``stats`` group (schema v5).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.checkpoint import (
    FORMAT_VERSION as _CONTAINER_VERSION,
    _atomic_write_npz,
    _read_npz,
)
from repro.instrument import StatsCounters

#: sidecar format version (bump when the packed layout changes)
STATS_FORMAT_VERSION = 1

#: relative tolerance to which distributed streamed statistics match the
#: serial batch path — the reduction sums rank partials in rank order,
#: which regroups the floating-point additions of the full-axis serial
#: sum.  Serial streamed-vs-batch comparisons are bit-for-bit.
REDUCTION_RTOL = 1e-10

_SIDECAR_PREFIX = "stats"


def sidecar_name(step: int | None = None) -> str:
    """Sidecar file name for a checkpoint at ``step`` (None: unsuffixed)."""
    if step is None:
        return f"{_SIDECAR_PREFIX}.npz"
    return f"{_SIDECAR_PREFIX}-{int(step):09d}.npz"


class StreamingStatistics:
    """Single-pass statistics accumulator for a (possibly distributed) DNS.

    Works against any driver exposing ``grid``, ``stepper.ops`` and a
    state — the serial :class:`~repro.core.solver.ChannelDNS` and the
    per-rank :class:`~repro.pencil.distributed.DistributedChannelDNS`
    both qualify.  In distributed runs every rank must construct one
    (the merge is collective).

    Accumulated quantities, all per y collocation plane:

    * ``U`` — mean streamwise velocity profile,
    * ``uu``/``vv``/``ww``/``uv`` — velocity covariances (fluctuations,
      mean mode excluded), identical weighting to
      :class:`~repro.core.statistics.RunningStatistics`,
    * ``spec_x[c]`` — streamwise 1-D energy spectra ``E_c(kx, y)`` for
      ``c`` in ``u, v, w`` (reality factor applied at merge time),
    * ``spec_z[c]`` — spanwise spectra, accumulated signed over ``kz``
      and folded to ``E_c(kz >= 0, y)`` at merge time — matching
      :func:`repro.stats.spectra.energy_spectrum_x` /
      :func:`~repro.stats.spectra.energy_spectrum_z` plane by plane.
    """

    PROFILES = ("U", "uu", "vv", "ww", "uv")
    COMPONENTS = ("u", "v", "w")

    def __init__(self, dns) -> None:
        self.dns = dns
        self.comm = getattr(dns, "comm", None)
        self.grid = dns.grid
        self.modes = getattr(dns, "modes", None) or dns.grid.modes
        self.counters = StatsCounters()
        g = self.grid
        decomp = getattr(dns, "decomp", None)
        #: global index offsets of this rank's (kx, kz) block
        self._x0 = decomp.x_slice.start if decomp is not None else 0
        self._z0 = decomp.z_spec_slice.start if decomp is not None else 0
        self.nsamples = 0  # samples folded into the *local* partials
        self._base_samples = 0  # samples carried by a restored sidecar
        self._sums = {name: np.zeros(g.ny) for name in self.PROFILES}
        self._spec_x = {c: np.zeros((g.mx, g.ny)) for c in self.COMPONENTS}
        self._spec_z = {c: np.zeros((g.mz, g.ny)) for c in self.COMPONENTS}
        #: restored merged sums (present only on the mean-owning rank so
        #: the reduction counts them exactly once)
        self._base: np.ndarray | None = None
        # Parseval weights of this rank's block: kx > 0 counts twice
        w = np.full(self.modes.shape, 2.0)
        w[self.modes.kx == 0.0, :] = 1.0
        self._weights = w[..., None]

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------

    def _covariance(self, f_vals: np.ndarray, g_vals: np.ndarray) -> np.ndarray:
        prod = np.real(f_vals * np.conj(g_vals)) * self._weights
        mean = self.modes.mean_index
        if mean is not None:
            prod[mean] = 0.0  # fluctuations exclude the mean mode
        return prod.sum(axis=(0, 1))

    def sample(self, state=None) -> None:
        """Fold one snapshot into the running sums (collective cadence:
        in distributed runs every rank must sample the same steps)."""
        t0 = time.perf_counter()
        dns = self.dns
        state = state if state is not None else dns.state
        if state is None:
            raise RuntimeError("no state to sample")
        ops = dns.stepper.ops
        u_vals = ops.values(state.u)
        v_vals = ops.values(state.v)
        w_vals = ops.values(state.w)
        if self.modes.owns_mean:
            self._sums["U"] += ops.values(state.u00)
        self._sums["uu"] += self._covariance(u_vals, u_vals)
        self._sums["vv"] += self._covariance(v_vals, v_vals)
        self._sums["ww"] += self._covariance(w_vals, w_vals)
        self._sums["uv"] += self._covariance(u_vals, v_vals)
        x0, z0 = self._x0, self._z0
        bx, bz = self.modes.shape
        for name, vals in (("u", u_vals), ("v", v_vals), ("w", w_vals)):
            p = np.abs(vals) ** 2  # (bx, bz, ny)
            # E(kx, y): sum over this rank's kz columns into global kx rows
            self._spec_x[name][x0 : x0 + bx] += p.sum(axis=1)
            # E_signed(kz, y): kx-weighted sum into global (signed) kz rows
            self._spec_z[name][z0 : z0 + bz] += (p * self._weights).sum(axis=0)
        self.nsamples += 1
        self.counters.samples += 1
        self.counters.sample_seconds += time.perf_counter() - t0

    # ------------------------------------------------------------------
    # packed merge
    # ------------------------------------------------------------------

    def _pack(self) -> np.ndarray:
        """Flatten every local partial (plus a restored base, on the
        owning rank) into one contiguous vector for a single reduction."""
        parts = [self._sums[name] for name in self.PROFILES]
        parts += [self._spec_x[c].ravel() for c in self.COMPONENTS]
        parts += [self._spec_z[c].ravel() for c in self.COMPONENTS]
        packed = np.concatenate(parts)
        if self._base is not None:
            packed = packed + self._base
        return packed

    def _unpack(self, packed: np.ndarray) -> dict[str, np.ndarray]:
        g = self.grid
        out: dict[str, np.ndarray] = {}
        i = 0
        for name in self.PROFILES:
            out[name] = packed[i : i + g.ny].copy()
            i += g.ny
        for c in self.COMPONENTS:
            out[f"spec_x_{c}"] = packed[i : i + g.mx * g.ny].reshape(g.mx, g.ny).copy()
            i += g.mx * g.ny
        for c in self.COMPONENTS:
            out[f"spec_z_{c}"] = packed[i : i + g.mz * g.ny].reshape(g.mz, g.ny).copy()
            i += g.mz * g.ny
        return out

    @property
    def total_samples(self) -> int:
        """Samples represented by a merge: local + restored base."""
        return self.nsamples + self._base_samples

    def merged(self) -> dict[str, np.ndarray]:
        """Global *summed* quantities (collective: one packed allreduce).

        Returns the raw sums keyed ``U``/``uu``/.../``spec_x_u``/...;
        divide by :attr:`total_samples` for time averages (or use
        :meth:`result`, which does it for you).
        """
        if self.total_samples == 0:
            raise RuntimeError("no samples accumulated")
        packed = self._pack()
        if self.comm is not None:
            packed = self.comm.allreduce(packed)
        self.counters.merges += 1
        return self._unpack(packed)

    def result(self) -> dict:
        """Time-averaged global statistics, ready to publish (collective).

        The returned dict maps every array field of the results store
        (``docs/statistics_service.md``) to its value: the five profiles,
        the six spectra surfaces (reality factor applied, spanwise
        spectra folded to ``kz >= 0``), the wall-normal grid ``y``, the
        wavenumbers ``kx``/``kz`` and the measured friction velocity
        ``u_tau``.
        """
        g = self.grid
        sums = self.merged()
        n = self.total_samples
        out: dict = {name: sums[name] / n for name in self.PROFILES}
        # reality factor of the streamwise spectra: kx > 0 counts twice
        wx = np.where(g.kx > 0.0, 2.0, 1.0)[:, None]
        half = g.nz // 2
        for c in self.COMPONENTS:
            out[f"spec_x_{c}"] = sums[f"spec_x_{c}"] / n * wx
            signed = sums[f"spec_z_{c}"] / n
            folded = np.empty((half, g.ny))
            folded[0] = signed[0]
            for j in range(1, half):
                folded[j] = signed[j] + signed[g.mz - j]  # fold ±kz
            out[f"spec_z_{c}"] = folded
        out["y"] = g.y.copy()
        out["kx"] = g.kx.copy()
        out["kz"] = g.kz[:half].copy()
        out["nsamples"] = n
        out["u_tau"] = self._friction_velocity(out["U"])
        return out

    def _friction_velocity(self, mean_profile: np.ndarray) -> float:
        """``u_tau = sqrt(nu |dU/dy|_wall)`` averaged over both walls."""
        nu = self.dns.config.nu
        a = self.grid.basis.interpolate(mean_profile)
        d_lo, d_up = self.dns.stepper.ops.wall_derivatives(a)
        return float(np.sqrt(nu * 0.5 * (abs(d_lo) + abs(d_up))))

    # ------------------------------------------------------------------
    # checkpoint sidecar (resumability)
    # ------------------------------------------------------------------

    def save_to(self, directory, step: int | None = None):
        """Write the merged sums as an atomic checksummed sidecar.

        Collective (performs the packed merge); only the lead rank
        writes.  The sidecar holds *global* sums, so any later
        decomposition — including a serial collapse or an elastic
        shrink/grow — can restore it.  Returns the written path on the
        writing rank, ``None`` elsewhere.
        """
        import pathlib

        if self.total_samples == 0:
            return None
        packed = self._pack()
        if self.comm is not None:
            packed = self.comm.allreduce(packed)
        self.counters.merges += 1
        if self.comm is not None and self.comm.rank != 0:
            return None
        path = pathlib.Path(directory) / sidecar_name(step)
        manifest = {
            # container version of the shared checksummed-npz reader;
            # stats_version is the sidecar's own packed-layout schema
            "format_version": _CONTAINER_VERSION,
            "stats_version": STATS_FORMAT_VERSION,
            "kind": "streaming-stats",
            "nsamples": int(self.total_samples),
            "ny": int(self.grid.ny),
            "mx": int(self.grid.mx),
            "mz": int(self.grid.mz),
        }
        _atomic_write_npz(path, manifest, {"packed": packed})
        return path

    def restore_from(self, directory, step: int | None = None) -> bool:
        """Load a sidecar written by :meth:`save_to`, if one exists.

        Every rank reads the file (deterministic, no broadcast needed);
        the merged sums become the accumulator's *base*, carried by the
        mean-owning rank only so the next merge counts them exactly
        once.  Local partials reset to zero.  Returns True when a
        sidecar was found and loaded; False (accumulator left empty)
        when none exists — a run checkpointed before streaming was
        enabled restarts with zero samples, not an error.
        """
        import pathlib

        path = pathlib.Path(directory) / sidecar_name(step)
        if not path.exists():
            return False
        manifest, arrays = _read_npz(path, verify=True)
        if manifest.get("kind") != "streaming-stats":
            raise ValueError(f"{path.name}: not a streaming-stats sidecar")
        for key in ("ny", "mx", "mz"):
            want = int(getattr(self.grid, key))
            if int(manifest[key]) != want:
                raise ValueError(
                    f"{path.name}: grid mismatch on {key!r}: "
                    f"{manifest[key]} (file) vs {want} (run)"
                )
        for name in self.PROFILES:
            self._sums[name][:] = 0.0
        for c in self.COMPONENTS:
            self._spec_x[c][:] = 0.0
            self._spec_z[c][:] = 0.0
        self.nsamples = 0
        self._base_samples = int(manifest["nsamples"])
        if self.comm is None or self.modes.owns_mean:
            self._base = arrays["packed"]
        else:
            self._base = None
        self.counters.restores += 1
        return True

    @staticmethod
    def latest_sidecar_step(directory) -> int | None:
        """Highest step number with a sidecar under ``directory`` (or None)."""
        import pathlib

        best: int | None = None
        for p in pathlib.Path(directory).glob(f"{_SIDECAR_PREFIX}-*.npz"):
            try:
                step = int(p.stem.rsplit("-", 1)[1])
            except (IndexError, ValueError):
                continue
            best = step if best is None else max(best, step)
        return best
