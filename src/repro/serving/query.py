"""Query layer over the statistics store (the service's read path).

:class:`StatisticsService` answers the paper's figure-level questions —
law-of-wall profiles, velocity variances, 1-D energy spectra — at
*arbitrary* ``y+`` and Re_tau:

* **y+ interpolation** — responses are linearly interpolated onto the
  requested wall coordinates from the stored lower-half-channel profile
  (``y+ = (1 + y) u_tau / nu`` for ``y <= 0``, matching
  :meth:`repro.core.statistics.RunningStatistics.wall_units`).
* **Re_tau interpolation** — profile queries between two stored Re_tau
  interpolate linearly in ``log(Re_tau)`` between the bracketing
  entries; spectra (whose wavenumber grids differ across runs) answer
  from the nearest stored Re_tau and say which one in the response.
* **Memoization** — responses are cached in a bounded LRU keyed by the
  full query tuple, and loaded store files in a second small LRU, both
  with hit/miss counters (:meth:`StatisticsService.cache_info`).  A warm
  cache answers from memory with no disk I/O — the ≥10x cold-vs-warm
  ratio is measured by ``benchmarks/bench_stats_service.py`` and gated
  as ``stats_query_32`` in ``benchmarks/results/baselines.json``.

Every response field is documented in ``docs/statistics_service.md``,
enforced against :data:`QUERY_FIELDS` by ``tests/serving/test_docs.py``.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.serving.store import StatsStore

#: response fields across the query endpoints: ``{name: (required, description)}``
#: (required=True fields appear in every response; others are
#: endpoint-specific)
QUERY_FIELDS: dict[str, tuple[bool, str]] = {
    "query": (True, "echo of the endpoint name (law_of_wall/variance/spectrum)"),
    "re_tau": (True, "requested friction Reynolds number"),
    "re_tau_sources": (True, "stored Re_tau values the answer was built from"),
    "u_tau": (True, "friction velocity (interpolated like the payload)"),
    "nsamples": (True, "fewest snapshot samples among the source results"),
    "y_plus": (False, "wall coordinates the profile was evaluated at"),
    "u_plus": (False, "mean velocity in wall units U+ = U / u_tau"),
    "component": (False, "velocity component the query asked for (u/v/w or uv)"),
    "value_plus": (False, "variance/covariance in wall units, <f'g'> / u_tau^2"),
    "direction": (False, "spectrum direction, x (streamwise) or z (spanwise)"),
    "wavenumbers": (False, "wavenumber grid of the returned spectrum"),
    "energy": (False, "1-D energy spectrum E(k) at the requested y+"),
}

_VARIANCES = {"u": "uu", "v": "vv", "w": "ww", "uv": "uv"}


class _LRUCache:
    """Bounded LRU mapping with hit/miss counters (no unhashable keys)."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class StatisticsService:
    """Cached query front end over a :class:`~repro.serving.store.StatsStore`.

    ``cache_size`` bounds the response LRU (entries, not bytes — every
    response is a small JSON-able dict); ``dataset_cache_size`` bounds
    how many loaded+verified store files stay resident.  Both knobs are
    documented in ``docs/statistics_service.md``.
    """

    def __init__(self, store, cache_size: int = 256, dataset_cache_size: int = 8) -> None:
        if not isinstance(store, StatsStore):
            store = StatsStore(store)
        self.store = store
        self._responses = _LRUCache(cache_size)
        self._datasets = _LRUCache(dataset_cache_size)

    # ------------------------------------------------------------------
    # dataset access
    # ------------------------------------------------------------------

    def _dataset(self, re_tau: float) -> dict:
        """Load (or reuse) one stored result, reduced to wall-unit form."""
        cached = self._datasets.get(re_tau)
        if cached is not None:
            return cached
        manifest, arrays = self.store.load(re_tau)
        u_tau = float(manifest["u_tau"])
        nu = float(manifest["nu"])
        y = arrays["y"]
        half = y <= 0.0  # lower half-channel, like wall_units()
        ds = {
            "re_tau": float(manifest["re_tau"]),
            "u_tau": u_tau,
            "nu": nu,
            "nsamples": int(manifest["nsamples"]),
            "y_plus": (1.0 + y[half]) * u_tau / nu,
            "half": half,
            "profiles": {
                name: arrays[name][half] for name in ("U", "uu", "vv", "ww", "uv")
            },
            "kx": arrays["kx"],
            "kz": arrays["kz"],
            "spec_x": {c: arrays[f"spec_x_{c}"] for c in ("u", "v", "w")},
            "spec_z": {c: arrays[f"spec_z_{c}"] for c in ("u", "v", "w")},
            "y": y,
        }
        self._datasets.put(re_tau, ds)
        return ds

    def _bracket(self, re_tau: float) -> tuple[list[float], list[float]]:
        """Stored Re_tau values bracketing the request, plus log weights.

        Exact (or out-of-range) requests resolve to a single source; an
        interior request resolves to its two neighbours with linear
        weights in ``log(Re_tau)``.
        """
        stored = self.store.re_taus()
        if not stored:
            raise FileNotFoundError("statistics store is empty")
        exact = [r for r in stored if abs(r - re_tau) < 1e-9]
        if exact:
            return [exact[0]], [1.0]
        lo = [r for r in stored if r < re_tau]
        hi = [r for r in stored if r > re_tau]
        if not lo:
            return [min(hi)], [1.0]
        if not hi:
            return [max(lo)], [1.0]
        a, b = max(lo), min(hi)
        t = (np.log(re_tau) - np.log(a)) / (np.log(b) - np.log(a))
        return [a, b], [1.0 - float(t), float(t)]

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    @staticmethod
    def _as_tuple(y_plus) -> tuple[float, ...]:
        return tuple(float(v) for v in np.atleast_1d(y_plus))

    def law_of_wall(self, re_tau: float, y_plus) -> dict:
        """Mean-velocity profile ``U+(y+)`` at the requested wall coordinates."""
        yp = self._as_tuple(y_plus)
        key = ("law_of_wall", float(re_tau), yp)
        hit = self._responses.get(key)
        if hit is not None:
            return hit
        sources, weights = self._bracket(re_tau)
        u_plus = np.zeros(len(yp))
        u_tau = 0.0
        nsamples = None
        for r, w in zip(sources, weights):
            ds = self._dataset(r)
            u_plus += w * np.interp(yp, ds["y_plus"], ds["profiles"]["U"] / ds["u_tau"])
            u_tau += w * ds["u_tau"]
            ns = ds["nsamples"]
            nsamples = ns if nsamples is None else min(nsamples, ns)
        resp = {
            "query": "law_of_wall",
            "re_tau": float(re_tau),
            "re_tau_sources": sources,
            "u_tau": u_tau,
            "nsamples": nsamples,
            "y_plus": list(yp),
            "u_plus": u_plus.tolist(),
        }
        self._responses.put(key, resp)
        return resp

    def variance(self, re_tau: float, component: str, y_plus) -> dict:
        """Velocity variance (or ``uv`` shear stress) in wall units at ``y+``."""
        if component not in _VARIANCES:
            raise ValueError(f"component must be one of {sorted(_VARIANCES)}")
        yp = self._as_tuple(y_plus)
        key = ("variance", float(re_tau), component, yp)
        hit = self._responses.get(key)
        if hit is not None:
            return hit
        profile = _VARIANCES[component]
        sources, weights = self._bracket(re_tau)
        value = np.zeros(len(yp))
        u_tau = 0.0
        nsamples = None
        for r, w in zip(sources, weights):
            ds = self._dataset(r)
            value += w * np.interp(
                yp, ds["y_plus"], ds["profiles"][profile] / ds["u_tau"] ** 2
            )
            u_tau += w * ds["u_tau"]
            ns = ds["nsamples"]
            nsamples = ns if nsamples is None else min(nsamples, ns)
        resp = {
            "query": "variance",
            "re_tau": float(re_tau),
            "re_tau_sources": sources,
            "u_tau": u_tau,
            "nsamples": nsamples,
            "component": component,
            "y_plus": list(yp),
            "value_plus": value.tolist(),
        }
        self._responses.put(key, resp)
        return resp

    def spectrum(self, re_tau: float, direction: str, component: str, y_plus: float) -> dict:
        """1-D energy spectrum ``E_c(k)`` at one ``y+`` (nearest stored Re_tau).

        Spectra are not interpolated across Re_tau — different runs
        carry different wavenumber grids — so the answer comes from the
        nearest stored entry, named in ``re_tau_sources``.
        """
        if direction not in ("x", "z"):
            raise ValueError("direction must be 'x' or 'z'")
        if component not in ("u", "v", "w"):
            raise ValueError("component must be one of ('u', 'v', 'w')")
        yp = float(y_plus)
        key = ("spectrum", float(re_tau), direction, component, yp)
        hit = self._responses.get(key)
        if hit is not None:
            return hit
        sources, weights = self._bracket(re_tau)
        nearest = sources[int(np.argmax(weights))]
        ds = self._dataset(nearest)
        surface = ds[f"spec_{direction}"][component]  # (nk, ny)
        half_surface = surface[:, ds["half"]]  # lower half, ordered with y_plus
        energy = np.empty(surface.shape[0])
        for i in range(surface.shape[0]):
            energy[i] = np.interp(yp, ds["y_plus"], half_surface[i])
        resp = {
            "query": "spectrum",
            "re_tau": float(re_tau),
            "re_tau_sources": [nearest],
            "u_tau": ds["u_tau"],
            "nsamples": ds["nsamples"],
            "direction": direction,
            "component": component,
            "y_plus": [yp],
            "wavenumbers": ds["kx" if direction == "x" else "kz"].tolist(),
            "energy": energy.tolist(),
        }
        self._responses.put(key, resp)
        return resp

    # ------------------------------------------------------------------
    # cache introspection
    # ------------------------------------------------------------------

    def cache_info(self) -> dict:
        """Hit/miss counters and sizes of both caches (JSON-able)."""
        return {
            "responses": {
                "hits": self._responses.hits,
                "misses": self._responses.misses,
                "size": len(self._responses),
                "maxsize": self._responses.maxsize,
            },
            "datasets": {
                "hits": self._datasets.hits,
                "misses": self._datasets.misses,
                "size": len(self._datasets),
                "maxsize": self._datasets.maxsize,
            },
        }

    def clear_caches(self) -> None:
        self._responses.clear()
        self._datasets.clear()
