"""Simulated hardware performance counters for the N-S advance (Table 2).

The paper instruments the time-advance kernel with IBM's HPM module and
draws three conclusions: the kernel is memory-bandwidth bound (DDR
traffic ~93% of the 18 B/cycle STREAM peak), loads hit L1 (98%+, thanks
to stream prefetch), and compiling with SIMD *raises the counted flop
rate but lowers performance*.  This module derives a Table-2-like
readout from a traffic model so those conclusions follow from counted
work:

* the benchmark solves batches of wavenumber systems far larger than
  cache, so the factored matrices and vectors stream from DDR on every
  sweep; the kernel's arithmetic intensity is low
  (``AI ~ 0.043 useful flops per DDR byte``, the value implied by the
  paper's 1.16 GF/core against 16.8 B/cycle at 1.6 GHz);
* elapsed time = DDR traffic / achieved DDR bandwidth (memory-bound);
* the SIMD (QPX) build pads the bandwidth-15 windows to multiples of the
  4-wide vector and operates on masked lanes: *counted* flops rise by
  the structural padding ratio ``(16/15)² * 3.75 ~ 4.27x`` while useful
  work is unchanged, and the alignment shuffles cost DDR bandwidth —
  the paper's observed slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import MIRA, MachineSpec

#: useful multiply-add flops per spectral point per substep (three
#: bandwidth-15 banded systems: factor + sweeps)
USEFUL_FLOPS_PER_POINT = 2030.0 / 3.0

#: arithmetic intensity of the streaming solve (useful flops / DDR byte);
#: implied by Table 2: 1.16e9 / (16.8 B/cycle * 1.6e9 Hz) = 0.0432
ARITHMETIC_INTENSITY = 0.0432

#: benchmark size chosen to match the paper's ~3.3 s single-core run
DEFAULT_POINTS = 5.7e6

#: QPX vector width (doubles)
SIMD_WIDTH = 4

#: fitted: sustained DDR fraction (Table 2: 16.8 / 18 scalar, 14.2 / 18
#: SIMD — alignment copies and bank conflicts cost bandwidth)
SCALAR_DDR_FRACTION = 0.933
SIMD_DDR_FRACTION = 0.789

#: instruction mix: non-flop instructions per flop (loads, stores,
#: address arithmetic) for the scalar build; vector builds fold 4 flops
#: per instruction but add permutes/selects
SCALAR_INSTR_PER_FLOP = 1.25
SIMD_INSTR_PER_VECTOR_OP = 1.9

#: cache behaviour (streaming with prefetch; prefetched lines count as L1)
L1_HIT_SCALAR = 98.2
L1_HIT_SIMD = 98.01


@dataclass
class HPMCounters:
    """A Table-2 row."""

    gflops: float
    gflops_pct: float
    ipc: float
    l1_pct: float
    l2_pct: float
    ddr_pct: float
    ddr_bytes_per_cycle: float
    elapsed: float


def simd_padding_ratio(window: int = 15, width: int = SIMD_WIDTH) -> float:
    """Counted-to-useful flop inflation of the padded vector build.

    A bandwidth-15 window pads to 16 lanes in both operands of the rank-1
    updates; with ~¼ of one lane's work already useful, the structural
    inflation is ``(16/15)² * 3.75 ≈ 4.27`` — matching Table 2's
    4.96/1.16 within a few percent without fitting to that ratio.
    """
    import math

    padded = math.ceil(window / width) * width
    return (padded / window) ** 2 * (width - 0.25)


def simulate_hpm_counters(
    simd: bool,
    machine: MachineSpec = MIRA,
    points: float = DEFAULT_POINTS,
) -> HPMCounters:
    """Derive the Table-2 counter readout from the traffic model."""
    peak_bytes_per_cycle = machine.ddr_bw / machine.clock_hz  # 18 on Mira
    ddr_frac = SIMD_DDR_FRACTION if simd else SCALAR_DDR_FRACTION
    achieved_bw = ddr_frac * machine.ddr_bw

    useful_flops = USEFUL_FLOPS_PER_POINT * points
    traffic = useful_flops / ARITHMETIC_INTENSITY
    elapsed = traffic / achieved_bw
    cycles = elapsed * machine.clock_hz

    if simd:
        counted_flops = useful_flops * simd_padding_ratio()
        instructions = counted_flops / SIMD_WIDTH * SIMD_INSTR_PER_VECTOR_OP
        l1 = L1_HIT_SIMD
    else:
        counted_flops = useful_flops
        instructions = counted_flops * SCALAR_INSTR_PER_FLOP
        l1 = L1_HIT_SCALAR

    gflops = counted_flops / elapsed / 1e9
    residual = 100.0 - l1
    return HPMCounters(
        gflops=gflops,
        gflops_pct=100.0 * gflops * 1e9 / machine.flops_per_core,
        ipc=instructions / cycles,
        l1_pct=l1,
        l2_pct=residual * (0.73 if simd else 0.51),
        ddr_pct=residual * (0.27 if simd else 0.49),
        ddr_bytes_per_cycle=ddr_frac * peak_bytes_per_cycle,
        elapsed=elapsed,
    )
