"""Production-run planning (paper §6).

The paper's science run: Re_tau ≈ 5200 on a 10240 x 1536 x 7680
Fourier/B-spline grid (242 billion DOF), on 32 racks of Mira (524,288
cores), for ~13 flow-throughs at ~50,000 steps each — 650,000 steps and
about 260 million core-hours.  This module reproduces that arithmetic
from the calibrated machine model: given a grid, a machine and a core
count, it prices the whole campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import MIRA, MachineSpec
from repro.perfmodel.timestep import ParallelLayout, TimestepModel

#: the paper's production configuration (§6)
PRODUCTION_GRID = (10240, 1536, 7680)
PRODUCTION_CORES = 524288
FLOW_THROUGHS = 13
STEPS_PER_FLOW_THROUGH = 50_000
PAPER_CORE_HOURS = 260e6
PAPER_DOF = 242e9


@dataclass
class CampaignEstimate:
    """Cost estimate of a DNS campaign."""

    seconds_per_step: float
    total_steps: int
    cores: int

    @property
    def wall_days(self) -> float:
        return self.seconds_per_step * self.total_steps / 86400.0

    @property
    def core_hours(self) -> float:
        return self.seconds_per_step * self.total_steps * self.cores / 3600.0


def plan_campaign(
    machine: MachineSpec = MIRA,
    grid: tuple[int, int, int] = PRODUCTION_GRID,
    cores: int = PRODUCTION_CORES,
    mode: str = "hybrid",
    flow_throughs: float = FLOW_THROUGHS,
    steps_per_flow_through: int = STEPS_PER_FLOW_THROUGH,
) -> CampaignEstimate:
    """Price a production campaign with the calibrated timestep model."""
    model = TimestepModel(machine, *grid)
    layout = ParallelLayout(machine, cores, mode=mode)
    t_step = model.section_times(layout).total
    return CampaignEstimate(
        seconds_per_step=t_step,
        total_steps=int(round(flow_throughs * steps_per_flow_through)),
        cores=cores,
    )


def degrees_of_freedom(grid: tuple[int, int, int]) -> float:
    """Velocity DOF as the paper counts them (3 components, spectral modes)."""
    nx, ny, nz = grid
    return 3.0 * (nx // 2) * (nz - 1) * ny


def memory_footprint_bytes(grid: tuple[int, int, int], fields: int = 12) -> float:
    """Rough state + work memory: ``fields`` complex spectral fields.

    Three velocities, two state variables, previous nonlinear terms and
    transform workspace — about a dozen field-sized arrays.
    """
    nx, ny, nz = grid
    return fields * (nx // 2) * (nz - 1) * ny * 16.0


def comparison_dof() -> dict[str, float]:
    """The paper's size claims: vs Kaneda et al. 2003 (isotropic, 4096³)
    and Hoyas & Jiménez 2006 (channel, Re_tau = 2003)."""
    kaneda = 3.0 * 4096**3  # 2 x 10^11 velocity DOF (they quote modes)
    hoyas = 3.0 * (6144 // 2) * (4608 - 1) * 633  # approximate HJ06 grid
    ours = degrees_of_freedom(PRODUCTION_GRID)
    return {
        "production": ours,
        "kaneda_ratio": ours / (kaneda / 3.0 * 1.0),  # order-1 bookkeeping
        "hoyas_ratio": ours / hoyas,
    }
