"""Kernel-level operation counts for the DNS timestep (model side).

Counts mirror the real implementation in :mod:`repro.core` /
:mod:`repro.pencil`:

* one RK3 timestep = 3 substeps;
* each substep moves 3 velocity fields spectral -> physical and 5
  product fields back (8 field-passes), each pass being one CommB
  transpose + one z FFT + one CommA transpose + one x FFT;
* the Navier-Stokes advance solves three banded systems per wavenumber
  per substep (paper §2.1) — factor + solve of bandwidth-15 collocation
  pencils, ~2k flops per spectral point.

FFT flop counts use the standard ``5 N log2 N`` (complex) and
``2.5 N log2 N`` (real) line costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

#: banded factor+solve work per spectral point per substep (3 systems of
#: bandwidth 15: LU ~2W² + sweeps ~6W flops each) — fitted to the paper's
#: Table 9 Mira advance column through the measured 1.16 GF/core rate.
ADVANCE_FLOPS_PER_POINT = 2030.0

#: RK substeps per timestep and field-passes per substep
SUBSTEPS = 3
FORWARD_FIELDS = 3
BACKWARD_FIELDS = 5
PASSES_PER_SUBSTEP = FORWARD_FIELDS + BACKWARD_FIELDS

BYTES_PER_COMPLEX = 16


@dataclass(frozen=True)
class GridCounts:
    """Operation/volume bookkeeping for one DNS grid (with 3/2 dealiasing)."""

    nx: int
    ny: int
    nz: int
    dealias: bool = True

    @property
    def mx(self) -> int:
        return self.nx // 2

    @property
    def mz(self) -> int:
        return self.nz - 1

    @property
    def nxq(self) -> int:
        return (3 * self.nx) // 2 if self.dealias else self.nx

    @property
    def nzq(self) -> int:
        return (3 * self.nz) // 2 if self.dealias else self.nz

    @cached_property
    def mode_points(self) -> int:
        """Spectral points of one field (what the advance solves over)."""
        return self.mx * self.mz * self.ny

    # ------------------------------------------------------------------
    # FFT flop counts, one field, one direction pass
    # ------------------------------------------------------------------

    def z_fft_flops(self) -> float:
        """Complex transforms over z: ``mx * ny`` lines of ``nzq``."""
        lines = self.mx * self.ny
        return 5.0 * self.nzq * math.log2(self.nzq) * lines

    def x_fft_flops(self) -> float:
        """Real transforms over x: ``nzq * ny`` lines of ``nxq``."""
        lines = self.nzq * self.ny
        return 2.5 * self.nxq * math.log2(self.nxq) * lines

    # ------------------------------------------------------------------
    # transpose volumes, one field (bytes, global)
    # ------------------------------------------------------------------

    def yz_bytes(self) -> float:
        """y <-> z transpose: the spectral field (pre-pad)."""
        return self.mode_points * BYTES_PER_COMPLEX

    def zx_bytes(self) -> float:
        """z <-> x transpose: the z-padded field."""
        return self.mx * self.nzq * self.ny * BYTES_PER_COMPLEX

    # ------------------------------------------------------------------
    # per-timestep totals
    # ------------------------------------------------------------------

    def advance_flops_per_step(self) -> float:
        return ADVANCE_FLOPS_PER_POINT * self.mode_points * SUBSTEPS

    def fft_flops_per_step(self) -> tuple[float, float]:
        """(z part, x part) flop totals over a full timestep."""
        passes = SUBSTEPS * PASSES_PER_SUBSTEP
        return passes * self.z_fft_flops(), passes * self.x_fft_flops()

    def reorder_bytes_per_step(self) -> float:
        """On-node reordering traffic: each pass repacks ~2 pencils."""
        passes = SUBSTEPS * PASSES_PER_SUBSTEP
        return passes * 2.0 * 2.0 * self.zx_bytes()  # read+write, 2 reorders
