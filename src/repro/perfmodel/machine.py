"""Benchmark machine specifications (paper §3).

Hardware numbers are public specs of the four systems circa 2013; the
constants marked *fitted* are calibrated against anchor measurements in
the paper's own tables (the calibration script is
``benchmarks/calibration.py``; EXPERIMENTS.md records the residuals).

Units: bytes/second, seconds, Hz, flops/second.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect description used by the transpose cost model.

    ``alltoall_bw`` is the *effective* per-node all-to-all bandwidth with
    large messages — well below link speed, as in any real fabric — and
    degrades with the machine's saturation law:

    * torus of dimension d: ``bw * min(1, (sat_coeff / r)**sat_power)``
      with ``r = nodes**(1/d)`` (bisection-limited; 5-D tori barely
      degrade, 3-D tori collapse — paper §5.1 on Blue Waters),
    * fat tree: ``bw * min(1, (sat_nodes / nodes)**sat_exp)``
      (oversubscription past the first switch tier).

    Small messages pay a per-message ramp: the achievable fraction of
    bandwidth is ``s / (s + s0)`` for message size ``s``, where
    ``s0 = latency * bw`` is the latency-equivalent size.  This single
    term is what makes MPI-everywhere (tiny messages) lose to hybrid
    (§5.3) until the network saturates.
    """

    kind: str  # "torus" | "fattree"
    alltoall_bw: float  # fitted: effective per-node B/s, large messages
    latency: float  # effective per-message overhead (s), software included
    dims: int = 0
    sat_coeff: float = 8.0  # fitted (torus)
    sat_power: float = 1.0  # fitted (torus)
    sat_nodes: float = 64.0  # fitted (fat tree)
    sat_exp: float = 0.35  # fitted (fat tree)
    #: fitted: message-count pressure of many tasks per node — the §5.3
    #: "sixteen times more MPI tasks ... 256 times more messages" effect;
    #: tasks_factor(T) = 1 / (1 + eta * ln T)
    task_contention_eta: float = 0.127
    #: torus partitions up to this many nodes are fully wired (a BG/Q
    #: midplane with its electrically isolated 5-D torus) and sustain
    #: ``midplane_boost`` x the reference all-to-all bandwidth
    midplane_nodes: int = 0
    midplane_boost: float = 1.0

    @property
    def ramp_bytes(self) -> float:
        """Latency-equivalent message size s0."""
        return self.latency * self.alltoall_bw

    def message_efficiency(self, msg_bytes: float) -> float:
        """Fraction of bandwidth achieved at a given message size."""
        if msg_bytes <= 0:
            return 0.0
        return msg_bytes / (msg_bytes + self.ramp_bytes)

    def task_factor(self, tasks_per_node: int) -> float:
        """Bandwidth fraction under many-tasks-per-node message pressure."""
        import math

        if tasks_per_node <= 1:
            return 1.0
        return 1.0 / (1.0 + self.task_contention_eta * math.log(tasks_per_node))

    def saturation(self, nodes: int) -> float:
        """Bandwidth fraction surviving network contention at this scale."""
        if nodes <= 1:
            return max(1.0, self.midplane_boost)
        if self.kind == "torus":
            if nodes <= self.midplane_nodes:
                # fully wired small partition (BG/Q midplane): flat,
                # above-reference bandwidth — the fast small partitions
                # of Table 6
                return self.midplane_boost
            radius = nodes ** (1.0 / self.dims)
            return min(
                max(1.0, self.midplane_boost),
                (self.sat_coeff / radius) ** self.sat_power,
            )
        if nodes <= self.sat_nodes:
            return 1.0
        return (self.sat_nodes / nodes) ** self.sat_exp

    def effective_bw(self, nodes: int, tasks_per_node: int = 1) -> float:
        """Per-node all-to-all bandwidth at this scale and task layout.

        The limiting congestion state is whichever pressure binds first —
        many small messages (MPI-everywhere) or network-scale saturation
        (§5.3: hybrid's advantage disappears once the torus saturates the
        way the extra MPI tasks already had).  In the unsaturated regime
        (saturation > 1, small torus partitions) both factors apply.
        """
        sat = self.saturation(nodes)
        tf = self.task_factor(tasks_per_node)
        if sat <= 1.0:
            return self.alltoall_bw * min(tf, sat)
        return self.alltoall_bw * sat * tf


@dataclass(frozen=True)
class MachineSpec:
    """One benchmark platform."""

    name: str
    cores_per_node: int
    hw_threads_per_core: int
    clock_hz: float
    flops_per_core: float  # peak DP
    ddr_bw: float  # node STREAM-like bandwidth (B/s)
    network: NetworkSpec
    #: fitted: sustained N-S time-advance rate (memory-bandwidth limited;
    #: Mira's value is the paper's own Table 2 measurement, 1.16 GF/core)
    advance_gflops_per_core: float = 1.16
    #: fitted: sustained 1-D FFT rate per core
    fft_gflops_per_core: float = 1.2
    #: per-core cache a transform line should fit in (cache-penalty model)
    cache_bytes: float = 32e3
    #: fitted: weak-scaling FFT cache-penalty strength (paper §5.2)
    cache_penalty_coeff: float = 0.12
    #: on-node exchange bandwidth (shared-memory transpose legs), ~DDR/2
    local_copy_frac: float = 0.5

    @property
    def node_flops(self) -> float:
        return self.cores_per_node * self.flops_per_core

    @property
    def local_copy_bw(self) -> float:
        return self.local_copy_frac * self.ddr_bw

    def nodes(self, cores: int) -> int:
        if cores % self.cores_per_node:
            raise ValueError(
                f"{cores} cores is not a whole number of {self.name} nodes "
                f"({self.cores_per_node}/node)"
            )
        return cores // self.cores_per_node

    def fft_line_penalty(self, line_points: int, itemsize: int = 16) -> float:
        """Cache penalty for transform lines exceeding the per-core cache."""
        import math

        excess = line_points * itemsize / self.cache_bytes
        if excess <= 1.0:
            return 1.0
        return 1.0 + self.cache_penalty_coeff * math.log2(excess)


# ----------------------------------------------------------------------
# The four systems of paper §3.
# ----------------------------------------------------------------------

#: Argonne Mira — BlueGene/Q: 16 PowerPC A2 cores @ 1.6 GHz, 4 HW
#: threads/core, 5-D torus.  DDR: the paper's 18 B/cycle STREAM figure =
#: 28.8 GB/s/node.  Effective all-to-all ~1 GB/s/node (Tables 5, 9).
MIRA = MachineSpec(
    name="Mira",
    cores_per_node=16,
    hw_threads_per_core=4,
    clock_hz=1.6e9,
    flops_per_core=12.8e9,
    ddr_bw=28.8e9,
    network=NetworkSpec(
        kind="torus",
        dims=5,
        alltoall_bw=0.836e9,
        latency=5.0e-7,
        sat_coeff=7.07,
        sat_power=0.727,
        task_contention_eta=0.312,
        midplane_nodes=512,
        midplane_boost=2.4,
    ),
    advance_gflops_per_core=1.19,  # ~ Table 2's measured 1.16
    fft_gflops_per_core=2.08,
    cache_bytes=16e3,  # BG/Q L1d
    cache_penalty_coeff=0.42,
)

#: TACC Lonestar 4 — Westmere X5680 3.33 GHz, 2 x 6 cores, QDR InfiniBand.
LONESTAR = MachineSpec(
    name="Lonestar",
    cores_per_node=12,
    hw_threads_per_core=1,
    clock_hz=3.33e9,
    flops_per_core=13.3e9,
    ddr_bw=32.0e9,
    network=NetworkSpec(
        kind="fattree",
        alltoall_bw=1.54e9,
        latency=2.0e-6,
        sat_nodes=16.0,
        sat_exp=0.17,
    ),
    advance_gflops_per_core=3.19,
    fft_gflops_per_core=3.63,
    cache_bytes=32e3,
    cache_penalty_coeff=0.15,
)

#: TACC Stampede — Sandy Bridge E5-2680 2.7 GHz, 16 cores, FDR InfiniBand.
STAMPEDE = MachineSpec(
    name="Stampede",
    cores_per_node=16,
    hw_threads_per_core=1,
    clock_hz=2.7e9,
    flops_per_core=21.6e9,
    ddr_bw=51.2e9,
    network=NetworkSpec(
        kind="fattree",
        alltoall_bw=2.62e9,
        latency=1.8e-6,
        sat_nodes=32.0,
        sat_exp=0.38,
    ),
    advance_gflops_per_core=3.72,
    fft_gflops_per_core=4.24,
    cache_bytes=32e3,
    cache_penalty_coeff=0.18,
)

#: NCSA Blue Waters — Cray XE6, AMD Interlagos 2.3 GHz, Gemini 3-D torus.
#: Two nodes share one Gemini NIC: modest injection and severe all-to-all
#: contention — the transpose collapse of Table 9 (§5.1).
BLUE_WATERS = MachineSpec(
    name="Blue Waters",
    cores_per_node=16,  # Bulldozer FP modules, as the paper counts cores
    hw_threads_per_core=1,
    clock_hz=2.3e9,
    flops_per_core=9.2e9,
    ddr_bw=51.2e9,
    network=NetworkSpec(
        kind="torus",
        dims=3,
        alltoall_bw=0.89e9,
        latency=1.8e-6,
        sat_coeff=3.98,
        sat_power=2.15,
    ),
    advance_gflops_per_core=1.81,
    fft_gflops_per_core=2.07,
    cache_bytes=16e3,
    cache_penalty_coeff=0.09,
)

MACHINES = {m.name: m for m in (MIRA, LONESTAR, STAMPEDE, BLUE_WATERS)}
