"""On-node thread scaling model (paper §4.2, Tables 3-4).

Two kernel classes behave very differently under OpenMP:

* **compute kernels** (FFT, N-S advance): each thread owns its data
  lines, so scaling is essentially perfect across physical cores, and
  BG/Q's 4-way hardware threads *boost* per-core throughput by hiding
  the in-order core's latency (Table 3's >200% per-core efficiency);
* **the reorder kernel** (on-node transpose): pure memory movement —
  bandwidth rises with threads until DDR saturates (~16 B/cycle on
  Mira), then *falls* from contention (Table 4).

Constants are fitted to Tables 3-4 and documented inline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import MachineSpec


@dataclass(frozen=True)
class ThreadScalingModel:
    """Thread-scaling laws for one machine."""

    machine: MachineSpec
    #: fitted: per-core throughput boost of 2- and 4-way hardware threads
    #: (Table 3 Mira: 32 threads -> 27.6-29.9x, 64 -> 32.6-34.5x)
    hw_boost_2: float = 1.84
    hw_boost_4: float = 2.14
    #: fitted: per-thread efficiency of compute kernels on physical cores
    compute_core_eff: float = 0.997
    #: fitted: single-thread reorder bandwidth (fraction of node DDR);
    #: Table 4: 3.8 B/cycle at 2 threads of 18 B/cycle peak -> ~0.105/thread
    reorder_thread_frac: float = 0.1056
    #: fitted: reorder saturation ceiling (fraction of peak DDR);
    #: Table 4 tops out at 16.1 of 18 B/cycle
    reorder_sat_frac: float = 0.90
    #: smooth-min sharpness of the linear-to-saturated transition
    reorder_knee: float = 4.0
    #: fitted: contention decay once saturated (Table 4: 16.1 -> 13.6
    #: B/cycle from 16 to 64 threads)
    reorder_decay: float = 0.12

    # ------------------------------------------------------------------
    # compute kernels (FFT / N-S advance)
    # ------------------------------------------------------------------

    def compute_speedup(self, threads: int) -> float:
        """Speedup over one thread for an embarrassingly parallel kernel."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        cores = self.machine.cores_per_node
        if threads <= cores:
            return threads * self.compute_core_eff ** max(0, threads - 1)
        per_core = threads / cores
        max_hw = self.machine.hw_threads_per_core
        if per_core > max_hw:
            raise ValueError(
                f"{threads} threads exceed {cores} cores x {max_hw} HW threads"
            )
        boost = self.hw_boost(per_core)
        return cores * self.compute_core_eff ** (cores - 1) * boost

    def hw_boost(self, threads_per_core: float) -> float:
        """Latency-hiding throughput boost of hardware threads."""
        if threads_per_core <= 1:
            return 1.0
        if threads_per_core <= 2:
            return 1.0 + (self.hw_boost_2 - 1.0) * (threads_per_core - 1.0)
        return self.hw_boost_2 + (self.hw_boost_4 - self.hw_boost_2) * (
            (threads_per_core - 2.0) / 2.0
        )

    def compute_efficiency(self, threads: int) -> float:
        """Per-thread... per-core efficiency as the paper reports it
        (speedup / physical cores used, so hardware threads can exceed 1)."""
        cores_used = min(threads, self.machine.cores_per_node)
        return self.compute_speedup(threads) / cores_used

    # ------------------------------------------------------------------
    # reorder kernel
    # ------------------------------------------------------------------

    def reorder_bandwidth_fraction(self, threads: int) -> float:
        """Achieved fraction of node DDR bandwidth for the reorder.

        A smooth minimum of the linear per-thread ramp and the saturation
        ceiling, with a contention decay once past saturation (Table 4's
        rise-then-fall).
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        linear = threads * self.reorder_thread_frac
        p = self.reorder_knee
        smooth = linear / (1.0 + (linear / self.reorder_sat_frac) ** p) ** (1.0 / p)
        t_sat = self.reorder_sat_frac / self.reorder_thread_frac
        if threads > t_sat:
            smooth *= (t_sat / threads) ** self.reorder_decay
        return smooth

    def reorder_bytes_per_cycle(self, threads: int) -> float:
        """Table 4's DDR-traffic column (node bytes/cycle)."""
        peak_bytes_per_cycle = self.machine.ddr_bw / self.machine.clock_hz
        return self.reorder_bandwidth_fraction(threads) * peak_bytes_per_cycle

    def reorder_speedup(self, threads: int) -> float:
        return self.reorder_bandwidth_fraction(threads) / self.reorder_bandwidth_fraction(1)
