"""Parallel FFT benchmark model — custom kernel vs P3DFFT (Table 6).

The benchmark protocol (paper §4.4): one parallel-FFT cycle = 4 global
transposes + 4 FFT stages, data transformed in two directions only, no
dealiasing pads.  The model prices both kernels from their documented
implementation differences:

============================  =======================  ====================
ingredient                    custom kernel            P3DFFT 2.5.1
============================  =======================  ====================
task layout                   hybrid (task/node,       MPI (task/core):
                              threads): large msgs     P² small messages
on-node threading             OpenMP + BG/Q hardware   none
                              threads (Table 3 boost)
Nyquist mode                  dropped from storage     kept: extra volume
                              and transposes
work buffers                  1x input                 3x input: two extra
                                                       memory passes/stage
on-node reorder               cache-blocked; gets      stride-1 loops over
                              *faster* as local        the big staging
                              blocks shrink (the       buffers
                              super-scaling of §4.4)
============================  =======================  ====================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.kernels import GridCounts
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.network import TransposeCostModel, comm_geometry
from repro.perfmodel.threading import ThreadScalingModel


@dataclass
class FFTCycleTime:
    fft: float
    transpose: float
    reorder: float

    @property
    def total(self) -> float:
        return self.fft + self.transpose + self.reorder


#: fitted machine-specific P3DFFT interaction constants (see __init__);
#: values from the least-squares calibration against Table 6
#: (benchmarks/calibration.py)
P3_INTERACTION = {
    "Mira": {
        "cache_bytes": 8.38e6,
        "cache_coeff": 0.317,
        "penalty": 2.20,
        "reorder_factor": 1.0,
        "sync_per_task": 0.0,
    },
    "Lonestar": {
        "cache_bytes": 8.38e6,
        "cache_coeff": 0.317,
        "penalty": 0.67,
        "reorder_factor": 1.0,
        "sync_per_task": 84e-6,
    },
    "Stampede": {
        "cache_bytes": 8.38e6,
        "cache_coeff": 0.317,
        "penalty": 0.67,
        "reorder_factor": 1.0,
        "sync_per_task": 41e-6,
    },
    "default": {
        "cache_bytes": 8.38e6,
        "cache_coeff": 0.317,
        "penalty": 1.2,
        "reorder_factor": 1.0,
        "sync_per_task": 20e-6,
    },
}


class ParallelFFTModel:
    """Table 6 cost model for both kernels on one machine and grid."""

    def __init__(
        self,
        machine: MachineSpec,
        nx: int,
        ny: int,
        nz: int,
        reorder_passes: float = 1.37,
        reorder_cache_bytes: float | None = None,
        reorder_cache_coeff: float | None = None,
        p3_transpose_penalty: float | None = None,
        p3_reorder_factor: float | None = None,
        p3_sync_per_task: float | None = None,
    ) -> None:
        self.machine = machine
        self.counts = GridCounts(nx=nx, ny=ny, nz=nz, dealias=False)
        self.net = TransposeCostModel(machine)
        self.threads = ThreadScalingModel(machine)
        defaults = P3_INTERACTION.get(machine.name, P3_INTERACTION["default"])

        def pick(value, key):
            return defaults[key] if value is None else value

        #: fitted: reorder passes per transpose (pack + unpack)
        self.REORDER_PASSES = reorder_passes
        #: fitted: cache-efficiency knee of the reorder (bytes per core)
        self.REORDER_CACHE_BYTES = pick(reorder_cache_bytes, "cache_bytes")
        #: fitted: reorder slowdown per doubling above the knee
        self.REORDER_CACHE_COEFF = pick(reorder_cache_coeff, "cache_coeff")
        #: fitted: P3DFFT's unplanned small-message exchange overhead
        #: (large on BG/Q, whose MPI pays dearly for 16 ranks/node of
        #: unaggregated traffic; ~1 on commodity InfiniBand MPI)
        self.P3_TRANSPOSE_PENALTY = pick(p3_transpose_penalty, "penalty")
        #: fitted: P3DFFT's staging-buffer memory passes (3x buffers)
        self.P3_REORDER_FACTOR = pick(p3_reorder_factor, "reorder_factor")
        #: fitted: per-task software alltoall setup cost per cycle — the
        #: ~0.19 s floor P3DFFT hits at scale on the IB machines; zero on
        #: Mira's hardware collectives
        self.P3_SYNC_PER_TASK = pick(p3_sync_per_task, "sync_per_task")

    # ------------------------------------------------------------------

    def _fft_time(self, cores: int, boosted: bool) -> float:
        c = self.counts
        flops = 2.0 * (c.z_fft_flops() + c.x_fft_flops())  # inverse + forward
        rate = cores * self.machine.fft_gflops_per_core * 1e9
        if boosted and self.machine.hw_threads_per_core > 1:
            rate *= self.threads.hw_boost(self.machine.hw_threads_per_core)
        return flops / rate

    def _reorder_time(self, cores: int, kernel: str) -> float:
        """On-node reordering cost; cache-dependent for the custom kernel."""
        c = self.counts
        m = self.machine
        nodes = m.nodes(cores)
        total_bytes = 4 * self.REORDER_PASSES * 2.0 * c.yz_bytes()  # 4 transposes, r+w
        per_node = total_bytes / nodes
        if kernel == "custom":
            local_block = c.yz_bytes() / (cores / m.cores_per_node) / m.cores_per_node
            # cache-blocked reorder: slows down when per-core blocks are
            # far bigger than cache; the source of §4.4's super-scaling
            excess = local_block / self.REORDER_CACHE_BYTES
            penalty = 1.0 + self.REORDER_CACHE_COEFF * max(0.0, math.log2(max(excess, 1e-9)))
            bw = m.ddr_bw * self.threads.reorder_bandwidth_fraction(m.cores_per_node)
            return per_node * penalty / bw
        # p3dfft: extra staging passes through the 3x buffers, stride-1
        bw = m.ddr_bw * self.threads.reorder_bandwidth_fraction(m.cores_per_node)
        return per_node * self.P3_REORDER_FACTOR / bw

    def _transpose_time(self, cores: int, kernel: str) -> float:
        c = self.counts
        m = self.machine
        nodes = m.nodes(cores)
        if kernel == "custom":
            tasks = nodes  # hybrid
            tasks_per_node = 1
            volume_factor = 1.0
        else:
            tasks = cores  # MPI everywhere
            tasks_per_node = m.cores_per_node
            # Nyquist modes ride along in both directions
            volume_factor = ((c.nx / 2 + 1) / (c.nx / 2)) * (c.nz / (c.nz - 1))
        pb = min(16, tasks)
        while tasks % pb:
            pb -= 1
        pa = tasks // pb
        geom_b = comm_geometry(pb, 1, tasks_per_node)
        geom_a = comm_geometry(pa, pb, tasks_per_node)
        per_task_yz = volume_factor * c.yz_bytes() / tasks
        per_task_zx = volume_factor * c.zx_bytes() / tasks
        t = self.net.transpose_time(geom_b, per_task_yz, tasks_per_node, nodes)
        t += self.net.transpose_time(geom_a, per_task_zx, tasks_per_node, nodes)
        if kernel == "p3dfft":
            t = t * self.P3_TRANSPOSE_PENALTY + tasks * self.P3_SYNC_PER_TASK / 2.0
        return 2.0 * t  # forward + back

    # ------------------------------------------------------------------

    def cycle_time(self, cores: int, kernel: str = "custom") -> FFTCycleTime:
        """One benchmark cycle; ``kernel`` is "custom" or "p3dfft"."""
        if kernel not in ("custom", "p3dfft"):
            raise ValueError(f"unknown kernel {kernel!r}")
        boosted = kernel == "custom"
        return FFTCycleTime(
            fft=self._fft_time(cores, boosted),
            transpose=self._transpose_time(cores, kernel),
            reorder=self._reorder_time(cores, kernel),
        )

    def memory_elements_per_task(self, cores: int, kernel: str) -> float:
        """Working set per task (the Table 6 'N/A: inadequate memory' check)."""
        c = self.counts
        tasks = self.machine.nodes(cores) if kernel == "custom" else cores
        base = c.yz_bytes() / 16 / tasks  # complex elements per task
        return base * (2.0 if kernel == "custom" else 4.0)  # input + buffers
