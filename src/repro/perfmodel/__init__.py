"""Machine performance models for the paper's four benchmark systems.

The paper's headline results (Tables 2-11) are properties of BG/Q racks,
Cray Gemini tori and InfiniBand fabrics that this environment does not
have.  Per the reproduction's substitution rule, this package models them
from first principles:

* :mod:`repro.perfmodel.machine` — specs of Mira, Lonestar, Stampede and
  Blue Waters (cores, clocks, DDR bandwidth, interconnect),
* :mod:`repro.perfmodel.network` — an analytic all-to-all/transpose cost
  model (latency, injection bandwidth, torus/fat-tree saturation,
  node-locality of sub-communicators),
* :mod:`repro.perfmodel.threading` — on-node thread scaling (compute
  kernels vs the bandwidth-bound reorder; BG/Q hardware-thread boost),
* :mod:`repro.perfmodel.counters` — a simulated HPM counter readout for
  the Navier-Stokes advance kernel (Table 2),
* :mod:`repro.perfmodel.kernels` — per-kernel cost models (FFT,
  N-S advance, reorder),
* :mod:`repro.perfmodel.timestep` — composition into full-RK3-timestep
  strong/weak scaling, the CommA x CommB sweep, and MPI vs hybrid,
* :mod:`repro.perfmodel.fftbench` — the Table 6 parallel-FFT comparison,
* :mod:`repro.perfmodel.paper_data` — the paper's numbers, verbatim, for
  side-by-side reporting in the benchmark harness.

The models are calibrated to the paper's anchor points; reproduction
claims are about *shape* (who wins, how efficiency decays, where
crossovers sit), not absolute seconds.
"""

from repro.perfmodel.machine import (
    BLUE_WATERS,
    LONESTAR,
    MIRA,
    STAMPEDE,
    MachineSpec,
    NetworkSpec,
)
from repro.perfmodel.network import TransposeCostModel
from repro.perfmodel.threading import ThreadScalingModel
from repro.perfmodel.counters import simulate_hpm_counters
from repro.perfmodel.timestep import TimestepModel, ParallelLayout
from repro.perfmodel.fftbench import ParallelFFTModel

__all__ = [
    "BLUE_WATERS",
    "LONESTAR",
    "MIRA",
    "STAMPEDE",
    "MachineSpec",
    "NetworkSpec",
    "ParallelFFTModel",
    "ParallelLayout",
    "ThreadScalingModel",
    "TimestepModel",
    "TransposeCostModel",
    "simulate_hpm_counters",
]
