"""Global transpose cost model (paper §4.3, §5).

One pencil transpose within a sub-communicator of size ``P`` is an
all-to-all: each task splits its local block into ``P`` chunks and
exchanges them.  Its cost has an off-node part (limited by the fabric's
effective all-to-all bandwidth at this scale and message size) and an
on-node part (shared-memory copies between co-located tasks):

    t = V_off / (bw_a2a(nodes) * f(msg)) + V_on / local_bw

per node, where ``V_off``/``V_on`` aggregate the traffic of all tasks on
one node, ``f`` is the message-size ramp, and chunks destined for the
same sub-communicator batch across the fields moved together (the DNS
moves 3 velocity fields down and 5 product fields up per pass — §5.3's
message-size lever between MPI-everywhere and hybrid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import MachineSpec


@dataclass(frozen=True)
class SubcommGeometry:
    """Placement of one sub-communicator relative to node boundaries.

    ``size``: members of the sub-communicator.
    ``members_on_node``: of those, how many share this task's node.
    """

    size: int
    members_on_node: int

    @property
    def off_node_fraction(self) -> float:
        """Fraction of a task's exchanged data leaving the node."""
        if self.size <= 1:
            return 0.0
        return (self.size - self.members_on_node) / self.size

    @property
    def on_node_fraction(self) -> float:
        if self.size <= 1:
            return 0.0
        return (self.members_on_node - 1) / self.size


def comm_geometry(sub_size: int, stride: int, tasks_per_node: int) -> SubcommGeometry:
    """Geometry of a sub-communicator whose members are ``stride`` apart.

    With ranks placed consecutively on nodes (the standard mapping), CommB
    members are consecutive (stride 1) and CommA members are ``pb`` apart.
    """
    if stride < 1 or sub_size < 1:
        raise ValueError("stride and sub_size must be positive")
    if stride >= tasks_per_node:
        members = 1
    else:
        members = max(1, min(sub_size, tasks_per_node // stride))
    return SubcommGeometry(size=sub_size, members_on_node=members)


class TransposeCostModel:
    """Per-transpose time on one machine."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine

    def transpose_time(
        self,
        geometry: SubcommGeometry,
        data_bytes_per_task: float,
        tasks_per_node: int,
        total_nodes: int,
        batch_fields: int = 1,
    ) -> float:
        """Seconds for one global transpose of one field set.

        ``data_bytes_per_task`` is one field's local block size;
        ``batch_fields`` scales both volume and message size (fields moved
        in the same pass share messages).
        """
        m = self.machine
        net = m.network
        if geometry.size <= 1:
            return 0.0
        volume_task = data_bytes_per_task * batch_fields
        v_off = tasks_per_node * volume_task * geometry.off_node_fraction
        v_on = tasks_per_node * volume_task * geometry.on_node_fraction
        t = 0.0
        if v_off > 0:
            t += v_off / net.effective_bw(total_nodes, tasks_per_node)
        if v_on > 0:
            t += v_on / m.local_copy_bw
        return t

    def cycle_time(
        self,
        geom_a: SubcommGeometry,
        geom_b: SubcommGeometry,
        bytes_per_task_a: float,
        bytes_per_task_b: float,
        tasks_per_node: int,
        total_nodes: int,
        batch_fields: int = 1,
    ) -> float:
        """One full transpose cycle x->z->y then y->z->x (Table 5 protocol):
        two CommA transposes + two CommB transposes."""
        ta = self.transpose_time(
            geom_a, bytes_per_task_a, tasks_per_node, total_nodes, batch_fields
        )
        tb = self.transpose_time(
            geom_b, bytes_per_task_b, tasks_per_node, total_nodes, batch_fields
        )
        return 2.0 * (ta + tb)
