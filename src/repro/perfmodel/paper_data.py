"""The paper's measured numbers, transcribed verbatim.

Used by the benchmark harness to print paper-vs-reproduction tables and
by golden-shape tests to check orderings/crossovers.  Sources: Lee,
Malaya & Moser, SC13 (tables numbered as in the paper).
"""

from __future__ import annotations

# Table 1 — elapsed time for solving a linear system, normalized by
# Netlib LAPACK ZGBTRF/ZGBTRS.  N = 1024.
TABLE1_BANDWIDTHS = [3, 5, 7, 9, 11, 13, 15]
TABLE1 = {
    # bandwidth: {column: normalized time}
    3: {"MKL_R": 0.67, "MKL_C": 0.65, "Custom_Lonestar": 0.14, "ESSL": 0.81, "Custom_Mira": 0.16},
    5: {"MKL_R": 0.55, "MKL_C": 0.61, "Custom_Lonestar": 0.12, "ESSL": 0.85, "Custom_Mira": 0.19},
    7: {"MKL_R": 0.53, "MKL_C": 0.58, "Custom_Lonestar": 0.11, "ESSL": 0.81, "Custom_Mira": 0.19},
    9: {"MKL_R": 0.53, "MKL_C": 0.56, "Custom_Lonestar": 0.10, "ESSL": 0.84, "Custom_Mira": 0.19},
    11: {"MKL_R": 0.47, "MKL_C": 0.56, "Custom_Lonestar": 0.10, "ESSL": 0.88, "Custom_Mira": 0.19},
    13: {"MKL_R": 0.45, "MKL_C": 0.55, "Custom_Lonestar": 0.11, "ESSL": 0.74, "Custom_Mira": 0.21},
    15: {"MKL_R": 0.41, "MKL_C": 0.53, "Custom_Lonestar": 0.11, "ESSL": 0.71, "Custom_Mira": 0.20},
}

# Table 2 — single-core N-S time-advance performance on Mira (HPM).
TABLE2 = {
    "SIMD": {
        "gflops": 4.96,
        "gflops_pct": 38.8,
        "ipc": 1.22,
        "l1_pct": 98.01,
        "l2_pct": 1.45,
        "ddr_pct": 0.53,
        "ddr_bytes_per_cycle": 14.2,
        "elapsed": 3.96,
    },
    "NoSIMD": {
        "gflops": 1.16,
        "gflops_pct": 9.05,
        "ipc": 0.89,
        "l1_pct": 98.2,
        "l2_pct": 0.92,
        "ddr_pct": 0.88,
        "ddr_bytes_per_cycle": 16.8,
        "elapsed": 3.34,
    },
}

# Table 3 — single-node threading speedups of FFT / N-S time advance.
TABLE3_LONESTAR = {  # cores: (fft speedup, advance speedup)
    2: (2.03, 1.99),
    3: (3.18, 2.98),
    4: (4.07, 3.65),
    5: (4.88, 4.77),
    6: (5.49, 5.70),
}
TABLE3_MIRA = {  # threads (16x2 = 32 etc.): (fft speedup, advance speedup)
    2: (1.99, 2.00),
    4: (3.96, 4.00),
    8: (7.88, 7.97),
    16: (15.4, 15.9),
    32: (27.6, 29.9),
    64: (32.6, 34.5),
}

# Table 4 — single-node data-reordering threading on Mira.
TABLE4_MIRA = {  # threads: (ddr bytes/cycle, speedup)
    2: (3.8, 1.98),
    4: (7.6, 3.90),
    8: (13.6, 5.54),
    16: (16.1, 6.24),
    32: (15.8, 5.99),
    64: (13.6, 5.56),
}

# Table 5 — global MPI communication, one full transpose cycle.
# (CommA, CommB): elapsed seconds.
TABLE5_MIRA = {  # 8192 cores, grid 2048 x 1024 x 1024
    (512, 16): 0.386,
    (256, 32): 0.462,
    (128, 64): 0.593,
    (64, 128): 0.609,
    (32, 256): 0.614,
    (16, 512): 0.626,
}
TABLE5_LONESTAR = {  # 384 cores, grid 1536 x 384 x 1024
    (32, 12): 2.966,
    (16, 24): 3.317,
    (8, 48): 3.669,
    (4, 96): 3.775,
}

# Table 6 — strong scaling of the parallel FFT: cores -> (p3dfft, custom)
# seconds; None = insufficient memory.
TABLE6_MIRA_SMALL = {  # grid 2048 x 1024 x 1024
    128: (11.5, 5.38),
    256: (5.88, 2.78),
    512: (2.95, 1.18),
    1024: (1.46, 0.580),
    2048: (0.724, 0.287),
    4096: (0.360, 0.139),
    8192: (0.179, 0.068),
}
TABLE6_MIRA_LARGE = {  # grid 18432 x 12288 x 12288
    65536: (None, 30.5),
    131072: (None, 16.2),
    262144: (12.4, 8.51),
    393216: (10.1, 5.85),
    524288: (6.90, 4.04),
    786432: (4.55, 3.12),
}
TABLE6_LONESTAR = {  # grid 768 x 768 x 768
    12: (None, 6.00),
    24: (2.67, 3.63),
    48: (1.57, 2.13),
    96: (0.873, 1.12),
    192: (0.547, 0.580),
    384: (0.294, 0.297),
    768: (0.212, 0.172),
    1536: (0.193, 0.111),
}
TABLE6_STAMPEDE = {  # grid 1024 x 1024 x 1024
    16: (None, 6.88),
    32: (None, 4.42),
    64: (2.16, 2.51),
    128: (1.32, 1.39),
    256: (0.676, 0.718),
    512: (0.421, 0.377),
    1024: (0.296, 0.199),
    2048: (0.201, 0.113),
    4096: (0.194, 0.0636),
}

# Table 7 — strong-scaling grids: system -> (nx, ny, nz).
TABLE7 = {
    "Mira": (18432, 1536, 12288),
    "Lonestar": (1024, 384, 1536),
    "Stampede": (2048, 512, 4096),
    "Blue Waters": (2048, 1024, 2048),
}

# Table 8 — weak-scaling grids: system -> (list of nx, ny, nz).
TABLE8 = {
    "Mira": ([4608, 9216, 18432, 27648, 36864, 55296], 1536, 12288),
    "Lonestar": ([512, 1024, 2048, 4096], 384, 1536),
    "Stampede": ([512, 1024, 2048, 4096], 512, 4096),
    "Blue Waters": ([1024, 2048, 4096, 8192], 1024, 2048),
}

# Table 9 — strong scaling of a full timestep:
# system -> {cores: (transpose, fft, advance, total)} seconds.
TABLE9 = {
    "Mira (MPI)": {
        131072: (26.9, 7.32, 6.98, 41.2),
        262144: (13.6, 4.02, 3.44, 21.1),
        393216: (8.92, 2.61, 2.28, 13.8),
        524288: (6.81, 2.09, 1.75, 10.6),
        786432: (4.50, 1.36, 1.21, 7.06),
    },
    "Mira (Hybrid)": {
        65536: (39.8, 13.8, 13.6, 67.2),
        131072: (20.9, 7.03, 6.76, 34.7),
        262144: (11.8, 3.61, 3.34, 18.7),
        393216: (8.83, 2.43, 2.22, 13.5),
        524288: (5.73, 1.89, 1.67, 9.29),
        786432: (4.70, 1.27, 1.11, 7.09),
    },
    "Lonestar": {
        192: (9.53, 2.06, 3.00, 14.6),
        384: (4.70, 1.04, 1.50, 7.24),
        768: (2.38, 0.51, 0.75, 3.65),
        1536: (1.29, 0.26, 0.37, 1.93),
    },
    "Stampede": {
        512: (18.9, 5.30, 6.85, 31.0),
        1024: (10.9, 2.68, 3.40, 17.0),
        2048: (7.60, 1.36, 1.72, 10.7),
        4096: (3.83, 0.67, 0.84, 5.35),
    },
    "Blue Waters": {
        2048: (17.9, 2.73, 3.53, 24.2),
        4096: (16.2, 1.37, 1.76, 19.4),
        8192: (16.2, 0.650, 0.880, 17.7),
        16384: (9.88, 0.356, 0.440, 10.7),
    },
}

# Table 10 — weak scaling of a full timestep (same layout as Table 9).
TABLE10 = {
    "Mira (MPI)": {
        65536: (9.87, 3.30, 3.46, 16.6),
        131072: (13.6, 3.52, 3.45, 20.6),
        262144: (13.6, 4.02, 3.44, 21.1),
        393216: (16.0, 4.41, 3.43, 23.9),
        524288: (13.5, 5.50, 3.48, 22.5),
        786432: (13.7, 7.28, 3.50, 24.5),
    },
    "Mira (Hybrid)": {
        65536: (9.83, 3.17, 3.34, 16.3),
        131072: (10.3, 3.36, 3.34, 17.0),
        262144: (11.8, 3.61, 3.34, 18.7),
        393216: (13.4, 4.14, 3.34, 20.8),
        524288: (11.8, 5.08, 3.35, 20.2),
        786432: (14.5, 7.60, 3.34, 25.5),
    },
    "Lonestar": {
        192: (4.73, 1.00, 1.51, 7.24),
        384: (4.70, 1.04, 1.50, 7.24),
        768: (4.70, 1.17, 1.50, 7.37),
        1536: (5.01, 1.31, 1.50, 7.81),
    },
    "Stampede": {
        512: (4.85, 1.21, 1.71, 7.77),
        1024: (5.66, 1.24, 1.75, 8.65),
        2048: (6.78, 1.34, 1.73, 9.86),
        4096: (7.11, 1.47, 1.73, 10.3),
    },
    "Blue Waters": {
        2048: (11.1, 1.26, 1.76, 14.1),
        4096: (16.2, 1.37, 1.76, 19.4),
        8192: (20.44, 1.49, 1.76, 23.7),
        16384: (25.66, 1.70, 1.76, 29.1),
    },
}

# Table 11 — MPI vs Hybrid total seconds on Mira.
TABLE11_STRONG = {  # cores: (mpi, hybrid)
    131072: (41.2, 34.7),
    262144: (21.1, 18.7),
    393216: (13.8, 13.5),
    524288: (10.6, 9.29),
    786432: (7.06, 7.09),
}
TABLE11_WEAK = {
    65536: (16.6, 16.3),
    131072: (20.6, 17.0),
    262144: (21.1, 18.7),
    393216: (23.9, 20.8),
    524288: (22.5, 20.2),
    786432: (24.5, 25.5),
}

# §5.1/§5.3 headline numbers.
HEADLINES = {
    "strong_scaling_efficiency_786k_vs_65k_hybrid": 0.79,
    "strong_scaling_efficiency_786k_vs_131k_mpi": 0.971,
    "aggregate_tflops_786k": 271.0,
    "aggregate_pct_peak": 2.7,
    "on_node_tflops_786k": 906.0,
    "production_dof": 242e9,
}
