"""Full-timestep performance composition (paper §5, Tables 5 & 9-11).

A :class:`ParallelLayout` fixes how the job maps onto a machine —
MPI-everywhere (one task per core) or hybrid (one task per node, threads
inside) and the ``PA x PB`` task grid.  :class:`TimestepModel` then
prices one RK3 timestep as the paper's three sections:

* **Transpose** — 4 transpose events per substep (3 fields down through
  CommB and CommA, 5 fields back up), costed by the network model,
* **FFT** — flop counts over the sustained per-core FFT rate, with the
  weak-scaling cache penalty on the x lines (§5.2),
* **N-S time advance** — banded-solve flops over the memory-bandwidth-
  limited sustained rate (Table 2's 1.16 GF/core on Mira).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.kernels import SUBSTEPS, BACKWARD_FIELDS, FORWARD_FIELDS, GridCounts
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.network import TransposeCostModel, comm_geometry


def _largest_divisor_at_most(n: int, bound: int) -> int:
    for d in range(min(bound, n), 0, -1):
        if n % d == 0:
            return d
    return 1


@dataclass(frozen=True)
class ParallelLayout:
    """How the job is laid out on the machine.

    ``mode``: ``"mpi"`` = one task per core; ``"hybrid"`` = one task per
    node with OpenMP threads covering the cores (§5.3).  ``pb`` is the
    CommB extent; by default it is chosen node-local for MPI (the Table 5
    winner) and a modest power of two for hybrid.
    """

    machine: MachineSpec
    cores: int
    mode: str = "mpi"
    pb: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("mpi", "hybrid"):
            raise ValueError(f"unknown mode {self.mode!r}")
        self.machine.nodes(self.cores)  # validates divisibility

    @property
    def nodes(self) -> int:
        return self.machine.nodes(self.cores)

    @property
    def tasks(self) -> int:
        return self.cores if self.mode == "mpi" else self.nodes

    @property
    def tasks_per_node(self) -> int:
        return self.machine.cores_per_node if self.mode == "mpi" else 1

    @property
    def comm_b_size(self) -> int:
        if self.pb is not None:
            if self.tasks % self.pb:
                raise ValueError(f"pb={self.pb} does not divide {self.tasks} tasks")
            return self.pb
        if self.mode == "mpi":
            # node-local CommB — the paper's production choice
            return _largest_divisor_at_most(self.tasks, self.machine.cores_per_node)
        return _largest_divisor_at_most(self.tasks, 16)

    @property
    def comm_a_size(self) -> int:
        return self.tasks // self.comm_b_size

    def geometries(self):
        pb = self.comm_b_size
        pa = self.comm_a_size
        geom_b = comm_geometry(pb, stride=1, tasks_per_node=self.tasks_per_node)
        geom_a = comm_geometry(pa, stride=pb, tasks_per_node=self.tasks_per_node)
        return geom_a, geom_b


@dataclass
class SectionTimes:
    """The Table 9/10 row: seconds per timestep by section."""

    transpose: float
    fft: float
    advance: float

    @property
    def total(self) -> float:
        return self.transpose + self.fft + self.advance

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.transpose, self.fft, self.advance, self.total)


class TimestepModel:
    """Model of one RK3 DNS timestep on a machine."""

    def __init__(self, machine: MachineSpec, nx: int, ny: int, nz: int) -> None:
        self.machine = machine
        self.counts = GridCounts(nx=nx, ny=ny, nz=nz, dealias=True)
        self.net = TransposeCostModel(machine)

    # ------------------------------------------------------------------

    def transpose_time(self, layout: ParallelLayout) -> float:
        c = self.counts
        geom_a, geom_b = layout.geometries()
        per_task_yz = c.yz_bytes() / layout.tasks
        per_task_zx = c.zx_bytes() / layout.tasks
        t = 0.0
        for batch in (FORWARD_FIELDS, BACKWARD_FIELDS):
            t += self.net.transpose_time(
                geom_b, per_task_yz, layout.tasks_per_node, layout.nodes, batch
            )
            t += self.net.transpose_time(
                geom_a, per_task_zx, layout.tasks_per_node, layout.nodes, batch
            )
        return SUBSTEPS * t

    def fft_time(self, layout: ParallelLayout) -> float:
        m = self.machine
        c = self.counts
        z_flops, x_flops = c.fft_flops_per_step()
        # weak-scaling cache penalty applies to the x (growing) lines
        penalty = m.fft_line_penalty(c.nxq, itemsize=8)
        rate = layout.cores * m.fft_gflops_per_core * 1e9
        return (z_flops + x_flops * penalty) / rate

    def advance_time(self, layout: ParallelLayout) -> float:
        m = self.machine
        return self.counts.advance_flops_per_step() / (
            layout.cores * m.advance_gflops_per_core * 1e9
        )

    def section_times(self, layout: ParallelLayout) -> SectionTimes:
        return SectionTimes(
            transpose=self.transpose_time(layout),
            fft=self.fft_time(layout),
            advance=self.advance_time(layout),
        )

    # ------------------------------------------------------------------
    # Table 5: CommA x CommB sweep (single-field transpose cycles)
    # ------------------------------------------------------------------

    def comm_grid_sweep(
        self, cores: int, grids: list[tuple[int, int]], mode: str = "mpi"
    ) -> dict[tuple[int, int], float]:
        """Time one full x->z->y->z->x cycle for each (pa, pb) split.

        Matches the Table 5 protocol: a single field, no dealiasing pads
        timed separately (the cycle moves the padded z-pencil sizes as in
        production).
        """
        out = {}
        for pa, pb in grids:
            layout = ParallelLayout(self.machine, cores, mode=mode, pb=pb)
            if layout.tasks != pa * pb:
                raise ValueError(f"(pa, pb) = {(pa, pb)} does not cover {layout.tasks} tasks")
            geom_a, geom_b = layout.geometries()
            per_task_yz = self.counts.yz_bytes() / layout.tasks
            per_task_zx = self.counts.zx_bytes() / layout.tasks
            out[(pa, pb)] = self.net.cycle_time(
                geom_a,
                geom_b,
                per_task_zx,
                per_task_yz,
                layout.tasks_per_node,
                layout.nodes,
                batch_fields=1,
            )
        return out

    # ------------------------------------------------------------------
    # aggregate flop-rate headline (§5.3)
    # ------------------------------------------------------------------

    def aggregate_flops(self, layout: ParallelLayout) -> dict[str, float]:
        """Sustained aggregate rate over a timestep and the on-node rate."""
        times = self.section_times(layout)
        z_flops, x_flops = self.counts.fft_flops_per_step()
        flops = z_flops + x_flops + self.counts.advance_flops_per_step()
        on_node_time = times.fft + times.advance
        return {
            "total_flops": flops / times.total,
            "on_node_flops": flops / on_node_time,
            "peak_fraction": flops / times.total / (layout.nodes * self.machine.node_flops),
        }
