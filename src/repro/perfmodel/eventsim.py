"""Fluid (progressive-filling) network simulator for transpose traffic.

The analytic model in :mod:`repro.perfmodel.network` prices an
all-to-all with closed-form saturation laws.  This module provides an
independent check: a message-level fluid simulation with max-min fair
bandwidth sharing over three resource classes —

* per-node **injection** capacity (NIC out),
* per-node **ejection** capacity (NIC in),
* a global **fabric** capacity (the bisection pool a torus/fat tree
  offers the whole partition),

while node-local messages use a separate shared-memory capacity.  The
simulation alternates max-min rate allocation with advancing time to the
next message completion — exact for fluid flows, and capable of pricing
*irregular* patterns (CommA/CommB with node locality, skewed loads) that
the closed forms only approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FabricSpec:
    """Capacities of the simulated machine partition (bytes/second)."""

    injection_bw: float
    ejection_bw: float
    fabric_bw: float  # aggregate cross-node pool (bisection-like)
    local_bw: float  # per-node shared-memory exchange capacity

    @classmethod
    def from_machine(cls, machine, nodes: int) -> "FabricSpec":
        """Capacities consistent with the analytic model at this scale."""
        net = machine.network
        per_node = net.alltoall_bw * min(1.5, max(net.saturation(nodes), 1e-6))
        return cls(
            injection_bw=net.alltoall_bw * 1.5,
            ejection_bw=net.alltoall_bw * 1.5,
            fabric_bw=per_node * nodes,
            local_bw=machine.local_copy_bw,
        )


@dataclass
class Message:
    src: int
    dst: int
    remaining: float
    rate: float = 0.0
    finish_time: float = field(default=np.inf, repr=False)


def _maxmin_rates(messages: list[Message], spec: FabricSpec, nodes: int) -> None:
    """Max-min fair allocation over injection/ejection/fabric capacities.

    Progressive filling: repeatedly find the most-contended resource,
    freeze its flows at the fair share, remove the capacity, repeat.
    Node-local messages only contend for their node's local capacity.
    """
    remote = [m for m in messages if m.src != m.dst]
    local = [m for m in messages if m.src == m.dst]

    # Local messages: per-node fair share of the shared-memory capacity.
    per_node_local: dict[int, list[Message]] = {}
    for m in local:
        per_node_local.setdefault(m.src, []).append(m)
    for node_msgs in per_node_local.values():
        share = spec.local_bw / len(node_msgs)
        for m in node_msgs:
            m.rate = share

    if not remote:
        return

    # Resources: injection per src node, ejection per dst node, one fabric.
    inj_cap = {n: spec.injection_bw for n in range(nodes)}
    ej_cap = {n: spec.ejection_bw for n in range(nodes)}
    fabric_cap = spec.fabric_bw
    active = list(remote)
    for m in active:
        m.rate = 0.0

    while active:
        # fair share each resource could give its active flows
        inj_load: dict[int, int] = {}
        ej_load: dict[int, int] = {}
        for m in active:
            inj_load[m.src] = inj_load.get(m.src, 0) + 1
            ej_load[m.dst] = ej_load.get(m.dst, 0) + 1
        candidates: list[tuple[float, str, int]] = []
        for n, k in inj_load.items():
            candidates.append((inj_cap[n] / k, "inj", n))
        for n, k in ej_load.items():
            candidates.append((ej_cap[n] / k, "ej", n))
        candidates.append((fabric_cap / len(active), "fab", -1))
        share, kind, node = min(candidates)

        # freeze flows crossing the bottleneck at the fair share
        frozen = []
        for m in active:
            if (
                (kind == "inj" and m.src == node)
                or (kind == "ej" and m.dst == node)
                or kind == "fab"
            ):
                m.rate = share
                frozen.append(m)
        for m in frozen:
            inj_cap[m.src] -= share
            ej_cap[m.dst] -= share
            fabric_cap -= share
            active.remove(m)
        fabric_cap = max(fabric_cap, 0.0)


def simulate_traffic(messages: list[Message], spec: FabricSpec, nodes: int) -> float:
    """Fluid simulation: total completion time of the message set."""
    msgs = [m for m in messages if m.remaining > 0]
    t = 0.0
    guard = 0
    while msgs:
        guard += 1
        if guard > 100000:
            raise RuntimeError("fluid simulation failed to converge")
        _maxmin_rates(msgs, spec, nodes)
        # time to the next completion
        dt = min(m.remaining / m.rate for m in msgs if m.rate > 0)
        t += dt
        for m in msgs:
            m.remaining -= m.rate * dt
        msgs = [m for m in msgs if m.remaining > 1e-9]
    return t


def alltoall_messages(
    sub_groups: list[list[int]],
    bytes_per_pair: float,
    node_of,
) -> list[Message]:
    """Message set of simultaneous all-to-alls within each rank group.

    ``node_of(rank)`` maps ranks to nodes; messages between co-located
    ranks become node-local flows.
    """
    out = []
    for group in sub_groups:
        for a in group:
            for b in group:
                if a == b:
                    continue
                out.append(Message(src=node_of(a), dst=node_of(b), remaining=bytes_per_pair))
    return out


def simulate_subcomm_alltoall(
    machine,
    nodes: int,
    tasks_per_node: int,
    sub_size: int,
    stride: int,
    data_bytes_per_task: float,
) -> float:
    """Time one sub-communicator all-to-all via the fluid simulator.

    Mirrors the analytic
    :meth:`~repro.perfmodel.network.TransposeCostModel.transpose_time`
    for a rank placement of ``tasks_per_node`` consecutive ranks per node
    and sub-communicators of ``sub_size`` ranks spaced ``stride`` apart.
    """
    ntasks = nodes * tasks_per_node
    spec = FabricSpec.from_machine(machine, nodes)

    def node_of(rank: int) -> int:
        return rank // tasks_per_node

    groups = []
    seen = set()
    for start in range(ntasks):
        if start in seen:
            continue
        group = [start + i * stride for i in range(sub_size)]
        if group[-1] >= ntasks or any(g in seen for g in group):
            continue
        groups.append(group)
        seen.update(group)
    msgs = alltoall_messages(groups, data_bytes_per_task / sub_size, node_of)
    return simulate_traffic(msgs, spec, nodes)
