"""repro — reproduction of "Petascale Direct Numerical Simulation of
Turbulent Channel Flow on up to 786K Cores" (Lee, Malaya & Moser, SC13).

The package provides four layers:

* the spectral channel DNS itself (:mod:`repro.core`): Kim–Moin–Moser
  formulation, Fourier x/z + 7th-degree B-spline collocation in y,
  RK3 IMEX time advance, statistics;
* the substrates it stands on: B-splines (:mod:`repro.bsplines`), the
  custom corner-banded solver (:mod:`repro.linalg`), Nyquist-free FFTs
  with 3/2 dealiasing (:mod:`repro.fft`);
* the parallel machinery: a simulated MPI (:mod:`repro.mpi`), pencil
  decomposition with global transposes, the customized parallel FFT and
  a P3DFFT-like baseline, and a distributed DNS driver
  (:mod:`repro.pencil`);
* calibrated machine models of the paper's four benchmark systems that
  regenerate its performance tables (:mod:`repro.perfmodel`), plus
  statistics references and field visualisation (:mod:`repro.stats`);
* run observability (:mod:`repro.telemetry`): every driver takes
  ``telemetry=`` and emits a JSON-lines record stream, a run manifest
  and a Chrome trace (see ``docs/observability.md``).

Quickstart::

    from repro import ChannelConfig, ChannelDNS
    dns = ChannelDNS(ChannelConfig(nx=32, ny=33, nz=32, re_tau=180.0, dt=2e-4))
    dns.initialize()
    dns.run(100, sample_every=10)
    yplus, uplus = dns.statistics.wall_units(dns.config.nu)
"""

from repro.core import ChannelConfig, ChannelDNS, ChannelGrid, RunningStatistics
from repro.mpi import run_spmd
from repro.pencil import P3DFFTBaseline, PencilTransforms
from repro.pencil.distributed import DistributedChannelDNS
from repro.telemetry import RunRecorder, TelemetryConfig

__version__ = "1.0.0"

__all__ = [
    "ChannelConfig",
    "ChannelDNS",
    "ChannelGrid",
    "DistributedChannelDNS",
    "P3DFFTBaseline",
    "PencilTransforms",
    "RunRecorder",
    "RunningStatistics",
    "TelemetryConfig",
    "run_spmd",
    "__version__",
]
