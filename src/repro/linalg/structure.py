"""Storage structure for "banded + boundary corner" matrices (paper Fig. 3).

A :class:`BandedSystemSpec` describes matrices that are banded with lower
bandwidth ``kl`` and upper bandwidth ``ku``, except that the first and
last ``corner_rows`` rows may extend ``corner`` extra columns beyond the
band (boundary-condition rows of collocation systems).

:class:`FoldedBanded` stores such a (batch of) matrices in the *folded
row-window* layout: every row occupies a fixed-width window

    ``W = kl + ku + 1 + corner``

starting at column ``jlo[i] = clip(i - kl, 0, n - W)``.  Near the top the
band would stick out of the matrix, leaving empty slots — the fold reuses
exactly those slots for the corner elements, reproducing the right-hand
panel of the paper's figure 3.  The layout is also what no-pivot Gaussian
elimination preserves: ``jlo`` is non-decreasing, so all fill-in lands
inside the windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BandedSystemSpec:
    """Sparsity structure shared by a batch of corner-banded matrices."""

    n: int
    kl: int
    ku: int
    corner: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.kl < 0 or self.ku < 0 or self.corner < 0:
            raise ValueError("bandwidths must be non-negative")
        if self.window > self.n:
            raise ValueError(
                f"window width {self.window} exceeds matrix dimension {self.n}; "
                "the matrix is effectively dense — use a dense solver"
            )

    @property
    def window(self) -> int:
        """Fixed row-window width of the folded storage."""
        return self.kl + self.ku + 1 + self.corner

    @property
    def jlo(self) -> np.ndarray:
        """First stored column of each row (non-decreasing)."""
        i = np.arange(self.n)
        return np.clip(i - self.kl, 0, self.n - self.window)

    @property
    def mdiag(self) -> np.ndarray:
        """Window position of each row's diagonal: ``data[:, i, mdiag[i]]``."""
        return np.arange(self.n) - self.jlo

    @property
    def coupling_width(self) -> int:
        """Maximum reach of any row beyond its diagonal, in either
        direction (``W - 1``): the number of previously solved entries a
        blocked sweep panel can depend on.  ``jlo`` is non-decreasing and
        clipped, so every stored element of row ``i`` lies in columns
        ``[i - coupling_width, i + coupling_width]``."""
        return self.window - 1

    # ------------------------------------------------------------------
    # memory accounting (for the paper's "memory reduced by half" claim)
    # ------------------------------------------------------------------

    def folded_storage(self) -> int:
        """Matrix elements stored by the folded layout."""
        return self.n * self.window

    def lapack_storage(self) -> int:
        """Elements a general banded LAPACK factorization (xGBTRF) stores.

        Covering the corners requires padding the bandwidths to
        ``kl' = kl + corner``, ``ku' = ku + corner``, and xGBTRF wants
        ``2*kl' + ku' + 1`` rows of workspace for pivoting fill.
        """
        klp = self.kl + self.corner
        kup = self.ku + self.corner
        return self.n * (2 * klp + kup + 1)

    def contains(self, i: int, j: int) -> bool:
        """Whether element (i, j) lies inside the stored structure."""
        lo = self.jlo[i]
        return lo <= j < lo + self.window


class FoldedBanded:
    """(Batch of) corner-banded matrices in folded row-window storage.

    ``data`` has shape ``(nbatch, n, W)``; ``data[b, i, m]`` is element
    ``A_b[i, jlo[i] + m]``.  A single matrix is a batch of one.
    """

    def __init__(self, spec: BandedSystemSpec, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=float)
        if data.ndim == 2:
            data = data[None]
        if data.shape[1:] != (spec.n, spec.window):
            raise ValueError(
                f"data shape {data.shape} does not match spec "
                f"(n={spec.n}, window={spec.window})"
            )
        self.spec = spec
        self.data = data

    # ------------------------------------------------------------------

    @property
    def nbatch(self) -> int:
        return self.data.shape[0]

    @classmethod
    def zeros(cls, spec: BandedSystemSpec, nbatch: int = 1) -> "FoldedBanded":
        return cls(spec, np.zeros((nbatch, spec.n, spec.window)))

    @classmethod
    def from_dense(cls, dense: np.ndarray, spec: BandedSystemSpec) -> "FoldedBanded":
        """Pack dense matrices (batched or single) into folded storage.

        Raises if any non-zero falls outside the declared structure.
        """
        dense = np.asarray(dense, dtype=float)
        if dense.ndim == 2:
            dense = dense[None]
        nbatch, n, n2 = dense.shape
        if n != spec.n or n2 != spec.n:
            raise ValueError(f"dense shape {dense.shape} does not match spec n={spec.n}")
        jlo = spec.jlo
        out = np.zeros((nbatch, n, spec.window))
        for i in range(n):
            lo = jlo[i]
            out[:, i, :] = dense[:, i, lo : lo + spec.window]
            # structure check: everything outside the window must vanish
            outside = np.abs(dense[:, i, :lo]).max(initial=0.0)
            outside = max(outside, np.abs(dense[:, i, lo + spec.window :]).max(initial=0.0))
            if outside > 0.0:
                raise ValueError(
                    f"row {i} has non-zeros outside the declared structure "
                    f"(|value| up to {outside:g}); enlarge kl/ku/corner"
                )
        return cls(spec, out)

    def to_dense(self) -> np.ndarray:
        """Unpack to dense ``(nbatch, n, n)``."""
        spec = self.spec
        jlo = spec.jlo
        out = np.zeros((self.nbatch, spec.n, spec.n))
        for i in range(spec.n):
            lo = jlo[i]
            out[:, i, lo : lo + spec.window] = self.data[:, i, :]
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Batched matrix-vector product; ``x`` shaped ``(nbatch, n)`` (or ``(n,)``)."""
        x = np.asarray(x)
        squeeze = x.ndim == 1
        if squeeze:
            x = np.broadcast_to(x, (self.nbatch, self.spec.n))
        jlo = self.spec.jlo
        out = np.zeros((self.nbatch, self.spec.n), dtype=np.result_type(self.data, x))
        W = self.spec.window
        for i in range(self.spec.n):
            lo = jlo[i]
            out[:, i] = np.einsum("bm,bm->b", self.data[:, i, :], x[:, lo : lo + W])
        return out[0] if squeeze and self.nbatch == 1 else out

    def copy(self) -> "FoldedBanded":
        return FoldedBanded(self.spec, self.data.copy())
