"""Banded linear algebra substrate.

The paper's single-core optimisation (§4.1.1) replaces general banded
LAPACK solvers with a customized solver for matrices that are "banded with
extra non-zero values in the first and last few rows" (Fig. 3): boundary
condition rows of the B-spline collocation systems.  The custom solver

* stores the matrix in a *folded* row-window layout, moving the corner
  elements into otherwise-empty band slots — halving memory vs. the
  padded general-band layout a LAPACK solver would need;
* factors **in real arithmetic** even when the right-hand side is complex
  (the collocation matrices are real), instead of promoting the matrix to
  complex (ZGBTRF) or splitting the vectors (DGBTRS on re/im);
* is *batched* over the Fourier-wavenumber axis, the Python/NumPy
  equivalent of the paper's hand-unrolled cache-resident loops;
* sweeps through the blocked :mod:`repro.linalg.engine`, which processes
  panels of rows per Python iteration with pre-inverted diagonal blocks
  and persistent (zero-allocation) workspaces.

Reference solvers mirroring the LAPACK/MKL/ESSL paths live in
:mod:`repro.linalg.reference`; Helmholtz/Poisson collocation assembly in
:mod:`repro.linalg.helmholtz`.
"""

from repro.linalg.structure import BandedSystemSpec, FoldedBanded
from repro.linalg.custom import FoldedLU, solve_corner_banded
from repro.linalg.engine import BandedSolveEngine, default_block
from repro.linalg.reference import (
    netlib_banded_lu,
    netlib_banded_solve,
    solve_padded_complex,
    solve_padded_split,
)
from repro.linalg.helmholtz import HelmholtzOperator, helmholtz_system, poisson_system

__all__ = [
    "BandedSolveEngine",
    "BandedSystemSpec",
    "FoldedBanded",
    "FoldedLU",
    "default_block",
    "HelmholtzOperator",
    "helmholtz_system",
    "netlib_banded_lu",
    "netlib_banded_solve",
    "poisson_system",
    "solve_corner_banded",
    "solve_padded_complex",
    "solve_padded_split",
]
