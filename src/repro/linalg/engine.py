"""Batched blocked-sweep solve engine for folded corner-banded factors.

:class:`FoldedLU` factors in folded row-window storage; its reference
sweeps (``solve_reference``) walk the rows one at a time — 2·n
Python-level iterations per solve, each a tiny ``einsum`` whose
interpreter/dispatch overhead dwarfs its flops.  That is why the pure
NumPy custom solver historically *lost* to compiled LAPACK in wall-clock
despite doing 3-4x fewer flops (see ``benchmarks/results/
table01_banded_solver.txt``).

:class:`BandedSolveEngine` restructures the sweeps into *panels*: the
unit lower factor L and upper factor U are block-bidiagonal when the
rows are grouped into panels of ``block`` rows (every stored element of
row ``i`` lies within ``coupling_width = W - 1`` columns of ``i``, which
is why one coupling block per panel suffices).  At construction the
engine extracts, per panel,

* the dense panel-diagonal blocks of L and U and **pre-inverts** them
  (a one-time batched ``np.linalg.inv``; factors are built once per RK
  coefficient and reused every substep, so this amortizes to nothing),
* the dense coupling block to the trailing (L) / leading (U) ``W - 1``
  already-solved entries, pre-multiplied by the panel inverse and packed
  *next to it*:  ``x[s:e] = [-L⁻¹ Lc | L⁻¹] @ x[s-cw : e]`` is a single
  batched ``matmul`` against a contiguous row slice.

A solve is then ``2·ceil(n/block)`` Python iterations of one batched
``matmul`` (plus a panel copy-back) each, instead of ``2·n`` einsum
rows.

**Real factors, complex right-hand sides, one fixed sweep width.**
The factors are real; complex right-hand sides are swept as (re, im)
column *pairs* of a real multi-RHS stack — the paper's "sweep complex
vectors against real factors" optimisation, with no dtype promotion.
Every sweep runs at a single fixed matmul width of 4 columns (two
pairs), zero-padding unused slots.  The width is fixed because BLAS
kernels select by GEMM shape: the same column swept at width 2 and
width 4 differs in the last bits, but *at a fixed width* each output
column is an independent dot product — unaffected by the content or
position of its neighbours (asserted across shapes by the test suite).
That single rule makes every entry point agree exactly, bit for bit:
``solve`` on a complex vector, ``solve_many`` on its stacked re/im
columns, and a fused ``solve_stack`` that carries several state
variables through shared sweeps.

**Zero allocations in steady state.**  All sweep scratch (the RHS stack
``X`` and the panel temporary ``T``) is allocated once at engine build
and counted in :class:`~repro.instrument.SolveCounters`; outputs are
caller-owned fresh arrays (the transform-pipeline discipline).  The
counters must not move across warmed-up solves — asserted by
``tests/linalg/test_engine.py``.  Unused sweep columns stay exactly
zero through a sweep (each output column is a dot product against
zeros), so the engine tracks which columns are already clear and skips
re-zeroing them.
"""

from __future__ import annotations

import numpy as np

from repro.instrument import SolveCounters


def default_block(n: int) -> int:
    """Panel height: 16 rows balances Python iteration count against the
    O(b·(b + W)) dense panel flops (measured optimum across the Table 1
    bench point and DNS-sized systems; see benchmarks/)."""
    return min(n, 16)


class BandedSolveEngine:
    """Blocked batched triangular sweeps over a :class:`FoldedLU`.

    Parameters
    ----------
    lu:
        A factored :class:`~repro.linalg.custom.FoldedLU` (the engine
        reads its folded factor data; it never mutates it).
    block:
        Panel height; ``None`` selects :func:`default_block`.
    counters:
        A :class:`~repro.instrument.SolveCounters` to attach (a fresh
        one is created by default).
    """

    def __init__(self, lu, block: int | None = None, counters: SolveCounters | None = None):
        spec = lu.spec
        self.lu = lu
        self.spec = spec
        self.n = spec.n
        self.nbatch = int(lu.data.shape[0])
        self.block = int(block) if block else default_block(spec.n)
        if self.block < 1:
            raise ValueError(f"block must be positive, got {self.block}")
        self.counters = counters if counters is not None else SolveCounters()
        self._build_panels(lu.data)
        self._alloc_workspace()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_panels(self, data: np.ndarray) -> None:
        """Extract per-panel dense blocks from the folded factors.

        ``data[b, i, m]`` holds L strictly below the diagonal
        (``m < mdiag[i]``) and U on/above it, exactly as
        :meth:`FoldedLU._factor` leaves them.
        """
        spec = self.spec
        n, W, b = spec.n, spec.window, self.block
        jlo = spec.jlo
        cw = spec.coupling_width
        nbatch = self.nbatch

        fwd = []  # (s, e, [-L⁻¹Lc | L⁻¹], lo) in sweep order; reads x[lo:e]
        bwd = []  # (s, e, [U⁻¹ | -U⁻¹Uc], hi) in reverse order; reads x[s:hi]
        for s in range(0, n, b):
            e = min(s + b, n)
            bk = e - s
            rows = np.arange(s, e)
            jj = jlo[rows][:, None] + np.arange(W)[None, :]  # global column
            rr = np.broadcast_to(rows[:, None], jj.shape)
            rloc = rr - s
            vals = data[:, s:e, :]
            is_lower = jj < rr  # strict-lower window slots hold L

            ldiag = np.zeros((nbatch, bk, bk))
            ldiag[:, np.arange(bk), np.arange(bk)] = 1.0
            sel = is_lower & (jj >= s)
            ldiag[:, rloc[sel], jj[sel] - s] = vals[:, sel]
            cwk = min(cw, s)
            lcouple = np.zeros((nbatch, bk, cwk))
            if cwk:
                sel = is_lower & (jj < s)
                lcouple[:, rloc[sel], jj[sel] - (s - cwk)] = vals[:, sel]

            udiag = np.zeros((nbatch, bk, bk))
            sel = ~is_lower & (jj < e)
            udiag[:, rloc[sel], jj[sel] - s] = vals[:, sel]
            cuk = min(cw, n - e)
            ucouple = np.zeros((nbatch, bk, cuk))
            if cuk:
                sel = ~is_lower & (jj >= e)
                ucouple[:, rloc[sel], jj[sel] - e] = vals[:, sel]

            linv = np.linalg.inv(ldiag)
            uinv = np.linalg.inv(udiag)
            lmat = np.concatenate([-(linv @ lcouple), linv], axis=2) if cwk else linv
            umat = np.concatenate([uinv, -(uinv @ ucouple)], axis=2) if cuk else uinv
            fwd.append((s, e, np.ascontiguousarray(lmat), s - cwk))
            bwd.append((s, e, np.ascontiguousarray(umat), e + cuk))
        self._fwd = fwd
        self._bwd = bwd[::-1]

    #: fixed sweep width: two (re, im) pairs per blocked pass
    WIDTH = 4

    def _alloc_workspace(self) -> None:
        """Persistent sweep scratch: the solve-major RHS stack ``X`` and
        the panel temporary ``T``, both at the fixed sweep width."""
        nbatch, n, b = self.nbatch, self.n, min(self.block, self.n)
        self._x = np.zeros((nbatch, n, self.WIDTH))
        self._t = np.empty((nbatch, b, self.WIDTH))
        #: columns of X known to be exactly zero (zeros sweep to zeros,
        #: so clear columns never need re-clearing)
        self._clear = [True] * self.WIDTH
        for arr in (self._x, self._t):
            self.counters.count_workspace(arr)

    def workspace_bytes(self) -> int:
        """Bytes of engine-owned persistent sweep scratch."""
        return self._x.nbytes + self._t.nbytes

    def _load_col(self, c: int, values) -> None:
        self._x[:, :, c] = values
        self._clear[c] = False

    def _zero_col(self, c: int) -> None:
        if not self._clear[c]:
            self._x[:, :, c] = 0.0
            self._clear[c] = True

    # ------------------------------------------------------------------
    # the blocked sweeps
    # ------------------------------------------------------------------

    def _sweep(self) -> np.ndarray:
        """One forward+backward blocked pass over ``X`` in place.

        Returns the workspace stack ``X`` (shape ``(nbatch, n, WIDTH)``)
        that the caller packed before and unpacks after.
        """
        x, t = self._x, self._t
        self.counters.sweeps += 1
        for s, e, mat, lo in self._fwd:
            tb = t[:, : e - s]
            np.matmul(mat, x[:, lo:e], out=tb)
            x[:, s:e] = tb
        for s, e, mat, hi in self._bwd:
            tb = t[:, : e - s]
            np.matmul(mat, x[:, s:hi], out=tb)
            x[:, s:e] = tb
        return x

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def _check_rhs(self, rhs: np.ndarray) -> None:
        if rhs.shape != (self.nbatch, self.n):
            raise ValueError(
                f"rhs shape {rhs.shape} does not match (nbatch={self.nbatch}, n={self.n})"
            )

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for each batch member.

        ``rhs`` has shape ``(nbatch, n)`` (or ``(n,)`` for a batch of
        one) and may be real or complex; a complex right-hand side is
        swept as one (re, im) pair against the real factors.
        """
        rhs = np.asarray(rhs)
        squeeze = rhs.ndim == 1
        if squeeze:
            rhs = rhs[None, :]
        self._check_rhs(rhs)
        self.counters.solves += 1
        x = self._x
        if np.iscomplexobj(rhs):
            self._load_col(0, rhs.real)
            self._load_col(1, rhs.imag)
            for c in range(2, self.WIDTH):
                self._zero_col(c)
            self._sweep()
            self.counters.columns += 2
            out = np.empty((self.nbatch, self.n), dtype=complex)
            out.view(np.float64).reshape(self.nbatch, self.n, 2)[...] = x[:, :, :2]
        else:
            self._load_col(0, rhs)
            for c in range(1, self.WIDTH):
                self._zero_col(c)
            self._sweep()
            self.counters.columns += 1
            out = np.empty((self.nbatch, self.n))
            out[...] = x[:, :, 0]
        return out[0] if squeeze else out

    def solve_many(self, cols: np.ndarray) -> np.ndarray:
        """Solve a real multi-RHS stack ``cols`` shaped ``(nbatch, n, k)``.

        Columns are swept :attr:`WIDTH` at a time, the trailing group
        zero-padded.  A complex right-hand side entered as its stacked
        re/im columns is bit-identical to :meth:`solve` on the complex
        array (fixed-width sweeps; columns are independent).
        """
        cols = np.asarray(cols)
        if np.iscomplexobj(cols):
            raise TypeError(
                "solve_many sweeps real column stacks; pass complex right-hand "
                "sides to solve()/solve_stack() or stack their re/im columns"
            )
        if cols.ndim != 3 or cols.shape[:2] != (self.nbatch, self.n):
            raise ValueError(
                f"cols shape {cols.shape} does not match (nbatch={self.nbatch}, n={self.n}, k)"
            )
        self.counters.solves += 1
        k = cols.shape[2]
        out = np.empty((self.nbatch, self.n, k))
        x = self._x
        for j in range(0, k, self.WIDTH):
            take = min(self.WIDTH, k - j)
            for c in range(take):
                self._load_col(c, cols[:, :, j + c])
            for c in range(take, self.WIDTH):
                self._zero_col(c)
            self._sweep()
            out[:, :, j : j + take] = x[:, :, :take]
            self.counters.columns += take
        return out

    def solve_stack(self, parts) -> list[np.ndarray]:
        """Fused solve of several per-mode state variables in one pass.

        ``parts`` is a sequence of ``(nbatch, n)`` arrays, real or
        complex, all against the same factors.  A complex part occupies
        one (re, im) column pair, a real part one column; the column
        stream is swept :attr:`WIDTH` columns per blocked pass (two
        state variables share each sweep).  Each part's result is
        bit-identical to a separate :meth:`solve` call — fusing halves
        the Python-level panel iterations, never the arithmetic.
        Returns a list of fresh arrays matching each part's shape and
        real/complex dtype.
        """
        parts = [np.asarray(p) for p in parts]
        for p in parts:
            self._check_rhs(p)
        self.counters.solves += 1

        # column stream: (part index, component) with component 0 = real
        # part / real column, 1 = imaginary part.  Complex parts start at
        # an even column so each keeps a contiguous (re, im) pair.
        slots: list[tuple[int, int] | None] = []
        for idx, p in enumerate(parts):
            if np.iscomplexobj(p):
                if len(slots) % 2:
                    slots.append(None)
                slots.append((idx, 0))
                slots.append((idx, 1))
            else:
                slots.append((idx, 0))

        outs = [
            np.empty((self.nbatch, self.n), dtype=complex if np.iscomplexobj(p) else float)
            for p in parts
        ]
        x = self._x
        for g in range(0, len(slots), self.WIDTH):
            group = slots[g : g + self.WIDTH]
            for c in range(self.WIDTH):
                slot = group[c] if c < len(group) else None
                if slot is None:
                    self._zero_col(c)
                    continue
                idx, comp = slot
                p = parts[idx]
                self._load_col(c, (p.real, p.imag)[comp] if np.iscomplexobj(p) else p)
                self.counters.columns += 1
            self._sweep()
            for c, slot in enumerate(group):
                if slot is None:
                    continue
                idx, comp = slot
                if np.iscomplexobj(outs[idx]):
                    view = outs[idx].view(np.float64).reshape(self.nbatch, self.n, 2)
                    view[:, :, comp] = x[:, :, c]
                else:
                    outs[idx][...] = x[:, :, c]
        return outs


# ----------------------------------------------------------------------
# measured panel selection (wisdom-backed)
# ----------------------------------------------------------------------

#: panel heights tried by :func:`measure_block` (clamped to n)
BLOCK_CANDIDATES = (8, 16, 32)

#: timed solves per candidate; best (minimum) wins, like the FFT planner
BLOCK_MEASURE_RUNS = 3


def measure_block(
    lu,
    candidates=BLOCK_CANDIDATES,
    runs: int = BLOCK_MEASURE_RUNS,
    wisdom=None,
) -> int:
    """Measure candidate panel heights on ``lu`` and return the fastest.

    The static :func:`default_block` heuristic (16 rows) is the measured
    optimum of the committed benchmarks, but the balance between Python
    iteration count and dense panel flops shifts with ``n``, the batch
    size and the BLAS build — this is the measuring counterpart, keyed
    into the :class:`~repro.tuning.WisdomStore` (``wisdom=None`` defers
    to the ``REPRO_WISDOM`` selection) so one machine measures once.
    Engines built for the losing candidates stay in ``lu._engines`` —
    they cost workspace but make re-selection free.

    Different panel heights produce results differing in the last bits
    (panel matmuls associate differently), so callers wanting bit-pinned
    trajectories should keep the default block; wisdom guarantees warm
    runs re-select the *same* block a cold run chose, which is what
    keeps a warmed machine reproducible.
    """
    from repro.tuning import MEASURE_STATS, default_store

    spec = lu.spec
    usable = sorted({min(int(b), spec.n) for b in candidates if int(b) >= 1})
    if len(usable) == 1:
        return usable[0]
    wisdom = wisdom if wisdom is not None else default_store()
    key = [spec.n, spec.window, int(lu.data.shape[0]), str(lu.data.dtype), usable]
    if wisdom is not None:
        hit = wisdom.lookup("solve_block", key)
        if hit is not None and hit.get("block") in usable:
            return int(hit["block"])
    rng = np.random.default_rng(0)
    rhs = rng.standard_normal((lu.data.shape[0], spec.n))
    timings: dict[str, float] = {}
    import time

    for b in usable:
        engine = lu.engine(block=b)
        engine.solve(rhs)  # warm-up (allocates the sweep workspace)
        best = np.inf
        for _ in range(runs):
            t0 = time.perf_counter()
            engine.solve(rhs)
            best = min(best, time.perf_counter() - t0)
            MEASURE_STATS.engine_blocks_timed += 1
        timings[str(b)] = best
    block = int(min(timings, key=timings.get))
    if wisdom is not None:
        wisdom.record("solve_block", key, {"block": block}, timings)
    return block
