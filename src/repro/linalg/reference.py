"""Reference solver paths mirroring the paper's Table 1 competitors.

The paper times four ways of solving the corner-banded collocation
systems, all normalized by Netlib LAPACK:

* **Netlib** (the normalizer): straightforward unblocked banded LU on the
  padded general band, complex arithmetic (ZGBTRF/ZGBTRS).  Reproduced
  here as an unbatched pure-NumPy banded LU working element-row by
  element-row, the closest Python analogue of unblocked Fortran.
* **MKL^C / ESSL** ("C" = complex): vendor banded solver on the padded
  band with the matrix promoted to complex.  Reproduced with
  :func:`scipy.linalg.solve_banded` (which calls LAPACK ``gbsv``) on a
  complex-promoted matrix, looped over the batch.
* **MKL^R** ("R" = real): vendor banded solver kept real, with the
  complex right-hand side rearranged into two sequential real vectors.
  Reproduced with real ``solve_banded`` on stacked re/im columns.

All three must pad the bandwidth by the corner extent to cover the
boundary rows (paper Fig. 3, centre panel) — that padding plus the
complex/real handling is exactly what the custom solver eliminates.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.linalg.structure import BandedSystemSpec


def padded_bandwidths(
    spec: BandedSystemSpec, dense: np.ndarray | None = None
) -> tuple[int, int]:
    """(kl', ku') of the general band that covers the corner elements.

    When the dense matrices are supplied the *minimal* covering band is
    measured from their non-zeros (what a careful LAPACK user would pick);
    otherwise the worst case permitted by the spec is assumed: corner rows
    may reach the full window, so both bandwidths grow to ``window - 1``.
    """
    if dense is not None:
        dense = np.asarray(dense)
        if dense.ndim == 2:
            dense = dense[None]
        nz = np.any(dense != 0.0, axis=0)
        i_idx, j_idx = np.nonzero(nz)
        off = j_idx - i_idx
        return int(max(0, -off.min())), int(max(0, off.max()))
    if spec.corner == 0:
        return spec.kl, spec.ku
    return spec.window - 1, spec.window - 1


def to_diagonal_ordered(dense: np.ndarray, kl: int, ku: int) -> np.ndarray:
    """Pack a dense banded matrix into scipy/LAPACK diagonal-ordered form."""
    n = dense.shape[0]
    ab = np.zeros((kl + ku + 1, n), dtype=dense.dtype)
    for offset in range(-kl, ku + 1):
        diag = np.diagonal(dense, offset)
        if offset >= 0:
            ab[ku - offset, offset : offset + diag.size] = diag
        else:
            ab[ku - offset, : diag.size] = diag
    return ab


# ----------------------------------------------------------------------
# Netlib analogue: unblocked banded LU in pure NumPy, no pivoting
# ----------------------------------------------------------------------


def netlib_banded_lu(dense: np.ndarray, kl: int, ku: int) -> np.ndarray:
    """Unblocked banded LU (single matrix), returning packed factors.

    Works on diagonal-ordered storage like xGBTRF would, one pivot column
    at a time, in whatever dtype the input carries (complex reproduces
    ZGBTRF).  Returns the diagonal-ordered array holding U in the upper
    rows and the multipliers below the diagonal row.
    """
    n = dense.shape[0]
    ab = to_diagonal_ordered(np.asarray(dense), kl, ku).copy()
    for j in range(n):
        pivot = ab[ku, j]
        if pivot == 0:
            raise ZeroDivisionError(f"zero pivot at column {j}")
        imax = min(n - 1, j + kl)
        for i in range(j + 1, imax + 1):
            ell = ab[ku + i - j, j] / pivot
            ab[ku + i - j, j] = ell
            # update row i over columns j+1 .. j+ku
            cmax = min(n - 1, j + ku)
            for c in range(j + 1, cmax + 1):
                ab[ku + i - c, c] -= ell * ab[ku + j - c, c]
    return ab


def netlib_banded_solve(ab: np.ndarray, kl: int, ku: int, rhs: np.ndarray) -> np.ndarray:
    """Triangular solves against :func:`netlib_banded_lu` factors (xGBTRS)."""
    n = ab.shape[1]
    x = np.asarray(rhs).astype(np.result_type(ab.dtype, np.asarray(rhs).dtype), copy=True)
    for j in range(n):  # forward
        imax = min(n - 1, j + kl)
        for i in range(j + 1, imax + 1):
            x[i] -= ab[ku + i - j, j] * x[j]
    for j in range(n - 1, -1, -1):  # backward
        cmax = min(n - 1, j + ku)
        for c in range(j + 1, cmax + 1):
            x[j] -= ab[ku + j - c, c] * x[c]
        x[j] /= ab[ku, j]
    return x


# ----------------------------------------------------------------------
# Vendor-library analogues (scipy -> LAPACK gbsv)
# ----------------------------------------------------------------------


def solve_padded_complex(
    dense_batch: np.ndarray, rhs: np.ndarray, spec: BandedSystemSpec
) -> np.ndarray:
    """"MKL^C" path: per-system complex banded solve on the padded band."""
    dense_batch = np.asarray(dense_batch)
    rhs = np.asarray(rhs, dtype=complex)
    klp, kup = padded_bandwidths(spec, dense_batch)
    out = np.empty_like(rhs)
    for b in range(dense_batch.shape[0]):
        ab = to_diagonal_ordered(dense_batch[b].astype(complex), klp, kup)
        out[b] = scipy.linalg.solve_banded((klp, kup), ab, rhs[b])
    return out


def solve_padded_split(
    dense_batch: np.ndarray, rhs: np.ndarray, spec: BandedSystemSpec
) -> np.ndarray:
    """"MKL^R" path: real banded solve, complex RHS split into re/im columns."""
    dense_batch = np.asarray(dense_batch, dtype=float)
    rhs = np.asarray(rhs, dtype=complex)
    klp, kup = padded_bandwidths(spec, dense_batch)
    out = np.empty_like(rhs)
    for b in range(dense_batch.shape[0]):
        ab = to_diagonal_ordered(dense_batch[b], klp, kup)
        stacked = np.column_stack([rhs[b].real, rhs[b].imag])
        sol = scipy.linalg.solve_banded((klp, kup), ab, stacked)
        out[b] = sol[:, 0] + 1j * sol[:, 1]
    return out
