"""Assembly of the wall-normal collocation systems (paper eqs. 3-4).

Time advancing the Navier–Stokes equations reduces, per Fourier mode, to
two-point boundary-value problems in y:

* the IMEX viscous step, eq. (3):  ``[I - c (d²/dy² - k² I)] psi = R``
  with ``c = alpha * nu * dt / 2``-style coefficients, and
* the v-from-phi Poisson solve, eq. (4): ``[d²/dy² - k² I] v = phi``.

With B-spline collocation the unknown is the coefficient vector ``a`` and
the operators become banded matrix pencils of the collocation matrices
``B`` (values) and ``D2`` (second derivatives); the first and last rows
are replaced by boundary-condition rows.  Everything is assembled
directly in the folded banded storage and factored by the custom solver,
batched over the wavenumber axis.
"""

from __future__ import annotations

import numpy as np

from repro.bsplines import BSplineBasis
from repro.linalg.custom import FoldedLU
from repro.linalg.structure import BandedSystemSpec, FoldedBanded


class HelmholtzOperator:
    """Factory for batched Helmholtz/Poisson collocation systems on a basis.

    Caches the folded collocation matrices; each ``factor_*`` call builds
    the batched pencil for an array of ``k²`` values and returns the LU.
    """

    def __init__(self, basis: BSplineBasis) -> None:
        self.basis = basis
        kl, ku = basis.bandwidths
        self.spec = BandedSystemSpec(n=basis.n, kl=kl, ku=ku, corner=0)
        self._fold_cache: dict[int, np.ndarray] = {}

    def folded_colloc(self, deriv: int) -> np.ndarray:
        """Collocation matrix of the ``deriv``-th derivative in folded storage, shape (n, W)."""
        if deriv not in self._fold_cache:
            dense = self.basis.colloc_matrix(deriv)
            self._fold_cache[deriv] = FoldedBanded.from_dense(dense, self.spec).data[0]
        return self._fold_cache[deriv]

    # ------------------------------------------------------------------

    def _bc_row(self, wall: int, deriv: int) -> np.ndarray:
        """Folded boundary-condition row: ``deriv``-th derivative at a wall.

        ``wall`` is 0 (y = -1, first collocation point) or -1 (y = +1).
        """
        row = self.folded_colloc(deriv)[0 if wall == 0 else -1]
        return row

    def assemble_helmholtz(self, ksq: np.ndarray, c: float | np.ndarray) -> FoldedBanded:
        """Pencil of eq. (3): ``(1 + c k²) B - c D2`` with Dirichlet BC rows.

        ``ksq`` has shape ``(nbatch,)``; ``c`` is scalar or ``(nbatch,)``.
        """
        ksq = np.atleast_1d(np.asarray(ksq, dtype=float))
        c = np.broadcast_to(np.asarray(c, dtype=float), ksq.shape)
        B = self.folded_colloc(0)
        D2 = self.folded_colloc(2)
        data = (1.0 + c * ksq)[:, None, None] * B[None] - c[:, None, None] * D2[None]
        data[:, 0, :] = self._bc_row(0, 0)
        data[:, -1, :] = self._bc_row(-1, 0)
        return FoldedBanded(self.spec, data)

    def assemble_poisson(self, ksq: np.ndarray) -> FoldedBanded:
        """Pencil of eq. (4): ``D2 - k² B`` with Dirichlet BC rows."""
        ksq = np.atleast_1d(np.asarray(ksq, dtype=float))
        B = self.folded_colloc(0)
        D2 = self.folded_colloc(2)
        data = D2[None] - ksq[:, None, None] * B[None]
        data[:, 0, :] = self._bc_row(0, 0)
        data[:, -1, :] = self._bc_row(-1, 0)
        return FoldedBanded(self.spec, data)

    def factor_helmholtz(
        self, ksq: np.ndarray, c: float | np.ndarray, block: int | None = None
    ) -> FoldedLU:
        """Factored eq.-(3) pencil; ``block`` fixes the engine panel height."""
        return FoldedLU(self.assemble_helmholtz(ksq, c), block=block)

    def factor_poisson(self, ksq: np.ndarray, block: int | None = None) -> FoldedLU:
        """Factored eq.-(4) pencil; ``block`` fixes the engine panel height."""
        return FoldedLU(self.assemble_poisson(ksq), block=block)


def helmholtz_system(
    basis: BSplineBasis, ksq: np.ndarray, c: float | np.ndarray, block: int | None = None
) -> FoldedLU:
    """One-shot factored Helmholtz pencil (see :class:`HelmholtzOperator`)."""
    return HelmholtzOperator(basis).factor_helmholtz(ksq, c, block=block)


def poisson_system(basis: BSplineBasis, ksq: np.ndarray, block: int | None = None) -> FoldedLU:
    """One-shot factored Poisson pencil (see :class:`HelmholtzOperator`)."""
    return HelmholtzOperator(basis).factor_poisson(ksq, block=block)
