"""The customized banded solver (paper §4.1.1, Fig. 3 right panel).

No-pivot LU factorization and triangular solves on the folded row-window
storage of :class:`~repro.linalg.structure.FoldedBanded`.  The factor and
both sweeps are *batched* over a leading axis — in the production DNS the
batch axis is the Fourier wavenumber, so one call factors/solves the
Helmholtz systems for every ``(kx, kz)`` at once.  That batching is the
NumPy analogue of the paper's hand-unrolled, cache-resident inner loops:
Python-level loop trip counts depend only on ``n`` and the bandwidth, not
on the batch size.

Solves run on the blocked :class:`~repro.linalg.engine.BandedSolveEngine`
built lazily from the factors: panels of rows per Python iteration
instead of one row each, and complex right-hand sides swept as (re, im)
column pairs **directly against the real factors** — the optimisation
the paper contrasts with LAPACK's "promote the matrix to complex or
split the vectors" choices.  No dtype promotion happens anywhere on the
solve path; :meth:`FoldedLU.solve` on a complex vector is bit-for-bit
identical to sweeping its stacked re/im columns as a real multi-RHS.
The original one-row-at-a-time sweeps survive as
:meth:`FoldedLU.solve_reference` (the like-for-like baseline of the
Table 1 benchmark and the engine's cross-check oracle).

No pivoting is performed: B-spline collocation matrices of the
(shifted) Helmholtz operators are strongly diagonally dominant within the
band, the same property the paper's custom solver relies on.  A growth
check is available for diagnostics.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.engine import BandedSolveEngine, default_block
from repro.linalg.structure import BandedSystemSpec, FoldedBanded


class FoldedLU:
    """Batched no-pivot LU of corner-banded matrices in folded storage.

    Factoring is done once at construction; :meth:`solve` may then be
    called repeatedly (the DNS factors once per RK coefficient and solves
    every substep).  The first solve builds the blocked sweep engine
    from the factors; subsequent solves reuse it with zero workspace
    allocations.
    """

    def __init__(self, matrix: FoldedBanded, check: bool = False, block: int | str | None = None) -> None:
        self.spec = matrix.spec
        self.jlo = matrix.spec.jlo
        self.data = matrix.data.copy()
        self._block = block
        self._engines: dict[int, BandedSolveEngine] = {}
        self._factor(check=check)

    # ------------------------------------------------------------------

    def _factor(self, check: bool) -> None:
        spec = self.spec
        n, W = spec.n, spec.window
        jlo = self.jlo
        data = self.data
        # Structure-only index arithmetic, computed once up front: the
        # window position of each row's diagonal, and each pivot row's
        # stored tail (slice past the diagonal) with its width.  None of
        # it depends on the values being eliminated, so nothing of it
        # belongs in the elimination loops.
        mdiag = spec.mdiag
        self._mdiag = mdiag
        tail_width = W - mdiag - 1
        tail_slice = [slice(int(d) + 1, W) for d in mdiag]
        if check:
            self._initial_max = np.abs(data).max(axis=(1, 2))

        pivot_checked = np.zeros(n, dtype=bool)
        for i in range(1, n):
            lo_i = jlo[i]
            row = data[:, i]
            for m, j in enumerate(range(lo_i, i)):
                pivot = data[:, j, mdiag[j]]
                if not pivot_checked[j]:
                    if np.any(pivot == 0.0):
                        bad = int(np.argmax(pivot == 0.0))
                        raise ZeroDivisionError(
                            f"zero pivot at row {j} of batch member {bad}; "
                            "the matrix needs pivoting — not a collocation system?"
                        )
                    pivot_checked[j] = True
                ell = row[:, m] / pivot
                row[:, m] = ell
                width = tail_width[j]
                if width:
                    row[:, m + 1 : m + 1 + width] -= ell[:, None] * data[:, j, tail_slice[j]]

        if check:
            growth = np.abs(data).max(axis=(1, 2)) / self._initial_max
            self.growth_factor = growth
        else:
            self.growth_factor = None

    # ------------------------------------------------------------------
    # solving (blocked engine)
    # ------------------------------------------------------------------

    def engine(self, block=None, wisdom=None) -> BandedSolveEngine:
        """The blocked sweep engine over these factors (built lazily,
        cached per panel height).

        ``block="measure"`` (at construction or here) selects the panel
        height by timing candidates through
        :func:`~repro.linalg.engine.measure_block` — wisdom-backed, so a
        warmed machine re-selects without re-timing.
        """
        from_default = block is None
        block = block if block is not None else self._block
        if block == "measure":
            from repro.linalg.engine import measure_block

            block = measure_block(self, wisdom=wisdom)
            if from_default:
                self._block = block  # resolve once; hot solves skip the lookup
        b = int(block or default_block(self.spec.n))
        if b not in self._engines:
            self._engines[b] = BandedSolveEngine(self, block=b)
        return self._engines[b]

    def engines(self) -> tuple[BandedSolveEngine, ...]:
        """Every engine built so far (never triggers a build — telemetry
        must be able to read counters without allocating workspace)."""
        return tuple(self._engines.values())

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for each batch member.

        ``rhs`` has shape ``(nbatch, n)`` (or ``(n,)`` for a batch of one)
        and may be real or complex; complex input is swept directly
        against the real factors as one (re, im) column pair.
        """
        return self.engine().solve(rhs)

    def solve_many(self, cols: np.ndarray) -> np.ndarray:
        """Solve a real multi-RHS stack ``(nbatch, n, k)`` in paired
        blocked sweeps (see :meth:`BandedSolveEngine.solve_many`)."""
        return self.engine().solve_many(cols)

    def solve_reference(self, rhs: np.ndarray) -> np.ndarray:
        """Unblocked row-at-a-time sweeps (the pre-engine arithmetic).

        Kept as the like-for-like interpreted baseline for benchmarks and
        as an independent oracle for engine cross-checks.  Complex input
        is promoted with the factors broadcast against it — the very
        dtype promotion the engine avoids.
        """
        spec = self.spec
        n = spec.n
        jlo = self.jlo
        data = self.data
        mdiag = self._mdiag

        rhs = np.asarray(rhs)
        squeeze = rhs.ndim == 1
        if squeeze:
            rhs = rhs[None, :]
        if rhs.shape != (data.shape[0], n):
            raise ValueError(
                f"rhs shape {rhs.shape} does not match (nbatch={data.shape[0]}, n={n})"
            )
        dtype = np.result_type(rhs.dtype, data.dtype)
        x = rhs.astype(dtype, copy=True)

        # Forward sweep (unit lower triangular, row-oriented).
        for i in range(1, n):
            lo = jlo[i]
            m = mdiag[i]
            if m:
                x[:, i] -= np.einsum("bm,bm->b", data[:, i, :m], x[:, lo : lo + m])

        # Backward sweep (upper triangular).
        W = spec.window
        for i in range(n - 1, -1, -1):
            m = mdiag[i]
            hi = jlo[i] + W  # one past last stored column of row i
            ncols = min(hi, n) - (i + 1)
            if ncols > 0:
                x[:, i] -= np.einsum(
                    "bm,bm->b", data[:, i, m + 1 : m + 1 + ncols], x[:, i + 1 : i + 1 + ncols]
                )
            x[:, i] /= data[:, i, m]
        return x[0] if squeeze else x

    # ------------------------------------------------------------------
    # operation accounting (used by the perf model / Table 1 commentary)
    # ------------------------------------------------------------------

    def factor_flops(self) -> int:
        """Multiply-add count of one (non-batched) factorization."""
        spec, jlo = self.spec, self.jlo
        total = 0
        for i in range(1, spec.n):
            for j in range(jlo[i], i):
                width = jlo[j] + spec.window - 1 - j  # updated entries
                total += 2 * (width + 1)
        return total

    def solve_flops(self) -> int:
        """Multiply-add count of one (non-batched, real-RHS) solve."""
        spec, jlo, mdiag = self.spec, self.jlo, self._mdiag
        total = 0
        for i in range(spec.n):
            total += 2 * mdiag[i]  # forward
            hi = min(jlo[i] + spec.window, spec.n)
            total += 2 * max(0, hi - (i + 1)) + 1  # backward + divide
        return int(total)


def solve_corner_banded(
    dense: np.ndarray,
    rhs: np.ndarray,
    spec: BandedSystemSpec | None = None,
) -> np.ndarray:
    """Convenience one-shot solve of (batched) dense corner-banded systems.

    Infers a pure-band spec when none is given.  Right-hand-side shapes
    are normalized explicitly:

    * ``dense (n, n)``, ``rhs (n,)`` → ``x (n,)``;
    * ``dense (n, n)``, ``rhs (k, n)`` → ``x (k, n)``, k right-hand
      sides against the one matrix;
    * ``dense (nbatch, n, n)``, ``rhs (n,)`` → ``x (nbatch, n)``, the
      shared rhs solved against every batch member;
    * ``dense (nbatch, n, n)``, ``rhs (nbatch, n)`` → ``x (nbatch, n)``.

    Anything else raises ``ValueError``.
    """
    dense = np.asarray(dense, dtype=float)
    single = dense.ndim == 2
    if single:
        dense = dense[None]
    rhs = np.asarray(rhs)
    if spec is None:
        spec = infer_spec(dense)
    nbatch = dense.shape[0]
    lu = FoldedLU(FoldedBanded.from_dense(dense, spec))

    if rhs.ndim == 1:
        if rhs.shape != (spec.n,):
            raise ValueError(f"rhs shape {rhs.shape} does not match n={spec.n}")
        x = lu.solve(np.ascontiguousarray(np.broadcast_to(rhs, (nbatch, spec.n))))
        return x[0] if single else x
    if rhs.ndim == 2:
        if single and rhs.shape[1] == spec.n:
            # k right-hand sides against the one matrix: one fused stack
            xs = lu.engine().solve_stack([np.ascontiguousarray(r)[None] for r in rhs])
            return np.concatenate(xs, axis=0)
        if rhs.shape != (nbatch, spec.n):
            raise ValueError(
                f"rhs shape {rhs.shape} does not match (nbatch={nbatch}, n={spec.n})"
            )
        return lu.solve(rhs)
    raise ValueError(f"rhs must be 1-D or 2-D, got shape {rhs.shape}")


def infer_spec(dense: np.ndarray) -> BandedSystemSpec:
    """Smallest pure-band + corner structure containing all non-zeros.

    Measures the interior bandwidth from rows away from the boundaries and
    charges whatever sticks out near the boundaries to the corner extent.
    All index arithmetic is vectorized — no per-non-zero Python loop.
    """
    dense = np.asarray(dense)
    if dense.ndim == 2:
        dense = dense[None]
    n = dense.shape[1]
    nz = np.any(dense != 0.0, axis=0)
    i_idx, j_idx = np.nonzero(nz)
    if i_idx.size == 0:
        return BandedSystemSpec(n=n, kl=0, ku=0)
    off = j_idx - i_idx
    # Interior band: offsets of elements at least a window away from ends.
    interior = (i_idx > n // 4) & (i_idx < n - n // 4)
    if np.any(interior):
        kl = int(max(0, -off[interior].min()))
        ku = int(max(0, off[interior].max()))
    else:
        kl = int(max(0, -off.min()))
        ku = int(max(0, off.max()))
    # Elements beyond the band must be absorbed by a corner window.
    over = off - ku
    under = -off - kl
    corner = int(max(0, over.max(initial=0), under.max(initial=0)))
    return BandedSystemSpec(n=n, kl=kl, ku=ku, corner=corner)
