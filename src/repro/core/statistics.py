"""Running turbulence statistics (paper §6, Figs. 5-6).

The channel is statistically stationary and homogeneous in x and z, so
statistics are averages over horizontal planes accumulated in time.  In
spectral space a plane average of a quadratic quantity is a weighted sum
over modes (Parseval): with the x reality condition, modes with
``kx > 0`` count twice.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.operators import WallNormalOps
from repro.core.timestepper import ChannelState


def mode_weights(grid: ChannelGrid) -> np.ndarray:
    """Parseval weights over the (mx, mz) mode grid (2 for kx > 0)."""
    w = np.full((grid.mx, grid.mz), 2.0)
    w[0, :] = 1.0
    return w


def plane_covariance(
    grid: ChannelGrid, f_vals: np.ndarray, g_vals: np.ndarray
) -> np.ndarray:
    """Plane-averaged ``<f' g'>`` profile from collocated spectral values.

    Fluctuations exclude the (0,0) mean mode.
    """
    w = mode_weights(grid)[..., None].copy()
    prod = np.real(f_vals * np.conj(g_vals)) * w
    prod[0, 0] = 0.0
    return prod.sum(axis=(0, 1))


class RunningStatistics:
    """Accumulates time-averaged profiles from DNS states."""

    PROFILES = ("U", "uu", "vv", "ww", "uv")

    def __init__(self, grid: ChannelGrid) -> None:
        self.grid = grid
        self.ops = WallNormalOps(grid)
        self.nsamples = 0
        self._sums = {name: np.zeros(grid.ny) for name in self.PROFILES}

    def sample(self, state: ChannelState) -> None:
        """Add one state snapshot to the time average."""
        g, ops = self.grid, self.ops
        u_vals = ops.values(state.u)
        v_vals = ops.values(state.v)
        w_vals = ops.values(state.w)
        self._sums["U"] += u_vals[0, 0].real
        self._sums["uu"] += plane_covariance(g, u_vals, u_vals)
        self._sums["vv"] += plane_covariance(g, v_vals, v_vals)
        self._sums["ww"] += plane_covariance(g, w_vals, w_vals)
        self._sums["uv"] += plane_covariance(g, u_vals, v_vals)
        self.nsamples += 1

    # ------------------------------------------------------------------

    def profile(self, name: str) -> np.ndarray:
        """Time-averaged profile over the collocation points."""
        if self.nsamples == 0:
            raise RuntimeError("no samples accumulated")
        return self._sums[name] / self.nsamples

    def mean_velocity(self) -> np.ndarray:
        return self.profile("U")

    def reynolds_stress(self) -> np.ndarray:
        """``-<u'v'>`` (positive in the lower half where production lives)."""
        return -self.profile("uv")

    def friction_velocity(self, nu: float) -> float:
        """``u_tau = sqrt(nu |dU/dy|_wall)`` averaged over both walls."""
        a = self.grid.basis.interpolate(self.mean_velocity())
        d_lo, d_up = WallNormalOps(self.grid).wall_derivatives(a)
        return float(np.sqrt(nu * 0.5 * (abs(d_lo) + abs(d_up))))

    def wall_units(self, nu: float) -> tuple[np.ndarray, np.ndarray]:
        """(y+, U+) of the lower half-channel, wall-distance ordered."""
        u_tau = self.friction_velocity(nu)
        y = self.grid.y
        half = y <= 0.0
        yplus = (1.0 + y[half]) * u_tau / nu
        uplus = self.mean_velocity()[half] / u_tau
        return yplus, uplus

    def bulk_velocity(self) -> float:
        """Volume-averaged streamwise velocity (mass flux / area / 2)."""
        w = self.grid.basis.collocation_weights
        return float(w @ self.mean_velocity()) / 2.0
