"""Channel geometry, spectral grids and wavenumber bookkeeping.

The channel (paper Fig. 1) is periodic in x (streamwise) and z (spanwise)
with no-slip walls at ``y = ±1`` (lengths in half-widths).  The spectral
representation is

* ``mx = nx // 2`` streamwise modes ``kx >= 0`` (reality condition used in
  x, Nyquist dropped),
* ``mz = nz - 1`` spanwise modes in FFT order (Nyquist dropped),
* ``ny`` B-spline collocation degrees of freedom in y.

Spectral state arrays are complex with shape ``(mx, mz, ny)`` — y last,
so banded solves and collocation matmuls act on the contiguous axis.
The quadrature (dealiased) physical grid is ``(nxq, nzq, ny)`` with
``nxq = 3 nx / 2``, ``nzq = 3 nz / 2``.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.bsplines import BSplineBasis
from repro.fft.fourier import (
    complex_modes,
    fft_wavenumbers,
    quadrature_points,
    real_modes,
    rfft_wavenumbers,
)


class ChannelGrid:
    """Discretization of the channel domain ``[0,Lx] x [-1,1] x [0,Lz]``."""

    def __init__(
        self,
        nx: int,
        ny: int,
        nz: int,
        lx: float = 2.0 * np.pi,
        lz: float = np.pi,
        degree: int = 7,
        stretch: float = 2.0,
    ) -> None:
        if nx % 2 or nz % 2:
            raise ValueError("nx and nz must be even (real/complex FFT pairs)")
        self.nx, self.ny, self.nz = int(nx), int(ny), int(nz)
        self.lx, self.lz = float(lx), float(lz)
        self.basis = BSplineBasis(ny, degree=degree, stretch=stretch, domain=(-1.0, 1.0))

    # ------------------------------------------------------------------
    # spectral shape
    # ------------------------------------------------------------------

    @property
    def mx(self) -> int:
        """Stored streamwise modes (kx = 0 .. nx/2 - 1)."""
        return real_modes(self.nx)

    @property
    def mz(self) -> int:
        """Stored spanwise modes (FFT order, Nyquist-free)."""
        return complex_modes(self.nz)

    @property
    def spectral_shape(self) -> tuple[int, int, int]:
        return (self.mx, self.mz, self.ny)

    @property
    def nxq(self) -> int:
        """Dealiased (3/2-rule) streamwise quadrature points."""
        return quadrature_points(self.nx)

    @property
    def nzq(self) -> int:
        """Dealiased (3/2-rule) spanwise quadrature points."""
        return quadrature_points(self.nz)

    @property
    def quadrature_shape(self) -> tuple[int, int, int]:
        return (self.nxq, self.nzq, self.ny)

    def degrees_of_freedom(self) -> int:
        """Velocity degrees of freedom, as the paper counts them (3 components)."""
        return 3 * self.mx * self.mz * self.ny

    # ------------------------------------------------------------------
    # wavenumbers
    # ------------------------------------------------------------------

    @cached_property
    def modes(self) -> "ModeSet":
        """The full (serial) mode set of this grid."""
        from repro.core.modes import ModeSet

        return ModeSet(kx=self.kx, kz=self.kz)

    @cached_property
    def kx(self) -> np.ndarray:
        return rfft_wavenumbers(self.nx, self.lx)

    @cached_property
    def kz(self) -> np.ndarray:
        return fft_wavenumbers(self.nz, self.lz)

    @cached_property
    def ksq(self) -> np.ndarray:
        """``kx² + kz²`` on the (mx, mz) mode grid."""
        return self.kx[:, None] ** 2 + self.kz[None, :] ** 2

    @cached_property
    def ikx(self) -> np.ndarray:
        """``i kx`` broadcastable over spectral state arrays."""
        return (1j * self.kx)[:, None, None]

    @cached_property
    def ikz(self) -> np.ndarray:
        """``i kz`` broadcastable over spectral state arrays."""
        return (1j * self.kz)[None, :, None]

    # ------------------------------------------------------------------
    # physical coordinates
    # ------------------------------------------------------------------

    @cached_property
    def x(self) -> np.ndarray:
        """Quadrature-grid streamwise coordinates."""
        return np.arange(self.nxq) * self.lx / self.nxq

    @cached_property
    def z(self) -> np.ndarray:
        """Quadrature-grid spanwise coordinates."""
        return np.arange(self.nzq) * self.lz / self.nzq

    @property
    def y(self) -> np.ndarray:
        """Wall-normal collocation points (Greville abscissae)."""
        return self.basis.collocation_points

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChannelGrid(nx={self.nx}, ny={self.ny}, nz={self.nz}, "
            f"lx={self.lx:.4g}, lz={self.lz:.4g}, "
            f"dof={self.degrees_of_freedom():,})"
        )
