"""Serial spectral <-> physical transforms with 3/2 dealiasing.

These are the serial reference implementation of simulation steps
(a)-(f) and their reverses (paper §2.3): pad in z, inverse transform in
z, pad in x, inverse transform in x — producing values on the dealiased
quadrature grid — and the reverse (transform, truncate) on the way back.
The distributed version in :mod:`repro.pencil` performs the same
sequence with global transposes between the stages; tests pin the two
paths to each other.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid
from repro.fft.fourier import (
    pad_for_quadrature_c,
    pad_for_quadrature_r,
    truncate_from_quadrature_c,
    truncate_from_quadrature_r,
)


def to_quadrature_grid(spec: np.ndarray, grid: ChannelGrid) -> np.ndarray:
    """Spectral ``(mx, mz, ny)`` -> physical ``(nxq, nzq, ny)`` (real).

    Steps (b)-(f): pad z, inverse FFT z, pad x, inverse real FFT x.
    """
    if spec.shape != grid.spectral_shape:
        raise ValueError(f"expected {grid.spectral_shape}, got {spec.shape}")
    # z: pad to the quadrature length and invert (complex line)
    zpad = pad_for_quadrature_c(spec, grid.nz, axis=1)
    zphys = np.fft.ifft(zpad * grid.nzq, axis=1)
    # x: pad the half-spectrum and invert (real line)
    xpad = pad_for_quadrature_r(zphys, grid.nx, axis=0)
    return np.fft.irfft(xpad * grid.nxq, n=grid.nxq, axis=0)


class SerialTransformBackend:
    """Transform backend used by the serial solver.

    Exposes the interface :class:`repro.core.nonlinear.NonlinearTerms`
    expects — ``to_physical`` / ``from_physical`` over full spectral
    arrays, plus the batched ``*_many`` stack entry points — backed by
    the planned, buffer-reusing
    :class:`~repro.fft.pipeline.TransformPipeline`.  The distributed
    solver substitutes the pencil pipeline.

    With the default ``backend="numpy"`` / ``planning="estimate"`` the
    results are bit-for-bit identical to :func:`to_quadrature_grid` /
    :func:`from_quadrature_grid`; ``backend="scipy"`` adds a ``workers``
    thread knob and ``planning="measure"`` lets the planner time
    strategy candidates (both agree with the reference to roundoff).
    """

    def __init__(
        self,
        grid: ChannelGrid,
        backend: str = "numpy",
        workers: int | None = None,
        planning: str = "estimate",
        planner=None,
        counters=None,
    ) -> None:
        from repro.fft.pipeline import TransformPipeline

        self.grid = grid
        self.pipeline = TransformPipeline(
            grid,
            backend=backend,
            workers=workers,
            flags=planning,
            planner=planner,
            counters=counters,
        )

    @property
    def counters(self):
        """The pipeline's :class:`~repro.instrument.TransformCounters`."""
        return self.pipeline.counters

    def to_physical(self, spec: np.ndarray) -> np.ndarray:
        return self.pipeline.to_physical(spec)

    def from_physical(self, phys: np.ndarray) -> np.ndarray:
        return self.pipeline.from_physical(phys)

    def to_physical_many(self, specs) -> list[np.ndarray]:
        return self.pipeline.to_physical_many(specs)

    def from_physical_many(self, physes) -> list[np.ndarray]:
        return self.pipeline.from_physical_many(physes)


class NaiveTransformBackend:
    """The seed's unplanned per-call transform path, kept as a reference.

    Allocates fresh pad/scratch arrays at every stage — the behaviour
    :class:`SerialTransformBackend` replaced.  Used by equivalence tests
    and as the baseline of ``benchmarks/bench_transform_pipeline.py``.
    """

    def __init__(self, grid: ChannelGrid) -> None:
        self.grid = grid

    def to_physical(self, spec: np.ndarray) -> np.ndarray:
        return to_quadrature_grid(spec, self.grid)

    def from_physical(self, phys: np.ndarray) -> np.ndarray:
        return from_quadrature_grid(phys, self.grid)


def from_quadrature_grid(phys: np.ndarray, grid: ChannelGrid) -> np.ndarray:
    """Physical ``(nxq, nzq, ny)`` (real) -> spectral ``(mx, mz, ny)``.

    The reverse of :func:`to_quadrature_grid`: forward transform in x,
    truncate, forward transform in z, truncate — the Galerkin projection
    of step (h).
    """
    if phys.shape != grid.quadrature_shape:
        raise ValueError(f"expected {grid.quadrature_shape}, got {phys.shape}")
    xh = np.fft.rfft(phys, axis=0) / grid.nxq
    xt = truncate_from_quadrature_r(xh, grid.nx, axis=0)
    zh = np.fft.fft(xt, axis=1) / grid.nzq
    return truncate_from_quadrature_c(zh, grid.nz, axis=1)
