"""Core channel DNS: the paper's primary computational contribution.

Implements the Kim–Moin–Moser wall-normal velocity/vorticity formulation
(§2.1) with Fourier–Galerkin discretization in x/z, B-spline collocation
in y, 3/2-rule dealiasing, and third-order low-storage IMEX Runge–Kutta
time advancement (Spalart–Moser–Rogers 1991).

Public entry point: :class:`~repro.core.solver.ChannelDNS` configured by
:class:`~repro.core.solver.ChannelConfig`.
"""

from repro.core.grid import ChannelGrid
from repro.core.health import DivergedError, HealthMonitor, UnstableError
from repro.core.solver import ChannelConfig, ChannelDNS
from repro.core.statistics import RunningStatistics
from repro.core.supervisor import RunSupervisor, SupervisorPolicy
from repro.core.timestepper import SMR91

__all__ = [
    "ChannelConfig",
    "ChannelDNS",
    "ChannelGrid",
    "DivergedError",
    "HealthMonitor",
    "RunSupervisor",
    "RunningStatistics",
    "SMR91",
    "SupervisorPolicy",
    "UnstableError",
]
