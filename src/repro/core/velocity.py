"""Velocity recovery from the (v, omega_y) state — paper step (j).

For each wavenumber with ``k² = kx² + kz² > 0``, continuity and the
definition of the wall-normal vorticity give a 2x2 algebraic system:

    i kx u + i kz w = -dv/dy          (continuity)
    i kz u - i kx w =  omega_y        (definition)

with solution

    u = ( i kx dv/dy - i kz omega_y) / k²
    w = ( i kz dv/dy + i kx omega_y) / k²

The ``k² = 0`` (mean) mode carries its own state (``u00``, ``w00``); the
mean of v vanishes identically (impermeable walls + continuity).  All
functions operate on a :class:`~repro.core.modes.ModeSet`, which is the
full mode grid for the serial solver or one pencil block per rank in the
distributed solver.
"""

from __future__ import annotations

import numpy as np

from repro.core.modes import ModeSet
from repro.core.operators import WallNormalOps


def recover_uw(
    modes: ModeSet,
    ops: WallNormalOps,
    v: np.ndarray,
    omega_y: np.ndarray,
    u00: np.ndarray | None,
    w00: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Spline coefficients of u and w from the state variables.

    ``v``/``omega_y`` are coefficient arrays over ``modes``; ``u00``/
    ``w00`` are the mean-mode coefficient vectors, required exactly when
    this mode set owns the (0,0) mode.
    """
    dv = v @ ops.D1.T
    # Work in coefficient space throughout: the derivative of a spline is
    # not in the same spline space, so re-expand the collocated dv/dy.
    dv_coeffs = ops.coeffs(dv)
    ksq = modes.ksq.copy()
    mean = modes.mean_index
    if mean is not None:
        ksq[mean] = 1.0  # avoid division by zero; overwritten below
    inv = 1.0 / ksq[..., None]
    u = (modes.ikx * dv_coeffs - modes.ikz * omega_y) * inv
    w = (modes.ikz * dv_coeffs + modes.ikx * omega_y) * inv
    if mean is not None:
        if u00 is None or w00 is None:
            raise ValueError("this mode block owns the mean mode; u00/w00 required")
        u[mean] = u00
        w[mean] = w00
    return u, w


def wall_normal_vorticity(modes: ModeSet, u: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``omega_y = i kz u - i kx w`` (coefficient space)."""
    return modes.ikz * u - modes.ikx * w


def divergence(
    modes: ModeSet, ops: WallNormalOps, u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """Collocated divergence ``i kx u + dv/dy + i kz w`` (diagnostic)."""
    return modes.ikx * ops.values(u) + ops.dvalues(v) + modes.ikz * ops.values(w)
