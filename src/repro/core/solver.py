"""High-level channel DNS driver (serial reference implementation).

:class:`ChannelDNS` ties together the grid, the RK3 IMEX stepper, initial
conditions, statistics and diagnostics behind the public API used by the
examples:

>>> from repro.core import ChannelConfig, ChannelDNS
>>> dns = ChannelDNS(ChannelConfig(nx=32, ny=33, nz=32, re_tau=180.0, dt=2e-4))
>>> dns.initialize()
>>> dns.run(10)
>>> dns.statistics.bulk_velocity()  # doctest: +SKIP

Units: lengths in channel half-widths, velocities in friction velocity
(the driving pressure gradient is 1, so ``u_tau = 1`` and
``nu = 1 / Re_tau``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.initial import perturbed_state
from repro.core.statistics import RunningStatistics
from repro.core.timestepper import ChannelState, IMEXStepper, SMR91
from repro.core.transforms import SerialTransformBackend
from repro.core.velocity import divergence


@dataclass
class ChannelConfig:
    """Configuration of a channel DNS run.

    The paper's production case is ``nx=10240, ny=1536, nz=7680`` at
    ``Re_tau = 5200``; laptop-scale reproductions use grids like 32³ at
    ``Re_tau = 180``.
    """

    nx: int = 32
    ny: int = 33
    nz: int = 32
    re_tau: float = 180.0
    lx: float = 2.0 * np.pi
    lz: float = np.pi
    dt: float = 1e-4
    degree: int = 7
    stretch: float = 2.0
    forcing: float = 1.0
    init_amplitude: float = 0.1
    init_modes: int = 4
    init_base: str = "reichardt"
    seed: int = 0
    scheme: SMR91 = field(default_factory=SMR91)
    nu_value: float | None = None
    #: FFT execution backend of the transform pipeline: "numpy" (default,
    #: bit-reproducible), "scipy" (pocketfft with a thread pool) or "auto".
    fft_backend: str = "numpy"
    #: thread count for the scipy backend (the paper's OpenMP-threaded
    #: FFTs); None leaves the backend single-threaded.
    fft_workers: int | None = None
    #: plan selection: "estimate" (deterministic default) or "measure"
    #: (time strategy candidates once at startup, FFTW_MEASURE style).
    fft_planning: str = "estimate"

    @property
    def nu(self) -> float:
        """Kinematic viscosity: explicit ``nu_value`` if set, else implied
        by Re_tau with ``u_tau = sqrt(forcing)``."""
        if self.nu_value is not None:
            return float(self.nu_value)
        return float(np.sqrt(self.forcing)) / self.re_tau


class ChannelDNS:
    """Serial spectral channel DNS (Kim–Moin–Moser formulation).

    ``telemetry`` enables structured run recording (see
    :mod:`repro.telemetry`): pass a directory path or a
    :class:`~repro.telemetry.TelemetryConfig` and every step emits a
    JSON-lines record (section times, counters, dt, CFL) with a run
    manifest and a Chrome trace written alongside; an already-built
    :class:`~repro.telemetry.RunRecorder` is attached as-is.  Call
    :meth:`finalize_telemetry` (or close the recorder) at the end of a
    run to write the summary record.
    """

    def __init__(self, config: ChannelConfig, telemetry=None) -> None:
        self.config = config
        self.grid = ChannelGrid(
            config.nx,
            config.ny,
            config.nz,
            lx=config.lx,
            lz=config.lz,
            degree=config.degree,
            stretch=config.stretch,
        )
        self.backend = SerialTransformBackend(
            self.grid,
            backend=config.fft_backend,
            workers=config.fft_workers,
            planning=config.fft_planning,
        )
        self.stepper = IMEXStepper(
            self.grid,
            nu=config.nu,
            dt=config.dt,
            forcing=config.forcing,
            scheme=config.scheme,
            backend=self.backend,
        )
        self.statistics = RunningStatistics(self.grid)
        self.state: ChannelState | None = None
        self.step_count = 0
        self.recorder = None
        self.streaming = None
        self._streaming_every = 0
        if telemetry is not None:
            from repro.telemetry import RunRecorder

            rec = telemetry if isinstance(telemetry, RunRecorder) else RunRecorder(telemetry)
            rec.attach(self)

    # ------------------------------------------------------------------

    def initialize(self, state: ChannelState | None = None) -> None:
        """Set the initial condition (default: perturbed mean profile)."""
        if state is None:
            cfg = self.config
            state = perturbed_state(
                self.grid,
                nu=cfg.nu,
                amplitude=cfg.init_amplitude,
                modes=cfg.init_modes,
                seed=cfg.seed,
                base=cfg.init_base,
                forcing=cfg.forcing,
            )
        # populate the derived velocity cache
        from repro.core.velocity import recover_uw

        if state.u is None or state.w is None:
            state.u, state.w = recover_uw(
                self.grid.modes, self.stepper.ops, state.v, state.omega_y, state.u00, state.w00
            )
        self.state = state

    def attach_streaming(self, stats=None, *, every: int = 1):
        """Attach a streaming-statistics accumulator to the step loop.

        Every ``every`` steps, :meth:`step` folds the fresh state into
        the accumulator under the ``stats`` timer section (see
        :mod:`repro.serving`).  ``stats=None`` builds a fresh
        :class:`~repro.serving.StreamingStatistics`.  Returns the
        attached accumulator.
        """
        if stats is None:
            from repro.serving import StreamingStatistics

            stats = StreamingStatistics(self)
        self.streaming = stats
        self._streaming_every = max(1, int(every))
        return stats

    def step(self) -> None:
        """Advance one timestep."""
        if self.state is None:
            raise RuntimeError("call initialize() first")
        self.state = self.stepper.step(self.state)
        self.step_count += 1
        if self.streaming is not None and self.step_count % self._streaming_every == 0:
            with self.stepper.timers.section(self.stepper.timers.STATS):
                self.streaming.sample(self.state)
        if self.recorder is not None:
            self.recorder.record_step(self)

    def finalize_telemetry(self) -> None:
        """Close the attached recorder (summary record + final trace)."""
        if self.recorder is not None:
            self.recorder.close()

    def set_dt(self, dt: float) -> None:
        """Change the timestep (refactors the implicit banded systems)."""
        self.stepper.set_dt(dt)

    def run(self, nsteps: int, sample_every: int = 0, callback=None, controllers=()) -> None:
        """Advance ``nsteps``; optionally sample statistics every k steps.

        ``controllers`` are callables applied after every step (e.g.
        :class:`~repro.core.control.CFLController`,
        :class:`~repro.core.control.MassFluxController`, or a
        :class:`~repro.core.health.HealthMonitor`, whose typed exceptions
        propagate to the caller — the supervised run loop catches them).
        """
        for _ in range(nsteps):
            self.step()
            for ctrl in controllers:
                ctrl(self)
            if sample_every and self.step_count % sample_every == 0:
                self.statistics.sample(self.state)
            if callback is not None:
                callback(self)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def physical_velocity(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(u, v, w) on the dealiased quadrature grid ``(nxq, nzq, ny)``."""
        s = self._require_state()
        ops = self.stepper.ops
        up, vp, wp = self.backend.to_physical_many(
            (ops.values(s.u), ops.values(s.v), ops.values(s.w))
        )
        return up, vp, wp

    def divergence_norm(self) -> float:
        """Max collocated spectral divergence (machine-zero for this scheme)."""
        s = self._require_state()
        div = divergence(self.grid.modes, self.stepper.ops, s.u, s.v, s.w)
        return float(np.abs(div).max())

    def kinetic_energy(self) -> float:
        """Volume-averaged kinetic energy (including the mean flow)."""
        s = self._require_state()
        ops = self.stepper.ops
        g = self.grid
        w2 = np.full((g.mx, g.mz), 2.0)
        w2[0, :] = 1.0
        e_y = np.zeros(g.ny)
        for f in (s.u, s.v, s.w):
            vals = ops.values(f)
            e_y += (np.abs(vals) ** 2 * w2[..., None]).sum(axis=(0, 1))
        wq = g.basis.collocation_weights
        return float(wq @ e_y) / 2.0 / 2.0  # /2 for KE, /2 for volume (Ly = 2)

    def cfl_number(self) -> float:
        return self.stepper.cfl_number()

    def state_finite(self) -> bool:
        """True when every prognostic array is finite (watchdog hook)."""
        s = self._require_state()
        for arr in (s.v, s.omega_y, s.u00, s.w00):
            if arr is not None and not np.all(np.isfinite(arr)):
                return False
        return True

    def wall_shear_velocity(self) -> float:
        """Instantaneous friction velocity from the mean profile."""
        s = self._require_state()
        d_lo, d_up = self.stepper.ops.wall_derivatives(s.u00)
        return float(np.sqrt(self.config.nu * 0.5 * (abs(d_lo) + abs(d_up))))

    def _require_state(self) -> ChannelState:
        if self.state is None:
            raise RuntimeError("call initialize() first")
        return self.state
