"""Wavenumber mode sets — full (serial) or a rank's pencil block (parallel).

The KMM equations are diagonal in the horizontal wavenumbers, so every
piece of the time advance (Helmholtz solves, velocity recovery, source
assembly) only ever needs *its own* block of modes.  A :class:`ModeSet`
carries the wavenumber arrays for whichever block a worker owns; the
serial solver uses the full set, each SimMPI rank a slice of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class ModeSet:
    """A rectangular block of (kx, kz) modes.

    ``kx``/``kz`` are the wavenumber values of the block; ``mean_index``
    is the local index of the (0,0) mode if this block owns it, else None.
    """

    kx: np.ndarray
    kz: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return (self.kx.size, self.kz.size)

    @cached_property
    def ksq(self) -> np.ndarray:
        return self.kx[:, None] ** 2 + self.kz[None, :] ** 2

    @cached_property
    def ikx(self) -> np.ndarray:
        """``i kx`` broadcastable over ``(mx, mz, ny)`` state arrays."""
        return (1j * self.kx)[:, None, None]

    @cached_property
    def ikz(self) -> np.ndarray:
        """``i kz`` broadcastable over ``(mx, mz, ny)`` state arrays."""
        return (1j * self.kz)[None, :, None]

    @cached_property
    def mean_index(self) -> tuple[int, int] | None:
        """Local (i, j) of the kx = kz = 0 mode, or None if not owned."""
        ix = np.nonzero(self.kx == 0.0)[0]
        iz = np.nonzero(self.kz == 0.0)[0]
        if ix.size and iz.size:
            return (int(ix[0]), int(iz[0]))
        return None

    @property
    def owns_mean(self) -> bool:
        return self.mean_index is not None

    def state_shape(self, ny: int) -> tuple[int, int, int]:
        return self.shape + (ny,)

    def slab(self, xs: slice, zs: slice) -> "ModeSet":
        """Sub-block of this mode set (used to build per-rank sets)."""
        return ModeSet(kx=self.kx[xs], kz=self.kz[zs])
