"""Fault-isolated multi-job scheduler over a shared rank pool.

A campaign rarely owns one job: the allocation that runs the production
DNS also runs restarted parameter studies, validation sweeps and the
occasional debug rerun.  :class:`JobManager` places queued
:class:`JobSpec`\\ s (config + priority + deadline) onto disjoint
sub-leases of one :class:`~repro.mpi.pool.RankPool` and runs them
*concurrently*, each through the elastic supervised loop
(:func:`~repro.pencil.distributed.run_supervised_spmd`) on its own
thread-backed SimMPI world.  Isolation is structural: leases are
disjoint by construction and every fault domain is per ``run_spmd``
call, so a rank failure inside job A cannot perturb job B — the dead
rank is quarantined in the pool and stays unplaceable for *every* job
until a health probe returns it to service.

Scheduling rules, in order:

* **Placement** — highest priority first (submit order breaks ties); a
  job takes the largest feasible rank count in
  ``[min_ranks, min(ranks, free)]`` (feasibility =
  :func:`~repro.pencil.decomp.choose_grid` accepts the count).  A job
  placed below its request runs *degraded* and grows back through its
  :class:`~repro.mpi.pool.LeaseGrowSource` as ranks free up.
* **Preemption** — when a higher-priority job cannot be placed, the
  lowest-priority running job below it is asked to stop.  Preemption is
  cooperative and lossless: the victim checkpoints at its next boundary,
  raises :class:`~repro.mpi.simmpi.PreemptRequired`, releases its lease
  and is requeued — on re-placement it resumes from the snapshot, so no
  checkpointed step is ever redone from scratch.
* **Retry** — a job that fails outright (restart budget exhausted,
  shrink below ``min_ranks``) is requeued up to ``max_retries`` times
  with exponential backoff whose jitter is deterministic in the job's
  config seed (no sleeping threads: the backoff is a ``not_before``
  timestamp the scheduler honours).
* **Quarantine** — ULFM-failed ranks leave the victim's lease via
  :meth:`~repro.mpi.pool.RankPool.shrink` and return only through a
  probe (the manager's ``prober``); without a prober they never return.

Telemetry nests: the manager writes a schema-v4 ``events.jsonl``
(``rank=-1``, every record tagged ``job=<name>``) plus a
``manifest.json`` carrying the pool census, and each placement of each
job writes its own supervised-run stream under
``<dir>/job-<name>/placement-NN/``.

Outcome classification (checked by the scheduler-level chaos soak),
highest precedence first: ``preempted-resumed`` (was preempted at least
once, then finished), ``grown`` (expanded back toward its request),
``degraded`` (finished below its requested ranks), ``recovered``
(restarts/shrinks/retries happened), ``completed`` (clean), ``failed``.
"""

from __future__ import annotations

import pathlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.instrument import RecoveryCounters
from repro.mpi.pool import LeaseGrowSource, RankPool
from repro.mpi.simmpi import PreemptRequired
from repro.telemetry import RunRecorder, TelemetryConfig, build_manifest, write_manifest

#: terminal states of a job record
FINISHED_STATES = ("completed", "failed")


@dataclass(frozen=True)
class JobSpec:
    """One queued job: what to run, how big, how urgent."""

    #: unique job name (tags telemetry, leases and checkpoints)
    name: str
    #: solver configuration (:class:`~repro.core.solver.ChannelConfig`)
    config: object
    #: steps to advance
    n_steps: int
    #: requested world size; the elastic loop grows a degraded placement
    #: back toward this
    ranks: int
    #: higher runs first and may preempt lower
    priority: int = 0
    #: wall-clock budget in seconds from first placement; exceeded ->
    #: the job stops at the next checkpoint boundary and fails (None =
    #: no deadline)
    deadline: float | None = None
    #: smallest world size the job accepts (placement floor and elastic
    #: shrink floor)
    min_ranks: int = 1
    #: checkpoint cadence inside the supervised loop
    checkpoint_every: int = 5
    #: per-placement restart budget of the supervised loop
    max_restarts: int = 3
    #: whole-placement retries the manager grants after a hard failure
    max_retries: int = 1
    #: :class:`~repro.mpi.simmpi.FaultPlan` list for the *first*
    #: placement (chaos injection); later placements run clean
    fault_plans: Sequence = ()
    #: earliest placement time, in seconds after submission — models a
    #: job *arriving* later (the way a high-priority job shows up mid-run
    #: and preempts) without the test needing timer threads
    start_after: float = 0.0

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ValueError(f"job {self.name!r}: ranks must be >= 1")
        if not 1 <= self.min_ranks <= self.ranks:
            raise ValueError(
                f"job {self.name!r}: need 1 <= min_ranks <= ranks, "
                f"got min_ranks={self.min_ranks}, ranks={self.ranks}"
            )
        if self.n_steps < 1:
            raise ValueError(f"job {self.name!r}: n_steps must be >= 1")


@dataclass
class JobRecord:
    """Mutable scheduler-side state of one submitted job."""

    spec: JobSpec
    #: queued | running | completed | failed
    state: str = "queued"
    #: final classification, set on finish (see module docstring)
    outcome: str | None = None
    #: gathered final state on success
    result: object = None
    #: recovery events of the *successful* placement
    log: list = field(default_factory=list)
    #: recovery counters persisting across placements and retries
    counters: RecoveryCounters = field(default_factory=RecoveryCounters)
    placements: int = 0
    preemptions: int = 0
    retries: int = 0
    #: scheduler honours this monotonic timestamp before re-placing
    not_before: float = 0.0
    #: set to ask the running placement to stop at its next boundary
    stop_reason: str | None = None
    error: BaseException | None = None
    final_ranks: int = 0
    #: monotonic time of first placement (deadline anchor)
    started: float | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def finished(self) -> bool:
        return self.state in FINISHED_STATES


class JobManager:
    """Run submitted jobs concurrently on disjoint leases of one pool.

    Parameters
    ----------
    pool:
        A :class:`~repro.mpi.pool.RankPool` or an integer pool size.
    directory:
        Telemetry root: manager ``events.jsonl`` + ``manifest.json`` at
        the top, per-job streams under ``job-<name>/``.
    prober:
        Health probe ``pool_rank -> bool`` for quarantined ranks.  When
        None, quarantined ranks never return to service (fail-safe).
    backoff_base, backoff_factor, backoff_max, backoff_jitter:
        Retry backoff schedule; jitter is deterministic per job (seeded
        from the job config's seed and name).
    """

    def __init__(
        self,
        pool: RankPool | int,
        *,
        directory,
        prober: Callable[[int], bool] | None = None,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 0.5,
        backoff_jitter: float = 0.5,
    ) -> None:
        self.pool = pool if isinstance(pool, RankPool) else RankPool(int(pool))
        self.directory = pathlib.Path(directory)
        self.prober = prober
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_max = float(backoff_max)
        if not 0.0 <= backoff_jitter < 1.0:
            raise ValueError(f"backoff_jitter must be in [0, 1), got {backoff_jitter}")
        self.backoff_jitter = float(backoff_jitter)
        self.timed_out = False
        self._cond = threading.Condition()
        self._jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._threads: dict[str, threading.Thread] = {}
        self._rng: dict[str, random.Random] = {}
        # the recorder is not thread-safe and job threads emit manager
        # events too, so every record_event goes through _rec_lock
        self._rec_lock = threading.Lock()
        self._recorder = RunRecorder(
            TelemetryConfig(directory=self.directory, trace=False, manifest=False),
            rank=-1,
            nranks=self.pool.size,
        )

    # -- submission ------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Queue a job; placement happens inside :meth:`run`."""
        with self._cond:
            if spec.name in self._jobs:
                raise ValueError(f"job {spec.name!r} already submitted")
            if spec.min_ranks > self.pool.size:
                raise ValueError(
                    f"job {spec.name!r} needs >= {spec.min_ranks} ranks, "
                    f"pool has {self.pool.size}"
                )
            rec = JobRecord(spec=spec)
            if spec.start_after > 0.0:
                rec.not_before = time.monotonic() + spec.start_after
            self._jobs[spec.name] = rec
            self._order.append(spec.name)
            # deterministic per-job jitter stream: seeded by config seed
            # and name so a rerun reproduces the exact retry schedule
            seed = getattr(spec.config, "seed", 0)
            self._rng[spec.name] = random.Random(f"{seed}:{spec.name}")
            self._cond.notify_all()
        self._event(
            "submitted",
            job=spec.name,
            detail=(
                f"{spec.n_steps} steps on {spec.ranks} ranks "
                f"(priority {spec.priority})"
            ),
            info={
                "ranks": spec.ranks,
                "min_ranks": spec.min_ranks,
                "priority": spec.priority,
                "n_steps": spec.n_steps,
                "deadline_s": spec.deadline,
            },
        )
        return rec

    # -- events ----------------------------------------------------------

    def _event(self, kind: str, *, job: str, detail: str = "", info: dict | None = None) -> None:
        with self._rec_lock:
            self._recorder.record_event(kind, step=-1, detail=detail, info=info, job=job)

    # -- feasibility -----------------------------------------------------

    @staticmethod
    def _feasible(spec: JobSpec, n: int) -> bool:
        from repro.pencil.decomp import choose_grid

        try:
            choose_grid(n, spec.config.nx // 2, spec.config.nz - 1, spec.config.ny)
        except ValueError:
            return False
        return True

    def _placement_size(self, spec: JobSpec, free: int) -> int | None:
        """Largest feasible world size in ``[min_ranks, min(ranks, free)]``."""
        for n in range(min(spec.ranks, free), spec.min_ranks - 1, -1):
            if self._feasible(spec, n):
                return n
        return None

    # -- scheduling ------------------------------------------------------

    def run(self, timeout: float | None = None) -> dict[str, JobRecord]:
        """Drive every submitted job to a terminal state; return records.

        ``timeout`` is the manager-level wall-clock guard (the soak's
        zero-hang assertion): when exceeded, every running job is asked
        to stop at its next boundary, still-queued jobs fail, and
        :attr:`timed_out` is set.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        write_manifest(
            self.directory,
            build_manifest(
                None,
                nranks=self.pool.size,
                pool={
                    **self.pool.census(),
                    "jobs": {
                        name: {
                            "ranks": self._jobs[name].spec.ranks,
                            "min_ranks": self._jobs[name].spec.min_ranks,
                            "priority": self._jobs[name].spec.priority,
                            "n_steps": self._jobs[name].spec.n_steps,
                        }
                        for name in self._order
                    },
                },
            ),
        )
        with self._cond:
            while not all(r.finished for r in self._jobs.values()):
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    self.timed_out = True
                    for rec in self._jobs.values():
                        if rec.state == "running":
                            rec.stop_reason = "manager timeout"
                    break
                placed = self._schedule_pass(now)
                if placed == 0 and not any(
                    r.state == "running" for r in self._jobs.values()
                ):
                    # nothing running, nothing placeable: fail jobs that
                    # are eligible *now* (a not_before in the future is a
                    # legitimate wait, not a stall)
                    stuck = [
                        r
                        for r in self._jobs.values()
                        if r.state == "queued" and now >= r.not_before
                    ]
                    if stuck:
                        for rec in stuck:
                            self._finish_failed(
                                rec,
                                RuntimeError(
                                    f"unplaceable: needs >= {rec.spec.min_ranks} "
                                    f"ranks, {self.pool.free_count()} free, "
                                    f"{len(self.pool.quarantined_ranks())} quarantined"
                                ),
                            )
                        continue
                self._cond.wait(timeout=self._next_wake(deadline))
        # outside the lock: let preempted/finishing threads drain
        for t in list(self._threads.values()):
            t.join(timeout=120.0)
        with self._cond:
            for rec in self._jobs.values():
                if not rec.finished:
                    self._finish_failed(
                        rec, TimeoutError("manager timeout before completion")
                    )
        with self._rec_lock:
            self._recorder.close()
        return dict(self._jobs)

    def _next_wake(self, deadline: float | None) -> float | None:
        now = time.monotonic()
        waits = []
        if deadline is not None:
            waits.append(deadline - now)
        for rec in self._jobs.values():
            if rec.state == "queued" and rec.not_before > now:
                waits.append(rec.not_before - now)
        return max(0.0, min(waits)) if waits else None

    def _schedule_pass(self, now: float) -> int:
        """Place eligible queued jobs; signal preemptions.  Returns the
        number of placements made.  Caller holds the condition lock."""
        placed = 0
        queued = [
            r
            for r in self._jobs.values()
            if r.state == "queued" and now >= r.not_before
        ]
        queued.sort(key=lambda r: (-r.spec.priority, self._order.index(r.name)))
        for rec in queued:
            n = self._placement_size(rec.spec, self.pool.free_count())
            if n is None and self.prober is not None and self.pool.quarantined_ranks():
                # quarantined capacity may be all that is missing: probe
                # it back before declaring the job unplaceable
                for pr in self.pool.probe(self.prober):
                    self._event(
                        "probe",
                        job=rec.name,
                        detail=f"pool rank {pr} probed healthy",
                        info={"pool_rank": pr},
                    )
                n = self._placement_size(rec.spec, self.pool.free_count())
            if n is not None:
                self._place(rec, n)
                placed += 1
                continue
            victim = self._pick_victim(rec)
            if victim is not None:
                victim.stop_reason = f"preempted by {rec.name}"
                self._event(
                    "requeued",
                    job=victim.name,
                    detail=(
                        f"preemption requested by higher-priority job "
                        f"{rec.name!r} (will checkpoint and requeue)"
                    ),
                    info={"by": rec.name, "phase": "requested"},
                )
        return placed

    def _pick_victim(self, rec: JobRecord) -> JobRecord | None:
        """Lowest-priority running job strictly below ``rec`` whose lease
        would make ``rec`` placeable."""
        candidates = [
            r
            for r in self._jobs.values()
            if r.state == "running"
            and r.spec.priority < rec.spec.priority
            and r.stop_reason is None
        ]
        candidates.sort(key=lambda r: (r.spec.priority, -self._order.index(r.name)))
        for victim in candidates:
            lease = self.pool.lease(victim.name)
            freed = lease.size if lease is not None else 0
            if self._placement_size(rec.spec, self.pool.free_count() + freed) is not None:
                return victim
        return None

    def _place(self, rec: JobRecord, n: int) -> None:
        from repro.pencil.decomp import choose_grid

        spec = rec.spec
        lease = self.pool.acquire(rec.name, n)
        pa, pb = choose_grid(n, spec.config.nx // 2, spec.config.nz - 1, spec.config.ny)
        rec.state = "running"
        rec.placements += 1
        rec.stop_reason = None
        if rec.started is None:
            rec.started = time.monotonic()
        self._event(
            "placed",
            job=rec.name,
            detail=(
                f"placement {rec.placements - 1}: {n} ranks ({pa}x{pb})"
                + (" [degraded]" if n < spec.ranks else "")
            ),
            info={
                "ranks": n,
                "pa": pa,
                "pb": pb,
                "degraded": n < spec.ranks,
                "pool_ranks": list(lease.ranks),
            },
        )
        t = threading.Thread(
            target=self._run_job,
            args=(rec, n, pa, pb),
            name=f"job-{rec.name}",
            daemon=True,
        )
        self._threads[rec.name] = t
        t.start()

    # -- the per-job thread ---------------------------------------------

    def _run_job(self, rec: JobRecord, n: int, pa: int, pb: int) -> None:
        from repro.pencil.distributed import run_supervised_spmd

        spec = rec.spec
        job_dir = self.directory / f"job-{rec.name}"
        telemetry = TelemetryConfig(
            directory=job_dir / f"placement-{rec.placements - 1:02d}", trace=False
        )

        def _should_stop():
            if rec.stop_reason:
                return rec.stop_reason
            if (
                spec.deadline is not None
                and rec.started is not None
                and time.monotonic() - rec.started >= spec.deadline
            ):
                return "deadline exceeded"
            return None

        def _on_shrink(dead, survivors):
            self.pool.shrink(rec.name, dead)
            self._event(
                "quarantine",
                job=rec.name,
                detail=(
                    f"{len(dead)} rank(s) of {rec.name} quarantined after failure"
                ),
                info={
                    "dead_world": [int(d) for d in dead],
                    "quarantined_pool": list(self.pool.quarantined_ranks()),
                },
            )

        try:
            final, log = run_supervised_spmd(
                n,
                spec.config,
                pa,
                pb,
                spec.n_steps,
                job_dir / "checkpoints",
                checkpoint_every=spec.checkpoint_every,
                max_restarts=spec.max_restarts,
                fault_plans=spec.fault_plans if rec.placements == 1 else (),
                elastic=True,
                integrity=True,
                min_ranks=spec.min_ranks,
                counters=rec.counters,
                telemetry=telemetry,
                grow_source=LeaseGrowSource(
                    self.pool, rec.name, prober=self._probing(rec.name)
                ),
                max_ranks=spec.ranks,
                should_stop=_should_stop,
                on_shrink=_on_shrink,
            )
        except PreemptRequired as exc:
            self.pool.release(rec.name)
            with self._cond:
                if exc.reason in ("deadline exceeded", "manager timeout"):
                    self._finish_failed(rec, exc)
                else:
                    rec.state = "queued"
                    rec.preemptions += 1
                    rec.stop_reason = None
                    rec.not_before = 0.0
                    self._event(
                        "requeued",
                        job=rec.name,
                        detail=(
                            f"preempted at step {exc.step} "
                            f"({exc.reason}); checkpointed, requeued"
                        ),
                        info={"step": exc.step, "reason": exc.reason, "phase": "done"},
                    )
                self._cond.notify_all()
        except BaseException as exc:  # noqa: BLE001 - every failure goes to retry
            self.pool.release(rec.name)
            with self._cond:
                rec.retries += 1
                if rec.retries <= spec.max_retries and not self.timed_out:
                    delay = self._backoff(rec)
                    rec.state = "queued"
                    rec.stop_reason = None
                    rec.not_before = time.monotonic() + delay
                    self._event(
                        "requeued",
                        job=rec.name,
                        detail=(
                            f"retry {rec.retries}/{spec.max_retries} in "
                            f"{delay:.3f}s after {type(exc).__name__}: {exc}"
                        ),
                        info={
                            "retry": rec.retries,
                            "max_retries": spec.max_retries,
                            "delay_s": delay,
                        },
                    )
                else:
                    self._finish_failed(rec, exc)
                self._cond.notify_all()
        else:
            lease = self.pool.lease(rec.name)
            rec.final_ranks = lease.size if lease is not None else n
            self.pool.release(rec.name)
            with self._cond:
                rec.result = final
                rec.log = list(log)
                rec.state = "completed"
                rec.outcome = self._classify(rec)
                self._event(
                    "completed",
                    job=rec.name,
                    detail=f"outcome {rec.outcome} on {rec.final_ranks} ranks",
                    info={
                        "outcome": rec.outcome,
                        "ranks": rec.final_ranks,
                        "shrinks": rec.counters.shrinks,
                        "grows": rec.counters.grows,
                        "restarts": rec.counters.restarts,
                        "preemptions": rec.preemptions,
                        "retries": rec.retries,
                        "placements": rec.placements,
                    },
                )
                self._cond.notify_all()

    def _probing(self, name: str) -> Callable[[int], bool] | None:
        """Wrap the manager prober so probes show up in the event stream."""
        if self.prober is None:
            return None

        def probe(pool_rank: int) -> bool:
            healthy = bool(self.prober(pool_rank))
            if healthy:
                self._event(
                    "probe",
                    job=name,
                    detail=f"pool rank {pool_rank} probed healthy",
                    info={"pool_rank": pool_rank},
                )
            return healthy

        return probe

    def _backoff(self, rec: JobRecord) -> float:
        delay = min(
            self.backoff_base * self.backoff_factor ** (rec.retries - 1),
            self.backoff_max,
        )
        if self.backoff_jitter > 0.0:
            u = self._rng[rec.name].random()
            delay *= 1.0 + self.backoff_jitter * (2.0 * u - 1.0)
        return delay

    def _finish_failed(self, rec: JobRecord, exc: BaseException) -> None:
        """Caller holds the condition lock."""
        rec.state = "failed"
        rec.outcome = "failed"
        rec.error = exc
        self._event(
            "failed",
            job=rec.name,
            detail=f"{type(exc).__name__}: {exc}",
            info={"retries": rec.retries, "placements": rec.placements},
        )

    @staticmethod
    def _classify(rec: JobRecord) -> str:
        c = rec.counters
        if rec.preemptions > 0:
            return "preempted-resumed"
        if c.grows > 0:
            return "grown"
        if rec.final_ranks < rec.spec.ranks:
            return "degraded"
        if c.shrinks + c.restarts > 0 or rec.retries > 0:
            return "recovered"
        return "completed"
