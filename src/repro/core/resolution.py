"""Wall-unit resolution report — the criterion a DNS lives or dies by.

The paper's case for spectral methods (§2) is resolution per degree of
freedom, and channel DNS practice states grid quality in viscous units:
``dx+``, ``dz+`` (quadrature spacings) and the first-off-wall and
centreline ``dy+``.  Accepted spectral-DNS practice is roughly
``dx+ < ~13``, ``dz+ < ~7``, first ``dy+ < ~1`` and centreline
``dy+ < ~7`` (the Re_tau = 5200 production grid sits near dx+ = 12.7,
dz+ = 6.4).  :func:`resolution_report` computes and grades these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import ChannelGrid

#: accepted spectral channel-DNS limits (wall units)
LIMITS = {"dx_plus": 13.0, "dz_plus": 7.0, "dy_wall_plus": 1.5, "dy_centre_plus": 8.0}


@dataclass(frozen=True)
class ResolutionReport:
    """Grid spacings in wall units and their pass/fail grades."""

    re_tau: float
    dx_plus: float
    dz_plus: float
    dy_wall_plus: float
    dy_centre_plus: float

    def grades(self) -> dict[str, bool]:
        return {
            name: getattr(self, name) <= limit for name, limit in LIMITS.items()
        }

    @property
    def resolved(self) -> bool:
        return all(self.grades().values())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rows = [f"resolution at Re_tau = {self.re_tau:.0f}:"]
        for name, limit in LIMITS.items():
            val = getattr(self, name)
            mark = "ok" if val <= limit else "COARSE"
            rows.append(f"  {name:15s} {val:7.2f}  (limit {limit:4.1f})  {mark}")
        return "\n".join(rows)


def resolution_report(grid: ChannelGrid, re_tau: float) -> ResolutionReport:
    """Wall-unit spacings of a grid at a target friction Reynolds number.

    x/z spacings follow the community convention of the *mode* grid
    (``Lx/nx``), which is how the paper's lineage reports them — the
    Re_tau = 5200 production grid gives dx+ = 12.7, dz+ = 6.4.
    """
    if re_tau <= 0:
        raise ValueError("re_tau must be positive")
    dy = np.diff(grid.y)
    return ResolutionReport(
        re_tau=re_tau,
        dx_plus=grid.lx / grid.nx * re_tau,
        dz_plus=grid.lz / grid.nz * re_tau,
        dy_wall_plus=float(dy[0]) * re_tau,
        dy_centre_plus=float(dy.max()) * re_tau,
    )


def paper_production_report() -> ResolutionReport:
    """The paper's §6 production grid, graded by the same criteria."""
    grid = ChannelGrid(
        nx=10240, ny=1536, nz=7680, lx=8 * np.pi, lz=3 * np.pi, stretch=2.0
    )
    return resolution_report(grid, 5186.0)
