"""Spectral regridding and snapshot interpolation.

Production DNS campaigns (the paper's included) are grid-sequenced: a
coarse run develops turbulence cheaply, then the state is spectrally
interpolated onto the production grid and continued.  For a spectral
code this is exact on the shared modes:

* x/z: pad (new zero modes) or truncate the Fourier coefficients,
* y: evaluate the B-splines of the old basis at any points and
  re-interpolate in the new basis (exact when the new breakpoints
  refine the old ones to within spline accuracy).

``evaluate_at`` offers the same machinery pointwise — velocities at
arbitrary (x, z, y) to spectral accuracy — which is what post-processing
pipelines sample along lines and planes.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.operators import WallNormalOps
from repro.core.timestepper import ChannelState
from repro.core.velocity import recover_uw


def _resample_modes(field: np.ndarray, gin: ChannelGrid, gout: ChannelGrid) -> np.ndarray:
    """Pad/truncate the (kx, kz) mode content between grids (y untouched)."""
    out = np.zeros((gout.mx, gout.mz, field.shape[2]), dtype=complex)
    mx = min(gin.mx, gout.mx)
    # positive kz block
    hin, hout = gin.nz // 2, gout.nz // 2
    hpos = min(hin, hout)
    out[:mx, :hpos] = field[:mx, :hpos]
    # negative kz block (tails of the FFT-ordered layout)
    hneg = min(hin - 1, hout - 1)
    if hneg > 0:
        out[:mx, gout.mz - hneg :] = field[:mx, gin.mz - hneg :]
    return out


def _resample_y(coeffs: np.ndarray, gin: ChannelGrid, gout: ChannelGrid) -> np.ndarray:
    """Old-basis spline coefficients -> new-basis coefficients."""
    if gin.ny == gout.ny and np.allclose(gin.basis.breakpoints, gout.basis.breakpoints):
        return coeffs
    vals = gin.basis.evaluate(coeffs, gout.basis.collocation_points)
    return gout.basis.interpolate(vals)


def regrid_state(state: ChannelState, gin: ChannelGrid, gout: ChannelGrid) -> ChannelState:
    """Spectrally interpolate a DNS state onto another grid.

    Mode content shared by both grids transfers exactly; new modes start
    at zero; dropped modes are discarded (a spectral low-pass).  The
    kx = 0 reality symmetry and wall boundary conditions are preserved
    by construction.
    """
    if state.u00 is None or state.w00 is None:
        raise ValueError("regrid_state needs a full (mean-owning) state")
    v = _resample_modes(_resample_y(state.v, gin, gout), gin, gout)
    omega = _resample_modes(_resample_y(state.omega_y, gin, gout), gin, gout)
    out = ChannelState(
        v=v,
        omega_y=omega,
        u00=_resample_y(state.u00, gin, gout),
        w00=_resample_y(state.w00, gin, gout),
        time=state.time,
    )
    out.u, out.w = recover_uw(
        gout.modes, WallNormalOps(gout), out.v, out.omega_y, out.u00, out.w00
    )
    return out


def evaluate_at(
    grid: ChannelGrid,
    field_coeffs: np.ndarray,
    x: np.ndarray,
    z: np.ndarray,
    y: np.ndarray,
) -> np.ndarray:
    """Evaluate one spectral field at arbitrary points (spectral accuracy).

    ``x``, ``z``, ``y`` are 1-D arrays of equal length; returns the real
    field values at the points ``(x[i], z[i], y[i])``.
    """
    x = np.atleast_1d(np.asarray(x, dtype=float))
    z = np.atleast_1d(np.asarray(z, dtype=float))
    y = np.atleast_1d(np.asarray(y, dtype=float))
    if not (x.shape == z.shape == y.shape):
        raise ValueError("x, z, y must have equal shapes")
    # y first: spline evaluation gives per-mode values at each point
    npts = x.size
    out = np.zeros(npts)
    # evaluate spline along y once per point (vectorized per point over modes)
    for i in range(npts):
        mode_vals = grid.basis.evaluate(field_coeffs, np.array([y[i]]))[..., 0]
        phase_x = np.exp(1j * grid.kx * x[i])  # (mx,)
        phase_z = np.exp(1j * grid.kz * z[i])  # (mz,)
        contrib = (mode_vals * phase_z[None, :]).sum(axis=1)  # (mx,)
        # kx = 0 is real by the reality symmetry; kx > 0 counts twice
        out[i] = contrib[0].real + 2.0 * np.real((contrib[1:] * phase_x[1:]).sum())
    return out


def save_snapshot(dns, path) -> None:
    """Write physical velocities + coordinates (post-processing format)."""
    u, v, w = dns.physical_velocity()
    g = dns.grid
    np.savez_compressed(
        path, u=u, v=v, w=w, x=g.x, z=g.z, y=g.y, time=dns.state.time,
        re_tau=dns.config.re_tau, nu=dns.config.nu,
    )


def load_snapshot(path) -> dict:
    """Read a snapshot back as a plain dict of arrays/floats."""
    with np.load(path, allow_pickle=False) as data:
        return {k: data[k].copy() if data[k].ndim else float(data[k]) for k in data.files}
