"""Nonlinear (convective) terms — paper steps (a)-(h) and eq. (2) sources.

The divergence-form nonlinearity ``H = -div(u u)`` enters the KMM
equations only through

    h_g = i kz H1 - i kx H3                     (omega_y source)
    h_v = -k² H2 - d/dy (i kx H1 + i kz H3)     (phi source)

Both are invariant under ``H -> H - grad(q)``: the curl kills gradients
in h_g, and in h_v the two q-terms cancel identically.  The isotropic
part of the product tensor can therefore be absorbed into the pressure,
leaving **five** quadratic fields to transform back from the quadrature
grid — the paper's step (g) "compute five quadratic products":

    P1 = uu - ww,  P2 = vv - ww,  P3 = uv,  P4 = uw,  P5 = vw.

With q = ww absorbed, the gradient-free parts are

    H1 = -( i kx P1 + d/dy P3 + i kz P4 )
    H2 = -( i kx P3 + d/dy P2 + i kz P5 )
    H3 = -( i kx P4 + d/dy P5 )

and the mean-mode (kx = kz = 0) momentum sources reduce to
``H1|00 = -d<uv>/dy`` and ``H3|00 = -d<vw>/dy`` as they must.

The physical-space evaluation is delegated to a *transform backend*
(serial full-array transforms or the distributed pencil pipeline), so
this module is shared verbatim between the serial and parallel solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.modes import ModeSet
from repro.core.operators import WallNormalOps


@dataclass
class NonlinearResult:
    """Sources for one evaluation of the convective terms.

    ``hg``/``hv`` are collocated values over the local mode block;
    ``h1_mean``/``h3_mean`` are the real mean-momentum sources ``(ny,)``
    (None on ranks that do not own the mean mode).  ``cfl_speeds`` holds
    the local (|u|max, |v|max, |w|max) for time-step control.
    """

    hg: np.ndarray
    hv: np.ndarray
    h1_mean: np.ndarray | None
    h3_mean: np.ndarray | None
    cfl_speeds: tuple[float, float, float]


class NonlinearTerms:
    """Evaluator for the dealiased convective sources."""

    def __init__(self, modes: ModeSet, ops: WallNormalOps, backend) -> None:
        self.modes = modes
        self.ops = ops
        self.backend = backend

    def physical_velocity(
        self, u: np.ndarray, v: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Velocity on (this worker's part of) the quadrature grid.

        Backends exposing the batched ``to_physical_many`` entry point
        (the planned serial pipeline) get the whole 3-velocity stack in
        one call; others (the pencil path) are driven per field.
        """
        ops, be = self.ops, self.backend
        vals = (ops.values(u), ops.values(v), ops.values(w))
        if hasattr(be, "to_physical_many"):
            up, vp, wp = be.to_physical_many(vals)
            return up, vp, wp
        return tuple(be.to_physical(f) for f in vals)

    def compute(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> NonlinearResult:
        """Evaluate h_g, h_v and mean sources from velocity coefficients."""
        m, ops, be = self.modes, self.ops, self.backend
        up, vp, wp = self.physical_velocity(u, v, w)

        # step (g): five quadratic products on the dealiased grid
        ww = wp * wp
        p1 = up * up - ww
        p2 = vp * vp - ww
        p3 = up * vp
        p4 = up * wp
        p5 = vp * wp

        # step (h): Galerkin projection back to spectral space, then
        # y-expand — the 5-product stack goes through the backend in one
        # batched call when it supports it.
        products = (p1, p2, p3, p4, p5)
        if hasattr(be, "from_physical_many"):
            specs = be.from_physical_many(products)
        else:
            specs = [be.from_physical(p) for p in products]
        a1, a2, a3, a4, a5 = (ops.coeffs(s) for s in specs)

        ikx, ikz = m.ikx, m.ikz
        h1 = -(ikx * ops.values(a1) + ops.dvalues(a3) + ikz * ops.values(a4))
        h2 = -(ikx * ops.values(a3) + ops.dvalues(a2) + ikz * ops.values(a5))
        h3 = -(ikx * ops.values(a4) + ops.dvalues(a5))

        hg = ikz * h1 - ikx * h3

        # h_v = -k² H2 - d/dy(i kx H1 + i kz H3); the y-derivative needs a
        # re-expansion of the collocated combination into spline space.
        comb = ikx * h1 + ikz * h3
        dcomb = ops.dvalues(ops.coeffs(comb))
        hv = -m.ksq[..., None] * h2 - dcomb

        if m.owns_mean:
            h1_mean = h1[m.mean_index].real.copy()
            h3_mean = h3[m.mean_index].real.copy()
        else:
            h1_mean = h3_mean = None
        speeds = (
            float(np.abs(up).max()),
            float(np.abs(vp).max()),
            float(np.abs(wp).max()),
        )
        return NonlinearResult(hg=hg, hv=hv, h1_mean=h1_mean, h3_mean=h3_mean, cfl_speeds=speeds)
