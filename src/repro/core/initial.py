"""Initial conditions for the channel DNS.

Turbulence is reached fastest from a realistic mean profile plus
finite-amplitude divergence-free perturbations.  Perturbations are
constructed directly in the (v, omega_y) state space: any smooth v with
``v = dv/dy = 0`` at the walls combined with any omega_y vanishing at the
walls yields an exactly solenoidal velocity field after recovery — no
projection step needed.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.timestepper import ChannelState


def laminar_profile(grid: ChannelGrid, nu: float, forcing: float = 1.0) -> np.ndarray:
    """Poiseuille profile ``u = F (1 - y²) / (2 nu)`` as spline coefficients."""
    y = grid.y
    return grid.basis.interpolate(forcing * (1.0 - y * y) / (2.0 * nu))


def reichardt_profile(grid: ChannelGrid, re_tau: float, kappa: float = 0.41) -> np.ndarray:
    """Reichardt's law-of-the-wall mean profile (wall units), as coefficients.

    A smooth all-``y+`` blend of the viscous sublayer and the log law,
    evaluated from each wall to the centreline.  Used as a turbulent-like
    starting mean profile and as the Fig. 5 reference curve.
    """
    y = grid.y
    yplus = (1.0 - np.abs(y)) * re_tau
    uplus = (
        np.log1p(kappa * yplus) / kappa
        + 7.8 * (1.0 - np.exp(-yplus / 11.0) - (yplus / 11.0) * np.exp(-yplus / 3.0))
    )
    return grid.basis.interpolate(uplus)


def perturbed_state(
    grid: ChannelGrid,
    nu: float,
    amplitude: float = 0.1,
    modes: int = 4,
    seed: int = 0,
    base: str = "reichardt",
    forcing: float = 1.0,
) -> ChannelState:
    """Mean profile plus random solenoidal perturbations.

    ``amplitude`` scales the perturbation velocity relative to the
    friction velocity (= 1 in our units); ``modes`` bounds the number of
    excited harmonics per horizontal direction.
    """
    rng = np.random.default_rng(seed)
    mx, mz, ny = grid.spectral_shape
    y = grid.y

    # Wall-compatible shape functions.
    g_v = (1.0 - y * y) ** 2  # v = dv/dy = 0 at walls
    g_w = (1.0 - y * y)  # omega_y = 0 at walls
    a_gv = grid.basis.interpolate(g_v)
    a_gw = grid.basis.interpolate(g_w)

    v = np.zeros(grid.spectral_shape, dtype=complex)
    omega = np.zeros(grid.spectral_shape, dtype=complex)
    half_z = grid.nz // 2
    for ix in range(min(modes + 1, mx)):
        for iz_label in range(-min(modes, half_z - 1), min(modes, half_z - 1) + 1):
            if ix == 0 and iz_label <= 0:
                continue  # (0,0) is the mean; kx=0 conjugates handled by symmetry
            iz = iz_label % grid.mz
            phase_v = np.exp(2j * np.pi * rng.random())
            phase_w = np.exp(2j * np.pi * rng.random())
            amp = amplitude * rng.random() / max(modes, 1)
            v[ix, iz] += amp * phase_v * a_gv
            omega[ix, iz] += amp * phase_w * a_gw

    _enforce_kx0_reality(grid, v)
    _enforce_kx0_reality(grid, omega)

    if base == "laminar":
        u00 = laminar_profile(grid, nu, forcing)
    elif base == "reichardt":
        re_tau = np.sqrt(forcing) / nu
        u00 = reichardt_profile(grid, re_tau)
    else:
        raise ValueError(f"unknown base profile {base!r}")
    w00 = np.zeros(ny)
    return ChannelState(v=v, omega_y=omega, u00=u00, w00=w00)


def _enforce_kx0_reality(grid: ChannelGrid, field: np.ndarray) -> None:
    """Impose ``f(0, -kz) = conj(f(0, kz))`` so the physical field is real."""
    mz = grid.mz
    half = grid.nz // 2  # stored non-negative kz modes at indices 0..half-1
    for j in range(1, half):
        field[0, mz - j] = np.conj(field[0, j])
