"""Run-time controllers: adaptive time step and constant mass flux.

Two controls every production channel code carries:

* :class:`CFLController` — keeps the advective CFL number inside a
  target band by rescaling dt.  Changing dt means refactoring the
  implicit banded systems (the paper's code refactors per step anyway);
  the controller therefore moves dt only when the CFL leaves the band,
  and by bounded factors, so refactorization stays rare.
* :class:`MassFluxController` — the paper drives the flow with a fixed
  mean pressure gradient (fixing u_tau and hence Re_tau); the common
  alternative fixes the bulk velocity instead and lets the pressure
  gradient float.  This proportional-integral controller adjusts the
  forcing toward a target bulk velocity — forcing is an explicit scalar,
  so no refactorization is needed.

Controllers are callables applied after each step:
``dns.run(n, controllers=[ctrl])``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CFLController:
    """Keep the CFL number within ``[low, high]`` around a target."""

    target: float = 0.8
    low: float = 0.5
    high: float = 1.2
    min_dt: float = 1e-7
    max_dt: float = 1.0
    max_change: float = 2.0  # largest single rescale factor
    #: number of dt changes performed (diagnostic)
    adjustments: int = 0

    def __post_init__(self) -> None:
        if not (0 < self.low < self.high):
            raise ValueError("need 0 < low < high")
        if not self.low <= self.target <= self.high:
            raise ValueError("target must lie inside [low, high]")

    def __call__(self, dns) -> None:
        cfl = dns.cfl_number()
        if cfl <= 0.0 or self.low <= cfl <= self.high:
            return
        factor = np.clip(self.target / cfl, 1.0 / self.max_change, self.max_change)
        new_dt = float(np.clip(dns.stepper.dt * factor, self.min_dt, self.max_dt))
        if new_dt != dns.stepper.dt:
            dns.stepper.set_dt(new_dt)
            self.adjustments += 1

    def clamp_max_dt(self, dt: float) -> None:
        """Lower the dt ceiling (graceful-degradation hook).

        After the :class:`~repro.core.supervisor.RunSupervisor` reduces
        dt on instability it clamps the controller too, so the next CFL
        adjustment cannot immediately raise dt back above the degraded
        value and re-trigger the blow-up.
        """
        self.max_dt = min(self.max_dt, float(dt))


@dataclass
class MassFluxController:
    """Proportional-integral control of the forcing toward a bulk velocity.

    ``target`` is the bulk (volume-averaged streamwise) velocity; the
    controller nudges ``stepper.forcing`` each step.  The integral term
    removes the steady-state offset a pure proportional control leaves.
    """

    target: float
    gain: float = 2.0
    integral_gain: float = 0.2
    min_forcing: float = 0.0
    max_forcing: float = 100.0
    _integral: float = field(default=0.0, repr=False)

    def __call__(self, dns) -> None:
        bulk = current_bulk_velocity(dns)
        err = self.target - bulk
        self._integral += err * dns.stepper.dt
        new_forcing = dns.stepper.forcing + self.gain * err * dns.stepper.dt + (
            self.integral_gain * self._integral
        )
        dns.stepper.forcing = float(
            np.clip(new_forcing, self.min_forcing, self.max_forcing)
        )


def current_bulk_velocity(dns) -> float:
    """Instantaneous bulk velocity from the mean-mode profile."""
    w = dns.grid.basis.collocation_weights
    u00_vals = dns.stepper.ops.values(dns.state.u00)
    return float(w @ u00_vals) / 2.0
