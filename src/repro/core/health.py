"""Watchdog health checks for a running trajectory.

A months-long production campaign cannot wait for a human to notice that
the trajectory blew up at 3am: the watchdog turns silent numerical death
into a *typed* exception the :class:`~repro.core.supervisor.RunSupervisor`
can catch, roll back, and recover from.  Three checks, each against a
configurable threshold, every ``every`` steps:

* **finiteness** — any NaN/Inf in the prognostic arrays raises
  :class:`DivergedError` (the classic blow-up signature, and the first
  check because every later diagnostic is meaningless on NaN state);
* **divergence norm** — the scheme keeps the velocity solenoidal to
  machine zero, so a divergence norm above threshold means the solve
  path itself is broken (also :class:`DivergedError`);
* **CFL number** — an advective CFL above threshold means the explicit
  terms are about to go unstable; :class:`UnstableError` tells the
  supervisor that *dt reduction*, not just a retry, is the fix.

The monitor follows the controller protocol (a callable applied after
each step), so it plugs into ``dns.run(n, controllers=[monitor])`` and
works unchanged on :class:`~repro.core.solver.ChannelDNS` and
:class:`~repro.pencil.distributed.DistributedChannelDNS` (whose
``state_finite``/``divergence_norm``/``cfl_number`` are global
reductions, so every rank trips together).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class HealthCheckError(RuntimeError):
    """Base of the watchdog's typed failures; carries the failing step."""

    def __init__(self, message: str, step: int | None = None) -> None:
        super().__init__(message)
        self.step = step


class DivergedError(HealthCheckError):
    """The trajectory is numerically dead: NaN/Inf state or broken solenoidality."""


class UnstableError(HealthCheckError):
    """The trajectory is (about to go) unstable: CFL above threshold."""


@dataclass
class HealthMonitor:
    """Periodic state health checks; raises typed errors on violation.

    Use as a controller: ``dns.run(n, controllers=[HealthMonitor()])``,
    or hand it to a :class:`~repro.core.supervisor.RunSupervisor` which
    will roll back and retry on failure instead of dying.
    """

    #: check every this-many steps (1 = every step)
    every: int = 1
    #: advective CFL ceiling; above it the explicit terms are unstable
    max_cfl: float = 2.5
    #: solenoidality ceiling (machine-zero scheme; 1e-6 is generous)
    max_divergence: float = 1e-6
    #: NaN/Inf screening of the prognostic arrays
    check_finite: bool = True
    #: checks performed (diagnostic)
    checks: int = field(default=0, repr=False)
    #: last passing report: {"step", "divergence", "cfl"}
    last_report: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")

    def __call__(self, dns) -> None:
        if dns.step_count % self.every:
            return
        self.checks += 1
        step = dns.step_count
        if self.check_finite and not dns.state_finite():
            raise DivergedError(f"non-finite state at step {step}", step=step)
        div = dns.divergence_norm()
        if not div <= self.max_divergence:  # catches NaN too
            raise DivergedError(
                f"divergence norm {div:.3e} exceeds {self.max_divergence:.3e} "
                f"at step {step}",
                step=step,
            )
        cfl = dns.cfl_number()
        if not np.isfinite(cfl) or cfl > self.max_cfl:
            raise UnstableError(
                f"CFL {cfl:.3f} exceeds {self.max_cfl:.3f} at step {step}",
                step=step,
            )
        self.last_report = {"step": step, "divergence": div, "cfl": cfl}
