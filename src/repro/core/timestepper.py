"""Low-storage IMEX Runge–Kutta time advancement (paper §2.1).

The scheme is the third-order mixed implicit/explicit Runge–Kutta of
Spalart, Moser & Rogers (JCP 1991): convective terms explicit, viscous
terms implicit (Crank–Nicolson-like within each substep):

    psi' = psi + dt [ alpha_i L psi + beta_i L psi' + gamma_i N(psi)
                      + zeta_i N(psi_prev) ]

with ``L = nu (d²/dy² - k²)`` and the classic coefficient triplets below.
Each substep solves one Helmholtz system per state variable per
wavenumber — the banded systems of paper eq. (3).  With the default
``fused_solves=True`` the omega_y and phi systems (which share factors)
ride one blocked sweep of the solve engine per substep; the unfused
path issues the historical separate solves and is bit-for-bit identical.
All implicit solves are timed under the nested ``SOLVE`` section.

The stepper operates on a :class:`~repro.core.modes.ModeSet` (full grid
in serial, a pencil block per rank in parallel) with physical-space work
delegated to a transform backend, so the identical advance drives both
the serial and the distributed solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.influence import InfluenceSolver
from repro.core.modes import ModeSet
from repro.core.nonlinear import NonlinearResult, NonlinearTerms
from repro.core.operators import WallNormalOps
from repro.core.velocity import recover_uw
from repro.linalg.custom import FoldedLU
from repro.linalg.helmholtz import HelmholtzOperator


@dataclass(frozen=True)
class SMR91:
    """Spalart–Moser–Rogers (1991) low-storage IMEX RK3 coefficients."""

    alpha: tuple[float, float, float] = (29.0 / 96.0, -3.0 / 40.0, 1.0 / 6.0)
    beta: tuple[float, float, float] = (37.0 / 160.0, 5.0 / 24.0, 1.0 / 6.0)
    gamma: tuple[float, float, float] = (8.0 / 15.0, 5.0 / 12.0, 3.0 / 4.0)
    zeta: tuple[float, float, float] = (0.0, -17.0 / 60.0, -5.0 / 12.0)

    def __post_init__(self) -> None:
        # Consistency: per-substep implicit and explicit weights must agree,
        # and the explicit weights must sum to one.
        for i in range(3):
            assert abs(self.alpha[i] + self.beta[i] - self.gamma[i] - self.zeta[i]) < 1e-14
        assert abs(sum(self.gamma) + sum(self.zeta) - 1.0) < 1e-14


@dataclass
class ChannelState:
    """Prognostic variables, all as spline coefficient arrays (y last).

    ``v``/``omega_y`` cover the local wavenumber block (the mean-mode
    entries are kept at zero); ``u00``/``w00`` are the real mean-mode
    profiles, present only where the block owns the (0,0) mode.  The
    derived ``u``/``w`` coefficient arrays are cached after every step.
    """

    v: np.ndarray
    omega_y: np.ndarray
    u00: np.ndarray | None
    w00: np.ndarray | None
    u: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    w: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    time: float = 0.0

    def copy(self) -> "ChannelState":
        return ChannelState(
            v=self.v.copy(),
            omega_y=self.omega_y.copy(),
            u00=None if self.u00 is None else self.u00.copy(),
            w00=None if self.w00 is None else self.w00.copy(),
            u=None if self.u is None else self.u.copy(),
            w=None if self.w is None else self.w.copy(),
            time=self.time,
        )


class IMEXStepper:
    """One full RK3 IMEX timestep of the KMM system.

    Factors every banded system once at construction (three implicit
    coefficients x {Helmholtz for omega/phi, Poisson for v, mean-mode
    Helmholtz}), then reuses the factors every step — the production
    pattern the paper's custom solver is built for.
    """

    def __init__(
        self,
        grid: ChannelGrid,
        nu: float,
        dt: float,
        forcing: float = 1.0,
        scheme: SMR91 | None = None,
        modes: ModeSet | None = None,
        backend=None,
        reduce_max: Callable[[float], float] | None = None,
        timers=None,
        fused_solves: bool = True,
    ) -> None:
        self.grid = grid
        self.nu = float(nu)
        self.dt = float(dt)
        self.forcing = float(forcing)
        self.scheme = scheme or SMR91()
        self.modes = modes if modes is not None else grid.modes
        self.ops = WallNormalOps(grid)
        if backend is None:
            from repro.core.transforms import SerialTransformBackend

            backend = SerialTransformBackend(grid)
        self.backend = backend
        self.reduce_max = reduce_max or (lambda x: x)
        self.fused_solves = bool(fused_solves)
        from repro.instrument import SectionTimers

        self.timers = timers if timers is not None else SectionTimers()
        self.nonlinear = NonlinearTerms(self.modes, self.ops, backend)
        self._helm = HelmholtzOperator(grid.basis)
        self._build_solvers()

        self._prev_nl: NonlinearResult | None = None
        self.last_cfl_speeds: tuple[float, float, float] = (0.0, 0.0, 0.0)

    def _build_solvers(self) -> None:
        """Factor the implicit systems for the current dt (one LU set per
        RK implicit coefficient)."""
        helm = self._helm
        self._influence = []
        self._omega_lu = []
        self._mean_lu = []
        for i in range(3):
            c = self.scheme.beta[i] * self.nu * self.dt
            self._influence.append(InfluenceSolver(self.ops, helm, self.modes.ksq, c))
            # omega_y shares the Helmholtz operator/factors of phi
            self._omega_lu.append(self._influence[i].helm_lu)
            if self.modes.owns_mean:
                # mean modes: k² = 0 Helmholtz, batched over (u00, w00)
                self._mean_lu.append(FoldedLU(helm.assemble_helmholtz(np.zeros(2), c)))

    def set_dt(self, dt: float) -> None:
        """Change the time step, refactoring the implicit systems."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if dt != self.dt:
            self.dt = float(dt)
            self._build_solvers()

    # ------------------------------------------------------------------

    def step(self, state: ChannelState) -> ChannelState:
        """Advance the state by one full timestep (three RK substeps)."""
        m, ops, sch = self.modes, self.ops, self.scheme
        ny = self.grid.ny
        dt, nu = self.dt, self.nu
        mean = m.mean_index
        state = state.copy()
        if state.u is None or state.w is None:
            state.u, state.w = recover_uw(m, ops, state.v, state.omega_y, state.u00, state.w00)

        for i in range(3):
            with self.timers.section(self.timers.NONLINEAR):
                nl = self.nonlinear.compute(state.u, state.v, state.w)
            zeta_nl = self._prev_nl if sch.zeta[i] != 0.0 else None

            with self.timers.section(self.timers.ADVANCE):
                # -- omega_y advance -------------------------------------------------
                lap_omega = ops.laplacian_values(state.omega_y, m.ksq)
                rhs_w = ops.values(state.omega_y) + dt * (
                    sch.alpha[i] * nu * lap_omega + sch.gamma[i] * nl.hg
                )
                if zeta_nl is not None:
                    rhs_w += dt * sch.zeta[i] * zeta_nl.hg
                rhs_w = rhs_w.reshape(-1, ny)

                # -- phi / v advance (influence matrix) ------------------------------
                phi_vals = ops.laplacian_values(state.v, m.ksq)
                a_phi = ops.coeffs(phi_vals)
                lap_phi = ops.laplacian_values(a_phi, m.ksq)
                rhs_phi = phi_vals + dt * (sch.alpha[i] * nu * lap_phi + sch.gamma[i] * nl.hv)
                if zeta_nl is not None:
                    rhs_phi += dt * sch.zeta[i] * zeta_nl.hv

                if self.fused_solves:
                    # omega_y shares the Helmholtz factors with phi: one
                    # blocked sweep carries both right-hand sides.
                    with self.timers.section(self.timers.SOLVE):
                        new_v, new_omega = self._influence[i].advance(rhs_phi, rhs_w)
                    new_omega = new_omega.reshape(state.omega_y.shape)
                else:
                    rhs_w[:, 0] = 0.0
                    rhs_w[:, -1] = 0.0
                    with self.timers.section(self.timers.SOLVE):
                        new_omega = self._omega_lu[i].solve(rhs_w)
                        new_v = self._influence[i].solve(rhs_phi)
                    new_omega = new_omega.reshape(state.omega_y.shape)

                # -- mean modes ------------------------------------------------------
                if mean is not None:
                    new_omega[mean] = 0.0
                    new_v[mean] = 0.0
                    f = self.forcing
                    rhs_u0 = ops.values(state.u00) + dt * (
                        sch.alpha[i] * nu * ops.d2values(state.u00)
                        + sch.gamma[i] * (nl.h1_mean + f)
                    )
                    rhs_w0 = ops.values(state.w00) + dt * (
                        sch.alpha[i] * nu * ops.d2values(state.w00) + sch.gamma[i] * nl.h3_mean
                    )
                    if zeta_nl is not None:
                        rhs_u0 += dt * sch.zeta[i] * (zeta_nl.h1_mean + f)
                        rhs_w0 += dt * sch.zeta[i] * zeta_nl.h3_mean
                    rhs_mean = np.stack([rhs_u0, rhs_w0])
                    rhs_mean[:, 0] = 0.0
                    rhs_mean[:, -1] = 0.0
                    with self.timers.section(self.timers.SOLVE):
                        state.u00, state.w00 = self._mean_lu[i].solve(rhs_mean)

                state.v = new_v
                state.omega_y = new_omega
                state.u, state.w = recover_uw(m, ops, state.v, state.omega_y, state.u00, state.w00)
            self._prev_nl = nl
            self.last_cfl_speeds = nl.cfl_speeds

        state.time += dt
        return state

    # ------------------------------------------------------------------

    def solve_counters(self) -> dict:
        """Aggregated :class:`~repro.instrument.SolveCounters` snapshot
        over every solve engine built by this stepper's factorizations
        (the omega/phi Helmholtz LUs and, where owned, the mean-mode
        LUs).  Reads only engines that already exist, so it never
        allocates — safe to call from the telemetry hot path."""
        total = {
            "workspace_bytes": 0,
            "workspace_allocs": 0,
            "solves": 0,
            "sweeps": 0,
            "columns": 0,
        }
        lus = [inf.helm_lu for inf in self._influence] + list(self._mean_lu)
        for lu in lus:
            for eng in lu.engines():
                snap = eng.counters.snapshot()
                for k in total:
                    total[k] += snap[k]
        return total

    def cfl_number(self) -> float:
        """Advective CFL of the last substep's velocity field (global max
        when a ``reduce_max`` is wired in)."""
        g = self.grid
        umax, vmax, wmax = self.last_cfl_speeds
        dx = g.lx / g.nxq
        dz = g.lz / g.nzq
        dy_min = float(np.diff(g.y).min())
        local = umax / dx + vmax / dy_min + wmax / dz
        return self.dt * self.reduce_max(local)
