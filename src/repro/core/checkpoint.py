"""Durable checkpoint / restart for the channel DNS.

The paper's production run spans 650,000 steps over months of machine
allocations on up to 786K cores — checkpointing is load-bearing
infrastructure, and a checkpoint that can be *lost* (crash mid-write) or
*silently wrong* (bit rot, truncated transfer) is worse than none.  This
module therefore treats durability as part of the format:

* **Atomic writes** — every file is written to a temporary sibling,
  flushed and ``fsync``'d, then moved into place with :func:`os.replace`
  (atomic on POSIX); the containing directory is fsync'd afterwards so
  the rename itself is durable.  A crash mid-save leaves the previous
  checkpoint untouched.
* **Checksummed payloads** — the embedded JSON manifest records a CRC32
  per array; :func:`load_checkpoint` recomputes and verifies them,
  raising :class:`CheckpointCorruptError` on any mismatch (on top of the
  zip container's own integrity checks, which catch raw bit flips).
* **Rotation with fallback** — :class:`CheckpointRotation` keeps the
  newest ``keep`` snapshots plus a ``latest`` pointer and, when asked to
  restore, falls back to the newest snapshot that *verifies*, so a
  corrupt head never strands a campaign.
* **Sharded parallel snapshots** — :class:`ShardedCheckpointRotation`
  saves one shard per SimMPI rank (each rank's own y-pencil block) plus
  a rank-0 ``manifest.json``, with a coordinated consistency check on
  load; all restore decisions derive from ``bcast``/``allgather`` so
  every rank takes the same branch and the loader cannot deadlock.
* **Decomposition-agnostic restore** — every shard records the global
  spectral index ranges of its block, so a snapshot written on one
  ``A x B`` grid can be reassembled onto any other (``load_latest``
  with ``reshard=True``, or :meth:`ShardedCheckpointRotation.load_serial`
  for the ``1 x 1`` case) by reading just the overlapping shards — the
  restore path of the elastic shrink-and-continue supervisor.

Restart is *exact*: the RK3 scheme's cross-step memory (the
zeta-weighted previous nonlinear term) is only used within a step
(zeta_1 = 0), so a restarted trajectory is bit-for-bit the uninterrupted
one — pinned by ``tests/core/test_checkpoint.py`` and the supervised
crash-recovery tests in ``tests/core/test_supervisor.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import zlib
from dataclasses import asdict

import numpy as np

from repro.core.solver import ChannelConfig, ChannelDNS
from repro.core.timestepper import SMR91, ChannelState

#: current writer version and the lineage of versions this reader accepts.
#: v1: bare ``savez`` without manifest/checksums (legacy); v2: manifest
#: with per-array CRC32, scheme fingerprint and runtime (dt, forcing).
FORMAT_VERSION = 2
FORMAT_HISTORY = (1, 2)

#: grid/discretization keys that must match between a checkpoint and an
#: explicitly supplied config.
_GRID_KEYS = ("nx", "ny", "nz", "degree", "stretch", "lx", "lz")


class CheckpointCorruptError(ValueError):
    """A checkpoint failed verification (bad container, checksum or manifest)."""


class CheckpointUnrecoverableError(CheckpointCorruptError):
    """Every candidate generation failed integrity — no fallback is left.

    This is the rotation's terminal verdict, not a per-snapshot mismatch:
    the newest snapshot *and* every older generation were tried and each
    one was rejected.  ``generations`` preserves the full attribution as
    ``[(snapshot_name, [failure, ...]), ...]`` in the order tried, where
    each failure is ``{"rank", "path", "reason", "message"}`` (``rank``
    is None for the serial rotation) — so a job manager can report which
    rank's shard broke in which generation without parsing the message.
    """

    def __init__(self, directory, generations, kind: str = "checkpoint") -> None:
        self.directory = pathlib.Path(directory)
        self.generations = [(name, list(fails)) for name, fails in generations]
        if self.generations:
            detail = "; ".join(
                f"{name}: " + "; ".join(f["message"] for f in fails)
                for name, fails in self.generations
            )
        else:
            detail = "no snapshots found"
        super().__init__(f"no verifiable {kind} under {self.directory} ({detail})")


def _failure(rank, path, reason, message) -> dict:
    """One structured failure record of a rejected checkpoint generation."""
    return {"rank": rank, "path": str(path), "reason": str(reason), "message": message}


# ----------------------------------------------------------------------
# low-level atomic, checksummed npz I/O
# ----------------------------------------------------------------------


def _normalize_path(path: str | pathlib.Path) -> pathlib.Path:
    """Append ``.npz`` when missing so save and load agree on the name.

    ``np.savez_compressed`` silently appends the suffix when handed a bare
    path; normalizing here means callers may pass either form to either
    side.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _crc32(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def _fsync_dir(directory: pathlib.Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(path: pathlib.Path, write_fn) -> None:
    """Write-to-temp + fsync + atomic rename; ``write_fn(fh)`` fills the file."""
    path = pathlib.Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # failed before the rename
            tmp.unlink()
    _fsync_dir(path.parent)


def _atomic_write_npz(
    path: pathlib.Path, manifest: dict, arrays: dict[str, np.ndarray]
) -> None:
    """Atomically write a checkpoint file: arrays + checksummed manifest."""
    payload = {k: np.asarray(v) for k, v in arrays.items()}
    manifest = dict(manifest)
    manifest["arrays"] = {
        k: {"crc32": _crc32(v), "shape": list(v.shape), "dtype": str(v.dtype)}
        for k, v in payload.items()
    }
    _atomic_write_bytes(
        path,
        lambda fh: np.savez_compressed(fh, manifest_json=json.dumps(manifest), **payload),
    )


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    _atomic_write_bytes(path, lambda fh: fh.write(text.encode()))


def _read_npz(path: pathlib.Path, verify: bool = True) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a checkpoint file, returning ``(manifest, arrays)``.

    Container-level failures (truncation, bad zip, bad zlib streams) and
    checksum mismatches raise :class:`CheckpointCorruptError`; version
    mismatches raise a plain :class:`ValueError` naming the supported
    lineage.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            keys = set(data.files)
            # the explicit key is authoritative when present (v1 layout, or
            # a file whose version was deliberately rewritten)
            if "format_version" in keys:
                version = int(data["format_version"])
            elif "manifest_json" in keys:
                version = None  # decided by the manifest below
            else:
                raise CheckpointCorruptError(f"{path.name}: no checkpoint header")
            if "manifest_json" not in keys:
                if version != 1:
                    raise ValueError(
                        f"unsupported checkpoint format {version}; "
                        f"this build reads versions {FORMAT_HISTORY}"
                    )
                return _read_v1(data)
            manifest = json.loads(str(data["manifest_json"]))
            if version is None:
                version = int(manifest.get("format_version", -1))
            if version not in FORMAT_HISTORY or version == 1:
                raise ValueError(
                    f"unsupported checkpoint format {version}; "
                    f"this build reads versions {FORMAT_HISTORY}"
                )
            arrays: dict[str, np.ndarray] = {}
            for name, meta in manifest["arrays"].items():
                arr = data[name]
                if verify:
                    crc = _crc32(arr)
                    if crc != int(meta["crc32"]):
                        raise CheckpointCorruptError(
                            f"{path.name}: checksum mismatch on array {name!r} "
                            f"(stored {meta['crc32']:#010x}, computed {crc:#010x})"
                        )
                arrays[name] = arr.copy()
            return manifest, arrays
    except ValueError:
        raise
    except Exception as exc:  # truncated/garbled container, missing keys, IO error
        raise CheckpointCorruptError(f"{path.name}: unreadable checkpoint ({exc})") from exc


def _read_v1(data) -> tuple[dict, dict[str, np.ndarray]]:
    """Adapt a legacy v1 file (no manifest, no checksums) to the v2 shape."""
    manifest = {
        "format_version": 1,
        "format_history": [1],
        "kind": "serial",
        "config": json.loads(str(data["config_json"])),
        "time": float(data["time"]),
        "step_count": int(data["step_count"]),
        "runtime": None,
    }
    arrays = {k: data[k].copy() for k in ("v", "omega_y", "u00", "w00")}
    return manifest, arrays


def verify_checkpoint(path: str | pathlib.Path) -> tuple[bool, str]:
    """Cheaply decide whether ``path`` is a loadable, checksum-clean checkpoint."""
    try:
        _read_npz(_normalize_path(path), verify=True)
        return True, "ok"
    except Exception as exc:  # noqa: BLE001 - any failure means "not verifiable"
        return False, f"{type(exc).__name__}: {exc}"


# ----------------------------------------------------------------------
# configuration fingerprint
# ----------------------------------------------------------------------


def _config_fingerprint(config: ChannelConfig) -> dict:
    """JSON-able config snapshot, including the RK scheme coefficients."""
    d = asdict(config)
    d["scheme"] = {k: [float(x) for x in v] for k, v in asdict(config.scheme).items()}
    return d


def _scheme_coeffs(scheme: SMR91) -> dict:
    return {k: [float(x) for x in v] for k, v in asdict(scheme).items()}


def _check_fingerprint(stored: dict, config: ChannelConfig) -> None:
    """Reject grid or scheme mismatches with a message naming the field."""
    for key in _GRID_KEYS:
        if getattr(config, key) != stored[key]:
            raise ValueError(
                f"checkpoint grid mismatch on {key!r}: "
                f"{stored[key]} (file) vs {getattr(config, key)} (given)"
            )
    stored_scheme = stored.get("scheme")
    if stored_scheme is not None:
        given = _scheme_coeffs(config.scheme)
        if given != stored_scheme:
            raise ValueError(
                "checkpoint scheme mismatch: the file was written with RK "
                f"coefficients {stored_scheme} but the given config uses "
                f"{given}; restart with the matching scheme"
            )


def _config_from_fingerprint(stored: dict) -> ChannelConfig:
    kwargs = dict(stored)
    scheme = kwargs.pop("scheme", None)
    if isinstance(scheme, dict):
        kwargs["scheme"] = SMR91(**{k: tuple(v) for k, v in scheme.items()})
    return ChannelConfig(**kwargs)


# ----------------------------------------------------------------------
# serial save / load
# ----------------------------------------------------------------------


def save_checkpoint(dns: ChannelDNS, path: str | pathlib.Path) -> pathlib.Path:
    """Atomically write the DNS state + checksummed manifest; returns the path.

    The manifest carries the full configuration fingerprint (grid, scheme
    coefficients, format-version history) and the *runtime* dt/forcing —
    which may have drifted from the config under a
    :class:`~repro.core.control.CFLController` or
    :class:`~repro.core.control.MassFluxController` — so a restart can
    continue the trajectory exactly.
    """
    state = dns.state
    if state is None:
        raise RuntimeError("nothing to checkpoint: initialize() first")
    path = _normalize_path(path)
    manifest = {
        "format_version": FORMAT_VERSION,
        "format_history": list(FORMAT_HISTORY),
        "kind": "serial",
        "config": _config_fingerprint(dns.config),
        "time": float(state.time),
        "step_count": int(dns.step_count),
        "runtime": {"dt": float(dns.stepper.dt), "forcing": float(dns.stepper.forcing)},
    }
    arrays = {
        "v": state.v,
        "omega_y": state.omega_y,
        "u00": state.u00,
        "w00": state.w00,
    }
    _atomic_write_npz(path, manifest, arrays)
    return path


def load_checkpoint(
    path: str | pathlib.Path,
    config: ChannelConfig | None = None,
    *,
    restore_runtime: bool | None = None,
) -> ChannelDNS:
    """Rebuild a ready-to-run :class:`ChannelDNS` from a verified checkpoint.

    If ``config`` is omitted it is reconstructed from the file and the
    runtime dt/forcing are restored (exact continuation).  If given, it
    must match the checkpoint's grid *and* RK scheme; runtime values then
    default to the supplied config (legitimate e.g. to restart with a
    different dt) unless ``restore_runtime=True``.
    """
    path = _normalize_path(path)
    manifest, arrays = _read_npz(path, verify=True)
    stored = manifest["config"]
    if restore_runtime is None:
        restore_runtime = config is None
    if config is None:
        config = _config_from_fingerprint(stored)
    else:
        _check_fingerprint(stored, config)
    state = ChannelState(
        v=arrays["v"],
        omega_y=arrays["omega_y"],
        u00=arrays["u00"],
        w00=arrays["w00"],
        time=float(manifest["time"]),
    )
    dns = ChannelDNS(config)
    dns.initialize(state)
    dns.step_count = int(manifest["step_count"])
    runtime = manifest.get("runtime")
    if restore_runtime and runtime is not None:
        dns.stepper.set_dt(float(runtime["dt"]))
        dns.stepper.forcing = float(runtime["forcing"])
    return dns


# ----------------------------------------------------------------------
# rotation: keep-K snapshots with a latest pointer and verified fallback
# ----------------------------------------------------------------------


class CheckpointRotation:
    """Keep the last ``keep`` snapshots of a run under one directory.

    ``save`` writes ``<basename>-<step>.npz`` atomically, repoints the
    ``latest`` file and prunes beyond ``keep``.  ``load_latest`` walks the
    pointer first, then every remaining snapshot newest-first, and
    restores the first one that passes checksum verification — a corrupt
    head falls back instead of killing the campaign.  Pass a
    :class:`~repro.instrument.RecoveryCounters` to surface save/prune/
    verify-failure counts through the instrumentation layer.
    """

    POINTER = "latest"

    def __init__(
        self,
        directory: str | pathlib.Path,
        basename: str = "ckpt",
        keep: int = 3,
        counters=None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.basename = basename
        self.keep = int(keep)
        self.counters = counters

    # -- inventory ------------------------------------------------------

    def snapshots(self) -> list[pathlib.Path]:
        """Snapshot files, newest (highest step) first."""

        def step_of(p: pathlib.Path) -> int:
            try:
                return int(p.stem.rsplit("-", 1)[1])
            except (IndexError, ValueError):
                return -1

        found = [p for p in self.directory.glob(f"{self.basename}-*.npz") if step_of(p) >= 0]
        return sorted(found, key=step_of, reverse=True)

    @property
    def latest_path(self) -> pathlib.Path | None:
        """The pointer target when it exists, else the newest snapshot."""
        pointer = self.directory / self.POINTER
        if pointer.exists():
            target = self.directory / pointer.read_text().strip()
            if target.exists():
                return target
        snaps = self.snapshots()
        return snaps[0] if snaps else None

    # -- write ----------------------------------------------------------

    def save(self, dns: ChannelDNS) -> pathlib.Path:
        path = self.directory / f"{self.basename}-{dns.step_count:09d}.npz"
        save_checkpoint(dns, path)
        # a streaming-statistics sidecar rides along with every snapshot
        # (written before the pointer moves, so `latest` never names a
        # snapshot whose sidecar is missing mid-crash) — see repro.serving
        streaming = getattr(dns, "streaming", None)
        if streaming is not None and streaming.total_samples > 0:
            streaming.save_to(self.directory, dns.step_count)
        _atomic_write_text(self.directory / self.POINTER, path.name)
        if self.counters is not None:
            self.counters.checkpoints_saved += 1
        for old in self.snapshots()[self.keep:]:
            old.unlink(missing_ok=True)
            if self.counters is not None:
                self.counters.checkpoints_pruned += 1
        if streaming is not None:
            sidecars = sorted(self.directory.glob("stats-*.npz"))
            for old in sidecars[: max(0, len(sidecars) - self.keep)]:
                old.unlink(missing_ok=True)
        return path

    # -- verified restore ----------------------------------------------

    def _candidates(self) -> list[pathlib.Path]:
        ordered: list[pathlib.Path] = []
        head = self.latest_path
        if head is not None:
            ordered.append(head)
        for p in self.snapshots():
            if p not in ordered:
                ordered.append(p)
        return ordered

    def load_latest(
        self,
        config: ChannelConfig | None = None,
        *,
        restore_runtime: bool | None = None,
    ) -> ChannelDNS:
        """Restore the newest *verifiable* snapshot (fallback on corruption).

        When every generation fails, raises the typed
        :class:`CheckpointUnrecoverableError` carrying per-generation
        attribution instead of a generic fallback message."""
        tried: list[tuple[str, list[dict]]] = []
        for path in self._candidates():
            ok, reason = verify_checkpoint(path)
            if not ok:
                tried.append(
                    (path.name, [_failure(None, path, reason, str(reason))])
                )
                if self.counters is not None:
                    self.counters.verify_failures += 1
                continue
            return load_checkpoint(path, config=config, restore_runtime=restore_runtime)
        raise CheckpointUnrecoverableError(self.directory, tried)


# ----------------------------------------------------------------------
# sharded parallel checkpoints (one shard per SimMPI rank)
# ----------------------------------------------------------------------


class ShardedCheckpointRotation:
    """Per-rank sharded snapshots for :class:`DistributedChannelDNS`.

    Layout::

        <directory>/step-<N>/shard-r0003.npz   # rank 3's pencil block
        <directory>/step-<N>/manifest.json     # rank 0: global metadata
        <directory>/latest                     # rank 0: pointer

    Every shard is itself an atomic, checksummed npz; the rank-0 manifest
    (written only after a barrier confirms all shards are durable) names
    the layout (nranks, pa, pb), the config fingerprint and the step, so
    a restart can check consistency before touching any state.  All
    load-time decisions are broadcast/reduced so every rank takes the
    same branch — a half-written or corrupt snapshot is skipped by *all*
    ranks together and the rotation falls back to the previous one.
    """

    POINTER = "latest"

    def __init__(self, directory: str | pathlib.Path, keep: int = 3, counters=None) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = pathlib.Path(directory)
        self.keep = int(keep)
        self.counters = counters

    # -- inventory ------------------------------------------------------

    def snapshot_dirs(self) -> list[pathlib.Path]:
        """Snapshot directories, newest (highest step) first."""

        def step_of(p: pathlib.Path) -> int:
            try:
                return int(p.name.rsplit("-", 1)[1])
            except (IndexError, ValueError):
                return -1

        found = [p for p in self.directory.glob("step-*") if p.is_dir() and step_of(p) >= 0]
        return sorted(found, key=step_of, reverse=True)

    def _candidate_names(self) -> list[str]:
        ordered: list[str] = []
        pointer = self.directory / self.POINTER
        if pointer.exists():
            name = pointer.read_text().strip()
            if (self.directory / name).is_dir():
                ordered.append(name)
        for p in self.snapshot_dirs():
            if p.name not in ordered:
                ordered.append(p.name)
        return ordered

    # -- write ----------------------------------------------------------

    def save(self, ddns) -> pathlib.Path:
        """Collectively write one sharded snapshot of ``ddns``."""
        comm = ddns.comm
        state = ddns.state
        if state is None:
            raise RuntimeError("nothing to checkpoint: initialize() first")
        snap = self.directory / f"step-{ddns.step_count:09d}"
        if comm.rank == 0:
            snap.mkdir(parents=True, exist_ok=True)
        comm.barrier()
        d = ddns.decomp
        shard_manifest = {
            "format_version": FORMAT_VERSION,
            "format_history": list(FORMAT_HISTORY),
            "kind": "shard",
            "rank": comm.rank,
            "a": d.a,
            "b": d.b,
            "pa": d.pa,
            "pb": d.pb,
            # global spectral index ranges of this shard's block — what
            # makes the snapshot decomposition-agnostic on restore
            "x_range": [d.x_slice.start, d.x_slice.stop],
            "z_range": [d.z_spec_slice.start, d.z_spec_slice.stop],
            "owns_mean": bool(ddns.modes.owns_mean),
            "time": float(state.time),
            "step_count": int(ddns.step_count),
        }
        arrays = {"v": state.v, "omega_y": state.omega_y}
        if ddns.modes.owns_mean:
            arrays["u00"] = state.u00
            arrays["w00"] = state.w00
        _atomic_write_npz(snap / f"shard-r{comm.rank:04d}.npz", shard_manifest, arrays)
        comm.barrier()  # all shards durable before the manifest names them
        # streaming-statistics sidecar (collective merge, rank-0 write)
        # lands inside the step dir before the manifest/pointer name it,
        # so a restorable snapshot always carries its accumulated samples
        streaming = getattr(ddns, "streaming", None)
        if streaming is not None and streaming.total_samples > 0:
            streaming.save_to(snap)
        if comm.rank == 0:
            manifest = {
                "format_version": FORMAT_VERSION,
                "format_history": list(FORMAT_HISTORY),
                "kind": "sharded",
                "step_count": int(ddns.step_count),
                "time": float(state.time),
                "nranks": comm.size,
                "pa": ddns.transforms.pa,
                "pb": ddns.transforms.pb,
                "mx": int(ddns.transforms.mx),
                "mz": int(ddns.transforms.mz),
                "ny": int(ddns.decomp.ny),
                "config": _config_fingerprint(ddns.config),
                "runtime": {
                    "dt": float(ddns.stepper.dt),
                    "forcing": float(ddns.stepper.forcing),
                },
                "shards": [f"shard-r{r:04d}.npz" for r in range(comm.size)],
            }
            _atomic_write_bytes(
                snap / "manifest.json", lambda fh: fh.write(json.dumps(manifest).encode())
            )
            _atomic_write_text(self.directory / self.POINTER, snap.name)
            for old in self.snapshot_dirs()[self.keep:]:
                shutil.rmtree(old, ignore_errors=True)
                if self.counters is not None:
                    self.counters.checkpoints_pruned += 1
        if self.counters is not None:
            self.counters.checkpoints_saved += 1
        comm.barrier()
        return snap

    # -- coordinated verified restore -----------------------------------

    def load_latest(self, ddns, *, reshard: bool = False) -> pathlib.Path:
        """Restore the newest snapshot every rank can verify, in place.

        With ``reshard=False`` (the default) the snapshot's ``a x b``
        layout must match the running decomposition; a mismatch raises
        :class:`ValueError` on all ranks — a configuration error, not
        corruption.  With ``reshard=True`` the layout is free: each rank
        reassembles its own spectral block from every old shard whose
        global index range overlaps it (decomposition-agnostic restore,
        used by the elastic supervisor after a shrink).  Either way,
        every shard that is read is CRC-verified, shard failures are
        reported with *which* rank/shard failed and why, and an
        unverifiable snapshot is skipped by all ranks together so the
        rotation falls back to the previous one.  When *every* generation
        fails, the typed :class:`CheckpointUnrecoverableError` carries
        the per-generation, per-shard (rank, path, reason) attribution.
        """
        from repro.core.velocity import recover_uw

        comm = ddns.comm
        names = comm.bcast(self._candidate_names() if comm.rank == 0 else None, root=0)
        tried: list[tuple[str, list[dict]]] = []
        for name in names:
            snap = self.directory / name
            payload = None
            if comm.rank == 0:
                try:
                    payload = (json.loads((snap / "manifest.json").read_text()), None)
                except Exception as exc:  # noqa: BLE001 - skip unreadable snapshot
                    payload = (
                        None,
                        _failure(
                            0,
                            snap / "manifest.json",
                            exc,
                            f"manifest unreadable ({exc})",
                        ),
                    )
            manifest, reason = comm.bcast(payload, root=0)
            if manifest is None:
                tried.append((name, [reason]))
                if self.counters is not None:
                    self.counters.verify_failures += 1
                continue
            same_layout = (
                manifest["nranks"] == comm.size
                and manifest["pa"] == ddns.transforms.pa
                and manifest["pb"] == ddns.transforms.pb
            )
            if not same_layout and not reshard:
                raise ValueError(
                    f"sharded checkpoint layout mismatch: file has "
                    f"{manifest['nranks']} ranks as {manifest['pa']}x{manifest['pb']}, "
                    f"run has {comm.size} ranks as "
                    f"{ddns.transforms.pa}x{ddns.transforms.pb}"
                )
            _check_fingerprint(manifest["config"], ddns.config)
            if same_layout:
                ok, detail, state = self._load_own_shard(ddns, snap, manifest)
            else:
                ok, detail, state = self._load_resharded(ddns, snap, manifest)
            # every rank learns every verdict, so the failure message can
            # name exactly which shard broke and all ranks branch together
            verdicts = comm.allgather((bool(ok), detail))
            if not all(v for v, _ in verdicts):
                tried.append((name, [d for v, d in verdicts if not v and d]))
                if self.counters is not None:
                    self.counters.verify_failures += 1
                continue
            state.u, state.w = recover_uw(
                ddns.modes, ddns.stepper.ops, state.v, state.omega_y, state.u00, state.w00
            )
            ddns.state = state
            ddns.step_count = int(manifest["step_count"])
            runtime = manifest.get("runtime")
            if runtime is not None:
                ddns.stepper.set_dt(float(runtime["dt"]))
                ddns.stepper.forcing = float(runtime["forcing"])
            if not same_layout and self.counters is not None:
                self.counters.reshard_restores += 1
            # sidecars hold *global* sums, so the restore is decomposition-
            # agnostic for free: any layout (including post-shrink/grow)
            # reloads the same base.  Missing sidecar -> start from zero.
            streaming = getattr(ddns, "streaming", None)
            if streaming is not None:
                streaming.restore_from(snap)
            return snap
        raise CheckpointUnrecoverableError(
            self.directory, tried, kind="sharded checkpoint"
        )

    def _load_own_shard(self, ddns, snap, manifest):
        """Same-layout fast path: read this rank's own shard, verified."""
        rank = ddns.comm.rank
        shard_name = f"shard-r{rank:04d}.npz"
        try:
            shard, arrays = _read_npz(snap / shard_name, verify=True)
            _check_shard(shard, manifest, rank=rank, a=ddns.decomp.a, b=ddns.decomp.b)
        except Exception as exc:  # noqa: BLE001 - reported, skipped collectively
            return (
                False,
                _failure(
                    rank,
                    snap / shard_name,
                    exc,
                    f"rank {rank}: shard {shard_name} failed verification ({exc})",
                ),
                None,
            )
        state = ChannelState(
            v=arrays["v"],
            omega_y=arrays["omega_y"],
            u00=arrays.get("u00"),
            w00=arrays.get("w00"),
            time=float(manifest["time"]),
        )
        return True, None, state

    def _load_resharded(self, ddns, snap, manifest):
        """Reassemble this rank's block from the overlapping old shards."""
        rank = ddns.comm.rank
        d = ddns.decomp
        mx = int(manifest.get("mx", ddns.transforms.mx))
        mz = int(manifest.get("mz", ddns.transforms.mz))
        if (mx, mz) != (ddns.transforms.mx, ddns.transforms.mz):
            why = (
                f"snapshot spectral extents {mx}x{mz} != "
                f"run's {ddns.transforms.mx}x{ddns.transforms.mz}"
            )
            return False, _failure(rank, snap, why, f"rank {rank}: {why}"), None
        try:
            v, omega_y, u00, w00 = _assemble_block(
                snap,
                manifest,
                mx,
                mz,
                d.x_slice,
                d.z_spec_slice,
                d.ny,
                collect_mean=bool(ddns.modes.owns_mean),
            )
        except Exception as exc:  # noqa: BLE001 - reported, skipped collectively
            return False, _failure(rank, snap, exc, f"rank {rank}: {exc}"), None
        state = ChannelState(
            v=v, omega_y=omega_y, u00=u00, w00=w00, time=float(manifest["time"])
        )
        return True, None, state

    # -- serial reassembly ----------------------------------------------

    def load_serial(
        self,
        config: ChannelConfig | None = None,
        *,
        restore_runtime: bool | None = None,
    ) -> ChannelDNS:
        """Reassemble the newest verifiable sharded snapshot into a serial
        :class:`ChannelDNS` (the ``1 x 1`` case of the resharding reader).

        No communicator involved — this is how a campaign's sharded
        snapshot is inspected or continued on a single process.
        """
        tried: list[tuple[str, list[dict]]] = []
        for name in self._candidate_names():
            snap = self.directory / name
            try:
                manifest = json.loads((snap / "manifest.json").read_text())
            except Exception as exc:  # noqa: BLE001 - fall back to older snapshot
                tried.append(
                    (
                        name,
                        [
                            _failure(
                                None,
                                snap / "manifest.json",
                                exc,
                                f"manifest unreadable ({exc})",
                            )
                        ],
                    )
                )
                continue
            stored = manifest["config"]
            if restore_runtime is None:
                restore_runtime = config is None
            if config is None:
                config = _config_from_fingerprint(stored)
            else:
                _check_fingerprint(stored, config)
            mx = int(manifest.get("mx", config.nx // 2))
            mz = int(manifest.get("mz", config.nz - 1))
            try:
                v, omega_y, u00, w00 = _assemble_block(
                    snap,
                    manifest,
                    mx,
                    mz,
                    slice(0, mx),
                    slice(0, mz),
                    int(manifest.get("ny", config.ny)),
                    collect_mean=True,
                )
            except Exception as exc:  # noqa: BLE001 - fall back to older snapshot
                tried.append((name, [_failure(None, snap, exc, str(exc))]))
                if self.counters is not None:
                    self.counters.verify_failures += 1
                continue
            state = ChannelState(
                v=v, omega_y=omega_y, u00=u00, w00=w00, time=float(manifest["time"])
            )
            dns = ChannelDNS(config)
            dns.initialize(state)
            dns.step_count = int(manifest["step_count"])
            runtime = manifest.get("runtime")
            if restore_runtime and runtime is not None:
                dns.stepper.set_dt(float(runtime["dt"]))
                dns.stepper.forcing = float(runtime["forcing"])
            if self.counters is not None:
                self.counters.reshard_restores += 1
            return dns
        raise CheckpointUnrecoverableError(
            self.directory, tried, kind="sharded checkpoint"
        )


def _check_shard(shard: dict, manifest: dict, *, rank=None, a=None, b=None) -> None:
    """Consistency of one shard manifest against the snapshot manifest."""
    if shard["step_count"] != manifest["step_count"]:
        raise CheckpointCorruptError(
            f"shard step {shard['step_count']} != manifest step "
            f"{manifest['step_count']}"
        )
    for key, want in (("rank", rank), ("a", a), ("b", b)):
        if want is not None and shard[key] != want:
            raise CheckpointCorruptError(
                f"shard records {key}={shard[key]}, expected {want}"
            )


def _assemble_block(
    snap: pathlib.Path,
    manifest: dict,
    mx: int,
    mz: int,
    xs: slice,
    zs: slice,
    ny: int,
    *,
    collect_mean: bool,
):
    """Reassemble the ``(xs, zs)`` spectral block of a sharded snapshot.

    Reads every shard whose global index range overlaps the requested
    block, CRC-verifying each and checking its recorded ranges against
    the decomposition rule.  Mean profiles come from the ``owns_mean``
    shard, which always overlaps any block containing mode ``(0, 0)``.
    Raises :class:`CheckpointCorruptError` naming the offending shard.
    """
    from repro.pencil.decomp import block_range

    pa_old, pb_old = int(manifest["pa"]), int(manifest["pb"])
    v = np.zeros((xs.stop - xs.start, zs.stop - zs.start, ny), complex)
    omega_y = np.zeros_like(v)
    u00 = w00 = None
    for r in range(int(manifest["nranks"])):
        a_old, b_old = divmod(r, pb_old)
        ox0, ox1 = block_range(mx, pa_old, a_old)
        oz0, oz1 = block_range(mz, pb_old, b_old)
        gx0, gx1 = max(ox0, xs.start), min(ox1, xs.stop)
        gz0, gz1 = max(oz0, zs.start), min(oz1, zs.stop)
        if gx0 >= gx1 or gz0 >= gz1:
            continue  # no overlap with the requested block
        shard_name = f"shard-r{r:04d}.npz"
        try:
            shard, arrays = _read_npz(snap / shard_name, verify=True)
            _check_shard(shard, manifest, rank=r, a=a_old, b=b_old)
            for key, want in (("x_range", (ox0, ox1)), ("z_range", (oz0, oz1))):
                got = shard.get(key)
                if got is not None and tuple(got) != want:
                    raise CheckpointCorruptError(
                        f"shard records {key}={tuple(got)}, expected {want}"
                    )
        except Exception as exc:
            raise CheckpointCorruptError(
                f"shard {shard_name} failed verification ({exc})"
            ) from exc
        v[gx0 - xs.start : gx1 - xs.start, gz0 - zs.start : gz1 - zs.start] = arrays[
            "v"
        ][gx0 - ox0 : gx1 - ox0, gz0 - oz0 : gz1 - oz0]
        omega_y[gx0 - xs.start : gx1 - xs.start, gz0 - zs.start : gz1 - zs.start] = (
            arrays["omega_y"][gx0 - ox0 : gx1 - ox0, gz0 - oz0 : gz1 - oz0]
        )
        if collect_mean and shard.get("owns_mean"):
            u00, w00 = arrays["u00"], arrays["w00"]
    if collect_mean and u00 is None:
        raise CheckpointCorruptError(
            "no overlapping shard carries the mean (u00/w00) profiles"
        )
    return v, omega_y, u00, w00
