"""Checkpoint / restart for the channel DNS.

The paper's production run spans 650,000 steps over months of machine
allocations — checkpointing is load-bearing infrastructure.  State is
saved as a compressed ``.npz`` (coefficients + time + configuration
fingerprint).  Restart is *exact*: the RK3 scheme's cross-step memory
(the zeta-weighted previous nonlinear term) is only used within a step
(zeta_1 = 0), so a restarted trajectory is bit-for-bit the uninterrupted
one — pinned by ``tests/core/test_checkpoint.py``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict

import numpy as np

from repro.core.solver import ChannelConfig, ChannelDNS
from repro.core.timestepper import ChannelState

FORMAT_VERSION = 1


def _config_fingerprint(config: ChannelConfig) -> dict:
    d = asdict(config)
    d.pop("scheme", None)  # dataclass of floats; covered by format version
    return d


def save_checkpoint(dns: ChannelDNS, path: str | pathlib.Path) -> None:
    """Write the DNS state and configuration fingerprint to ``path``."""
    state = dns.state
    if state is None:
        raise RuntimeError("nothing to checkpoint: initialize() first")
    path = pathlib.Path(path)
    np.savez_compressed(
        path,
        format_version=FORMAT_VERSION,
        config_json=json.dumps(_config_fingerprint(dns.config)),
        time=state.time,
        step_count=dns.step_count,
        v=state.v,
        omega_y=state.omega_y,
        u00=state.u00,
        w00=state.w00,
    )


def load_checkpoint(path: str | pathlib.Path, config: ChannelConfig | None = None) -> ChannelDNS:
    """Rebuild a ready-to-run :class:`ChannelDNS` from a checkpoint.

    If ``config`` is omitted it is reconstructed from the file; if given,
    it must match the checkpoint's discretization.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint format {version}")
        stored = json.loads(str(data["config_json"]))
        if config is None:
            config = ChannelConfig(**stored)
        else:
            for key in ("nx", "ny", "nz", "degree", "stretch", "lx", "lz"):
                if getattr(config, key) != stored[key]:
                    raise ValueError(
                        f"checkpoint grid mismatch on {key!r}: "
                        f"{stored[key]} (file) vs {getattr(config, key)} (given)"
                    )
        state = ChannelState(
            v=data["v"].copy(),
            omega_y=data["omega_y"].copy(),
            u00=data["u00"].copy(),
            w00=data["w00"].copy(),
            time=float(data["time"]),
        )
        step_count = int(data["step_count"])
    dns = ChannelDNS(config)
    dns.initialize(state)
    dns.step_count = step_count
    return dns
