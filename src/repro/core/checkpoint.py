"""Durable checkpoint / restart for the channel DNS.

The paper's production run spans 650,000 steps over months of machine
allocations on up to 786K cores — checkpointing is load-bearing
infrastructure, and a checkpoint that can be *lost* (crash mid-write) or
*silently wrong* (bit rot, truncated transfer) is worse than none.  This
module therefore treats durability as part of the format:

* **Atomic writes** — every file is written to a temporary sibling,
  flushed and ``fsync``'d, then moved into place with :func:`os.replace`
  (atomic on POSIX); the containing directory is fsync'd afterwards so
  the rename itself is durable.  A crash mid-save leaves the previous
  checkpoint untouched.
* **Checksummed payloads** — the embedded JSON manifest records a CRC32
  per array; :func:`load_checkpoint` recomputes and verifies them,
  raising :class:`CheckpointCorruptError` on any mismatch (on top of the
  zip container's own integrity checks, which catch raw bit flips).
* **Rotation with fallback** — :class:`CheckpointRotation` keeps the
  newest ``keep`` snapshots plus a ``latest`` pointer and, when asked to
  restore, falls back to the newest snapshot that *verifies*, so a
  corrupt head never strands a campaign.
* **Sharded parallel snapshots** — :class:`ShardedCheckpointRotation`
  saves one shard per SimMPI rank (each rank's own y-pencil block) plus
  a rank-0 ``manifest.json``, with a coordinated consistency check on
  load; all restore decisions derive from ``bcast``/``allreduce`` so
  every rank takes the same branch and the loader cannot deadlock.

Restart is *exact*: the RK3 scheme's cross-step memory (the
zeta-weighted previous nonlinear term) is only used within a step
(zeta_1 = 0), so a restarted trajectory is bit-for-bit the uninterrupted
one — pinned by ``tests/core/test_checkpoint.py`` and the supervised
crash-recovery tests in ``tests/core/test_supervisor.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import zlib
from dataclasses import asdict

import numpy as np

from repro.core.solver import ChannelConfig, ChannelDNS
from repro.core.timestepper import SMR91, ChannelState

#: current writer version and the lineage of versions this reader accepts.
#: v1: bare ``savez`` without manifest/checksums (legacy); v2: manifest
#: with per-array CRC32, scheme fingerprint and runtime (dt, forcing).
FORMAT_VERSION = 2
FORMAT_HISTORY = (1, 2)

#: grid/discretization keys that must match between a checkpoint and an
#: explicitly supplied config.
_GRID_KEYS = ("nx", "ny", "nz", "degree", "stretch", "lx", "lz")


class CheckpointCorruptError(ValueError):
    """A checkpoint failed verification (bad container, checksum or manifest)."""


# ----------------------------------------------------------------------
# low-level atomic, checksummed npz I/O
# ----------------------------------------------------------------------


def _normalize_path(path: str | pathlib.Path) -> pathlib.Path:
    """Append ``.npz`` when missing so save and load agree on the name.

    ``np.savez_compressed`` silently appends the suffix when handed a bare
    path; normalizing here means callers may pass either form to either
    side.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _crc32(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def _fsync_dir(directory: pathlib.Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(path: pathlib.Path, write_fn) -> None:
    """Write-to-temp + fsync + atomic rename; ``write_fn(fh)`` fills the file."""
    path = pathlib.Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # failed before the rename
            tmp.unlink()
    _fsync_dir(path.parent)


def _atomic_write_npz(
    path: pathlib.Path, manifest: dict, arrays: dict[str, np.ndarray]
) -> None:
    """Atomically write a checkpoint file: arrays + checksummed manifest."""
    payload = {k: np.asarray(v) for k, v in arrays.items()}
    manifest = dict(manifest)
    manifest["arrays"] = {
        k: {"crc32": _crc32(v), "shape": list(v.shape), "dtype": str(v.dtype)}
        for k, v in payload.items()
    }
    _atomic_write_bytes(
        path,
        lambda fh: np.savez_compressed(fh, manifest_json=json.dumps(manifest), **payload),
    )


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    _atomic_write_bytes(path, lambda fh: fh.write(text.encode()))


def _read_npz(path: pathlib.Path, verify: bool = True) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a checkpoint file, returning ``(manifest, arrays)``.

    Container-level failures (truncation, bad zip, bad zlib streams) and
    checksum mismatches raise :class:`CheckpointCorruptError`; version
    mismatches raise a plain :class:`ValueError` naming the supported
    lineage.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            keys = set(data.files)
            # the explicit key is authoritative when present (v1 layout, or
            # a file whose version was deliberately rewritten)
            if "format_version" in keys:
                version = int(data["format_version"])
            elif "manifest_json" in keys:
                version = None  # decided by the manifest below
            else:
                raise CheckpointCorruptError(f"{path.name}: no checkpoint header")
            if "manifest_json" not in keys:
                if version != 1:
                    raise ValueError(
                        f"unsupported checkpoint format {version}; "
                        f"this build reads versions {FORMAT_HISTORY}"
                    )
                return _read_v1(data)
            manifest = json.loads(str(data["manifest_json"]))
            if version is None:
                version = int(manifest.get("format_version", -1))
            if version not in FORMAT_HISTORY or version == 1:
                raise ValueError(
                    f"unsupported checkpoint format {version}; "
                    f"this build reads versions {FORMAT_HISTORY}"
                )
            arrays: dict[str, np.ndarray] = {}
            for name, meta in manifest["arrays"].items():
                arr = data[name]
                if verify:
                    crc = _crc32(arr)
                    if crc != int(meta["crc32"]):
                        raise CheckpointCorruptError(
                            f"{path.name}: checksum mismatch on array {name!r} "
                            f"(stored {meta['crc32']:#010x}, computed {crc:#010x})"
                        )
                arrays[name] = arr.copy()
            return manifest, arrays
    except ValueError:
        raise
    except Exception as exc:  # truncated/garbled container, missing keys, IO error
        raise CheckpointCorruptError(f"{path.name}: unreadable checkpoint ({exc})") from exc


def _read_v1(data) -> tuple[dict, dict[str, np.ndarray]]:
    """Adapt a legacy v1 file (no manifest, no checksums) to the v2 shape."""
    manifest = {
        "format_version": 1,
        "format_history": [1],
        "kind": "serial",
        "config": json.loads(str(data["config_json"])),
        "time": float(data["time"]),
        "step_count": int(data["step_count"]),
        "runtime": None,
    }
    arrays = {k: data[k].copy() for k in ("v", "omega_y", "u00", "w00")}
    return manifest, arrays


def verify_checkpoint(path: str | pathlib.Path) -> tuple[bool, str]:
    """Cheaply decide whether ``path`` is a loadable, checksum-clean checkpoint."""
    try:
        _read_npz(_normalize_path(path), verify=True)
        return True, "ok"
    except Exception as exc:  # noqa: BLE001 - any failure means "not verifiable"
        return False, f"{type(exc).__name__}: {exc}"


# ----------------------------------------------------------------------
# configuration fingerprint
# ----------------------------------------------------------------------


def _config_fingerprint(config: ChannelConfig) -> dict:
    """JSON-able config snapshot, including the RK scheme coefficients."""
    d = asdict(config)
    d["scheme"] = {k: [float(x) for x in v] for k, v in asdict(config.scheme).items()}
    return d


def _scheme_coeffs(scheme: SMR91) -> dict:
    return {k: [float(x) for x in v] for k, v in asdict(scheme).items()}


def _check_fingerprint(stored: dict, config: ChannelConfig) -> None:
    """Reject grid or scheme mismatches with a message naming the field."""
    for key in _GRID_KEYS:
        if getattr(config, key) != stored[key]:
            raise ValueError(
                f"checkpoint grid mismatch on {key!r}: "
                f"{stored[key]} (file) vs {getattr(config, key)} (given)"
            )
    stored_scheme = stored.get("scheme")
    if stored_scheme is not None:
        given = _scheme_coeffs(config.scheme)
        if given != stored_scheme:
            raise ValueError(
                "checkpoint scheme mismatch: the file was written with RK "
                f"coefficients {stored_scheme} but the given config uses "
                f"{given}; restart with the matching scheme"
            )


def _config_from_fingerprint(stored: dict) -> ChannelConfig:
    kwargs = dict(stored)
    scheme = kwargs.pop("scheme", None)
    if isinstance(scheme, dict):
        kwargs["scheme"] = SMR91(**{k: tuple(v) for k, v in scheme.items()})
    return ChannelConfig(**kwargs)


# ----------------------------------------------------------------------
# serial save / load
# ----------------------------------------------------------------------


def save_checkpoint(dns: ChannelDNS, path: str | pathlib.Path) -> pathlib.Path:
    """Atomically write the DNS state + checksummed manifest; returns the path.

    The manifest carries the full configuration fingerprint (grid, scheme
    coefficients, format-version history) and the *runtime* dt/forcing —
    which may have drifted from the config under a
    :class:`~repro.core.control.CFLController` or
    :class:`~repro.core.control.MassFluxController` — so a restart can
    continue the trajectory exactly.
    """
    state = dns.state
    if state is None:
        raise RuntimeError("nothing to checkpoint: initialize() first")
    path = _normalize_path(path)
    manifest = {
        "format_version": FORMAT_VERSION,
        "format_history": list(FORMAT_HISTORY),
        "kind": "serial",
        "config": _config_fingerprint(dns.config),
        "time": float(state.time),
        "step_count": int(dns.step_count),
        "runtime": {"dt": float(dns.stepper.dt), "forcing": float(dns.stepper.forcing)},
    }
    arrays = {
        "v": state.v,
        "omega_y": state.omega_y,
        "u00": state.u00,
        "w00": state.w00,
    }
    _atomic_write_npz(path, manifest, arrays)
    return path


def load_checkpoint(
    path: str | pathlib.Path,
    config: ChannelConfig | None = None,
    *,
    restore_runtime: bool | None = None,
) -> ChannelDNS:
    """Rebuild a ready-to-run :class:`ChannelDNS` from a verified checkpoint.

    If ``config`` is omitted it is reconstructed from the file and the
    runtime dt/forcing are restored (exact continuation).  If given, it
    must match the checkpoint's grid *and* RK scheme; runtime values then
    default to the supplied config (legitimate e.g. to restart with a
    different dt) unless ``restore_runtime=True``.
    """
    path = _normalize_path(path)
    manifest, arrays = _read_npz(path, verify=True)
    stored = manifest["config"]
    if restore_runtime is None:
        restore_runtime = config is None
    if config is None:
        config = _config_from_fingerprint(stored)
    else:
        _check_fingerprint(stored, config)
    state = ChannelState(
        v=arrays["v"],
        omega_y=arrays["omega_y"],
        u00=arrays["u00"],
        w00=arrays["w00"],
        time=float(manifest["time"]),
    )
    dns = ChannelDNS(config)
    dns.initialize(state)
    dns.step_count = int(manifest["step_count"])
    runtime = manifest.get("runtime")
    if restore_runtime and runtime is not None:
        dns.stepper.set_dt(float(runtime["dt"]))
        dns.stepper.forcing = float(runtime["forcing"])
    return dns


# ----------------------------------------------------------------------
# rotation: keep-K snapshots with a latest pointer and verified fallback
# ----------------------------------------------------------------------


class CheckpointRotation:
    """Keep the last ``keep`` snapshots of a run under one directory.

    ``save`` writes ``<basename>-<step>.npz`` atomically, repoints the
    ``latest`` file and prunes beyond ``keep``.  ``load_latest`` walks the
    pointer first, then every remaining snapshot newest-first, and
    restores the first one that passes checksum verification — a corrupt
    head falls back instead of killing the campaign.  Pass a
    :class:`~repro.instrument.RecoveryCounters` to surface save/prune/
    verify-failure counts through the instrumentation layer.
    """

    POINTER = "latest"

    def __init__(
        self,
        directory: str | pathlib.Path,
        basename: str = "ckpt",
        keep: int = 3,
        counters=None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.basename = basename
        self.keep = int(keep)
        self.counters = counters

    # -- inventory ------------------------------------------------------

    def snapshots(self) -> list[pathlib.Path]:
        """Snapshot files, newest (highest step) first."""

        def step_of(p: pathlib.Path) -> int:
            try:
                return int(p.stem.rsplit("-", 1)[1])
            except (IndexError, ValueError):
                return -1

        found = [p for p in self.directory.glob(f"{self.basename}-*.npz") if step_of(p) >= 0]
        return sorted(found, key=step_of, reverse=True)

    @property
    def latest_path(self) -> pathlib.Path | None:
        """The pointer target when it exists, else the newest snapshot."""
        pointer = self.directory / self.POINTER
        if pointer.exists():
            target = self.directory / pointer.read_text().strip()
            if target.exists():
                return target
        snaps = self.snapshots()
        return snaps[0] if snaps else None

    # -- write ----------------------------------------------------------

    def save(self, dns: ChannelDNS) -> pathlib.Path:
        path = self.directory / f"{self.basename}-{dns.step_count:09d}.npz"
        save_checkpoint(dns, path)
        _atomic_write_text(self.directory / self.POINTER, path.name)
        if self.counters is not None:
            self.counters.checkpoints_saved += 1
        for old in self.snapshots()[self.keep:]:
            old.unlink(missing_ok=True)
            if self.counters is not None:
                self.counters.checkpoints_pruned += 1
        return path

    # -- verified restore ----------------------------------------------

    def _candidates(self) -> list[pathlib.Path]:
        ordered: list[pathlib.Path] = []
        head = self.latest_path
        if head is not None:
            ordered.append(head)
        for p in self.snapshots():
            if p not in ordered:
                ordered.append(p)
        return ordered

    def load_latest(
        self,
        config: ChannelConfig | None = None,
        *,
        restore_runtime: bool | None = None,
    ) -> ChannelDNS:
        """Restore the newest *verifiable* snapshot (fallback on corruption)."""
        tried: list[str] = []
        for path in self._candidates():
            ok, reason = verify_checkpoint(path)
            if not ok:
                tried.append(f"{path.name}: {reason}")
                if self.counters is not None:
                    self.counters.verify_failures += 1
                continue
            return load_checkpoint(path, config=config, restore_runtime=restore_runtime)
        detail = "; ".join(tried) if tried else "no snapshots found"
        raise CheckpointCorruptError(
            f"no verifiable checkpoint under {self.directory} ({detail})"
        )


# ----------------------------------------------------------------------
# sharded parallel checkpoints (one shard per SimMPI rank)
# ----------------------------------------------------------------------


class ShardedCheckpointRotation:
    """Per-rank sharded snapshots for :class:`DistributedChannelDNS`.

    Layout::

        <directory>/step-<N>/shard-r0003.npz   # rank 3's pencil block
        <directory>/step-<N>/manifest.json     # rank 0: global metadata
        <directory>/latest                     # rank 0: pointer

    Every shard is itself an atomic, checksummed npz; the rank-0 manifest
    (written only after a barrier confirms all shards are durable) names
    the layout (nranks, pa, pb), the config fingerprint and the step, so
    a restart can check consistency before touching any state.  All
    load-time decisions are broadcast/reduced so every rank takes the
    same branch — a half-written or corrupt snapshot is skipped by *all*
    ranks together and the rotation falls back to the previous one.
    """

    POINTER = "latest"

    def __init__(self, directory: str | pathlib.Path, keep: int = 3, counters=None) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = pathlib.Path(directory)
        self.keep = int(keep)
        self.counters = counters

    # -- inventory ------------------------------------------------------

    def snapshot_dirs(self) -> list[pathlib.Path]:
        """Snapshot directories, newest (highest step) first."""

        def step_of(p: pathlib.Path) -> int:
            try:
                return int(p.name.rsplit("-", 1)[1])
            except (IndexError, ValueError):
                return -1

        found = [p for p in self.directory.glob("step-*") if p.is_dir() and step_of(p) >= 0]
        return sorted(found, key=step_of, reverse=True)

    def _candidate_names(self) -> list[str]:
        ordered: list[str] = []
        pointer = self.directory / self.POINTER
        if pointer.exists():
            name = pointer.read_text().strip()
            if (self.directory / name).is_dir():
                ordered.append(name)
        for p in self.snapshot_dirs():
            if p.name not in ordered:
                ordered.append(p.name)
        return ordered

    # -- write ----------------------------------------------------------

    def save(self, ddns) -> pathlib.Path:
        """Collectively write one sharded snapshot of ``ddns``."""
        comm = ddns.comm
        state = ddns.state
        if state is None:
            raise RuntimeError("nothing to checkpoint: initialize() first")
        snap = self.directory / f"step-{ddns.step_count:09d}"
        if comm.rank == 0:
            snap.mkdir(parents=True, exist_ok=True)
        comm.barrier()
        shard_manifest = {
            "format_version": FORMAT_VERSION,
            "format_history": list(FORMAT_HISTORY),
            "kind": "shard",
            "rank": comm.rank,
            "a": ddns.decomp.a,
            "b": ddns.decomp.b,
            "owns_mean": bool(ddns.modes.owns_mean),
            "time": float(state.time),
            "step_count": int(ddns.step_count),
        }
        arrays = {"v": state.v, "omega_y": state.omega_y}
        if ddns.modes.owns_mean:
            arrays["u00"] = state.u00
            arrays["w00"] = state.w00
        _atomic_write_npz(snap / f"shard-r{comm.rank:04d}.npz", shard_manifest, arrays)
        comm.barrier()  # all shards durable before the manifest names them
        if comm.rank == 0:
            manifest = {
                "format_version": FORMAT_VERSION,
                "format_history": list(FORMAT_HISTORY),
                "kind": "sharded",
                "step_count": int(ddns.step_count),
                "time": float(state.time),
                "nranks": comm.size,
                "pa": ddns.transforms.pa,
                "pb": ddns.transforms.pb,
                "config": _config_fingerprint(ddns.config),
                "runtime": {
                    "dt": float(ddns.stepper.dt),
                    "forcing": float(ddns.stepper.forcing),
                },
                "shards": [f"shard-r{r:04d}.npz" for r in range(comm.size)],
            }
            _atomic_write_bytes(
                snap / "manifest.json", lambda fh: fh.write(json.dumps(manifest).encode())
            )
            _atomic_write_text(self.directory / self.POINTER, snap.name)
            for old in self.snapshot_dirs()[self.keep:]:
                shutil.rmtree(old, ignore_errors=True)
                if self.counters is not None:
                    self.counters.checkpoints_pruned += 1
        if self.counters is not None:
            self.counters.checkpoints_saved += 1
        comm.barrier()
        return snap

    # -- coordinated verified restore -----------------------------------

    def load_latest(self, ddns) -> pathlib.Path:
        """Restore the newest snapshot every rank can verify, in place.

        Layout or fingerprint mismatches raise :class:`ValueError` on all
        ranks (they are configuration errors, not corruption); unreadable
        or checksum-failing snapshots are skipped collectively.
        """
        from repro.core.velocity import recover_uw

        comm = ddns.comm
        names = comm.bcast(self._candidate_names() if comm.rank == 0 else None, root=0)
        tried: list[str] = []
        for name in names:
            snap = self.directory / name
            manifest = None
            if comm.rank == 0:
                try:
                    manifest = json.loads((snap / "manifest.json").read_text())
                except Exception as exc:  # noqa: BLE001 - skip unreadable snapshot
                    tried.append(f"{name}: manifest unreadable ({exc})")
            manifest = comm.bcast(manifest, root=0)
            if manifest is None:
                if self.counters is not None:
                    self.counters.verify_failures += 1
                continue
            if (
                manifest["nranks"] != comm.size
                or manifest["pa"] != ddns.transforms.pa
                or manifest["pb"] != ddns.transforms.pb
            ):
                raise ValueError(
                    f"sharded checkpoint layout mismatch: file has "
                    f"{manifest['nranks']} ranks as {manifest['pa']}x{manifest['pb']}, "
                    f"run has {comm.size} ranks as "
                    f"{ddns.transforms.pa}x{ddns.transforms.pb}"
                )
            _check_fingerprint(manifest["config"], ddns.config)
            shard_path = snap / f"shard-r{comm.rank:04d}.npz"
            shard = arrays = None
            try:
                shard, arrays = _read_npz(shard_path, verify=True)
                ok = (
                    shard["rank"] == comm.rank
                    and shard["a"] == ddns.decomp.a
                    and shard["b"] == ddns.decomp.b
                    and shard["step_count"] == manifest["step_count"]
                )
            except Exception:  # noqa: BLE001 - collective skip below
                ok = False
            if not bool(comm.allreduce(int(ok), op=min)):
                tried.append(f"{name}: shard verification failed")
                if self.counters is not None:
                    self.counters.verify_failures += 1
                continue
            state = ChannelState(
                v=arrays["v"],
                omega_y=arrays["omega_y"],
                u00=arrays.get("u00"),
                w00=arrays.get("w00"),
                time=float(manifest["time"]),
            )
            state.u, state.w = recover_uw(
                ddns.modes, ddns.stepper.ops, state.v, state.omega_y, state.u00, state.w00
            )
            ddns.state = state
            ddns.step_count = int(manifest["step_count"])
            runtime = manifest.get("runtime")
            if runtime is not None:
                ddns.stepper.set_dt(float(runtime["dt"]))
                ddns.stepper.forcing = float(runtime["forcing"])
            return snap
        detail = "; ".join(tried) if tried else "no snapshots found"
        raise CheckpointCorruptError(
            f"no verifiable sharded checkpoint under {self.directory} ({detail})"
        )
