"""Influence-matrix (Green's function) solver for the phi-v system.

The viscous step for ``phi = (d²/dy² - k²) v`` is a second-order Helmholtz
problem, but its physical boundary conditions live on v: ``v = dv/dy = 0``
at both walls — four conditions for a fourth-order composite system.  The
classical decomposition (Kim–Moin–Moser 1987) solves it as the paper's
"three linear systems per wavenumber":

1. particular Helmholtz solve for phi with homogeneous Dirichlet data,
2. Poisson-type solve ``(d²/dy² - k²) v_p = phi_p`` with ``v_p(±1) = 0``,
3. a 2x2 *influence matrix* correction built from two precomputed
   Green's functions (unit phi at either wall) chosen so the corrected
   ``v`` also satisfies ``dv/dy(±1) = 0``.

All solves are the custom banded solver batched over the local block of
wavenumbers (the full grid in serial, one pencil block per rank in
parallel).  Within a substep the solves are *fused*: omega_y shares the
Helmholtz factors with phi, so :meth:`InfluenceSolver.advance` sweeps
both right-hand sides in one blocked pass of the solve engine, and the
Green's-function setup batches its two Helmholtz and two Poisson solves
the same way.  Fixed-width sweeps make the fused results bit-for-bit
identical to separate :meth:`solve` calls.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import WallNormalOps
from repro.linalg.helmholtz import HelmholtzOperator


class InfluenceSolver:
    """phi/v viscous-step solver for one RK implicit coefficient.

    Parameters
    ----------
    ops:
        Cached collocation matrices of the wall-normal basis.
    helm:
        Shared Helmholtz assembly factory.
    ksq:
        ``k²`` values of the local wavenumber block (any shape; flattened).
    c:
        Implicit weight ``beta_i * nu * dt`` of this substep.
    """

    def __init__(
        self,
        ops: WallNormalOps,
        helm: HelmholtzOperator,
        ksq: np.ndarray,
        c: float,
    ) -> None:
        self.ops = ops
        self.c = float(c)
        self.ny = helm.basis.n
        ksq = np.asarray(ksq, dtype=float).ravel()
        self.nmodes = ksq.size

        self.helm_lu = helm.factor_helmholtz(ksq, self.c)
        self.poisson_lu = helm.factor_poisson(ksq)

        # Green's functions: unit phi at the upper (+) / lower (-) wall.
        # The two Helmholtz solves ride one multi-RHS sweep, as do the
        # two Poisson solves that follow.
        rhs = np.zeros((self.nmodes, self.ny, 2))
        rhs[:, -1, 0] = 1.0  # plus wall
        rhs[:, 0, 1] = 1.0  # minus wall
        a_phi = self.helm_lu.solve_many(rhs)
        phi_vals = ops.values(np.ascontiguousarray(a_phi.transpose(2, 0, 1)))
        phi_vals[:, :, 0] = 0.0
        phi_vals[:, :, -1] = 0.0
        a_v = self.poisson_lu.solve_many(np.ascontiguousarray(phi_vals.transpose(1, 2, 0)))
        self.a_v_plus = np.ascontiguousarray(a_v[:, :, 0])
        self.a_v_minus = np.ascontiguousarray(a_v[:, :, 1])

        dplus_lo, dplus_up = ops.wall_derivatives(self.a_v_plus)
        dminus_lo, dminus_up = ops.wall_derivatives(self.a_v_minus)
        # Influence matrix M = [[Dv+(+1), Dv-(+1)], [Dv+(-1), Dv-(-1)]]
        det = dplus_up * dminus_lo - dminus_up * dplus_lo
        if np.any(np.abs(det) < 1e-300):
            raise ArithmeticError("singular influence matrix — degenerate Green's functions")
        self._minv = (
            np.stack([dminus_lo, -dminus_up, -dplus_lo, dplus_up], axis=-1) / det[..., None]
        )  # rows of M^{-1}: [[m00, m01], [m10, m11]] flattened

    def _poisson_with_bc(self, phi_values: np.ndarray) -> np.ndarray:
        """Poisson solve with homogeneous Dirichlet rows enforced on the RHS."""
        rhs = np.array(phi_values, copy=True)
        rhs[:, 0] = 0.0
        rhs[:, -1] = 0.0
        return self.poisson_lu.solve(rhs)

    def _v_from_phi(self, a_phi: np.ndarray) -> np.ndarray:
        """phi coefficients -> v coefficients with the influence correction."""
        a_v = self._poisson_with_bc(self.ops.values(a_phi))
        d_lo, d_up = self.ops.wall_derivatives(a_v)
        m = self._minv
        c_plus = -(m[:, 0] * d_up + m[:, 1] * d_lo)
        c_minus = -(m[:, 2] * d_up + m[:, 3] * d_lo)
        a_v += c_plus[:, None] * self.a_v_plus + c_minus[:, None] * self.a_v_minus
        return a_v

    # ------------------------------------------------------------------

    def solve(self, rhs_phi: np.ndarray) -> np.ndarray:
        """Advance: collocated phi right-hand side -> new v coefficients.

        ``rhs_phi`` has y on the last axis and ``nmodes`` leading entries
        in any shape; boundary rows are overwritten with the homogeneous
        Dirichlet data of the particular solution.
        """
        shape = rhs_phi.shape
        rhs = rhs_phi.reshape(self.nmodes, self.ny).copy()
        rhs[:, 0] = 0.0
        rhs[:, -1] = 0.0
        a_phi = self.helm_lu.solve(rhs)
        return self._v_from_phi(a_phi).reshape(shape)

    def advance(
        self, rhs_phi: np.ndarray, rhs_omega: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused viscous substep: advance phi/v *and* omega_y together.

        omega_y obeys the same Helmholtz pencil as phi (identical
        factors), so one blocked sweep of the engine carries both
        right-hand sides — the per-substep fusion of the solve engine.
        Boundary rows of both are overwritten with homogeneous Dirichlet
        data.  Returns ``(a_v, a_omega)``; bit-for-bit identical to the
        separate :meth:`solve` + ``helm_lu.solve(rhs_omega)`` path.
        """
        shape_phi = rhs_phi.shape
        shape_omega = rhs_omega.shape
        rp = rhs_phi.reshape(self.nmodes, self.ny).copy()
        ro = rhs_omega.reshape(self.nmodes, self.ny).copy()
        for r in (ro, rp):
            r[:, 0] = 0.0
            r[:, -1] = 0.0
        a_omega, a_phi = self.helm_lu.engine().solve_stack([ro, rp])
        a_v = self._v_from_phi(a_phi).reshape(shape_phi)
        return a_v, a_omega.reshape(shape_omega)
