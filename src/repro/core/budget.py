"""Turbulent kinetic energy budget profiles.

The science the paper's dataset feeds (§6 — "the interaction between
near-wall turbulence and the outer flow") is studied through budget
terms.  This module computes the two leading ones from a spectral state:

* **production** ``P(y) = -<u'v'> dU/dy`` — energy extracted from the
  mean shear by the Reynolds stress,
* **(pseudo-)dissipation** ``eps(y) = nu <du'_i/dx_j du'_i/dx_j>`` —
  all nine fluctuating velocity gradients, computed spectrally (x and z
  derivatives by ik, y derivatives by the B-spline operator),

plus the mean-flow dissipation ``nu (dU/dy)²``.  Global balance: at
statistical stationarity the forcing power equals total dissipation,
``F * U_bulk * 2 = integral(eps + nu (dU/dy)²) dy`` — exact for laminar
flow and a convergence diagnostic for turbulent runs.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.operators import WallNormalOps
from repro.core.statistics import mode_weights, plane_covariance
from repro.core.timestepper import ChannelState


class EnergyBudget:
    """Accumulates time-averaged production/dissipation profiles."""

    def __init__(self, grid: ChannelGrid) -> None:
        self.grid = grid
        self.ops = WallNormalOps(grid)
        self.nsamples = 0
        ny = grid.ny
        self._production = np.zeros(ny)
        self._dissipation = np.zeros(ny)
        self._mean_dissipation = np.zeros(ny)

    # ------------------------------------------------------------------

    def sample(self, state: ChannelState, nu: float) -> None:
        g, ops = self.grid, self.ops
        m = g.modes
        w = mode_weights(g)[..., None]

        u_vals = ops.values(state.u)
        v_vals = ops.values(state.v)
        w_vals = ops.values(state.w)

        # mean shear and production
        dudy_mean = ops.dvalues(state.u00)
        uv = plane_covariance(g, u_vals, v_vals)
        self._production += -uv * dudy_mean

        # fluctuating gradient tensor, component by component
        eps = np.zeros(g.ny)
        for coeffs, vals in ((state.u, u_vals), (state.v, v_vals), (state.w, w_vals)):
            dx = m.ikx * vals
            dz = m.ikz * vals
            dy = ops.dvalues(coeffs)
            for grad in (dx, dz, dy):
                sq = (np.abs(grad) ** 2 * w).copy()
                sq[0, 0] = 0.0  # exclude the mean flow
                eps += sq.sum(axis=(0, 1))
        self._dissipation += nu * eps

        self._mean_dissipation += nu * dudy_mean**2
        self.nsamples += 1

    # ------------------------------------------------------------------

    def _avg(self, acc: np.ndarray) -> np.ndarray:
        if self.nsamples == 0:
            raise RuntimeError("no samples accumulated")
        return acc / self.nsamples

    def production(self) -> np.ndarray:
        """``P(y)`` over the collocation points."""
        return self._avg(self._production)

    def dissipation(self) -> np.ndarray:
        """Fluctuation pseudo-dissipation ``eps(y)``."""
        return self._avg(self._dissipation)

    def mean_dissipation(self) -> np.ndarray:
        """Mean-profile dissipation ``nu (dU/dy)²``."""
        return self._avg(self._mean_dissipation)

    # ------------------------------------------------------------------

    def integrated(self, profile: np.ndarray) -> float:
        """Wall-to-wall integral of a collocated profile."""
        return float(self.grid.basis.collocation_weights @ profile)

    def balance_residual(self, forcing: float, bulk_velocity: float) -> float:
        """Relative global imbalance ``1 - total dissipation / forcing power``.

        Zero at exact statistical stationarity (and exactly zero for
        laminar Poiseuille flow).
        """
        power_in = forcing * bulk_velocity * 2.0  # F * integral(U) dy
        diss = self.integrated(self.dissipation() + self.mean_dissipation())
        if power_in == 0.0:
            return np.inf if diss else 0.0
        return 1.0 - diss / power_in
