"""Wall-normal (spline) operators on batched spectral state arrays.

State arrays are spline *coefficients* shaped ``(mx, mz, ny)`` (y last).
This module provides the collocated-value views and y-derivatives used
throughout the core, plus the spectral Laplacian of the KMM equations.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ChannelGrid


class WallNormalOps:
    """Cached collocation matrices bound to a grid (shared by solver parts)."""

    def __init__(self, grid: ChannelGrid) -> None:
        self.grid = grid
        self.basis = grid.basis
        self.B = self.basis.colloc_matrix(0)
        self.D1 = self.basis.colloc_matrix(1)
        self.D2 = self.basis.colloc_matrix(2)

    # -- coefficient-space operations (batched over leading axes) -------

    def values(self, coeffs: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Collocated values of spline coefficients (``out=`` reuses a buffer)."""
        return np.matmul(coeffs, self.B.T, out=out)

    def dvalues(self, coeffs: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Collocated first-derivative values (``out=`` reuses a buffer)."""
        return np.matmul(coeffs, self.D1.T, out=out)

    def d2values(self, coeffs: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Collocated second-derivative values (``out=`` reuses a buffer)."""
        return np.matmul(coeffs, self.D2.T, out=out)

    def coeffs(self, values: np.ndarray) -> np.ndarray:
        """Spline coefficients interpolating collocated values."""
        return self.basis.interpolate(values)

    def laplacian_values(self, coeffs: np.ndarray, ksq: np.ndarray) -> np.ndarray:
        """Collocated ``(d²/dy² - k²)`` of a spectral coefficient array.

        ``ksq`` broadcasts over the leading axes (``grid.ksq`` shaped
        ``(mx, mz)`` against state ``(mx, mz, ny)``).
        """
        return self.d2values(coeffs) - np.asarray(ksq)[..., None] * self.values(coeffs)

    def wall_derivatives(self, coeffs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """First-derivative values at (y=-1, y=+1), batched."""
        lower = coeffs @ self.D1[0]
        upper = coeffs @ self.D1[-1]
        return lower, upper
