"""Watchdog-supervised run loop: checkpoint, catch, roll back, retry.

The paper's campaign spans months of machine allocations where node
failures and queue-limit kills are routine; the run harness, not the
operator, has to absorb them.  :class:`RunSupervisor` drives a
:class:`~repro.core.solver.ChannelDNS` the way a production job script
drives the real code:

1. step, apply controllers, run the watchdog
   (:class:`~repro.core.health.HealthMonitor`),
2. checkpoint every ``checkpoint_every`` steps through a
   :class:`~repro.core.checkpoint.CheckpointRotation` (atomic,
   checksummed, keep-K with verified fallback),
3. on a watchdog or collective failure: record the event, wait out a
   bounded exponential backoff, roll back to the newest *verifiable*
   snapshot, and — when the failure was :class:`UnstableError` — degrade
   gracefully by reducing dt before retrying,
4. give up (:class:`SupervisorGivingUp`) only after ``max_retries``
   consecutive failures without forward progress.

Because checkpoint restore is bit-exact and the RK3 scheme carries no
cross-step memory, a crashed-rolled-back-retried trajectory is
bit-for-bit the uninterrupted one — pinned by
``tests/core/test_supervisor.py``.  Recovery history is surfaced through
:mod:`repro.instrument`: the ``CHECKPOINT``/``RECOVERY`` timer sections,
a :class:`~repro.instrument.RecoveryCounters`, and the typed
:class:`RecoveryEvent` log.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.checkpoint import CheckpointCorruptError, CheckpointRotation
from repro.core.health import DivergedError, HealthCheckError, UnstableError
from repro.instrument import RecoveryCounters, SectionTimers
from repro.mpi.simmpi import RankFailure, SimMPIError

#: failure types the supervisor absorbs; anything else propagates raw
RECOVERABLE = (HealthCheckError, SimMPIError, RankFailure, FloatingPointError)


class SupervisorGivingUp(RuntimeError):
    """Retries exhausted without forward progress; the last cause is chained."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the supervised run loop."""

    #: snapshot cadence in steps (a snapshot is also taken at the target step)
    checkpoint_every: int = 10
    #: consecutive failures tolerated without forward progress
    max_retries: int = 4
    #: first backoff delay in seconds (0 disables sleeping — test default)
    backoff_base: float = 0.0
    #: growth factor of successive delays
    backoff_factor: float = 2.0
    #: delay ceiling in seconds
    backoff_max: float = 60.0
    #: symmetric jitter fraction applied to each (bounded) delay so
    #: co-scheduled jobs don't retry in lockstep; the draw sequence is
    #: deterministic from the run seed.  0 disables (exact schedule).
    backoff_jitter: float = 0.0
    #: dt multiplier applied after an UnstableError (graceful degradation)
    dt_factor: float = 0.5
    #: dt floor for degradation
    min_dt: float = 1e-8

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if not 0.0 < self.dt_factor < 1.0:
            raise ValueError("dt_factor must lie in (0, 1)")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must lie in [0, 1)")


@dataclass
class RecoveryEvent:
    """One entry of the supervisor's recovery log."""

    step: int
    kind: str  # "failure" | "rollback" | "dt_reduction" | "restart" | "shrink" | "giving_up"
    detail: str
    attempt: int = 0
    #: structured extras — e.g. a shrink records {"ranks", "pa", "pb"}
    info: dict = field(default_factory=dict)


class RunSupervisor:
    """Drive a DNS to a target step, surviving crashes via rollback/retry.

    Parameters
    ----------
    dns:
        A ready (initialized) :class:`~repro.core.solver.ChannelDNS`.
        After a rollback the supervisor *replaces* it — read the final
        driver from ``supervisor.dns`` (also returned by :meth:`run`).
    rotation:
        The durable snapshot store.  Its counters are unified with the
        supervisor's when unset.
    monitor:
        Optional :class:`~repro.core.health.HealthMonitor`; without one,
        only checkpoint-time finiteness guards and collective failures
        trigger recovery.
    controllers:
        Applied after every step, before the watchdog (e.g.
        :class:`~repro.core.control.CFLController`).  Controllers that
        expose ``clamp_max_dt`` are clamped after a dt degradation so
        they cannot immediately undo it.
    recorder:
        Optional :class:`~repro.telemetry.RunRecorder`; defaults to the
        one already attached to ``dns`` (``ChannelDNS(..., telemetry=...)``).
        Every recovery-log entry is mirrored into its event stream, its
        ``recovery`` counter deltas track this supervisor's counters, and
        after a rollback the recorder is re-attached to the replacement
        driver so the step stream continues across the restore.
    """

    def __init__(
        self,
        dns,
        rotation: CheckpointRotation,
        *,
        monitor=None,
        policy: SupervisorPolicy | None = None,
        controllers=(),
        timers: SectionTimers | None = None,
        counters: RecoveryCounters | None = None,
        sleep=time.sleep,
        recorder=None,
    ) -> None:
        self.dns = dns
        self.rotation = rotation
        self.monitor = monitor
        self.policy = policy or SupervisorPolicy()
        self.controllers = tuple(controllers)
        self.timers = timers if timers is not None else getattr(
            dns, "timers", None
        ) or dns.stepper.timers
        self.counters = counters or RecoveryCounters()
        if getattr(rotation, "counters", None) is None:
            rotation.counters = self.counters
        self.log: list[RecoveryEvent] = []
        self._sleep = sleep
        # jitter draws come from the run seed, so a job's retry schedule is
        # reproducible while co-scheduled jobs (different seeds) desynchronize
        self._jitter_rng = (
            random.Random(getattr(getattr(dns, "config", None), "seed", 0))
            if self.policy.backoff_jitter > 0.0
            else None
        )
        self.recorder = recorder if recorder is not None else getattr(dns, "recorder", None)
        if self.recorder is not None:
            self.recorder.set_recovery_counters(self.counters)

    def _event(self, event: RecoveryEvent) -> None:
        """Append to the recovery log, mirrored into the telemetry stream."""
        self.log.append(event)
        if self.recorder is not None:
            self.recorder.record_event(
                event.kind,
                step=event.step,
                detail=event.detail,
                attempt=event.attempt,
                info=event.info,
            )

    # ------------------------------------------------------------------

    def run(self, n_steps: int, callback=None):
        """Advance ``n_steps`` past the current step, recovering as needed.

        ``callback(dns)`` runs after each step's controllers and before
        the watchdog — the slot fault-injection hooks use, so an injected
        blow-up is caught in the same step and never checkpointed.
        Returns the (possibly replaced) driver.
        """
        target = self.dns.step_count + n_steps
        frontier = self.dns.step_count
        consecutive = 0
        if not self.rotation.snapshots():
            self._checkpoint()  # baseline: rollback must always have a target
        while self.dns.step_count < target:
            try:
                self._segment(target, callback)
            except RECOVERABLE as exc:
                failed_at = self.dns.step_count
                self.counters.failures += 1
                self._event(
                    RecoveryEvent(
                        step=failed_at,
                        kind="failure",
                        detail=f"{type(exc).__name__}: {exc}",
                        attempt=consecutive,
                    )
                )
                if failed_at > frontier:
                    frontier = failed_at
                    consecutive = 1
                else:
                    consecutive += 1
                if consecutive > self.policy.max_retries:
                    self._event(
                        RecoveryEvent(
                            step=failed_at,
                            kind="giving_up",
                            detail=f"{consecutive - 1} consecutive failures at step {failed_at}",
                            attempt=consecutive,
                        )
                    )
                    raise SupervisorGivingUp(
                        f"no forward progress after {consecutive - 1} retries "
                        f"(last failure at step {failed_at}: {exc})"
                    ) from exc
                self._backoff(consecutive)
                self._rollback(degrade=isinstance(exc, UnstableError), attempt=consecutive)
        return self.dns

    # ------------------------------------------------------------------

    def _segment(self, target: int, callback) -> None:
        """Step until the target or the first failure; checkpoint on cadence."""
        dns = self.dns
        while dns.step_count < target:
            dns.step()
            for ctrl in self.controllers:
                ctrl(dns)
            if callback is not None:
                callback(dns)
            if self.monitor is not None:
                self.monitor(dns)
            if dns.step_count % self.policy.checkpoint_every == 0 or dns.step_count >= target:
                self._checkpoint()

    def _checkpoint(self) -> None:
        if not self.dns.state_finite():
            # never let a poisoned state into the rotation, even when the
            # watchdog is off or on a sparse cadence
            raise DivergedError(
                f"non-finite state at checkpoint (step {self.dns.step_count})",
                step=self.dns.step_count,
            )
        with self.timers.section(SectionTimers.CHECKPOINT):
            self.rotation.save(self.dns)

    def _backoff(self, consecutive: int) -> None:
        p = self.policy
        delay = min(p.backoff_max, p.backoff_base * p.backoff_factor ** (consecutive - 1))
        if self._jitter_rng is not None and delay > 0:
            # ± backoff_jitter around the bounded nominal delay
            delay *= 1.0 + p.backoff_jitter * (2.0 * self._jitter_rng.random() - 1.0)
        if delay > 0:
            self._sleep(delay)

    def _rollback(self, degrade: bool, attempt: int) -> None:
        """Restore the newest verifiable snapshot; optionally reduce dt."""
        with self.timers.section(SectionTimers.RECOVERY):
            try:
                self.dns = self.rotation.load_latest(
                    config=self.dns.config, restore_runtime=True
                )
            except CheckpointCorruptError as exc:
                raise SupervisorGivingUp(
                    f"rollback impossible: {exc}"
                ) from exc
        self.counters.rollbacks += 1
        if self.recorder is not None:
            # the restore built a fresh driver: move the stream (and its
            # delta baselines) over so step records continue seamlessly
            self.recorder.attach(self.dns)
        self._event(
            RecoveryEvent(
                step=self.dns.step_count,
                kind="rollback",
                detail=f"restored step {self.dns.step_count}",
                attempt=attempt,
            )
        )
        if degrade:
            new_dt = max(self.policy.min_dt, self.dns.stepper.dt * self.policy.dt_factor)
            self.dns.set_dt(new_dt)
            for ctrl in self.controllers:
                clamp = getattr(ctrl, "clamp_max_dt", None)
                if clamp is not None:
                    clamp(new_dt)
            self.counters.dt_reductions += 1
            self._event(
                RecoveryEvent(
                    step=self.dns.step_count,
                    kind="dt_reduction",
                    detail=f"dt -> {new_dt:.3e}",
                    attempt=attempt,
                )
            )

    # ------------------------------------------------------------------

    def report(self) -> str:
        """One-line recovery summary (counters + last event)."""
        tail = self.log[-1] if self.log else None
        last = f"  last_event={tail.kind}@{tail.step}" if tail else ""
        return self.counters.report() + last
