"""Process-grid topology bookkeeping (paper §4.3, Fig. 4).

The pencil decomposition uses a ``PA x PB`` cartesian process grid with
two sub-communicators obtained via ``MPI_cart_create`` + ``MPI_cart_sub``:

* **CommA** — ranks sharing a B-coordinate (size PA); carries the
  x <-> z pencil transposes.
* **CommB** — ranks sharing an A-coordinate (size PB); carries the
  z <-> y pencil transposes.

The paper's locality observation (Table 5): the code performs best when
CommB — the *inner*, consecutive-rank communicator — stays within a
node / switch boundary.  :func:`comm_grid` exposes membership and a
node-locality measure so benches and tests can reproduce that analysis
without running ranks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CommPattern:
    """Static description of the CommA/CommB structure of a process grid."""

    nranks: int
    pa: int
    pb: int

    def __post_init__(self) -> None:
        if self.pa * self.pb != self.nranks:
            raise ValueError(f"{self.pa} x {self.pb} != {self.nranks}")

    # MPI_cart_create with dims (pa, pb) is row-major: rank = a * pb + b.

    def coords(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.pb)

    def comm_a_members(self, rank: int) -> list[int]:
        """Ranks in the same CommA as ``rank`` (same b coordinate)."""
        _, b = self.coords(rank)
        return [a * self.pb + b for a in range(self.pa)]

    def comm_b_members(self, rank: int) -> list[int]:
        """Ranks in the same CommB as ``rank`` (same a coordinate)."""
        a, _ = self.coords(rank)
        return [a * self.pb + b for b in range(self.pb)]

    def edges(self) -> tuple[set[tuple[int, int]], set[tuple[int, int]]]:
        """(CommA pairs, CommB pairs): the Fig.-4 communication pattern."""
        ea: set[tuple[int, int]] = set()
        eb: set[tuple[int, int]] = set()
        for r in range(self.nranks):
            for peer in self.comm_a_members(r):
                if peer != r:
                    ea.add((min(r, peer), max(r, peer)))
            for peer in self.comm_b_members(r):
                if peer != r:
                    eb.add((min(r, peer), max(r, peer)))
        return ea, eb

    # ------------------------------------------------------------------
    # node locality (Table 5)
    # ------------------------------------------------------------------

    def node_of(self, rank: int, cores_per_node: int) -> int:
        return rank // cores_per_node

    def off_node_fraction(self, which: str, cores_per_node: int) -> float:
        """Fraction of CommA/CommB pair traffic that crosses node boundaries."""
        ea, eb = self.edges()
        edges = ea if which == "A" else eb
        if not edges:
            return 0.0
        off = sum(
            1
            for (r, s) in edges
            if self.node_of(r, cores_per_node) != self.node_of(s, cores_per_node)
        )
        return off / len(edges)

    def comm_b_is_node_local(self, cores_per_node: int) -> bool:
        """True when every CommB fits inside one node (the paper's winner)."""
        return self.pb <= cores_per_node and self.off_node_fraction("B", cores_per_node) == 0.0


def factor_pairs(n: int) -> list[tuple[int, int]]:
    """All ``(pa, pb)`` with ``pa * pb == n``, ordered by increasing ``pa``.

    Every pair is a candidate process grid for ``n`` ranks; the elastic
    supervisor filters them against the pencil-extent constraints and
    picks the most-square survivor (:func:`repro.pencil.decomp.choose_grid`).
    """
    if n < 1:
        raise ValueError(f"cannot factor {n} ranks")
    pairs = []
    for pa in range(1, n + 1):
        pb, rem = divmod(n, pa)
        if rem == 0:
            pairs.append((pa, pb))
    return pairs


def comm_grid(nranks: int, pa: int, pb: int) -> CommPattern:
    """Construct (and validate) the CommA/CommB pattern of a process grid."""
    return CommPattern(nranks=nranks, pa=pa, pb=pb)


def ascii_pattern(pattern: CommPattern, max_ranks: int = 32) -> str:
    """Tiny ASCII rendition of Fig. 4: an adjacency matrix with A/B marks."""
    n = min(pattern.nranks, max_ranks)
    ea, eb = pattern.edges()
    grid = [["." for _ in range(n)] for _ in range(n)]
    for r, s in ea:
        if r < n and s < n:
            grid[r][s] = grid[s][r] = "A"
    for r, s in eb:
        if r < n and s < n:
            grid[r][s] = grid[s][r] = "B"
    return "\n".join("".join(row) for row in grid)
