"""Shared rank pool: the placement substrate of the multi-job scheduler.

A :class:`RankPool` is the census of a fixed set of *pool ranks* (think
nodes of an allocation): every rank is at any moment **free**, **leased**
to exactly one job, or **quarantined** after a failure.  Jobs never see
pool ranks directly — a job runs an ordinary SimMPI SPMD program on
world ranks ``0..n-1`` and the pool records which pool rank backs each
world rank through a :class:`RankLease` (``lease.ranks[i]`` backs world
rank ``i``).  Because leases are carved from disjoint subsets of the
pool, concurrently running jobs are isolated by construction: a fault
domain (:class:`~repro.mpi.simmpi._FailureDomain`) is per ``run_spmd``
call, i.e. per lease.

The quarantine protocol implements the issue's isolation demand: a rank
that ULFM-fails inside job A is moved to quarantine by
:meth:`RankPool.shrink` and is *not placeable* — neither job A growing
back nor job B arriving can lease it — until :meth:`RankPool.probe`
runs a health probe against it and returns it to the free set.

:class:`LeaseGrowSource` is the elastic-expansion adapter consumed by
:func:`repro.pencil.distributed.run_supervised_spmd`: a two-phase
probe/commit view of one job's lease.  ``available()`` is the cheap
racy probe rank 0 runs at checkpoint boundaries; ``claim(n)`` is the
atomic all-or-nothing commit the supervisor issues once every rank has
agreed (via broadcast) to grow — if a concurrent job won the race for
the free ranks in between, ``claim`` returns ``False`` and the job
simply continues at its current size.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence


class PoolExhausted(RuntimeError):
    """An acquire asked for more ranks than the pool can currently place."""

    def __init__(self, job: str, requested: int, free: int, quarantined: int) -> None:
        super().__init__(
            f"job {job!r} requested {requested} ranks but only {free} are free "
            f"({quarantined} quarantined)"
        )
        self.job = job
        self.requested = requested
        self.free = free
        self.quarantined = quarantined


@dataclass(frozen=True)
class RankLease:
    """One job's exclusive claim on a set of pool ranks.

    ``ranks[i]`` is the pool rank backing SPMD world rank ``i`` of the
    job's program; the tuple is sorted, so placements are reproducible.
    Instances are immutable snapshots — :meth:`RankPool.grow` and
    :meth:`RankPool.shrink` return the successor lease.
    """

    job: str
    ranks: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.ranks)


class RankPool:
    """Thread-safe free/leased/quarantined census of ``size`` pool ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"pool needs at least 1 rank, got {size}")
        self.size = size
        self._lock = threading.RLock()
        self._free: set[int] = set(range(size))
        self._leases: dict[str, RankLease] = {}
        self._quarantined: dict[int, str] = {}

    # -- census ----------------------------------------------------------

    def free_count(self) -> int:
        with self._lock:
            return len(self._free)

    def quarantined_ranks(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._quarantined))

    def lease(self, job: str) -> RankLease | None:
        with self._lock:
            return self._leases.get(job)

    def census(self) -> dict:
        """Point-in-time snapshot: free / per-job leases / quarantined."""
        with self._lock:
            return {
                "size": self.size,
                "free": sorted(self._free),
                "leased": {j: list(l.ranks) for j, l in sorted(self._leases.items())},
                "quarantined": {r: why for r, why in sorted(self._quarantined.items())},
            }

    # -- placement -------------------------------------------------------

    def acquire(self, job: str, n: int) -> RankLease:
        """Lease the ``n`` lowest free pool ranks to ``job`` (disjoint from
        every other live lease by construction)."""
        if n < 1:
            raise ValueError(f"job {job!r} must lease at least 1 rank")
        with self._lock:
            if job in self._leases:
                raise ValueError(f"job {job!r} already holds a lease")
            if n > len(self._free):
                raise PoolExhausted(job, n, len(self._free), len(self._quarantined))
            ranks = tuple(sorted(self._free)[:n])
            self._free.difference_update(ranks)
            lease = RankLease(job, ranks)
            self._leases[job] = lease
            return lease

    def release(self, job: str) -> None:
        """Return a job's leased ranks to the free set."""
        with self._lock:
            lease = self._leases.pop(job, None)
            if lease is None:
                return
            self._free.update(lease.ranks)

    def grow(self, job: str, n: int) -> RankLease | None:
        """Atomically extend a lease by ``n`` free ranks (all-or-nothing).

        Returns the successor lease, or None when fewer than ``n`` ranks
        are free — the caller lost the race and continues at its size.
        """
        if n < 1:
            raise ValueError("grow needs n >= 1")
        with self._lock:
            lease = self._leases[job]
            if n > len(self._free):
                return None
            extra = tuple(sorted(self._free)[:n])
            self._free.difference_update(extra)
            new = RankLease(job, tuple(sorted(lease.ranks + extra)))
            self._leases[job] = new
            return new

    def shrink(
        self, job: str, dead_local: Sequence[int], reason: str = "rank failure"
    ) -> RankLease:
        """Quarantine the pool ranks backing the dead world ranks of ``job``.

        ``dead_local`` holds *world* ranks of the job's SPMD program (what
        :class:`~repro.mpi.simmpi.ShrinkRequired` carries); the lease maps
        them to pool ranks.  The successor lease keeps the survivors, so a
        concurrently placed job can never be handed a quarantined rank.
        """
        with self._lock:
            lease = self._leases[job]
            dead_pool = {lease.ranks[r] for r in dead_local}
            for pr in sorted(dead_pool):
                self._quarantined[pr] = reason
            new = RankLease(
                job, tuple(r for r in lease.ranks if r not in dead_pool)
            )
            self._leases[job] = new
            return new

    # -- quarantine ------------------------------------------------------

    def quarantine(self, pool_rank: int, reason: str = "manual") -> None:
        """Move a free pool rank into quarantine (e.g. an external alert)."""
        with self._lock:
            if pool_rank in self._free:
                self._free.discard(pool_rank)
                self._quarantined[pool_rank] = reason
            elif pool_rank not in self._quarantined:
                raise ValueError(f"pool rank {pool_rank} is leased; shrink its job first")

    def probe(self, prober: Callable[[int], bool] | None = None) -> list[int]:
        """Health-probe every quarantined rank; healthy ranks return to the
        free set.  The default prober declares every rank healthy (the
        simulated node always comes back).  Returns the freed ranks.
        """
        if prober is None:
            prober = lambda _r: True  # noqa: E731 - trivial default probe
        with self._lock:
            ranks = sorted(self._quarantined)
        freed: list[int] = []
        for pr in ranks:
            healthy = bool(prober(pr))
            with self._lock:
                if healthy and pr in self._quarantined:
                    del self._quarantined[pr]
                    self._free.add(pr)
                    freed.append(pr)
        return freed


class LeaseGrowSource:
    """Two-phase grow source over one job's lease in a :class:`RankPool`.

    ``available()`` (the checkpoint-boundary probe) first re-probes the
    quarantine through ``prober`` *when one was given* — that is where a
    failed rank re-enters service; without a prober, quarantined ranks
    stay invisible — then reports the free count, capped at ``limit``
    extra ranks when given.  ``claim(n)`` is the atomic commit; False
    means a concurrent job won the free ranks between probe and commit.
    """

    def __init__(
        self,
        pool: RankPool,
        job: str,
        prober: Callable[[int], bool] | None = None,
        limit: int | None = None,
    ) -> None:
        self.pool = pool
        self.job = job
        self.prober = prober
        self.limit = limit

    def available(self) -> int:
        if self.prober is not None:
            self.pool.probe(self.prober)
        n = self.pool.free_count()
        if self.limit is not None:
            n = min(n, self.limit)
        return n

    def claim(self, n: int) -> bool:
        return self.pool.grow(self.job, n) is not None
