"""Thread-backed MPI subset: communicators, collectives, topologies.

Every communicator owns a :class:`_Context` shared by its member
threads: a reusable barrier, an exchange board for collectives, and
point-to-point queues.  Collectives follow the deposit / barrier /
collect / barrier discipline so a board slot is never overwritten before
every member has read it.  If any rank raises, the barrier is aborted and
every other rank re-raises a :class:`SimMPIError` instead of deadlocking.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np


class SimMPIError(RuntimeError):
    """A collective failed (usually because a peer rank raised)."""


@dataclass
class MessageStats:
    """Traffic accounting, shared by all members of a communicator.

    A list/tuple payload counts one message per element (the chunks of an
    alltoall are separate wire messages); scalars and arrays count one.
    """

    messages: int = 0
    bytes: int = 0

    def record(self, payload: Any) -> None:
        if isinstance(payload, (list, tuple)):
            self.messages += len(payload)
        else:
            self.messages += 1
        self.bytes += _payload_bytes(payload)


def _payload_bytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(p) for p in payload)
    return 0


class _Context:
    """Shared state of one communicator (one instance per comm, not per rank)."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.board: list[Any] = [None] * size
        self.lock = threading.Lock()
        self.error = threading.Event()
        self.queues: dict[tuple[int, int, int], queue.Queue] = {}
        self.stats = MessageStats()
        self._scratch: dict[str, Any] = {}

    def queue_for(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self.lock:
            if key not in self.queues:
                self.queues[key] = queue.Queue()
            return self.queues[key]

    def sync(self) -> None:
        if self.error.is_set():
            raise SimMPIError("a peer rank failed")
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise SimMPIError("a peer rank failed during a collective") from exc

    def abort(self) -> None:
        self.error.set()
        self.barrier.abort()


class Communicator:
    """Per-rank handle onto a shared communicator context."""

    def __init__(self, context: _Context, rank: int, world_ranks: Sequence[int]) -> None:
        self._ctx = context
        self.rank = rank
        self.size = context.size
        #: global (world) rank ids of the members, indexed by local rank
        self.world_ranks = tuple(world_ranks)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    @property
    def stats(self) -> MessageStats:
        return self._ctx.stats

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def barrier(self) -> None:
        self._ctx.sync()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        ctx = self._ctx
        if self.rank == root:
            ctx.board[root] = obj
        ctx.sync()
        out = ctx.board[root]
        if self.rank != root:
            ctx.stats.record(out)
        ctx.sync()
        return out

    def allgather(self, obj: Any) -> list[Any]:
        ctx = self._ctx
        ctx.board[self.rank] = obj
        ctx.sync()
        out = list(ctx.board)
        ctx.stats.record([o for i, o in enumerate(out) if i != self.rank])
        ctx.sync()
        return out

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        out = self.allgather(obj)
        return out if self.rank == root else None

    def alltoall(self, chunks: Sequence[Any]) -> list[Any]:
        """Each rank sends ``chunks[d]`` to rank ``d``; returns what it got.

        Variable-size payloads (alltoallv) are the same call — chunks are
        arbitrary NumPy arrays.
        """
        ctx = self._ctx
        if len(chunks) != self.size:
            raise ValueError(f"need {self.size} chunks, got {len(chunks)}")
        ctx.board[self.rank] = chunks
        ctx.sync()
        received = [ctx.board[src][self.rank] for src in range(self.size)]
        ctx.stats.record([c for d, c in enumerate(chunks) if d != self.rank])
        ctx.sync()
        return received

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        vals = self.allgather(value)
        if op is None:
            out = vals[0]
            for v in vals[1:]:
                out = out + v
            return out
        out = vals[0]
        for v in vals[1:]:
            out = op(out, v)
        return out

    def reduce(self, value: Any, op=None, root: int = 0) -> Any | None:
        out = self.allreduce(value, op)
        return out if self.rank == root else None

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._ctx.queue_for(self.rank, dest, tag).put(obj)
        self._ctx.stats.record(obj)

    def recv(self, source: int, tag: int = 0, timeout: float = 30.0) -> Any:
        try:
            return self._ctx.queue_for(source, self.rank, tag).get(timeout=timeout)
        except queue.Empty as exc:
            self._ctx.abort()
            raise SimMPIError(f"recv from {source} timed out") from exc

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # ------------------------------------------------------------------
    # communicator construction
    # ------------------------------------------------------------------

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """MPI_Comm_split: one sub-communicator per distinct color."""
        ctx = self._ctx
        key = self.rank if key is None else key
        ctx.board[self.rank] = (color, key)
        ctx.sync()
        entries = list(ctx.board)  # [(color, key)] indexed by rank
        ctx.sync()
        members = sorted(
            (r for r in range(self.size) if entries[r][0] == color),
            key=lambda r: (entries[r][1], r),
        )
        # Deterministically share fresh contexts: lowest member builds them.
        with ctx.lock:
            store = ctx._scratch.setdefault("split", {})
            gen = ctx._scratch.setdefault("split_gen", [0])[0]
            key2 = (gen, color)
            if key2 not in store:
                store[key2] = _Context(len(members))
            sub_ctx = store[key2]
        ctx.sync()
        if self.rank == 0:
            with ctx.lock:
                ctx._scratch["split_gen"][0] += 1
                ctx._scratch["split"] = {}
        new_rank = members.index(self.rank)
        world = [self.world_ranks[m] for m in members]
        return Communicator(sub_ctx, new_rank, world)

    def cart_create(self, dims: Sequence[int]) -> "CartesianCommunicator":
        """MPI_Cart_create (periodic flags irrelevant for transposes)."""
        if int(np.prod(dims)) != self.size:
            raise ValueError(f"dims {tuple(dims)} do not multiply to size {self.size}")
        return CartesianCommunicator(self._ctx, self.rank, self.world_ranks, tuple(dims))


class CartesianCommunicator(Communicator):
    """A communicator with an attached cartesian process grid."""

    def __init__(self, context, rank, world_ranks, dims: tuple[int, ...]) -> None:
        super().__init__(context, rank, world_ranks)
        self.dims = dims

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's cartesian coordinates (row-major, like MPI)."""
        return tuple(int(c) for c in np.unravel_index(self.rank, self.dims))

    def cart_sub(self, remain_dims: Sequence[bool]) -> Communicator:
        """MPI_Cart_sub: keep the dimensions flagged True, split on the rest."""
        if len(remain_dims) != len(self.dims):
            raise ValueError("remain_dims length must match dims")
        coords = self.coords
        dropped = tuple(c for c, keep in zip(coords, remain_dims) if not keep)
        kept = tuple(c for c, keep in zip(coords, remain_dims) if keep)
        kept_dims = tuple(d for d, keep in zip(self.dims, remain_dims) if keep)
        color = int(np.ravel_multi_index(dropped, tuple(
            d for d, keep in zip(self.dims, remain_dims) if not keep
        ))) if dropped else 0
        key = int(np.ravel_multi_index(kept, kept_dims)) if kept else 0
        return self.split(color, key)


def run_spmd(nranks: int, fn: Callable[..., Any], *args: Any, timeout: float = 120.0) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``nranks`` simulated ranks; gather returns.

    Exceptions in any rank abort the whole program and re-raise the first
    failure in the caller.
    """
    ctx = _Context(nranks)
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def worker(rank: int) -> None:
        comm = Communicator(ctx, rank, range(nranks))
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - must not deadlock peers
            errors[rank] = exc
            ctx.abort()

    threads = [threading.Thread(target=worker, args=(r,), daemon=True) for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            ctx.abort()
            raise SimMPIError("SPMD program timed out (deadlock?)")
    for exc in errors:
        if exc is not None and not isinstance(exc, SimMPIError):
            raise exc
    for exc in errors:
        if exc is not None:
            raise exc
    return results
