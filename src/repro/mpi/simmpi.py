"""Thread-backed MPI subset: communicators, collectives, topologies, faults.

Every communicator owns a :class:`_Context` shared by its member
threads: a reusable barrier, an exchange board for collectives, and
point-to-point queues.  Collectives follow the deposit / barrier /
collect / barrier discipline so a board slot is never overwritten before
every member has read it.

Failure semantics are hardened for the fault-tolerant run harness: the
first failure on a communicator is *recorded* (which world rank, inside
which operation, with what error) before the barrier is aborted, so
every surviving rank raises a :class:`SimMPIError` that names the
culprit instead of deadlocking or guessing.  A seeded
:class:`FaultPlan` can be attached to :func:`run_spmd` to deterministically
kill a rank at the N-th collective, corrupt or drop a payload, or delay
a deposit — the failure modes a 786K-core machine serves up routinely —
and the plan follows communicator splits so faults fire inside the
pencil transpose sub-communicators too.

Two opt-in layers extend that all-or-nothing contract for elastic
degraded-mode recovery (ULFM-style shrink, cf. Diez, Peeters & Costa
2025):

* ``run_spmd(..., elastic=True)`` — when the *only* failures are rank
  deaths, surviving ranks run a deterministic agreement round
  (:meth:`_FailureDomain.agree_survivors`) instead of aborting blind:
  every live rank checks in, the dead set is frozen into one decision,
  and every survivor raises the same typed :class:`ShrinkRequired`
  carrying the agreed survivor list so a supervisor can re-plan onto
  ``P' = len(survivors)`` ranks and keep integrating.
* ``run_spmd(..., integrity=True)`` — every deposited payload travels
  inside a sender-side-checksummed envelope (checksummed *before* the
  fault-injection point, exactly the window real network/application
  CRCs cover), so an in-flight ``corrupt`` fault is *detected* by the
  receiver and surfaces as a typed :class:`SimMPIError` naming the
  culprit instead of silently poisoning the trajectory.

All timeouts derive from one env-overridable default
(``REPRO_SIMMPI_TIMEOUT``, :func:`default_timeout`): the ``recv``
timeout uses it directly, the :func:`run_spmd` join timeout is
``JOIN_TIMEOUT_FACTOR`` times it, and the agreement round waits at most
one default before freezing a decision among the ranks that checked in.

A nonblocking layer mirrors MPI-3's request model for the pipelined
pencil transposes: :meth:`Communicator.ialltoall` /
:meth:`Communicator.ialltoallv`, :meth:`Communicator.isend` and
:meth:`Communicator.irecv` return :class:`Request` handles with
``test`` / ``wait`` (plus module-level :func:`waitall`).  Posting is
queue-based and never blocks on peers — no barrier is involved — so a
rank can run FFT compute between the post and the wait.  Faults and
integrity compose exactly like the blocking calls, with MPI's deferred
error semantics: the checksum window still closes *before* the
injection point, but an injected ``kill``/``delay`` surfaces at
``wait``/``test`` time (:meth:`FaultPlan.apply_deferred`), and a
``corrupt``/``drop`` travels with the payload to be detected by every
receiver's ``wait``.  Because payloads move by reference, the buffer a
rank posted belongs to its receivers until they complete: receivers
acknowledge each consumed chunk at ``wait`` time and a sender calls
:meth:`Request.wait_acks` before refilling a staging buffer (the
credit protocol the double-buffered pipelined transpose runs on).
"""

from __future__ import annotations

import os
import queue
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

#: base timeout in seconds: `recv` waits this long, the `run_spmd` join
#: waits JOIN_TIMEOUT_FACTOR times it.  Override with REPRO_SIMMPI_TIMEOUT.
DEFAULT_TIMEOUT = 30.0
JOIN_TIMEOUT_FACTOR = 4.0


def default_timeout() -> float:
    """The single configurable SimMPI timeout default (env-overridable).

    Soak runs under injected ``delay`` faults set ``REPRO_SIMMPI_TIMEOUT``
    instead of hitting hardcoded 30 s cliffs scattered across the layer.
    """
    env = os.environ.get("REPRO_SIMMPI_TIMEOUT")
    return float(env) if env else DEFAULT_TIMEOUT


def default_join_timeout() -> float:
    """Default join timeout of :func:`run_spmd` (one knob: the base default)."""
    return JOIN_TIMEOUT_FACTOR * default_timeout()


class SimMPIError(RuntimeError):
    """A collective failed (usually because a peer rank raised).

    ``rank`` is the world rank of the first recorded failure (None when
    unknown) and ``op`` the operation *this* rank was in when it found out.
    """

    def __init__(self, message: str, rank: int | None = None, op: str | None = None) -> None:
        super().__init__(message)
        self.rank = rank
        self.op = op


class RankFailure(RuntimeError):
    """A rank was killed by a :class:`FaultPlan` (simulated node death)."""

    def __init__(self, rank: int, op: str, call: int) -> None:
        super().__init__(f"rank {rank} killed by fault plan during {op!r} (call {call})")
        self.rank = rank
        self.op = op
        self.call = call


class ShrinkRequired(RuntimeError):
    """Survivor agreement concluded: the program can continue on fewer ranks.

    Raised (instead of a fatal :class:`SimMPIError`) by every surviving
    rank of an ``elastic`` SPMD program after a rank death, and re-raised
    once by :func:`run_spmd` to its caller.  ``survivors`` is the agreed,
    sorted world-rank list — identical on every rank, so a supervisor can
    deterministically re-plan the decomposition for ``len(survivors)``.
    """

    def __init__(
        self,
        survivors: Sequence[int],
        dead: Sequence[int],
        op: str | None = None,
    ) -> None:
        survivors = tuple(int(r) for r in survivors)
        dead = tuple(int(r) for r in dead)
        super().__init__(
            f"rank(s) {list(dead)} lost; {len(survivors)} survivors agreed "
            f"to shrink: {list(survivors)}"
        )
        self.survivors = survivors
        self.dead = dead
        self.op = op


class GrowRequired(RuntimeError):
    """The supervisor should relaunch this program on more ranks.

    Raised *collectively* (every rank, after a rank-0 broadcast of the
    decision at a checkpoint boundary — so no rank is inside a collective
    when it fires) by an elastic program that observed freed/returned
    ranks in its :class:`~repro.mpi.pool.RankPool`.  ``ranks`` is the
    target world size; the supervisor re-plans the grid and resumes
    through the resharding reader.  Not a failure: it must escape
    :func:`run_spmd` unwrapped, which the error-precedence rules
    guarantee (it is not a ``SimMPIError``).
    """

    def __init__(self, ranks: int, current: int) -> None:
        super().__init__(f"grow from {current} to {ranks} ranks")
        self.ranks = int(ranks)
        self.current = int(current)


class PreemptRequired(RuntimeError):
    """The supervisor should checkpoint-stop this program and requeue it.

    Raised collectively (same broadcast-then-raise discipline as
    :class:`GrowRequired`) when a scheduler asks a running job to yield
    its ranks to a higher-priority job.  The program checkpoints before
    raising, so preemption never loses work.  ``reason`` is the
    scheduler-provided cause; ``step`` the last completed (and
    checkpointed) step.
    """

    def __init__(self, reason: str = "preempted", step: int = -1) -> None:
        super().__init__(f"{reason} at step {step}")
        self.reason = reason
        self.step = int(step)


class _CheckedPayload:
    """Integrity envelope: a sender-side checksum traveling with the payload.

    The checksum is computed *before* the fault-injection point, so an
    in-flight corruption is detected by every receiver — the window a
    real network/application CRC covers.
    """

    __slots__ = ("crc", "payload")

    def __init__(self, crc: Any, payload: Any) -> None:
        self.crc = crc
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<checked payload crc={self.crc!r}>"


def _payload_crc(payload: Any) -> Any:
    """CRC32 of an array payload; per-element tuple for chunk lists.

    Non-array payloads (python scalars, strings, None) return None —
    they are deposited by reference and cannot rot in flight here.
    """
    if isinstance(payload, np.ndarray):
        return zlib.crc32(np.ascontiguousarray(payload).tobytes()) & 0xFFFFFFFF
    if isinstance(payload, (list, tuple)):
        return tuple(_payload_crc(p) for p in payload)
    return None


class _DroppedPayload:
    """Board marker left where a faulted rank's payload should have been."""

    __slots__ = ("rank", "op")

    def __init__(self, rank: int, op: str) -> None:
        self.rank = rank
        self.op = op

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<dropped payload of rank {self.rank} in {self.op!r}>"


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------

_FAULT_ACTIONS = ("kill", "corrupt", "drop", "delay")


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: ``action`` on ``rank``'s ``call``-th matching op.

    ``op`` filters by operation name (``"alltoall"``, ``"bcast"``,
    ``"barrier"``, ``"send"``, ...); ``None`` matches any.  ``call``
    counts that rank's matching calls from zero, so the same plan always
    fires at the same point of a deterministic program.
    """

    action: str
    rank: int
    op: str | None = None
    call: int = 0
    delay: float = 0.01

    def __post_init__(self) -> None:
        if self.action not in _FAULT_ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; use {_FAULT_ACTIONS}")
        if self.call < 0:
            raise ValueError("call index must be >= 0")


class FaultPlan:
    """A seeded, deterministic schedule of :class:`FaultEvent`\\ s.

    Attached to :func:`run_spmd` (and propagated into split
    sub-communicators), the plan watches every operation; when an event's
    victim rank reaches the event's matching-call index the fault fires:

    * ``kill`` — raise :class:`RankFailure` in the victim (peers then get
      :class:`SimMPIError` through the hardened abort path),
    * ``corrupt`` — flip one seeded byte of the victim's payload copy,
    * ``drop`` — replace the payload with a marker every receiver turns
      into a :class:`SimMPIError` naming the culprit,
    * ``delay`` — sleep ``delay`` seconds before depositing.

    ``triggered`` records every fired event for assertions.
    """

    def __init__(self, events: Sequence[FaultEvent], seed: int = 0) -> None:
        self.events = tuple(events)
        self.seed = int(seed)
        self._counts = [0] * len(self.events)
        self._lock = threading.Lock()
        self.triggered: list[dict] = []

    def _match(self, world_rank: int, op: str) -> list[tuple[int, FaultEvent]]:
        """Advance the per-event call counters; return the events firing now."""
        fired: list[tuple[int, FaultEvent]] = []
        with self._lock:
            for i, e in enumerate(self.events):
                if e.rank != world_rank or (e.op is not None and e.op != op):
                    continue
                seen = self._counts[i]
                self._counts[i] = seen + 1
                if seen == e.call:
                    fired.append((i, e))
                    self.triggered.append(
                        {"action": e.action, "rank": world_rank, "op": op, "call": seen}
                    )
        return fired

    def apply(self, world_rank: int, op: str, payload: Any) -> Any:
        """Run the plan for one operation; returns the (possibly faulted) payload."""
        for i, e in self._match(world_rank, op):
            if e.action == "kill":
                raise RankFailure(world_rank, op, e.call)
            if e.action == "delay":
                time.sleep(e.delay)
            elif e.action == "drop":
                payload = _DroppedPayload(world_rank, op)
            elif e.action == "corrupt":
                rng = np.random.default_rng([self.seed, world_rank, i])
                payload = _corrupt_payload(payload, rng)
        return payload

    def apply_deferred(
        self, world_rank: int, op: str, payload: Any
    ) -> tuple[Any, "RankFailure | None", float]:
        """Run the plan for a *nonblocking* operation (MPI deferred semantics).

        Payload faults (``corrupt``/``drop``) are applied immediately —
        they travel with the posted message — but ``kill`` and ``delay``
        are *returned* as ``(payload, kill_exc, delay_seconds)`` so the
        :class:`Request` can raise/stall at ``wait``/``test`` time, the
        point where a real nonblocking failure surfaces.
        """
        kill: RankFailure | None = None
        delay = 0.0
        for i, e in self._match(world_rank, op):
            if e.action == "kill":
                kill = kill or RankFailure(world_rank, op, e.call)
            elif e.action == "delay":
                delay += e.delay
            elif e.action == "drop":
                payload = _DroppedPayload(world_rank, op)
            elif e.action == "corrupt":
                rng = np.random.default_rng([self.seed, world_rank, i])
                payload = _corrupt_payload(payload, rng)
        return payload, kill, delay


def _flip_byte(arr: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    out = np.array(arr, copy=True)
    view = out.reshape(-1).view(np.uint8)
    if view.size:
        view[int(rng.integers(view.size))] ^= 0xFF
    return out


def _corrupt_payload(payload: Any, rng: np.random.Generator) -> Any:
    if isinstance(payload, np.ndarray):
        return _flip_byte(payload, rng)
    if isinstance(payload, (list, tuple)):
        out = list(payload)
        for i, item in enumerate(out):
            if isinstance(item, np.ndarray) and item.size:
                out[i] = _flip_byte(item, rng)
                return tuple(out) if isinstance(payload, tuple) else out
    return payload


@dataclass
class MessageStats:
    """Traffic accounting, shared by all members of a communicator.

    A list/tuple payload counts one message per element (the chunks of an
    alltoall are separate wire messages); scalars and arrays count one.
    """

    messages: int = 0
    bytes: int = 0

    def record(self, payload: Any) -> None:
        if isinstance(payload, (list, tuple)):
            self.messages += len(payload)
        else:
            self.messages += 1
        self.bytes += _payload_bytes(payload)


def _payload_bytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(p) for p in payload)
    return 0


class _FailureDomain:
    """Failure state shared by *every* context of one SPMD program.

    A rank can die while its peers wait on a sub-communicator barrier
    (the pencil transposes run on cart_sub splits), so aborting only the
    context where the failure surfaced would deadlock the rest.  All
    contexts derived from one root register their barriers here; the
    first failure is recorded once and every registered barrier is
    broken, so every surviving rank raises within a bounded time no
    matter which communicator it is blocked on.

    The domain also keeps the per-program failure census that elastic
    mode turns into a shrink decision: world ranks known *dead* (killed
    by a fault plan), ranks that failed some *other* way (a shrink would
    be unsound — the state of the program is suspect, not just its
    membership), and ranks that *completed* normally.  The agreement
    round (:meth:`agree_survivors`) is a deterministic membership
    protocol on top of that census.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.error = threading.Event()
        self.failure: tuple[int | None, str, str] | None = None
        self._barriers: list[threading.Barrier] = []
        # elastic-recovery census (world ranks)
        self.elastic = False
        self.integrity = False
        self.timeout = default_timeout()
        self.all_ranks: frozenset[int] = frozenset()
        self.dead: set[int] = set()
        self.other_failed: set[int] = set()
        self.completed: set[int] = set()
        self._present: set[int] = set()
        self._accounted = threading.Event()
        self._decision: tuple[tuple[int, ...], tuple[int, ...]] | None = None

    def register(self, barrier: threading.Barrier) -> None:
        with self.lock:
            self._barriers.append(barrier)

    def _check_accounted(self) -> None:
        """Under ``self.lock``: wake the agreement once every rank is classed."""
        known = self._present | self.dead | self.other_failed | self.completed
        if self.all_ranks and known >= self.all_ranks:
            self._accounted.set()

    def fail(self, world_rank: int | None, op: str, exc: BaseException) -> None:
        with self.lock:
            if self.failure is None:
                self.failure = (world_rank, op, f"{type(exc).__name__}: {exc}")
            if isinstance(exc, RankFailure):
                self.dead.add(exc.rank)
            elif not isinstance(exc, (SimMPIError, ShrinkRequired)):
                # a consequence error (peer abort, agreed shrink) is not a
                # new cause; anything else marks this rank genuinely failed
                if world_rank is not None:
                    self.other_failed.add(world_rank)
            self._check_accounted()
            barriers = list(self._barriers)
        self.error.set()
        for b in barriers:
            b.abort()

    def mark_completed(self, world_rank: int) -> None:
        with self.lock:
            self.completed.add(world_rank)
            self._check_accounted()

    def abort(self) -> None:
        with self.lock:
            barriers = list(self._barriers)
        self.error.set()
        for b in barriers:
            b.abort()

    # -- survivor agreement ---------------------------------------------

    def shrinkable(self) -> bool:
        """True when the only failures so far are rank deaths (elastic mode)."""
        with self.lock:
            return self.elastic and bool(self.dead) and not self.other_failed

    def agree_survivors(self, world_rank: int, op: str) -> ShrinkRequired:
        """Deterministic agreement round; returns this rank's ShrinkRequired.

        Every surviving rank checks in and waits until all world ranks
        are accounted for (present, dead, completed or otherwise failed),
        then the *first* rank to conclude freezes the decision — the
        sorted set of non-dead accounted ranks — and every later caller
        returns that same frozen decision.  A rank that misses the
        window (stuck past one default timeout) is treated as lost,
        exactly like a real membership protocol would.
        """
        with self.lock:
            self._present.add(world_rank)
            self._check_accounted()
        self._accounted.wait(timeout=self.timeout)
        with self.lock:
            if self._decision is None:
                if self._accounted.is_set():
                    survivors = sorted(self.all_ranks - self.dead - self.other_failed)
                else:  # stragglers: agree among the ranks that checked in
                    survivors = sorted(
                        (self._present | self.completed) - self.dead - self.other_failed
                    )
                dead = sorted(self.all_ranks - set(survivors))
                self._decision = (tuple(survivors), tuple(dead))
            survivors, dead = self._decision
        return ShrinkRequired(survivors, dead, op=op)

    def peer_error(self, op: str, world_rank: int | None = None) -> RuntimeError:
        """The typed error a rank observing a failure should raise.

        In elastic mode, when the only recorded failures are rank deaths,
        this runs the agreement round and returns :class:`ShrinkRequired`;
        otherwise the classic culprit-naming :class:`SimMPIError`.
        """
        if world_rank is not None and self.shrinkable():
            return self.agree_survivors(world_rank, op)
        with self.lock:
            failure = self.failure
        if failure is None:
            return SimMPIError(f"collective {op!r} aborted: a peer rank failed", op=op)
        fr, fop, fmsg = failure
        return SimMPIError(
            f"collective {op!r} aborted: rank {fr} failed during {fop!r} ({fmsg})",
            rank=fr,
            op=op,
        )


class _Context:
    """Shared state of one communicator (one instance per comm, not per rank)."""

    def __init__(self, size: int, domain: _FailureDomain | None = None) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.board: list[Any] = [None] * size
        self.lock = threading.Lock()
        self.domain = domain if domain is not None else _FailureDomain()
        self.domain.register(self.barrier)
        self.fault_plan: FaultPlan | None = None
        self.queues: dict[tuple[int, int, Any], queue.Queue] = {}
        self.stats = MessageStats()
        self._scratch: dict[str, Any] = {}
        # per-local-rank nonblocking sequence counters: each rank thread
        # only touches its own dict, so no lock is needed.  SPMD-
        # deterministic programs issue matching ops in the same order on
        # every rank, which is what aligns the sequence-tagged queues.
        self._nb_seq: list[dict[Any, int]] = [{} for _ in range(size)]

    @property
    def error(self) -> threading.Event:
        return self.domain.error

    def queue_for(self, src: int, dst: int, tag: Any) -> queue.Queue:
        key = (src, dst, tag)
        with self.lock:
            if key not in self.queues:
                self.queues[key] = queue.Queue()
            return self.queues[key]

    def next_seq(self, rank: int, key: Any) -> int:
        seq = self._nb_seq[rank].get(key, 0)
        self._nb_seq[rank][key] = seq + 1
        return seq

    def sync(self, op: str = "collective", world_rank: int | None = None) -> None:
        if self.domain.error.is_set():
            raise self.domain.peer_error(op, world_rank)
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise self.domain.peer_error(op, world_rank) from exc

    def fail(self, world_rank: int | None, op: str, exc: BaseException) -> None:
        """Record the first failure (who, where, what), then break every
        barrier of the program so no rank stays blocked."""
        self.domain.fail(world_rank, op, exc)

    def abort(self) -> None:
        self.domain.abort()


# ----------------------------------------------------------------------
# nonblocking requests
# ----------------------------------------------------------------------

_POLL_S = 0.05


class Request:
    """Handle of an outstanding nonblocking operation (MPI_Request subset).

    ``test()`` makes progress without blocking and reports completion;
    ``wait()`` blocks — abort-responsively, like ``recv`` — until the
    operation completes and returns its result.  Deferred faults (a
    ``kill`` or ``delay`` injected at post time) surface here, matching
    MPI's rule that nonblocking errors are reported at completion.

    Overlap accounting: ``overlapped_bytes`` counts payload bytes that
    were already delivered when the request first had to check — i.e.
    communication fully hidden behind whatever compute ran between post
    and wait — and ``waited_s`` accumulates time spent blocked inside
    ``wait``.  ``posted_bytes`` is the off-rank volume posted.
    """

    def __init__(self, comm: "Communicator", op: str, kill: RankFailure | None,
                 delay: float) -> None:
        self._comm = comm
        self._op = op
        self._kill = kill
        self._ready_at = time.monotonic() + delay if delay else 0.0
        self._done = False
        self._result: Any = None
        self.posted_bytes = 0
        self.overlapped_bytes = 0
        self.waited_s = 0.0

    # -- shared plumbing -------------------------------------------------

    def _check_abort(self) -> None:
        dom = self._comm._ctx.domain
        if dom.error.is_set():
            raise dom.peer_error(self._op, self._comm._world_rank)

    def _raise_kill(self) -> None:
        if self._kill is not None:
            raise self._kill

    def _delay_pending(self) -> bool:
        return bool(self._ready_at) and time.monotonic() < self._ready_at

    def _timeout_fail(self, timeout: float) -> "SimMPIError":
        exc = TimeoutError(f"{self._op} wait timed out after {timeout:g}s")
        self._comm._ctx.fail(self._comm._world_rank, self._op, exc)
        return SimMPIError(
            f"{self._op} wait timed out after {timeout:g}s", op=self._op
        )

    def _progress(self) -> bool:
        """Nonblocking progress; True when the payload side is complete."""
        return True

    def _block_for(self, seconds: float) -> None:
        """Park until new input may be available (at most ``seconds``).

        Subclasses block on one of their missing queues so a wait wakes
        the moment a payload lands instead of on the next poll tick; the
        ``seconds`` bound (<= ``_POLL_S``) keeps the wait abort-responsive.
        """
        time.sleep(seconds)

    def _complete(self, out: Any) -> Any:
        """Open/assemble the result once progress is done (may raise)."""
        return None

    # -- public API ------------------------------------------------------

    def test(self) -> bool:
        """Nonblocking completion probe (faults surface here too)."""
        self._check_abort()
        self._raise_kill()
        if self._done:
            return True
        return self._progress() and not self._delay_pending()

    def wait(self, out: Any = None, timeout: float | None = None) -> Any:
        """Block until complete; returns the operation's result.

        ``out`` optionally receives the payload in place (a preallocated
        array for ``irecv``, a list of destination views for
        ``ialltoall``), keeping the steady state allocation-free.
        """
        if self._done:
            return self._result
        self._check_abort()
        self._raise_kill()
        ctx = self._comm._ctx
        if timeout is None:
            timeout = ctx.domain.timeout
        t0 = time.monotonic()
        deadline = t0 + timeout
        # first probe is free: anything already here overlapped with compute
        ready = self._progress()
        while not ready or self._delay_pending():
            self._check_abort()
            if time.monotonic() >= deadline:
                raise self._timeout_fail(timeout)
            now = time.monotonic()
            bound = min(_POLL_S, max(deadline - now, 0.0))
            if ready and self._ready_at:
                # payload complete, only an injected delay pends: sleep
                # exactly to the stall's end, not a full poll tick
                bound = min(bound, max(self._ready_at - now, 0.0))
            self._block_for(bound)
            ready = self._progress()
        self._result = self._complete(out)
        self._done = True
        self.waited_s += time.monotonic() - t0
        return self._result

    def wait_acks(self, timeout: float | None = None) -> None:
        """Block until every receiver has consumed this rank's payload.

        The credit half of the double-buffer protocol: a sender may only
        refill a posted staging buffer after ``wait_acks`` returns,
        because queued payloads travel by reference.  Acks are emitted by
        the *nonblocking* completion path (``irecv``/``ialltoall`` wait),
        which is the only consumer the protocol pairs with.
        """
        return None


class _AlltoallRequest(Request):
    """Outstanding ``ialltoall``/``ialltoallv``: one chunk from every rank."""

    def __init__(self, comm: "Communicator", op: str, seq: int,
                 chunks: Sequence[Any], kill: RankFailure | None,
                 delay: float) -> None:
        super().__init__(comm, op, kill, delay)
        self._seq = seq
        self._got: list[Any] = [None] * comm.size
        self._missing = set(range(comm.size))
        self._acks_missing = set(range(comm.size))
        self._first_probe = True
        self.posted_bytes = _payload_bytes(
            [c for d, c in enumerate(chunks) if d != comm.rank]
        )

    def _progress(self) -> bool:
        ctx = self._comm._ctx
        me = self._comm.rank
        arrived = 0
        for src in tuple(self._missing):
            q = ctx.queue_for(src, me, ("__nb__", self._op, self._seq))
            try:
                self._got[src] = q.get_nowait()
            except queue.Empty:
                continue
            self._missing.discard(src)
            arrived += 1
        if self._first_probe:
            # everything present before we ever had to check was fully
            # hidden behind the compute that ran since the post
            self._first_probe = False
            for src in range(self._comm.size):
                if src not in self._missing and src != me:
                    self.overlapped_bytes += _payload_bytes(
                        _strip_envelope(self._got[src])
                    )
        return not self._missing

    def _block_for(self, seconds: float) -> None:
        if not self._missing:  # payload done, only an injected delay pends
            time.sleep(seconds)
            return
        src = next(iter(self._missing))
        q = self._comm._ctx.queue_for(
            src, self._comm.rank, ("__nb__", self._op, self._seq)
        )
        try:
            self._got[src] = q.get(timeout=seconds)
            self._missing.discard(src)
        except queue.Empty:
            pass

    def _complete(self, out: Any) -> list[Any]:
        comm = self._comm
        ctx = comm._ctx
        received = []
        for src in range(comm.size):
            chunk = comm._open(self._got[src], self._op, src)
            if out is not None:
                np.copyto(out[src], chunk)
                chunk = out[src]
            received.append(chunk)
            self._got[src] = None
            # consumption ack: the sender's staging slot for us is free
            ctx.queue_for(comm.rank, src, ("__nback__", self._op, self._seq)).put(True)
        return received

    def wait_acks(self, timeout: float | None = None) -> None:
        comm = self._comm
        ctx = comm._ctx
        if timeout is None:
            timeout = ctx.domain.timeout
        deadline = time.monotonic() + timeout
        while self._acks_missing:
            self._check_abort()
            for dst in tuple(self._acks_missing):
                q = ctx.queue_for(dst, comm.rank, ("__nback__", self._op, self._seq))
                try:
                    q.get_nowait()
                    self._acks_missing.discard(dst)
                except queue.Empty:
                    pass
            if not self._acks_missing:
                return
            if time.monotonic() >= deadline:
                raise self._timeout_fail(timeout)
            dst = next(iter(self._acks_missing))
            q = ctx.queue_for(dst, comm.rank, ("__nback__", self._op, self._seq))
            try:
                q.get(timeout=min(_POLL_S, max(deadline - time.monotonic(), 0.0)))
                self._acks_missing.discard(dst)
            except queue.Empty:
                pass


class _SendRequest(Request):
    """Outstanding ``isend``: payload is already queued; wait surfaces faults."""

    def __init__(self, comm: "Communicator", dest: int, tag: int, seq: int,
                 obj: Any, kill: RankFailure | None, delay: float) -> None:
        super().__init__(comm, "isend", kill, delay)
        self._dest = dest
        self._tag = tag
        self._seq = seq
        self._acked = False
        self.posted_bytes = _payload_bytes(obj)

    def wait_acks(self, timeout: float | None = None) -> None:
        comm = self._comm
        ctx = comm._ctx
        if self._acked:
            return
        if timeout is None:
            timeout = ctx.domain.timeout
        q = ctx.queue_for(
            self._dest, comm.rank, ("__nback__", "p2p", self._tag, self._seq)
        )
        deadline = time.monotonic() + timeout
        while True:
            self._check_abort()
            try:
                q.get(timeout=min(_POLL_S, max(deadline - time.monotonic(), 0.0)))
                self._acked = True
                return
            except queue.Empty:
                pass
            if time.monotonic() >= deadline:
                raise self._timeout_fail(timeout)


class _RecvRequest(Request):
    """Outstanding ``irecv``: completes when the matching isend's payload lands."""

    def __init__(self, comm: "Communicator", source: int, tag: int, seq: int) -> None:
        super().__init__(comm, "irecv", None, 0.0)
        self._source = source
        self._tag = tag
        self._seq = seq
        self._entry: Any = None
        self._have = False
        self._first_probe = True

    def _progress(self) -> bool:
        if self._have:
            return True
        ctx = self._comm._ctx
        q = ctx.queue_for(
            self._source, self._comm.rank, ("__nb__", "p2p", self._tag, self._seq)
        )
        try:
            self._entry = q.get_nowait()
            self._have = True
        except queue.Empty:
            pass
        if self._first_probe:
            self._first_probe = False
            if self._have:
                self.overlapped_bytes += _payload_bytes(_strip_envelope(self._entry))
        return self._have

    def _block_for(self, seconds: float) -> None:
        if self._have:
            time.sleep(seconds)
            return
        q = self._comm._ctx.queue_for(
            self._source, self._comm.rank, ("__nb__", "p2p", self._tag, self._seq)
        )
        try:
            self._entry = q.get(timeout=seconds)
            self._have = True
        except queue.Empty:
            pass

    def _complete(self, out: Any) -> Any:
        comm = self._comm
        got = comm._open(self._entry, "irecv", self._source)
        self._entry = None
        if out is not None:
            np.copyto(out, got)
            got = out
        comm._ctx.queue_for(
            comm.rank, self._source, ("__nback__", "p2p", self._tag, self._seq)
        ).put(True)
        return got


def _strip_envelope(entry: Any) -> Any:
    return entry.payload if isinstance(entry, _CheckedPayload) else entry


def waitall(requests: Sequence[Request], timeout: float | None = None) -> list[Any]:
    """Complete every request in order; returns their results.

    Queues buffer, so sequential completion is semantically equivalent to
    round-robin progress — a later request's payload keeps arriving while
    an earlier one is waited on.
    """
    return [r.wait(timeout=timeout) for r in requests]


class Communicator:
    """Per-rank handle onto a shared communicator context."""

    def __init__(self, context: _Context, rank: int, world_ranks: Sequence[int]) -> None:
        self._ctx = context
        self.rank = rank
        self.size = context.size
        #: global (world) rank ids of the members, indexed by local rank
        self.world_ranks = tuple(world_ranks)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    @property
    def stats(self) -> MessageStats:
        return self._ctx.stats

    # ------------------------------------------------------------------
    # fault-injection / integrity plumbing
    # ------------------------------------------------------------------

    @property
    def _world_rank(self) -> int:
        return self.world_ranks[self.rank]

    def _sync(self, op: str) -> None:
        self._ctx.sync(op, self._world_rank)

    def _inject(self, op: str, payload: Any) -> Any:
        """Deposit-side pipeline: checksum (optional), then fault-inject.

        With integrity enabled the checksum is computed *before* the
        fault fires, so in-flight corruption is detectable downstream.
        """
        integrity = self._ctx.domain.integrity
        crc = _payload_crc(payload) if integrity else None
        plan = self._ctx.fault_plan
        if plan is not None:
            payload = plan.apply(self._world_rank, op, payload)
        if integrity:
            return _CheckedPayload(crc, payload)
        return payload

    def _open(self, entry: Any, op: str, src: int, *, chunk: int | None = None) -> Any:
        """Receive-side pipeline: unwrap, surface drops, verify checksums.

        ``src`` is the local rank the entry came from; ``chunk`` selects
        one element of a deposited chunk list (alltoall), verified
        against its own per-chunk checksum.
        """
        crc = None
        if isinstance(entry, _CheckedPayload):
            crc, entry = entry.crc, entry.payload
        if isinstance(entry, _DroppedPayload):
            raise SimMPIError(
                f"rank {entry.rank} dropped its {entry.op!r} payload "
                f"(detected in {op!r})",
                rank=entry.rank,
                op=op,
            )
        if chunk is not None:
            crc = crc[chunk] if isinstance(crc, (list, tuple)) else None
            entry = entry[chunk]
        if crc is not None and _payload_crc(entry) != crc:
            raise SimMPIError(
                f"corrupt payload from rank {self.world_ranks[src]} detected "
                f"in {op!r} (checksum mismatch)",
                rank=self.world_ranks[src],
                op=op,
            )
        return entry

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def barrier(self) -> None:
        self._inject("barrier", None)
        self._sync("barrier")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        ctx = self._ctx
        if self.rank == root:
            ctx.board[root] = self._inject("bcast", obj)
        self._sync("bcast")
        out = self._open(ctx.board[root], "bcast", root)
        if self.rank != root:
            ctx.stats.record(out)
        self._sync("bcast")
        return out

    def allgather(self, obj: Any, _op: str = "allgather") -> list[Any]:
        ctx = self._ctx
        ctx.board[self.rank] = self._inject(_op, obj)
        self._sync(_op)
        out = [self._open(entry, _op, src) for src, entry in enumerate(ctx.board)]
        ctx.stats.record([o for i, o in enumerate(out) if i != self.rank])
        self._sync(_op)
        return out

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        out = self.allgather(obj, _op="gather")
        return out if self.rank == root else None

    def alltoall(self, chunks: Sequence[Any]) -> list[Any]:
        """Each rank sends ``chunks[d]`` to rank ``d``; returns what it got.

        Variable-size payloads (alltoallv) are the same call — chunks are
        arbitrary NumPy arrays.
        """
        ctx = self._ctx
        if len(chunks) != self.size:
            raise ValueError(f"need {self.size} chunks, got {len(chunks)}")
        ctx.board[self.rank] = self._inject("alltoall", chunks)
        self._sync("alltoall")
        received = [
            self._open(ctx.board[src], "alltoall", src, chunk=self.rank)
            for src in range(self.size)
        ]
        ctx.stats.record([c for d, c in enumerate(chunks) if d != self.rank])
        self._sync("alltoall")
        return received

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        vals = self.allgather(value, _op="allreduce")
        if op is None:
            out = vals[0]
            for v in vals[1:]:
                out = out + v
            return out
        out = vals[0]
        for v in vals[1:]:
            out = op(out, v)
        return out

    def reduce(self, value: Any, op=None, root: int = 0) -> Any | None:
        out = self.allreduce(value, op)
        return out if self.rank == root else None

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        wire = self._inject("send", obj)
        self._ctx.queue_for(self.rank, dest, tag).put(wire)
        self._ctx.stats.record(obj)

    def recv(self, source: int, tag: int = 0, timeout: float | None = None) -> Any:
        """Receive from ``source``; default timeout is the context default.

        The wait is abort-responsive: a peer failure recorded on the
        failure domain releases a blocked receiver within one poll
        interval instead of letting it sit out the whole timeout.
        """
        ctx = self._ctx
        if timeout is None:
            timeout = ctx.domain.timeout
        q = ctx.queue_for(source, self.rank, tag)
        deadline = time.monotonic() + timeout
        while True:
            try:
                got = q.get_nowait()
                break
            except queue.Empty:
                pass
            if ctx.domain.error.is_set():
                raise ctx.domain.peer_error("recv", self._world_rank)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                exc = TimeoutError(f"recv from {source} timed out after {timeout:g}s")
                ctx.fail(self._world_rank, "recv", exc)
                raise SimMPIError(
                    f"recv from {source} timed out after {timeout:g}s",
                    rank=self.world_ranks[source],
                    op="recv",
                ) from exc
            try:
                got = q.get(timeout=min(0.05, remaining))
                break
            except queue.Empty:
                continue
        return self._open(got, "recv", source)

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # ------------------------------------------------------------------
    # nonblocking operations
    # ------------------------------------------------------------------

    def _inject_deferred(self, op: str, payload: Any) -> tuple[Any, RankFailure | None, float]:
        """Deposit-side pipeline for nonblocking posts: checksum first,
        then fault-inject with kill/delay deferred to wait/test time."""
        plan = self._ctx.fault_plan
        if plan is None:
            return payload, None, 0.0
        return plan.apply_deferred(self._world_rank, op, payload)

    def ialltoall(self, chunks: Sequence[Any], _op: str = "ialltoall") -> Request:
        """Nonblocking alltoall: post now, overlap compute, ``wait`` later.

        Posting never blocks on peers (no barrier): each chunk goes into
        a sequence-tagged point-to-point queue, so a rank is free to run
        FFT compute until ``Request.wait`` collects the incoming chunks.
        A killed sender posts *nothing* (it died before the send) and its
        own ``wait``/``test`` raises the deferred :class:`RankFailure`,
        which releases blocked peers through the failure domain.
        """
        ctx = self._ctx
        if len(chunks) != self.size:
            raise ValueError(f"need {self.size} chunks, got {len(chunks)}")
        integrity = ctx.domain.integrity
        crcs = [_payload_crc(c) for c in chunks] if integrity else None
        payload, kill, delay = self._inject_deferred(_op, list(chunks))
        seq = ctx.next_seq(self.rank, (_op,))
        if kill is None:
            for dst in range(self.size):
                if isinstance(payload, _DroppedPayload):
                    wire: Any = payload
                else:
                    wire = payload[dst]
                    if integrity:
                        wire = _CheckedPayload(crcs[dst], wire)
                ctx.queue_for(self.rank, dst, ("__nb__", _op, seq)).put(wire)
            ctx.stats.record([c for d, c in enumerate(chunks) if d != self.rank])
        return _AlltoallRequest(self, _op, seq, chunks, kill, delay)

    def ialltoallv(self, chunks: Sequence[Any]) -> Request:
        """Variable-size nonblocking alltoall.

        Chunks are arbitrary (per-destination-shaped) arrays, exactly
        like the blocking ``alltoall`` — kept as a named alias so call
        sites read like their MPI counterparts.
        """
        return self.ialltoall(chunks, _op="ialltoallv")

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; the matching receive is :meth:`irecv`.

        The returned request's ``wait`` surfaces deferred faults;
        ``wait_acks`` blocks until the receiver consumed the payload
        (required before reusing a posted buffer — payloads travel by
        reference).
        """
        ctx = self._ctx
        integrity = ctx.domain.integrity
        crc = _payload_crc(obj) if integrity else None
        wire, kill, delay = self._inject_deferred("isend", obj)
        seq = ctx.next_seq(self.rank, ("p2p-send", dest, tag))
        if kill is None:
            if integrity:
                wire = _CheckedPayload(crc, wire)
            ctx.queue_for(self.rank, dest, ("__nb__", "p2p", tag, seq)).put(wire)
            ctx.stats.record(obj)
        return _SendRequest(self, dest, tag, seq, obj, kill, delay)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Nonblocking receive; ``wait`` returns the payload (into ``out``
        if given) and acknowledges consumption to the sender."""
        seq = self._ctx.next_seq(self.rank, ("p2p-recv", source, tag))
        return _RecvRequest(self, source, tag, seq)

    # ------------------------------------------------------------------
    # communicator construction
    # ------------------------------------------------------------------

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """MPI_Comm_split: one sub-communicator per distinct color."""
        ctx = self._ctx
        key = self.rank if key is None else key
        ctx.board[self.rank] = (color, key)
        self._sync("split")
        entries = list(ctx.board)  # [(color, key)] indexed by rank
        self._sync("split")
        members = sorted(
            (r for r in range(self.size) if entries[r][0] == color),
            key=lambda r: (entries[r][1], r),
        )
        # Deterministically share fresh contexts: lowest member builds them.
        with ctx.lock:
            store = ctx._scratch.setdefault("split", {})
            gen = ctx._scratch.setdefault("split_gen", [0])[0]
            key2 = (gen, color)
            if key2 not in store:
                # the sub-context joins the parent's failure domain and
                # keeps its fault plan: faults must keep firing — and
                # aborts must keep propagating — inside sub-communicators
                # (the pencil transposes run on cart_sub splits)
                sub = _Context(len(members), domain=ctx.domain)
                sub.fault_plan = ctx.fault_plan
                store[key2] = sub
            sub_ctx = store[key2]
        self._sync("split")
        if self.rank == 0:
            with ctx.lock:
                ctx._scratch["split_gen"][0] += 1
                ctx._scratch["split"] = {}
        new_rank = members.index(self.rank)
        world = [self.world_ranks[m] for m in members]
        return Communicator(sub_ctx, new_rank, world)

    def cart_create(self, dims: Sequence[int]) -> "CartesianCommunicator":
        """MPI_Cart_create (periodic flags irrelevant for transposes)."""
        if int(np.prod(dims)) != self.size:
            raise ValueError(f"dims {tuple(dims)} do not multiply to size {self.size}")
        return CartesianCommunicator(self._ctx, self.rank, self.world_ranks, tuple(dims))


class CartesianCommunicator(Communicator):
    """A communicator with an attached cartesian process grid."""

    def __init__(self, context, rank, world_ranks, dims: tuple[int, ...]) -> None:
        super().__init__(context, rank, world_ranks)
        self.dims = dims

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's cartesian coordinates (row-major, like MPI)."""
        return tuple(int(c) for c in np.unravel_index(self.rank, self.dims))

    def cart_sub(self, remain_dims: Sequence[bool]) -> Communicator:
        """MPI_Cart_sub: keep the dimensions flagged True, split on the rest."""
        if len(remain_dims) != len(self.dims):
            raise ValueError("remain_dims length must match dims")
        coords = self.coords
        dropped = tuple(c for c, keep in zip(coords, remain_dims) if not keep)
        kept = tuple(c for c, keep in zip(coords, remain_dims) if keep)
        kept_dims = tuple(d for d, keep in zip(self.dims, remain_dims) if keep)
        color = int(np.ravel_multi_index(dropped, tuple(
            d for d, keep in zip(self.dims, remain_dims) if not keep
        ))) if dropped else 0
        key = int(np.ravel_multi_index(kept, kept_dims)) if kept else 0
        return self.split(color, key)


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
    elastic: bool = False,
    integrity: bool = False,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``nranks`` simulated ranks; gather returns.

    Exceptions in any rank abort the whole program (surviving ranks raise
    :class:`SimMPIError` carrying the failed rank and operation) and
    re-raise the first root-cause failure in the caller.  An optional
    ``fault_plan`` injects deterministic rank kills, payload corruption,
    drops or delays.

    ``timeout`` is the per-thread join ceiling; None means the
    env-overridable default (:func:`default_join_timeout`).  With
    ``elastic=True`` a pure rank-death failure ends in one agreed
    :class:`ShrinkRequired` (carrying the survivor list) instead of the
    victim's :class:`RankFailure`.  With ``integrity=True`` every payload
    travels checksummed, so corruption is detected at the receiver.
    """
    if timeout is None:
        timeout = default_join_timeout()
    ctx = _Context(nranks)
    ctx.fault_plan = fault_plan
    dom = ctx.domain
    dom.elastic = elastic
    dom.integrity = integrity
    dom.all_ranks = frozenset(range(nranks))
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def worker(rank: int) -> None:
        comm = Communicator(ctx, rank, range(nranks))
        try:
            results[rank] = fn(comm, *args)
            dom.mark_completed(rank)
        except ShrinkRequired as exc:
            # an agreed shrink is an outcome, not a new failure: the
            # domain is already aborted and the census already complete
            errors[rank] = exc
        except (GrowRequired, PreemptRequired) as exc:
            # cooperative outcomes, raised collectively after a rank-0
            # broadcast at a checkpoint boundary — no rank is inside a
            # collective, so there are no peers to abort
            errors[rank] = exc
        except BaseException as exc:  # noqa: BLE001 - must not deadlock peers
            errors[rank] = exc
            # when the exception already names a culprit rank (a detected
            # drop, a RankFailure), record *that* rank as the failure's
            # origin, not the rank that happened to notice first
            culprit = getattr(exc, "rank", None)
            ctx.fail(
                culprit if culprit is not None else rank,
                getattr(exc, "op", None) or "program",
                exc,
            )

    threads = [threading.Thread(target=worker, args=(r,), daemon=True) for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            ctx.abort()
            raise SimMPIError("SPMD program timed out (deadlock?)")
    # genuine program bugs outrank everything
    for exc in errors:
        if exc is not None and not isinstance(
            exc, (SimMPIError, RankFailure, ShrinkRequired)
        ):
            raise exc
    # an agreed shrink supersedes the kill that caused it
    shrink = next((e for e in errors if isinstance(e, ShrinkRequired)), None)
    if shrink is not None:
        raise shrink
    for exc in errors:
        if exc is not None and not isinstance(exc, SimMPIError):
            raise exc
    for exc in errors:
        if exc is not None:
            raise exc
    return results
