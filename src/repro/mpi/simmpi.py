"""Thread-backed MPI subset: communicators, collectives, topologies, faults.

Every communicator owns a :class:`_Context` shared by its member
threads: a reusable barrier, an exchange board for collectives, and
point-to-point queues.  Collectives follow the deposit / barrier /
collect / barrier discipline so a board slot is never overwritten before
every member has read it.

Failure semantics are hardened for the fault-tolerant run harness: the
first failure on a communicator is *recorded* (which world rank, inside
which operation, with what error) before the barrier is aborted, so
every surviving rank raises a :class:`SimMPIError` that names the
culprit instead of deadlocking or guessing.  A seeded
:class:`FaultPlan` can be attached to :func:`run_spmd` to deterministically
kill a rank at the N-th collective, corrupt or drop a payload, or delay
a deposit — the failure modes a 786K-core machine serves up routinely —
and the plan follows communicator splits so faults fire inside the
pencil transpose sub-communicators too.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np


class SimMPIError(RuntimeError):
    """A collective failed (usually because a peer rank raised).

    ``rank`` is the world rank of the first recorded failure (None when
    unknown) and ``op`` the operation *this* rank was in when it found out.
    """

    def __init__(self, message: str, rank: int | None = None, op: str | None = None) -> None:
        super().__init__(message)
        self.rank = rank
        self.op = op


class RankFailure(RuntimeError):
    """A rank was killed by a :class:`FaultPlan` (simulated node death)."""

    def __init__(self, rank: int, op: str, call: int) -> None:
        super().__init__(f"rank {rank} killed by fault plan during {op!r} (call {call})")
        self.rank = rank
        self.op = op
        self.call = call


class _DroppedPayload:
    """Board marker left where a faulted rank's payload should have been."""

    __slots__ = ("rank", "op")

    def __init__(self, rank: int, op: str) -> None:
        self.rank = rank
        self.op = op

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<dropped payload of rank {self.rank} in {self.op!r}>"


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------

_FAULT_ACTIONS = ("kill", "corrupt", "drop", "delay")


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: ``action`` on ``rank``'s ``call``-th matching op.

    ``op`` filters by operation name (``"alltoall"``, ``"bcast"``,
    ``"barrier"``, ``"send"``, ...); ``None`` matches any.  ``call``
    counts that rank's matching calls from zero, so the same plan always
    fires at the same point of a deterministic program.
    """

    action: str
    rank: int
    op: str | None = None
    call: int = 0
    delay: float = 0.01

    def __post_init__(self) -> None:
        if self.action not in _FAULT_ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; use {_FAULT_ACTIONS}")
        if self.call < 0:
            raise ValueError("call index must be >= 0")


class FaultPlan:
    """A seeded, deterministic schedule of :class:`FaultEvent`\\ s.

    Attached to :func:`run_spmd` (and propagated into split
    sub-communicators), the plan watches every operation; when an event's
    victim rank reaches the event's matching-call index the fault fires:

    * ``kill`` — raise :class:`RankFailure` in the victim (peers then get
      :class:`SimMPIError` through the hardened abort path),
    * ``corrupt`` — flip one seeded byte of the victim's payload copy,
    * ``drop`` — replace the payload with a marker every receiver turns
      into a :class:`SimMPIError` naming the culprit,
    * ``delay`` — sleep ``delay`` seconds before depositing.

    ``triggered`` records every fired event for assertions.
    """

    def __init__(self, events: Sequence[FaultEvent], seed: int = 0) -> None:
        self.events = tuple(events)
        self.seed = int(seed)
        self._counts = [0] * len(self.events)
        self._lock = threading.Lock()
        self.triggered: list[dict] = []

    def apply(self, world_rank: int, op: str, payload: Any) -> Any:
        """Run the plan for one operation; returns the (possibly faulted) payload."""
        fired: list[tuple[int, FaultEvent]] = []
        with self._lock:
            for i, e in enumerate(self.events):
                if e.rank != world_rank or (e.op is not None and e.op != op):
                    continue
                seen = self._counts[i]
                self._counts[i] = seen + 1
                if seen == e.call:
                    fired.append((i, e))
                    self.triggered.append(
                        {"action": e.action, "rank": world_rank, "op": op, "call": seen}
                    )
        for i, e in fired:
            if e.action == "kill":
                raise RankFailure(world_rank, op, e.call)
            if e.action == "delay":
                time.sleep(e.delay)
            elif e.action == "drop":
                payload = _DroppedPayload(world_rank, op)
            elif e.action == "corrupt":
                rng = np.random.default_rng([self.seed, world_rank, i])
                payload = _corrupt_payload(payload, rng)
        return payload


def _flip_byte(arr: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    out = np.array(arr, copy=True)
    view = out.reshape(-1).view(np.uint8)
    if view.size:
        view[int(rng.integers(view.size))] ^= 0xFF
    return out


def _corrupt_payload(payload: Any, rng: np.random.Generator) -> Any:
    if isinstance(payload, np.ndarray):
        return _flip_byte(payload, rng)
    if isinstance(payload, (list, tuple)):
        out = list(payload)
        for i, item in enumerate(out):
            if isinstance(item, np.ndarray) and item.size:
                out[i] = _flip_byte(item, rng)
                return tuple(out) if isinstance(payload, tuple) else out
    return payload


@dataclass
class MessageStats:
    """Traffic accounting, shared by all members of a communicator.

    A list/tuple payload counts one message per element (the chunks of an
    alltoall are separate wire messages); scalars and arrays count one.
    """

    messages: int = 0
    bytes: int = 0

    def record(self, payload: Any) -> None:
        if isinstance(payload, (list, tuple)):
            self.messages += len(payload)
        else:
            self.messages += 1
        self.bytes += _payload_bytes(payload)


def _payload_bytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(p) for p in payload)
    return 0


class _FailureDomain:
    """Failure state shared by *every* context of one SPMD program.

    A rank can die while its peers wait on a sub-communicator barrier
    (the pencil transposes run on cart_sub splits), so aborting only the
    context where the failure surfaced would deadlock the rest.  All
    contexts derived from one root register their barriers here; the
    first failure is recorded once and every registered barrier is
    broken, so every surviving rank raises within a bounded time no
    matter which communicator it is blocked on.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.error = threading.Event()
        self.failure: tuple[int | None, str, str] | None = None
        self._barriers: list[threading.Barrier] = []

    def register(self, barrier: threading.Barrier) -> None:
        with self.lock:
            self._barriers.append(barrier)

    def fail(self, world_rank: int | None, op: str, exc: BaseException) -> None:
        with self.lock:
            if self.failure is None:
                self.failure = (world_rank, op, f"{type(exc).__name__}: {exc}")
            barriers = list(self._barriers)
        self.error.set()
        for b in barriers:
            b.abort()

    def abort(self) -> None:
        with self.lock:
            barriers = list(self._barriers)
        self.error.set()
        for b in barriers:
            b.abort()

    def peer_error(self, op: str) -> SimMPIError:
        with self.lock:
            failure = self.failure
        if failure is None:
            return SimMPIError(f"collective {op!r} aborted: a peer rank failed", op=op)
        fr, fop, fmsg = failure
        return SimMPIError(
            f"collective {op!r} aborted: rank {fr} failed during {fop!r} ({fmsg})",
            rank=fr,
            op=op,
        )


class _Context:
    """Shared state of one communicator (one instance per comm, not per rank)."""

    def __init__(self, size: int, domain: _FailureDomain | None = None) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.board: list[Any] = [None] * size
        self.lock = threading.Lock()
        self.domain = domain if domain is not None else _FailureDomain()
        self.domain.register(self.barrier)
        self.fault_plan: FaultPlan | None = None
        self.queues: dict[tuple[int, int, int], queue.Queue] = {}
        self.stats = MessageStats()
        self._scratch: dict[str, Any] = {}

    @property
    def error(self) -> threading.Event:
        return self.domain.error

    def queue_for(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self.lock:
            if key not in self.queues:
                self.queues[key] = queue.Queue()
            return self.queues[key]

    def sync(self, op: str = "collective") -> None:
        if self.domain.error.is_set():
            raise self.domain.peer_error(op)
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise self.domain.peer_error(op) from exc

    def fail(self, world_rank: int | None, op: str, exc: BaseException) -> None:
        """Record the first failure (who, where, what), then break every
        barrier of the program so no rank stays blocked."""
        self.domain.fail(world_rank, op, exc)

    def abort(self) -> None:
        self.domain.abort()


class Communicator:
    """Per-rank handle onto a shared communicator context."""

    def __init__(self, context: _Context, rank: int, world_ranks: Sequence[int]) -> None:
        self._ctx = context
        self.rank = rank
        self.size = context.size
        #: global (world) rank ids of the members, indexed by local rank
        self.world_ranks = tuple(world_ranks)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    @property
    def stats(self) -> MessageStats:
        return self._ctx.stats

    # ------------------------------------------------------------------
    # fault-injection plumbing
    # ------------------------------------------------------------------

    def _inject(self, op: str, payload: Any) -> Any:
        plan = self._ctx.fault_plan
        if plan is None:
            return payload
        return plan.apply(self.world_ranks[self.rank], op, payload)

    def _check_dropped(self, payload: Any, op: str) -> None:
        if isinstance(payload, _DroppedPayload):
            raise SimMPIError(
                f"rank {payload.rank} dropped its {payload.op!r} payload "
                f"(detected in {op!r})",
                rank=payload.rank,
                op=op,
            )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def barrier(self) -> None:
        self._inject("barrier", None)
        self._ctx.sync("barrier")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        ctx = self._ctx
        if self.rank == root:
            ctx.board[root] = self._inject("bcast", obj)
        ctx.sync("bcast")
        out = ctx.board[root]
        self._check_dropped(out, "bcast")
        if self.rank != root:
            ctx.stats.record(out)
        ctx.sync("bcast")
        return out

    def allgather(self, obj: Any, _op: str = "allgather") -> list[Any]:
        ctx = self._ctx
        ctx.board[self.rank] = self._inject(_op, obj)
        ctx.sync(_op)
        out = list(ctx.board)
        for entry in out:
            self._check_dropped(entry, _op)
        ctx.stats.record([o for i, o in enumerate(out) if i != self.rank])
        ctx.sync(_op)
        return out

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        out = self.allgather(obj, _op="gather")
        return out if self.rank == root else None

    def alltoall(self, chunks: Sequence[Any]) -> list[Any]:
        """Each rank sends ``chunks[d]`` to rank ``d``; returns what it got.

        Variable-size payloads (alltoallv) are the same call — chunks are
        arbitrary NumPy arrays.
        """
        ctx = self._ctx
        if len(chunks) != self.size:
            raise ValueError(f"need {self.size} chunks, got {len(chunks)}")
        ctx.board[self.rank] = self._inject("alltoall", chunks)
        ctx.sync("alltoall")
        for src in range(self.size):
            self._check_dropped(ctx.board[src], "alltoall")
        received = [ctx.board[src][self.rank] for src in range(self.size)]
        ctx.stats.record([c for d, c in enumerate(chunks) if d != self.rank])
        ctx.sync("alltoall")
        return received

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        vals = self.allgather(value, _op="allreduce")
        if op is None:
            out = vals[0]
            for v in vals[1:]:
                out = out + v
            return out
        out = vals[0]
        for v in vals[1:]:
            out = op(out, v)
        return out

    def reduce(self, value: Any, op=None, root: int = 0) -> Any | None:
        out = self.allreduce(value, op)
        return out if self.rank == root else None

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        obj = self._inject("send", obj)
        self._ctx.queue_for(self.rank, dest, tag).put(obj)
        self._ctx.stats.record(obj)

    def recv(self, source: int, tag: int = 0, timeout: float = 30.0) -> Any:
        try:
            got = self._ctx.queue_for(source, self.rank, tag).get(timeout=timeout)
        except queue.Empty as exc:
            self._ctx.fail(self.world_ranks[self.rank], "recv", exc)
            raise SimMPIError(
                f"recv from {source} timed out",
                rank=self.world_ranks[source],
                op="recv",
            ) from exc
        self._check_dropped(got, "recv")
        return got

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # ------------------------------------------------------------------
    # communicator construction
    # ------------------------------------------------------------------

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """MPI_Comm_split: one sub-communicator per distinct color."""
        ctx = self._ctx
        key = self.rank if key is None else key
        ctx.board[self.rank] = (color, key)
        ctx.sync("split")
        entries = list(ctx.board)  # [(color, key)] indexed by rank
        ctx.sync("split")
        members = sorted(
            (r for r in range(self.size) if entries[r][0] == color),
            key=lambda r: (entries[r][1], r),
        )
        # Deterministically share fresh contexts: lowest member builds them.
        with ctx.lock:
            store = ctx._scratch.setdefault("split", {})
            gen = ctx._scratch.setdefault("split_gen", [0])[0]
            key2 = (gen, color)
            if key2 not in store:
                # the sub-context joins the parent's failure domain and
                # keeps its fault plan: faults must keep firing — and
                # aborts must keep propagating — inside sub-communicators
                # (the pencil transposes run on cart_sub splits)
                sub = _Context(len(members), domain=ctx.domain)
                sub.fault_plan = ctx.fault_plan
                store[key2] = sub
            sub_ctx = store[key2]
        ctx.sync("split")
        if self.rank == 0:
            with ctx.lock:
                ctx._scratch["split_gen"][0] += 1
                ctx._scratch["split"] = {}
        new_rank = members.index(self.rank)
        world = [self.world_ranks[m] for m in members]
        return Communicator(sub_ctx, new_rank, world)

    def cart_create(self, dims: Sequence[int]) -> "CartesianCommunicator":
        """MPI_Cart_create (periodic flags irrelevant for transposes)."""
        if int(np.prod(dims)) != self.size:
            raise ValueError(f"dims {tuple(dims)} do not multiply to size {self.size}")
        return CartesianCommunicator(self._ctx, self.rank, self.world_ranks, tuple(dims))


class CartesianCommunicator(Communicator):
    """A communicator with an attached cartesian process grid."""

    def __init__(self, context, rank, world_ranks, dims: tuple[int, ...]) -> None:
        super().__init__(context, rank, world_ranks)
        self.dims = dims

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's cartesian coordinates (row-major, like MPI)."""
        return tuple(int(c) for c in np.unravel_index(self.rank, self.dims))

    def cart_sub(self, remain_dims: Sequence[bool]) -> Communicator:
        """MPI_Cart_sub: keep the dimensions flagged True, split on the rest."""
        if len(remain_dims) != len(self.dims):
            raise ValueError("remain_dims length must match dims")
        coords = self.coords
        dropped = tuple(c for c, keep in zip(coords, remain_dims) if not keep)
        kept = tuple(c for c, keep in zip(coords, remain_dims) if keep)
        kept_dims = tuple(d for d, keep in zip(self.dims, remain_dims) if keep)
        color = int(np.ravel_multi_index(dropped, tuple(
            d for d, keep in zip(self.dims, remain_dims) if not keep
        ))) if dropped else 0
        key = int(np.ravel_multi_index(kept, kept_dims)) if kept else 0
        return self.split(color, key)


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 120.0,
    fault_plan: FaultPlan | None = None,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``nranks`` simulated ranks; gather returns.

    Exceptions in any rank abort the whole program (surviving ranks raise
    :class:`SimMPIError` carrying the failed rank and operation) and
    re-raise the first root-cause failure in the caller.  An optional
    ``fault_plan`` injects deterministic rank kills, payload corruption,
    drops or delays.
    """
    ctx = _Context(nranks)
    ctx.fault_plan = fault_plan
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def worker(rank: int) -> None:
        comm = Communicator(ctx, rank, range(nranks))
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - must not deadlock peers
            errors[rank] = exc
            # when the exception already names a culprit rank (a detected
            # drop, a RankFailure), record *that* rank as the failure's
            # origin, not the rank that happened to notice first
            culprit = getattr(exc, "rank", None)
            ctx.fail(
                culprit if culprit is not None else rank,
                getattr(exc, "op", None) or "program",
                exc,
            )

    threads = [threading.Thread(target=worker, args=(r,), daemon=True) for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            ctx.abort()
            raise SimMPIError("SPMD program timed out (deadlock?)")
    for exc in errors:
        if exc is not None and not isinstance(exc, SimMPIError):
            raise exc
    for exc in errors:
        if exc is not None:
            raise exc
    return results
