"""SimMPI: an in-process, thread-backed MPI subset.

The execution environment has no MPI implementation, so the distributed
algorithms of the paper run on this simulated substrate instead: ranks
are Python threads, communicators carry barriers and exchange boards,
and the collective *semantics* (``alltoall``, ``sendrecv``, cartesian
topologies with ``cart_create``/``cart_sub``) match what the paper's code
gets from MPI.  Data movement is real (NumPy buffers change hands); only
the wire is simulated.  Message counts and volumes are instrumented so
that tests can verify claims like "using only MPI results in sixteen
times more MPI tasks that issue 256 times more messages that are 256
times smaller" (§5.3).

Performance *at scale* is not measured here — that is the job of
:mod:`repro.perfmodel`, which models the four benchmark machines.
"""

from repro.mpi.pool import LeaseGrowSource, PoolExhausted, RankLease, RankPool
from repro.mpi.simmpi import (
    Communicator,
    CartesianCommunicator,
    GrowRequired,
    PreemptRequired,
    ShrinkRequired,
    SimMPIError,
    run_spmd,
)
from repro.mpi.topology import CommPattern, comm_grid

__all__ = [
    "CartesianCommunicator",
    "CommPattern",
    "Communicator",
    "GrowRequired",
    "LeaseGrowSource",
    "PoolExhausted",
    "PreemptRequired",
    "RankLease",
    "RankPool",
    "ShrinkRequired",
    "SimMPIError",
    "comm_grid",
    "run_spmd",
]
