"""JSON-lines schema of the run telemetry stream.

One stream file (``telemetry.jsonl`` serial, ``telemetry-rankNNN.jsonl``
per rank in SPMD runs) holds one JSON object per line.  Every record
carries ``type`` and ``schema``; the run manifest is a sibling
``manifest.json`` file, not a stream record, so the stream stays
homogeneous and appendable.

The field-by-field contract lives in :data:`STEP_FIELDS`,
:data:`EVENT_FIELDS` and :data:`SUMMARY_FIELDS` — each maps a field
name to ``(required, description)`` and is rendered verbatim into
``docs/observability.md``.  :func:`validate_record` enforces it;
:func:`read_stream` parses a file back into dicts.  Bump
:data:`SCHEMA_VERSION` whenever a field changes meaning or a required
field is added.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterator

#: version stamped into every record and the manifest.
#: v4 added the optional ``job`` event field (multi-job scheduler: a
#: manager-level ``events.jsonl`` interleaves events of several jobs)
#: and the pool/job lifecycle event kinds.
#: v5 added the optional ``stats`` step group (streaming-statistics
#: accumulator counters, :mod:`repro.serving`) and the ``stats`` entry
#: in the section-timer enumeration.
SCHEMA_VERSION = 5

#: record types a stream may contain
RECORD_TYPES = ("step", "event", "summary")

#: ``type: "step"`` — one per recorded timestep (cadence ``every``)
STEP_FIELDS: dict[str, tuple[bool, str]] = {
    "type": (True, 'constant "step"'),
    "schema": (True, "schema version of this record (integer)"),
    "step": (True, "driver step count after this step"),
    "time": (True, "simulation time after this step (channel half-widths / u_tau)"),
    "dt": (True, "timestep used for this step"),
    "wall_s": (True, "wall-clock seconds since the previous record (recorder overhead excluded)"),
    "cfl": (
        True,
        "advective CFL number of the last substep (global max in SPMD runs); null when the "
        "state has gone non-finite",
    ),
    "divergence": (
        True,
        "max collocated spectral divergence, on the divergence_every cadence; null between "
        "samples and when non-finite",
    ),
    "rank": (True, "emitting rank (0 in serial runs)"),
    "nranks": (True, "world size of the run (1 in serial runs)"),
    "sections": (
        True,
        'per-section deltas since the previous record: {name: {"s": seconds, "calls": n}} '
        "over the SectionTimers names (transpose, fft, ns_advance, nonlinear_products, "
        "solve [nested in ns_advance], reorder, checkpoint, recovery, elastic, stats)",
    ),
    "transforms": (
        False,
        "TransformCounters deltas of the transform pipeline (transforms, fields_forward, "
        "fields_backward, workspace_bytes, workspace_allocs); absent when the backend "
        "exposes no counters (e.g. the pencil pipeline)",
    ),
    "solve": (
        False,
        "aggregated SolveCounters deltas over every built solve engine (solves, sweeps, "
        "columns, workspace_bytes, workspace_allocs); absent when the stepper exposes none",
    ),
    "recovery": (
        False,
        "RecoveryCounters deltas (checkpoints_saved/pruned, verify_failures, failures, "
        "rollbacks, restarts, dt_reductions, shrinks, grows, reshard_restores); absent "
        "until recovery counters are wired in (supervised runs)",
    ),
    "mpi": (
        False,
        "SimMPI MessageStats deltas {messages, bytes}; the stats object is shared by the "
        "communicator context, so the numbers are world totals (identical on every rank); "
        "absent in serial runs",
    ),
    "overlap": (
        False,
        "OverlapCounters deltas of the pipelined transposes (posts, waits, bytes_posted, "
        "bytes_completed, bytes_overlapped, wait_seconds, overlap_seconds); per-rank, not "
        "world totals; absent when the backend exposes no overlap counters (serial runs, "
        "P3DFFT baseline) and all-zero when no transpose runs pipelined",
    ),
    "precision": (
        False,
        "PrecisionCounters deltas of the transpose wire format (exchanges, casts, "
        "bytes_wire, bytes_full); bytes_full is what float64 payloads would have moved, "
        "bytes_wire what was actually staged — equal under wire='full', roughly halved "
        "under wire='mixed'; per-rank; absent when the backend exposes no precision "
        "counters (serial runs, P3DFFT baseline)",
    ),
    "stats": (
        False,
        "StatsCounters deltas of the streaming-statistics accumulator (samples, merges, "
        "publishes, restores, sample_seconds); sample_seconds is the accumulator's "
        "self-measured wall time, the numerator of its <1%-of-step-time budget; absent "
        "when no accumulator is attached (dns.attach_streaming)",
    ),
}

#: ``type: "event"`` — recovery / lifecycle events, one per occurrence
EVENT_FIELDS: dict[str, tuple[bool, str]] = {
    "type": (True, 'constant "event"'),
    "schema": (True, "schema version of this record (integer)"),
    "t_unix": (True, "unix wall-clock timestamp of the event (seconds)"),
    "step": (True, "driver step count when the event fired (-1 when unknown/job-level)"),
    "kind": (
        True,
        "event kind: failure | rollback | dt_reduction | restart | shrink | grow | "
        "preempted | giving_up | attach | soak_result | soak_summary | custom kinds; "
        "manager-level streams add the job lifecycle kinds submitted | placed | "
        "completed | failed | requeued | quarantine | probe",
    ),
    "detail": (True, "human-readable one-liner"),
    "attempt": (True, "retry attempt index the event belongs to (0 outside retry loops)"),
    "info": (True, "structured extras, e.g. a shrink's {ranks, pa, pb} (object, may be empty)"),
    "rank": (True, "emitting rank (-1 for job-level supervisors outside the SPMD program)"),
    "nranks": (True, "world size of the run"),
    "job": (
        False,
        "job name the event belongs to; present in manager-level streams "
        "(JobManager events.jsonl), absent in single-run streams",
    ),
}

#: ``type: "summary"`` — last record of a cleanly closed stream
SUMMARY_FIELDS: dict[str, tuple[bool, str]] = {
    "type": (True, 'constant "summary"'),
    "schema": (True, "schema version of this record (integer)"),
    "steps": (True, "steps recorded into this stream"),
    "records": (True, "step records written"),
    "events": (True, "event records written"),
    "wall_s": (True, "total wall seconds covered by the step records"),
    "sections": (True, 'cumulative per-section totals {name: {"s": seconds, "calls": n}}'),
    "overhead_s": (True, "recorder self-time (stream + trace emission)"),
    "overhead_frac": (
        True,
        "overhead_s / wall_s — the measured recorder overhead (budget: < 0.01); null when "
        "no step was recorded",
    ),
    "rank": (True, "emitting rank"),
    "nranks": (True, "world size of the run"),
}

_FIELDS = {"step": STEP_FIELDS, "event": EVENT_FIELDS, "summary": SUMMARY_FIELDS}


def validate_record(rec: dict) -> None:
    """Raise ``ValueError`` unless ``rec`` conforms to the schema."""
    if not isinstance(rec, dict):
        raise ValueError(f"record must be an object, got {type(rec).__name__}")
    rtype = rec.get("type")
    if rtype not in _FIELDS:
        raise ValueError(f"unknown record type {rtype!r} (expected one of {RECORD_TYPES})")
    fields = _FIELDS[rtype]
    for name, (required, _) in fields.items():
        if required and name not in rec:
            raise ValueError(f"{rtype} record missing required field {name!r}")
    unknown = set(rec) - set(fields)
    if unknown:
        raise ValueError(f"{rtype} record has undocumented fields {sorted(unknown)}")
    if rec["schema"] != SCHEMA_VERSION:
        raise ValueError(f"schema version {rec['schema']} != {SCHEMA_VERSION}")
    if rtype == "step":
        sections = rec["sections"]
        if not isinstance(sections, dict):
            raise ValueError("sections must be an object")
        for name, cell in sections.items():
            if set(cell) != {"s", "calls"}:
                raise ValueError(f"section {name!r} must hold exactly {{s, calls}}")


def read_stream(path, *, validate: bool = True) -> Iterator[dict]:
    """Yield the records of a JSON-lines telemetry stream."""
    with open(pathlib.Path(path), encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if validate:
                try:
                    validate_record(rec)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from exc
            yield rec
