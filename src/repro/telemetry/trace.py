"""Span tracing with Chrome ``trace_event`` export.

:class:`TraceWriter` collects *complete* events (``"ph": "X"`` — a name,
a start timestamp and a duration) and writes them in the Chrome Trace
Event JSON-object format, loadable in ``chrome://tracing`` and
https://ui.perfetto.dev.  Timestamps come from
:func:`time.perf_counter` relative to the writer's creation, so they
are monotonic and start near zero; they are exported in microseconds,
the unit the format specifies.

Two producers feed a writer:

* :class:`~repro.instrument.SectionTimers` — setting ``timers.tracer``
  makes every existing timed section (``transpose``, ``fft``,
  ``ns_advance``, nested ``solve``, ``checkpoint``, ``recovery``,
  ``elastic``) emit a span with no driver changes.  Nesting needs no
  explicit parent bookkeeping: Perfetto nests spans of one ``pid``/
  ``tid`` track by time containment, so a timestep renders as the
  Transpose / FFT / N-S-advance bars with the solve bar inside.
* explicit :meth:`TraceWriter.span` / :meth:`TraceWriter.instant`
  calls, for one-off phases (initialization, gather, regrid).

In a distributed run every rank owns a writer with ``pid=rank``
(:class:`~repro.telemetry.RunRecorder` wires this up), producing one
``trace-rankNNN.json`` per rank; :func:`merge_traces` combines them
into a single file whose process lanes are the ranks — the per-rank
SimMPI activity view.
"""

from __future__ import annotations

import json
import pathlib
import time


class TraceWriter:
    """Accumulate spans and export Chrome ``trace_event`` JSON.

    Parameters
    ----------
    pid:
        Process id recorded on every event.  Use the rank in SPMD runs
        so each rank gets its own lane.
    process_name:
        Optional label for the pid lane (a ``process_name`` metadata
        event).
    max_events:
        Hard cap on stored spans; once reached, further spans are
        dropped (counted in :attr:`dropped`) instead of growing memory
        without bound on long runs.
    """

    def __init__(
        self,
        pid: int = 0,
        process_name: str | None = None,
        max_events: int = 200_000,
    ) -> None:
        self.pid = int(pid)
        self.process_name = process_name
        self.max_events = int(max_events)
        self.t0 = time.perf_counter()
        self.dropped = 0
        # (name, cat, t_start_perf, duration_s, tid) tuples; converted to
        # dict events only at write time to keep the hot path cheap
        self._events: list[tuple[str, str, float, float, int]] = []

    # ------------------------------------------------------------------
    # producers
    # ------------------------------------------------------------------

    def add_complete(
        self, name: str, t_start: float, duration: float, tid: int = 0, cat: str = "section"
    ) -> None:
        """Record one finished span (``t_start`` in perf_counter time)."""
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append((name, cat, t_start, duration, tid))

    def span(self, name: str, tid: int = 0, cat: str = "phase"):
        """Context manager tracing a ``with``-block as one span."""
        return _Span(self, name, tid, cat)

    def instant(self, name: str, tid: int = 0, cat: str = "event") -> None:
        """Record a zero-duration marker."""
        self.add_complete(name, time.perf_counter(), 0.0, tid=tid, cat=cat)

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def events(self) -> list[dict]:
        """The trace as a list of Chrome trace-event dicts (ts in µs)."""
        out = []
        if self.process_name is not None:
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": 0,
                    "args": {"name": self.process_name},
                }
            )
        for name, cat, t_start, duration, tid in self._events:
            out.append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": (t_start - self.t0) * 1e6,
                    "dur": duration * 1e6,
                    "pid": self.pid,
                    "tid": tid,
                }
            )
        return out

    def write(self, path) -> pathlib.Path:
        """Write the Chrome trace JSON object; safe to call repeatedly
        (each call rewrites the file with everything collected so far)."""
        path = pathlib.Path(path)
        doc = {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.telemetry", "dropped_events": self.dropped},
        }
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(doc))
        tmp.replace(path)
        return path


class _Span:
    __slots__ = ("_writer", "_name", "_tid", "_cat", "_t0")

    def __init__(self, writer: TraceWriter, name: str, tid: int, cat: str) -> None:
        self._writer = writer
        self._name = name
        self._tid = tid
        self._cat = cat

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._writer.add_complete(
            self._name, self._t0, time.perf_counter() - self._t0, tid=self._tid, cat=self._cat
        )


def merge_traces(paths, out) -> pathlib.Path:
    """Merge per-rank trace files into one multi-lane trace.

    Each input keeps its own ``pid`` (the rank), so the merged file
    shows one process lane per rank — open it in Perfetto to see the
    whole SPMD program's concurrent activity.  Timestamps are aligned
    by subtracting each file's earliest ``ts``; per-rank clocks are the
    in-process ``perf_counter``, so alignment is approximate at the
    microsecond level (good enough to see transpose waves line up).
    """
    paths = [pathlib.Path(p) for p in paths]
    merged: list[dict] = []
    for p in paths:
        doc = json.loads(p.read_text())
        events = doc["traceEvents"]
        starts = [e["ts"] for e in events if e.get("ph") == "X"]
        base = min(starts) if starts else 0.0
        for e in events:
            if e.get("ph") == "X":
                e = dict(e, ts=e["ts"] - base)
            merged.append(e)
    out = pathlib.Path(out)
    out.write_text(
        json.dumps(
            {
                "traceEvents": merged,
                "displayTimeUnit": "ms",
                "otherData": {"producer": "repro.telemetry.merge_traces", "inputs": len(paths)},
            }
        )
    )
    return out
