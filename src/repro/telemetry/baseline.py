"""Perf-regression harness: record hot-path medians, check against them.

The repo's hot-path wins (the 1.6-1.8x planned transform pipeline of
PR 1, the 2.3-3.0x blocked solve engine of PR 2) are only safe if a
regression is *named and quantified* the moment it lands.  This module
measures a small set of representative hot-path cases, records their
medians into a baseline file (``benchmarks/results/baselines.json`` is
the committed one), and compares later runs against it.

Cross-machine comparability: wall times are normalized by a fixed
calibration kernel (matmul + FFT, measured the same way in the same
process), so a baseline recorded on one machine is meaningful on
another as a *ratio* — perfectly so for kernels that scale like the
calibration mix, approximately otherwise.  Same-machine checks (the
intended blocking use) compare to a few percent; cross-machine checks
run in report-only mode in CI.

Driven by ``scripts/check_perf.py``::

    python scripts/check_perf.py --record          # (re)write the baseline
    python scripts/check_perf.py                   # fail on >tolerance regression
    python scripts/check_perf.py --report          # never fail, print the table
    python scripts/check_perf.py --inject-slowdown 1.2   # self-test the detector
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.telemetry.manifest import _machine
from repro.telemetry.schema import SCHEMA_VERSION

#: flag a case whose normalized median grew beyond this fraction
DEFAULT_TOLERANCE = 0.10

#: the committed baseline location
DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results" / "baselines.json"


@dataclass(frozen=True)
class BenchCase:
    """One named hot-path measurement.

    ``make`` runs the setup (pipelines planned, engines built, state
    initialized — none of that is the regression surface) and returns
    the thunk that *is* timed.
    """

    name: str
    make: Callable[[], Callable[[], None]]
    #: what PR / subsystem this case guards, for the report
    guards: str = ""


# ----------------------------------------------------------------------
# the guarded hot paths
# ----------------------------------------------------------------------


def _case_transform_chain() -> Callable[[], None]:
    from repro.core.grid import ChannelGrid
    from repro.fft.pipeline import TransformPipeline

    g = ChannelGrid(32, 33, 32)
    pipe = TransformPipeline(g)
    rng = np.random.default_rng(0)
    specs = [
        rng.standard_normal(g.spectral_shape) + 1j * rng.standard_normal(g.spectral_shape)
        for _ in range(3)
    ]
    up, vp, wp = pipe.to_physical_many(specs)
    ww = wp * wp
    prods = [up * up - ww, vp * vp - ww, up * vp, up * wp, vp * wp]

    def chain() -> None:
        pipe.to_physical_many(specs)
        pipe.from_physical_many(prods)

    return chain


def _case_solve_engine() -> Callable[[], None]:
    from repro.linalg.custom import FoldedLU
    from repro.linalg.structure import BandedSystemSpec, FoldedBanded

    rng = np.random.default_rng(0)
    spec = BandedSystemSpec(n=256, kl=3, ku=3, corner=3)
    data = rng.standard_normal((32, 256, spec.window))
    data[:, np.arange(256), spec.mdiag] += 14.0
    lu = FoldedLU(FoldedBanded(spec, data))
    rhs = rng.standard_normal((32, 256)) + 1j * rng.standard_normal((32, 256))
    engine = lu.engine()
    engine.solve(rhs)  # build the workspace outside the timed region

    def solve() -> None:
        engine.solve(rhs)

    return solve


def _case_pipelined_transpose() -> Callable[[], None]:
    from repro.core.grid import ChannelGrid
    from repro.mpi.simmpi import run_spmd
    from repro.pencil.parallel_fft import PencilTransforms
    from repro.pencil.transpose import TransposeMethod

    nx, ny, nz = 32, 16, 32
    grid = ChannelGrid(nx, ny, nz)
    rng = np.random.default_rng(0)
    spec = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(
        grid.spectral_shape
    )

    def prog(comm):
        cart = comm.cart_create((2, 2))
        tr = PencilTransforms(
            cart, nx, ny, nz, dealias=False, method=TransposeMethod.PIPELINED
        )
        d = tr.decomp
        loc = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
        for _ in range(2):
            loc = tr.fft_cycle(loc)
        return True

    def cycle() -> None:
        run_spmd(4, prog)

    return cycle


#: the 1-D stage transforms a 32^3 pencil run plans along non-contiguous
#: axes — the ones MEASURE actually times (last-axis plans have a single
#: candidate and are free either way)
WISDOM_PLAN_SET: tuple[tuple, ...] = (
    ("fft", (32, 16, 33), 0, None),
    ("ifft", (32, 16, 33), 1, None),
    ("rfft", (32, 16, 33), 0, None),
    ("irfft", (17, 16, 33), 0, 32),
)


def _case_warm_wisdom_plan() -> Callable[[], None]:
    import tempfile

    from repro.fft.plans import Planner, PlanFlags
    from repro.tuning import WisdomStore

    store = WisdomStore(pathlib.Path(tempfile.mkdtemp(prefix="wisdom-bench-")) / "wisdom.json")

    def plan_all() -> None:
        # a fresh Planner per call: the in-memory plan cache must not
        # stand in for the store, only the wisdom lookups may
        planner = Planner(flags=PlanFlags.MEASURE, wisdom=store)
        for kind, shape, axis, nout in WISDOM_PLAN_SET:
            planner.plan(kind, shape, axis, nout=nout)

    plan_all()  # cold pass populates the store; timed passes are warm
    return plan_all


def _case_mixed_wire_transpose() -> Callable[[], None]:
    from repro.core.grid import ChannelGrid
    from repro.mpi.simmpi import run_spmd
    from repro.pencil.parallel_fft import PencilTransforms
    from repro.pencil.transpose import TransposeMethod

    nx, ny, nz = 32, 16, 32
    grid = ChannelGrid(nx, ny, nz)
    rng = np.random.default_rng(0)
    spec = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(
        grid.spectral_shape
    )

    def prog(comm):
        cart = comm.cart_create((2, 2))
        tr = PencilTransforms(
            cart, nx, ny, nz, dealias=False, method=TransposeMethod.PIPELINED,
            wire="mixed",
        )
        d = tr.decomp
        loc = np.ascontiguousarray(spec[d.x_slice, d.z_spec_slice, :])
        for _ in range(2):
            loc = tr.fft_cycle(loc)
        return True

    def cycle() -> None:
        run_spmd(4, prog)

    return cycle


def _case_grow_cascade() -> Callable[[], None]:
    """The elastic-expansion restore path: a serial ``1x1`` snapshot
    reshards up through ``2x2`` to ``2x4`` — what the supervisor pays at
    every ``GrowRequired`` boundary."""
    import shutil
    import tempfile

    from repro.core import ChannelConfig
    from repro.core.checkpoint import ShardedCheckpointRotation
    from repro.mpi.simmpi import run_spmd
    from repro.pencil.distributed import DistributedChannelDNS

    cfg = ChannelConfig(nx=32, ny=33, nz=32, dt=4e-4, init_amplitude=1.0, seed=11)
    base = pathlib.Path(tempfile.mkdtemp(prefix="grow-bench-"))
    seed_dir = base / "serial"
    stage_dir = base / "stage"

    def seed(comm):
        dns = DistributedChannelDNS(comm, cfg, pa=1, pb=1)
        dns.initialize()
        dns.run(1)
        ShardedCheckpointRotation(seed_dir, keep=2).save(dns)
        return True

    run_spmd(1, seed)

    def cascade() -> None:
        shutil.rmtree(stage_dir, ignore_errors=True)

        def grow_2x2(comm):
            dns = DistributedChannelDNS(comm, cfg, pa=2, pb=2)
            ShardedCheckpointRotation(seed_dir, keep=2).load_latest(dns, reshard=True)
            ShardedCheckpointRotation(stage_dir, keep=2).save(dns)
            return True

        def grow_2x4(comm):
            dns = DistributedChannelDNS(comm, cfg, pa=2, pb=4)
            ShardedCheckpointRotation(stage_dir, keep=2).load_latest(dns, reshard=True)
            return True

        run_spmd(4, grow_2x2)
        run_spmd(8, grow_2x4)

    return cascade


def _case_stats_query() -> Callable[[], None]:
    """The serving read path: 32 mixed statistics queries against a
    warm :class:`~repro.serving.StatisticsService` (response-cache hits
    plus the interpolation work of uncached y+ sweeps)."""
    import tempfile

    from repro.serving import StatisticsService
    from repro.serving.synthetic import populate_store

    store = populate_store(
        pathlib.Path(tempfile.mkdtemp(prefix="stats-bench-")) / "store",
        (180.0, 550.0, 1000.0, 2000.0),
    )
    service = StatisticsService(store, cache_size=256)
    y_sweep = tuple(float(y) for y in np.geomspace(1.0, 150.0, 16))

    def queries() -> None:
        for re_tau in (180.0, 350.0, 550.0, 1500.0):
            service.law_of_wall(re_tau, y_sweep)
            for comp in ("u", "v", "w", "uv"):
                service.variance(re_tau, comp, y_sweep)
            service.spectrum(re_tau, "x", "u", 15.0)
            service.spectrum(re_tau, "z", "u", 15.0)
            service.spectrum(re_tau, "x", "w", 100.0)

    queries()  # cold pass fills both caches; timed passes are the warm path
    return queries


def _case_dns_step() -> Callable[[], None]:
    from repro.core import ChannelConfig, ChannelDNS

    dns = ChannelDNS(ChannelConfig(nx=16, ny=25, nz=16, dt=2e-4, seed=3, init_amplitude=0.5))
    dns.initialize()
    dns.run(2)  # warm the pipeline workspaces and the solve engines

    def step() -> None:
        dns.step()

    return step


HOT_PATH_CASES: tuple[BenchCase, ...] = (
    BenchCase("transform_chain_32", _case_transform_chain, guards="PR 1 planned pipeline (3 fwd + 5 bwd, 32x33x32)"),
    BenchCase("solve_engine_256x32", _case_solve_engine, guards="PR 2 blocked banded solve (n=256, batch=32, complex RHS)"),
    BenchCase("dns_step_16", _case_dns_step, guards="whole RK3 IMEX step (16x25x16)"),
    BenchCase(
        "pipelined_transpose_32",
        _case_pipelined_transpose,
        guards="PR 6 overlapped pencil transposes (2 fft_cycles, 4 ranks, 32x16x32)",
    ),
    BenchCase(
        "warm_wisdom_plan_32",
        _case_warm_wisdom_plan,
        guards="PR 7 warm-start MEASURE planning from a populated wisdom store (32^3 pencil stage set)",
    ),
    BenchCase(
        "mixed_wire_transpose_32",
        _case_mixed_wire_transpose,
        guards="PR 7 float32-payload pipelined transposes (2 fft_cycles, 4 ranks, 32x16x32)",
    ),
    BenchCase(
        "grow_cascade_32",
        _case_grow_cascade,
        guards="PR 9 elastic-expansion reshard restore (1x1 -> 2x2 -> 2x4, 32x33x32)",
    ),
    BenchCase(
        "stats_query_32",
        _case_stats_query,
        guards="PR 10 warm-cache statistics serving (32 mixed queries, 4-Re_tau store)",
    ),
)


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------


def _calibration_kernel() -> Callable[[], None]:
    """Fixed matmul + FFT mix, the per-machine normalization unit."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((96, 96))
    b = rng.standard_normal((96, 96))
    x = rng.standard_normal(4096)

    def kernel() -> None:
        for _ in range(4):
            a @ b
            np.fft.rfft(x)

    return kernel


def _median_seconds(thunk: Callable[[], None], repeats: int, min_time: float) -> float:
    """Median per-call seconds over ``repeats`` samples, autoranged so a
    sample lasts at least ``min_time`` (timeit-style)."""
    thunk()  # warm-up
    number = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(number):
            thunk()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time or number >= 1 << 20:
            break
        number *= 2 if elapsed <= 0 else max(2, int(min_time / max(elapsed, 1e-9)) + 1)
    samples = [elapsed / number]
    for _ in range(repeats - 1):
        t0 = time.perf_counter()
        for _ in range(number):
            thunk()
        samples.append((time.perf_counter() - t0) / number)
    return float(np.median(samples))


def measure(
    cases=HOT_PATH_CASES, *, repeats: int = 5, min_time: float = 0.05
) -> dict:
    """Measure every case plus the calibration kernel.

    Returns ``{"calibration_s": c, "cases": {name: {"median_s", "normalized",
    "guards"}}}`` with ``normalized = median_s / calibration_s``.
    """
    calibration = _median_seconds(_calibration_kernel(), repeats, min_time)
    out: dict = {"calibration_s": calibration, "cases": {}}
    for case in cases:
        thunk = case.make()
        median = _median_seconds(thunk, repeats, min_time)
        out["cases"][case.name] = {
            "median_s": median,
            "normalized": median / calibration,
            "guards": case.guards,
        }
    return out


def record_baselines(path, cases=HOT_PATH_CASES, *, repeats: int = 5, min_time: float = 0.05) -> dict:
    """Measure and write the baseline file; returns the written document."""
    doc = {
        "schema": SCHEMA_VERSION,
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": _machine(),
        "tolerance": DEFAULT_TOLERANCE,
        **measure(cases, repeats=repeats, min_time=min_time),
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def load_baselines(path) -> dict:
    return json.loads(pathlib.Path(path).read_text())


# ----------------------------------------------------------------------
# checking
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CaseCheck:
    """Verdict for one case: current vs baseline, normalized."""

    name: str
    baseline_normalized: float
    current_normalized: float
    #: current/baseline - 1, i.e. +0.23 means 23% slower than the baseline
    change: float
    status: str  # "ok" | "regressed" | "improved" | "new"
    guards: str = ""


def check_against(
    baseline: dict,
    *,
    cases=HOT_PATH_CASES,
    repeats: int = 5,
    min_time: float = 0.05,
    tolerance: float | None = None,
    inject_slowdown: float = 1.0,
) -> list[CaseCheck]:
    """Measure now and compare to a loaded baseline document.

    ``inject_slowdown`` multiplies the current measurements — the
    self-test proving the detector actually fires (a 1.2 factor must be
    reported as a ~20% regression).
    """
    tol = baseline.get("tolerance", DEFAULT_TOLERANCE) if tolerance is None else tolerance
    current = measure(cases, repeats=repeats, min_time=min_time)
    results: list[CaseCheck] = []
    for case in cases:
        cur = current["cases"][case.name]
        cur_norm = cur["normalized"] * inject_slowdown
        base = baseline.get("cases", {}).get(case.name)
        if base is None:
            results.append(CaseCheck(case.name, float("nan"), cur_norm, 0.0, "new", case.guards))
            continue
        base_norm = base["normalized"]
        change = cur_norm / base_norm - 1.0
        if change > tol:
            status = "regressed"
        elif change < -tol:
            status = "improved"
        else:
            status = "ok"
        results.append(CaseCheck(case.name, base_norm, cur_norm, change, status, case.guards))
    return results


def format_check_report(results: list[CaseCheck], tolerance: float) -> str:
    """The named, percentage-quantified verdict table."""
    lines = [
        f"perf check vs baseline (tolerance ±{tolerance:.0%}, calibration-normalized):",
        f"{'case':>22} {'baseline':>10} {'current':>10} {'change':>9}  status",
    ]
    for r in results:
        base = "-" if r.status == "new" else f"{r.baseline_normalized:10.3f}"
        lines.append(
            f"{r.name:>22} {base:>10} {r.current_normalized:>10.3f} "
            f"{r.change:>+8.1%}  {r.status.upper() if r.status == 'regressed' else r.status}"
            + (f"  [{r.guards}]" if r.guards and r.status == "regressed" else "")
        )
    regressed = [r for r in results if r.status == "regressed"]
    if regressed:
        worst = max(regressed, key=lambda r: r.change)
        lines.append(
            f"FAIL: {len(regressed)} hot path(s) regressed; worst is "
            f"{worst.name} at {worst.change:+.1%} (guards: {worst.guards or 'n/a'})"
        )
    else:
        lines.append("OK: no hot path regressed beyond tolerance")
    return "\n".join(lines)
