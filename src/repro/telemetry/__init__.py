"""Unified run observability: structured records, traces, perf baselines.

The paper tells its whole optimisation story through measurements
(Tables 2-4, 7-10); this package turns the repo's in-process
instrumentation (:mod:`repro.instrument`) into durable, machine-readable
artefacts:

* :class:`RunRecorder` / :class:`TelemetryConfig` — per-step JSON-lines
  records (section times, transform/solve/recovery counters, dt, CFL,
  divergence, rank metadata) plus a run manifest, attachable to every
  driver via ``telemetry=...``;
* :mod:`repro.telemetry.trace` — span tracing with Chrome
  ``trace_event`` export, fed automatically by every
  :class:`~repro.instrument.SectionTimers`;
* :mod:`repro.telemetry.report` — Table-9/10-style breakdowns
  regenerated from a recorded stream;
* :mod:`repro.telemetry.baseline` — the perf-regression harness behind
  ``scripts/check_perf.py``.

Operator's guide: ``docs/observability.md``.  Design: DESIGN.md §6f.
"""

from repro.telemetry.manifest import build_manifest, read_manifest, write_manifest
from repro.telemetry.recorder import RunRecorder, TelemetryConfig
from repro.telemetry.schema import SCHEMA_VERSION, read_stream, validate_record
from repro.telemetry.trace import TraceWriter, merge_traces

__all__ = [
    "RunRecorder",
    "SCHEMA_VERSION",
    "TelemetryConfig",
    "TraceWriter",
    "build_manifest",
    "merge_traces",
    "read_manifest",
    "read_stream",
    "validate_record",
    "write_manifest",
]
