"""Run manifest: what produced a telemetry stream, pinned alongside it.

A stream of timings is only an artefact if a later reader can tell what
was run: the configuration (fingerprinted, so two streams are comparable
at a glance), the code revision, the package versions, the machine and
the plan-wisdom provenance (store path, schema, hit/miss counts).
:func:`build_manifest` collects all of it; :class:`~repro.telemetry.RunRecorder`
writes it as ``manifest.json`` next to the stream.  Everything is
best-effort — a missing git binary or package never fails a run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import platform
import subprocess
import time

from repro.telemetry.schema import SCHEMA_VERSION

MANIFEST_NAME = "manifest.json"


def config_fingerprint(config) -> tuple[dict, str]:
    """(JSON-safe config dict, sha256 of its canonical serialization).

    Accepts a dataclass (e.g. :class:`~repro.core.solver.ChannelConfig`),
    a plain dict, or ``None``.  Non-JSON values (e.g. the SMR91 scheme
    dataclass) are serialized through ``repr`` so the fingerprint is
    stable and total.
    """
    if config is None:
        d: dict = {}
    elif dataclasses.is_dataclass(config) and not isinstance(config, type):
        d = dataclasses.asdict(config)
    elif isinstance(config, dict):
        d = dict(config)
    else:
        d = {"repr": repr(config)}
    canonical = json.dumps(d, sort_keys=True, default=repr)
    return json.loads(canonical), hashlib.sha256(canonical.encode()).hexdigest()


def _git_revision() -> dict:
    try:
        here = pathlib.Path(__file__).resolve().parent
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=here, capture_output=True, text=True, timeout=5,
        )
        if rev.returncode != 0:
            return {"rev": None, "dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=here, capture_output=True, text=True, timeout=5,
        )
        return {
            "rev": rev.stdout.strip(),
            "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
        }
    except (OSError, subprocess.SubprocessError):
        return {"rev": None, "dirty": None}


def _versions() -> dict:
    out = {"python": platform.python_version()}
    for pkg in ("numpy", "scipy"):
        try:
            out[pkg] = __import__(pkg).__version__
        except Exception:  # noqa: BLE001 - absence is informative, not fatal
            out[pkg] = None
    try:
        from repro import __version__ as repro_version

        out["repro"] = repro_version
    except Exception:  # noqa: BLE001
        out["repro"] = None
    return out


def _machine() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or None,
        "cpu_count": os.cpu_count(),
        "hostname": platform.node(),
    }


def build_manifest(
    config=None,
    *,
    nranks: int = 1,
    grid: tuple[int, int] | None = None,
    extra: dict | None = None,
    pool: dict | None = None,
) -> dict:
    """Assemble the manifest dict for one run.

    ``grid`` is the SPMD process grid ``(pa, pb)`` when applicable;
    ``extra`` is merged in verbatim under ``"extra"`` (campaign ids,
    scheduler job ids, ...).  ``pool`` is the rank-pool block of a
    multi-job scheduler manifest (a :meth:`~repro.mpi.pool.RankPool.census`
    snapshot plus submitted-job metadata); ``None`` for single runs.
    """
    cfg_dict, fingerprint = config_fingerprint(config)
    try:
        from repro.tuning import wisdom_provenance

        wisdom = wisdom_provenance()
    except Exception:  # noqa: BLE001 - provenance is best-effort, like git/versions
        wisdom = {"enabled": False}
    return {
        "schema": SCHEMA_VERSION,
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": cfg_dict,
        "config_fingerprint": fingerprint,
        "git": _git_revision(),
        "versions": _versions(),
        "machine": _machine(),
        "nranks": int(nranks),
        "process_grid": list(grid) if grid is not None else None,
        "wisdom": wisdom,
        "pool": dict(pool) if pool else None,
        "extra": dict(extra) if extra else {},
    }


def write_manifest(directory, manifest: dict) -> pathlib.Path:
    """Write ``manifest.json`` under ``directory`` (atomic replace)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    tmp.replace(path)
    return path


def read_manifest(directory) -> dict:
    """Load ``manifest.json`` from a telemetry directory."""
    return json.loads((pathlib.Path(directory) / MANIFEST_NAME).read_text())
