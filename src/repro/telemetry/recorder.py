"""Structured per-step run recording (JSON-lines + manifest + trace).

:class:`RunRecorder` is the one observability attachment every driver
shares — serial :class:`~repro.core.solver.ChannelDNS`, per-rank
:class:`~repro.pencil.distributed.DistributedChannelDNS`, the
:class:`~repro.core.supervisor.RunSupervisor` and the job-level elastic
loop.  Attached to a driver it emits one ``step`` record per timestep
(section-time deltas, transform/solve/recovery/overlap/precision counter deltas,
dt, CFL, divergence, rank metadata) into an append-only JSON-lines stream, and
optionally feeds a :class:`~repro.telemetry.trace.TraceWriter` so the
same run opens in Perfetto.  A ``manifest.json`` (config fingerprint,
git revision, package versions, machine info) is written beside the
stream by :mod:`repro.telemetry.manifest`.

Hot-path discipline: the recorder follows the
:class:`~repro.instrument.TransformCounters` zero-allocation rule.  All
scratch — the reused record dict, the per-section delta slots, the
counter-delta slots — is allocated on first use and counted in
``counters.workspace_allocs``; after the first record of a steady-state
run the count must freeze (asserted by
``tests/telemetry/test_recorder.py``), and the recorder's own wall time
accumulates in ``counters.overhead_seconds`` so the <1%-of-step-time
budget is checkable from the stream's ``summary`` record.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, replace

import math

from repro.instrument import TelemetryCounters
from repro.telemetry.manifest import build_manifest, write_manifest
from repro.telemetry.schema import SCHEMA_VERSION
from repro.telemetry.trace import TraceWriter


def _finite(x) -> float | None:
    """Diagnostics of a blown-up state serialize as null, not as NaN
    (the stream stays valid JSON and the watchdog still gets to classify)."""
    x = float(x)
    return x if math.isfinite(x) else None


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of a telemetry attachment."""

    #: directory receiving the stream, manifest and trace files
    directory: str | pathlib.Path = "telemetry"
    #: record every k-th step (1 = every step)
    every: int = 1
    #: compute the (expensive, in SPMD runs collective) divergence norm
    #: every k recorded steps; 0 disables it (the field stays null)
    divergence_every: int = 0
    #: flush the stream and rewrite the trace every k records
    flush_every: int = 25
    #: collect and export a Chrome trace of the timer sections
    trace: bool = True
    #: span cap of the trace writer (older runs stop collecting, not crash)
    trace_max_events: int = 200_000
    #: write manifest.json (rank 0 only in SPMD runs)
    manifest: bool = True

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.flush_every < 1:
            raise ValueError("flush_every must be >= 1")

    @classmethod
    def coerce(cls, value) -> "TelemetryConfig":
        """Accept a config, a directory path, or a path string."""
        if isinstance(value, cls):
            return value
        if isinstance(value, (str, pathlib.Path)):
            return cls(directory=value)
        raise TypeError(f"telemetry must be a TelemetryConfig or a path, got {type(value).__name__}")


class RunRecorder:
    """Emit structured per-step records for one driver (or job) run.

    Parameters
    ----------
    telemetry:
        A :class:`TelemetryConfig` or a directory path.
    rank, nranks:
        Rank metadata stamped on every record.  ``rank=-1`` marks a
        job-level recorder living outside the SPMD program (the elastic
        supervisor's event stream).
    extra:
        Free-form dict merged into the manifest.
    """

    def __init__(self, telemetry, *, rank: int = 0, nranks: int = 1, extra: dict | None = None) -> None:
        self.config = TelemetryConfig.coerce(telemetry)
        self.rank = int(rank)
        self.nranks = int(nranks)
        self.extra = extra
        self.counters = TelemetryCounters()
        self.directory = pathlib.Path(self.config.directory)
        self.trace: TraceWriter | None = None
        self._fh = None
        self._closed = False
        self._dns = None
        self._timers = None
        self._transforms = None
        self._solve_fn = None
        self._recovery = None
        self._mpi_stats = None
        self._overlap = None
        self._precision = None
        self._since_flush = 0
        self._wall_total = 0.0
        self._steps_recorded = 0
        self._last_wall: float | None = None
        # reusable scratch (the zero-allocation workspace) ---------------
        self._rec: dict = {}
        self._sections_out: dict[str, dict] = {}
        self._last_elapsed: dict[str, float] = {}
        self._last_calls: dict[str, int] = {}
        self._last_counts: dict[str, dict[str, float]] = {}
        self._count_out: dict[str, dict] = {}
        self._sections_total: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _stream_name(self) -> str:
        if self.rank < 0:
            return "events.jsonl"
        if self.nranks > 1:
            return f"telemetry-rank{self.rank:03d}.jsonl"
        return "telemetry.jsonl"

    def trace_path(self) -> pathlib.Path:
        if self.nranks > 1:
            return self.directory / f"trace-rank{self.rank:03d}.json"
        return self.directory / "trace.json"

    def stream_path(self) -> pathlib.Path:
        return self.directory / self._stream_name()

    def open(self, config=None, grid: tuple[int, int] | None = None) -> None:
        """Open the stream (idempotent); write the manifest on rank <= 0."""
        if self._fh is not None:
            return
        if self._closed:
            raise RuntimeError("recorder already closed")
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.config.manifest and self.rank <= 0:
            write_manifest(
                self.directory,
                build_manifest(config, nranks=self.nranks, grid=grid, extra=self.extra),
            )
        self._fh = open(self.stream_path(), "a", encoding="utf-8")

    def attach(self, dns) -> "RunRecorder":
        """Wire this recorder into a driver (serial or per-rank distributed).

        Re-attaching (e.g. after a supervisor rollback replaced the
        driver) re-baselines every delta against the new driver's timers
        and counters; the stream and scratch are kept.
        """
        self._dns = dns
        dns.recorder = self
        self._timers = getattr(dns, "timers", None) or dns.stepper.timers
        backend = getattr(dns, "backend", None) or getattr(dns, "transforms", None)
        self._transforms = getattr(backend, "counters", None)
        self._overlap = getattr(backend, "overlap_counters", None)
        self._precision = getattr(backend, "precision_counters", None)
        self._solve_fn = getattr(dns.stepper, "solve_counters", None)
        comm = getattr(dns, "comm", None)
        self._mpi_stats = getattr(comm, "stats", None)
        grid = None
        if comm is not None:
            d = getattr(dns, "decomp", None)
            if d is not None:
                grid = (getattr(dns.transforms, "pa", 0), getattr(dns.transforms, "pb", 0))
        self.open(config=getattr(dns, "config", None), grid=grid)
        if self.config.trace and self.trace is None:
            self.trace = TraceWriter(
                pid=max(self.rank, 0),
                process_name=f"rank {max(self.rank, 0)}" if self.nranks > 1 else "dns",
                max_events=self.config.trace_max_events,
            )
        if self.trace is not None:
            self._timers.tracer = self.trace
        self._rebaseline()
        self._last_wall = time.perf_counter()
        return self

    def set_recovery_counters(self, counters) -> None:
        """Wire a :class:`~repro.instrument.RecoveryCounters` into the stream."""
        self._recovery = counters
        if counters is not None:
            self._baseline_counts("recovery", counters.snapshot())

    def _rebaseline(self) -> None:
        t = self._timers
        if t is not None:
            # a replacement driver brings fresh (zeroed) timers: reset every
            # known baseline first, or deltas against the old totals go negative
            for k in self._last_elapsed:
                self._last_elapsed[k] = 0.0
                self._last_calls[k] = 0
            for k, v in t.elapsed.items():
                self._last_elapsed[k] = v
                self._last_calls[k] = t.calls.get(k, 0)
        if self._transforms is not None:
            self._baseline_counts("transforms", self._counter_scalars(self._transforms.snapshot()))
        if self._solve_fn is not None:
            snap = self._solve_fn()
            if snap is not None:
                self._baseline_counts("solve", snap)
        # recovery counters are NOT re-baselined: they outlive the driver
        # (the supervisor owns them), and the failure/rollback increments
        # that triggered a re-attach must still show up as deltas
        if self._mpi_stats is not None:
            self._baseline_counts(
                "mpi", {"messages": self._mpi_stats.messages, "bytes": self._mpi_stats.bytes}
            )
        if self._overlap is not None:
            self._baseline_counts("overlap", self._overlap.snapshot())
        if self._precision is not None:
            self._baseline_counts("precision", self._precision.snapshot())
        streaming = getattr(self._dns, "streaming", None)
        if streaming is not None:
            self._baseline_counts("stats", streaming.counters.snapshot())

    @staticmethod
    def _counter_scalars(snapshot: dict) -> dict:
        """Keep only scalar counters (drop nested per-stage dicts)."""
        return {k: v for k, v in snapshot.items() if not isinstance(v, dict)}

    def _baseline_counts(self, group: str, snap: dict) -> None:
        last = self._last_counts.get(group)
        if last is None:
            last = self._last_counts[group] = {}
            self._count_out[group] = {}
            self.counters.workspace_allocs += 1
        out = self._count_out[group]
        for k, v in snap.items():
            if k not in last:
                self.counters.workspace_allocs += 1
                out[k] = 0
            last[k] = v

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_step(self, dns=None, force: bool = False) -> None:
        """Emit one ``step`` record (respecting the ``every`` cadence)."""
        dns = dns if dns is not None else self._dns
        if dns is None:
            raise RuntimeError("attach() a driver before record_step()")
        step = dns.step_count
        if not force and step % self.config.every:
            return
        t_start = time.perf_counter()
        self._steps_recorded += 1
        wall = 0.0 if self._last_wall is None else t_start - self._last_wall
        self._wall_total += wall

        rec = self._rec
        rec["type"] = "step"
        rec["schema"] = SCHEMA_VERSION
        rec["step"] = int(step)
        rec["time"] = float(dns.state.time)
        rec["dt"] = float(dns.stepper.dt)
        rec["wall_s"] = wall
        rec["cfl"] = _finite(dns.cfl_number())
        div_every = self.config.divergence_every
        if div_every and self._steps_recorded % div_every == 0:
            rec["divergence"] = _finite(dns.divergence_norm())
        else:
            rec["divergence"] = None
        rec["rank"] = self.rank
        rec["nranks"] = self.nranks
        rec["sections"] = self._section_deltas()
        if self._transforms is not None:
            rec["transforms"] = self._count_deltas(
                "transforms", self._counter_scalars(self._transforms.snapshot())
            )
        if self._solve_fn is not None:
            snap = self._solve_fn()
            if snap is not None:
                rec["solve"] = self._count_deltas("solve", snap)
        if self._recovery is not None:
            rec["recovery"] = self._count_deltas("recovery", self._recovery.snapshot())
        if self._mpi_stats is not None:
            rec["mpi"] = self._count_deltas(
                "mpi", {"messages": self._mpi_stats.messages, "bytes": self._mpi_stats.bytes}
            )
        if self._overlap is not None:
            rec["overlap"] = self._count_deltas("overlap", self._overlap.snapshot())
        if self._precision is not None:
            rec["precision"] = self._count_deltas("precision", self._precision.snapshot())
        # late-bound on purpose: streaming statistics may be attached after
        # telemetry (attach_streaming has no ordering contract with attach)
        streaming = getattr(dns, "streaming", None)
        if streaming is not None:
            rec["stats"] = self._count_deltas("stats", streaming.counters.snapshot())
        self._write(rec)
        self.counters.records += 1
        t_end = time.perf_counter()
        self.counters.overhead_seconds += t_end - t_start
        self._last_wall = t_end

    def _section_deltas(self) -> dict:
        t = self._timers
        out = self._sections_out
        totals = self._sections_total
        last_e, last_c = self._last_elapsed, self._last_calls
        # zero every known slot first: after a re-attach the new timers may
        # not have touched a section yet, and a stale delta must not repeat
        for cell in out.values():
            cell["s"] = 0.0
            cell["calls"] = 0
        for k, v in t.elapsed.items():
            cell = out.get(k)
            if cell is None:
                cell = out[k] = {"s": 0.0, "calls": 0}
                totals[k] = {"s": 0.0, "calls": 0}
                self.counters.workspace_allocs += 1
                last_e.setdefault(k, 0.0)
                last_c.setdefault(k, 0)
            calls = t.calls.get(k, 0)
            ds = v - last_e[k]
            dc = calls - last_c[k]
            cell["s"] = ds
            cell["calls"] = dc
            tot = totals[k]
            tot["s"] += ds
            tot["calls"] += dc
            last_e[k] = v
            last_c[k] = calls
        return out

    def _count_deltas(self, group: str, snap: dict) -> dict:
        last = self._last_counts.get(group)
        if last is None:
            self._baseline_counts(group, {})
            last = self._last_counts[group]
        out = self._count_out[group]
        for k, v in snap.items():
            prev = last.get(k)
            if prev is None:
                self.counters.workspace_allocs += 1
                prev = 0
            out[k] = v - prev
            last[k] = v
        return out

    def record_event(
        self,
        kind: str,
        *,
        step: int | None = None,
        detail: str = "",
        attempt: int = 0,
        info: dict | None = None,
        job: str | None = None,
    ) -> None:
        """Emit one ``event`` record (opens the stream if needed).

        ``job`` tags the record with the owning job's name — set by
        manager-level streams (a :class:`~repro.core.jobs.JobManager`
        ``events.jsonl`` interleaves several jobs' events), absent in
        single-run streams.
        """
        self.open()
        if step is None:
            step = self._dns.step_count if self._dns is not None else -1
        rec = {
            "type": "event",
            "schema": SCHEMA_VERSION,
            "t_unix": time.time(),
            "step": int(step),
            "kind": kind,
            "detail": detail,
            "attempt": int(attempt),
            "info": info or {},
            "rank": self.rank,
            "nranks": self.nranks,
        }
        if job is not None:
            rec["job"] = job
        self._write(rec)
        self.counters.events += 1
        self.flush()

    def _write(self, rec: dict) -> None:
        if self._fh is None:
            self.open()
        line = json.dumps(rec, separators=(",", ":"), allow_nan=False)
        self._fh.write(line)
        self._fh.write("\n")
        self.counters.bytes_written += len(line) + 1
        self._since_flush += 1
        if self._since_flush >= self.config.flush_every:
            # cadence flushes push only the stream: rewriting the (growing)
            # trace file here would cost O(events) per flush — the trace is
            # materialized by explicit flush() / close() instead
            self._fh.flush()
            self._since_flush = 0
            self.counters.flushes += 1

    def flush(self) -> None:
        """Flush the stream and rewrite the trace file."""
        if self._fh is not None:
            self._fh.flush()
        if self.trace is not None and len(self.trace):
            self.trace.write(self.trace_path())
        self._since_flush = 0
        self.counters.flushes += 1

    # ------------------------------------------------------------------

    def overhead_fraction(self) -> float | None:
        """Recorder self-time over recorded wall time (None before data)."""
        if self._wall_total <= 0.0:
            return None
        return self.counters.overhead_seconds / self._wall_total

    def close(self) -> None:
        """Write the ``summary`` record, flush everything, close the stream."""
        if self._closed:
            return
        if self._fh is not None:
            self._write(
                {
                    "type": "summary",
                    "schema": SCHEMA_VERSION,
                    "steps": self._steps_recorded,
                    "records": self.counters.records,
                    "events": self.counters.events,
                    "wall_s": self._wall_total,
                    "sections": self._sections_total,
                    "overhead_s": self.counters.overhead_seconds,
                    "overhead_frac": self.overhead_fraction(),
                    "rank": self.rank,
                    "nranks": self.nranks,
                }
            )
            self.flush()
            self._fh.close()
            self._fh = None
        if self._timers is not None and self._timers.tracer is self.trace:
            self._timers.tracer = None
        self._closed = True

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def for_attempt(self, attempt: int) -> "RunRecorder":
        """A sibling recorder writing under ``<directory>/attempt-NN``.

        Restart loops give every relaunch its own subdirectory so the
        streams of a crashed attempt are preserved, not overwritten.
        """
        sub = replace(self.config, directory=self.directory / f"attempt-{attempt:02d}")
        return RunRecorder(sub, rank=self.rank, nranks=self.nranks, extra=self.extra)
