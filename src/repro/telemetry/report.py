"""Table-9/10-style breakdowns regenerated from a telemetry stream.

The paper reports a timestep as ``Transpose / FFT / N-S advance /
Total`` (Tables 9-10).  :func:`breakdown` reproduces exactly that view
— plus every other recorded section — from a stream written by
:class:`~repro.telemetry.RunRecorder`, so the published numbers come
from a durable artefact instead of an ad-hoc print at the end of a run::

    python -m repro.telemetry.report runs/smoke/telemetry.jsonl

Per-section statistics are computed over the per-step deltas (median,
mean, total, share of the step), which is how a noisy shared machine
should be summarized — a single cumulative total hides the tail.
"""

from __future__ import annotations

import statistics
import sys

from repro.instrument import SectionTimers
from repro.telemetry.schema import read_stream

#: the paper's Table 9/10 column order, then everything else alphabetically
PAPER_ORDER = (
    SectionTimers.TRANSPOSE,
    SectionTimers.FFT,
    SectionTimers.ADVANCE,
)


def breakdown(path, *, validate: bool = True) -> dict:
    """Aggregate a stream into per-section timing statistics.

    Returns ``{"steps", "wall_s", "sections": {name: {"median_s",
    "mean_s", "total_s", "calls", "share"}}, "overlap", "summary"}``
    where ``share`` is the section's fraction of the summed per-step
    wall time.  Nested sections (``solve``, ``overlap``) are reported
    but, as in :meth:`~repro.instrument.SectionTimers.total`, excluded
    from the share denominator.  ``overlap`` sums the per-step
    OverlapCounters deltas (None when the stream carries none).
    """
    per_section: dict[str, list[float]] = {}
    calls: dict[str, int] = {}
    wall = 0.0
    steps = 0
    summary = None
    overlap: dict | None = None
    for rec in read_stream(path, validate=validate):
        if rec["type"] == "step":
            steps += 1
            wall += rec["wall_s"]
            for name, cell in rec["sections"].items():
                per_section.setdefault(name, []).append(cell["s"])
                calls[name] = calls.get(name, 0) + cell["calls"]
            if "overlap" in rec:
                if overlap is None:
                    overlap = dict.fromkeys(rec["overlap"], 0)
                for k, v in rec["overlap"].items():
                    overlap[k] = overlap.get(k, 0) + v
        elif rec["type"] == "summary":
            summary = rec
    denom = sum(
        sum(v) for k, v in per_section.items() if k not in SectionTimers.NESTED
    )
    sections = {}
    for name, samples in per_section.items():
        total = sum(samples)
        sections[name] = {
            "median_s": statistics.median(samples),
            "mean_s": total / len(samples),
            "total_s": total,
            "calls": calls[name],
            "share": (total / denom) if denom > 0 else 0.0,
        }
    return {
        "steps": steps,
        "wall_s": wall,
        "sections": sections,
        "overlap": overlap,
        "summary": summary,
    }


def format_breakdown(result: dict, title: str = "per-step section breakdown") -> str:
    """Render a breakdown as the paper-style text table."""
    sections = result["sections"]
    order = [s for s in PAPER_ORDER if s in sections]
    order += sorted(s for s in sections if s not in PAPER_ORDER)
    lines = [
        f"{title}  ({result['steps']} steps, {result['wall_s']:.3f} s wall)",
        f"{'section':>20} {'median':>10} {'mean':>10} {'total':>10} {'calls':>7} {'share':>7}",
    ]
    for name in order:
        s = sections[name]
        nested = " (nested)" if name in SectionTimers.NESTED else ""
        lines.append(
            f"{name:>20} {s['median_s'] * 1e3:>8.2f}ms {s['mean_s'] * 1e3:>8.2f}ms "
            f"{s['total_s']:>9.3f}s {s['calls']:>7d} {s['share']:>6.1%}{nested}"
        )
    overlap = result.get("overlap")
    if overlap and overlap.get("bytes_posted", 0) > 0:
        completed = overlap.get("bytes_completed", 0)
        hidden = overlap["bytes_overlapped"] / completed if completed else 0.0
        lines.append(
            f"{'comm overlap':>20} {overlap['bytes_posted']:,} B posted / "
            f"{overlap['bytes_overlapped']:,} B overlapped ({hidden:.0%} hidden), "
            f"wait {overlap['wait_seconds']:.4f}s, compute-in-flight "
            f"{overlap['overlap_seconds']:.4f}s"
        )
    summary = result.get("summary")
    if summary and summary.get("overhead_frac") is not None:
        lines.append(
            f"{'recorder overhead':>20} {summary['overhead_s']:.4f}s "
            f"({summary['overhead_frac']:.2%} of recorded wall; budget < 1%)"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    for path in argv:
        print(format_breakdown(breakdown(path), title=str(path)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
