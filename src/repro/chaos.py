"""Chaos soak harness: randomized fault schedules against the elastic stack.

The paper's production campaigns run in a regime where the machine *will*
fail mid-run — the honest test of a recovery stack is not one
hand-placed fault but a stream of randomized ones.  This module provides

* :func:`random_fault_plan` — a seeded generator of
  :class:`~repro.mpi.simmpi.FaultPlan` schedules (kill / corrupt / drop /
  delay at random collectives on random ranks, deterministic per seed),
* :func:`run_chaos_soak` — a driver that runs N schedules through the
  elastic supervisor (:func:`~repro.pencil.distributed.run_supervised_spmd`
  with ``elastic=True, integrity=True``) and classifies every run,
* :func:`run_scheduler_soak` — the scheduler-level soak: per seed,
  *concurrent* jobs on one shared :class:`~repro.mpi.pool.RankPool`
  under a :class:`~repro.core.jobs.JobManager`, with randomized faults
  in some jobs, an optional late high-priority preemptor, and an
  optional health prober — asserting the fault-isolation contract
  bit-for-bit: every job that completes matches its own serial oracle
  exactly, whatever happened to its neighbours.

Classification is strict about the two failure modes a recovery stack
must never exhibit:

* ``hung`` — the run exceeded its join timeout (a deadlock); the SimMPI
  abort path is designed to make this impossible.
* ``diverged`` — the run *completed* but its final state does not match
  the uninterrupted serial trajectory (silent corruption); the integrity
  envelopes are designed to turn this into a detected, restartable
  failure instead.

Healthy outcomes are ``completed`` (no fault fired or faults were
harmless), ``recovered`` (one or more same-size restarts from the
sharded rotation), and ``degraded`` (a rank died and the run shrank onto
the survivors via the resharding reader).  ``failed`` covers residual
typed errors — visible, never silent.

The oracle is the serial :class:`~repro.core.solver.ChannelDNS`
trajectory: the distributed solver matches it to round-off at any
process grid, checkpoint restore is bit-exact, and a shrink only changes
the grid — so every correctly-recovering run must land on the serial
answer within a tight tolerance, whatever faults were injected.
"""

from __future__ import annotations

import pathlib
import shutil
from dataclasses import dataclass

import numpy as np

import os

from repro.core.solver import ChannelConfig, ChannelDNS
from repro.instrument import RecoveryCounters
from repro.mpi.simmpi import FaultEvent, FaultPlan

#: collectives the distributed DNS actually exercises every step; ``None``
#: is the wildcard (matches whatever operation the victim reaches next)
SOAK_OPS = ("alltoall", "allreduce", "barrier", "bcast", None)

#: the four injectable fault actions, weighted toward the interesting ones
SOAK_ACTIONS = ("kill", "corrupt", "drop", "delay")


@dataclass
class SoakResult:
    """Outcome of one seeded chaos run."""

    seed: int
    classification: str  # completed | recovered | degraded | hung | diverged | failed
    restarts: int = 0
    shrinks: int = 0
    final_ranks: int = 0
    events_planned: int = 0
    events_fired: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Graceful outcome: correct trajectory, visibly recovered or degraded."""
        return self.classification in ("completed", "recovered", "degraded")


def random_fault_plan(
    seed: int,
    nranks: int,
    *,
    max_events: int = 3,
    max_call: int = 60,
    delay: float = 0.02,
    ops: tuple[str | None, ...] = SOAK_OPS,
) -> FaultPlan:
    """Seeded random fault schedule: deterministic per ``(seed, nranks)``.

    Draws 1..``max_events`` events over ``ops`` (default
    :data:`SOAK_OPS`) x :data:`SOAK_ACTIONS` with call indices in
    ``[0, max_call)``.  Kills are capped at ``nranks - 1`` per plan so
    one epoch can never lose every rank at once (the stack still
    tolerates a lone rank dying — that surfaces as a restart, not a
    shrink).  Passing a different ``ops`` tuple retargets the sweep —
    e.g. at the nonblocking ``ialltoall``/``isend`` path — without
    perturbing the default schedules existing seeds pin down.
    """
    rng = np.random.default_rng(seed)
    n_events = int(rng.integers(1, max_events + 1))
    events: list[FaultEvent] = []
    kills = 0
    for _ in range(n_events):
        action = SOAK_ACTIONS[int(rng.integers(0, len(SOAK_ACTIONS)))]
        if action == "kill" and kills >= nranks - 1:
            action = "delay"
        if action == "kill":
            kills += 1
        events.append(
            FaultEvent(
                action=action,
                rank=int(rng.integers(0, nranks)),
                op=ops[int(rng.integers(0, len(ops)))],
                call=int(rng.integers(0, max_call)),
                delay=delay,
            )
        )
    return FaultPlan(events, seed=seed)


def resolve_transpose_method(
    config: ChannelConfig,
    nranks: int,
    pa: int,
    pb: int,
    *,
    wisdom=None,
):
    """The transpose method a soak sweep should pin, decided once.

    Every soak attempt used to construct fresh transposes (and a plan
    call inside the sweep would re-time all three methods per attempt).
    This resolves the choice a single time, in precedence order:

    1. the deterministic ``REPRO_TRANSPOSE_METHOD`` pin (repro runs),
    2. one collective :meth:`~repro.pencil.parallel_fft.PencilTransforms.plan`
       routed through the wisdom cache (``wisdom=None`` defers to the
       ``REPRO_WISDOM`` store) — a warmed machine loads the decision and
       times nothing; a cold one measures once and records it for every
       later sweep.

    Returns the CommB (y<->z) choice — the transposes that move the
    spectral payloads the soak's nonlinear terms hammer hardest.
    """
    from repro.mpi.simmpi import run_spmd
    from repro.pencil.parallel_fft import PencilTransforms
    from repro.pencil.transpose import ENV_METHOD, TransposeMethod

    pinned = os.environ.get(ENV_METHOD)
    if pinned:
        return TransposeMethod(pinned)

    def _plan_prog(comm):
        cart = comm.cart_create((pa, pb))
        tr = PencilTransforms(cart, config.nx, config.ny, config.nz, dealias=True)
        choice = tr.plan(wisdom=wisdom)
        return choice["CommB"].value

    return TransposeMethod(run_spmd(nranks, _plan_prog)[0])


def _serial_reference(config: ChannelConfig, n_steps: int):
    """The uninterrupted serial trajectory — the soak's correctness oracle."""
    dns = ChannelDNS(config)
    dns.initialize()
    dns.run(n_steps)
    return dns.state


def _matches(full, ref, atol: float) -> bool:
    if full is None:
        return False
    for a, b in ((full.v, ref.v), (full.omega_y, ref.omega_y),
                 (full.u00, ref.u00), (full.w00, ref.w00)):
        if not np.allclose(a, b, rtol=0.0, atol=atol):
            return False
    return True


def run_chaos_soak(
    seeds,
    workdir,
    *,
    config: ChannelConfig | None = None,
    nranks: int = 4,
    pa: int | None = None,
    pb: int | None = None,
    n_steps: int = 6,
    checkpoint_every: int = 2,
    max_events: int = 3,
    atol: float = 1e-11,
    timeout: float | None = None,
    verbose: bool = False,
    telemetry=None,
    method=None,
    wire_precision: str = "full",
    wisdom=None,
) -> list[SoakResult]:
    """Run one elastic supervised job per seed and classify every outcome.

    Each seed gets a fresh checkpoint directory under ``workdir`` and a
    :func:`random_fault_plan`; the (stateful) plan is re-attached to every
    restart attempt, so events that did not fire before a failure can
    still fire afterwards.  ``max_restarts`` is sized from the event
    count, which bounds every run: each failed attempt consumes at least
    one planned event, so the job always terminates.

    ``telemetry`` (a directory or
    :class:`~repro.telemetry.TelemetryConfig`) records the soak: a
    top-level ``events.jsonl`` gets one ``soak_result`` event per seed
    plus a final ``soak_summary``, and each seed's supervised job writes
    its full per-attempt streams under ``<dir>/soak-NNNNN/``.

    ``method`` (a :class:`~repro.pencil.transpose.TransposeMethod`) pins
    the transpose implementation of every attempt — e.g. ``PIPELINED``
    to soak the nonblocking/overlap path under faults.  ``method=None``
    resolves the pin once through :func:`resolve_transpose_method`
    (env pin, else the wisdom cache) instead of leaving every attempt's
    transposes on the default — the soak sweep never re-times methods.

    ``wire_precision="mixed"`` soaks the reduced-precision wire: pass an
    ``atol`` sized to the single-precision tolerance (DESIGN.md §6h),
    since the oracle check is then a float32-accuracy match, not the
    full-precision 1e-11 identity.
    """
    from repro.pencil.decomp import choose_grid
    from repro.pencil.distributed import run_supervised_spmd

    config = config or ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)
    if pa is None or pb is None:
        pa, pb = choose_grid(nranks, config.nx // 2, config.nz - 1, config.ny)
    if method is None:
        method = resolve_transpose_method(config, nranks, pa, pb, wisdom=wisdom)
    workdir = pathlib.Path(workdir)
    soak_rec = None
    tel_cfg = None
    if telemetry is not None:
        from dataclasses import replace as _replace

        from repro.telemetry import RunRecorder, TelemetryConfig

        tel_cfg = TelemetryConfig.coerce(telemetry)
        soak_rec = RunRecorder(tel_cfg, rank=-1, nranks=nranks)
    ref = _serial_reference(config, n_steps)
    results: list[SoakResult] = []
    try:
        for seed in seeds:
            plan = random_fault_plan(seed, nranks, max_events=max_events)
            ckpt = workdir / f"soak-{seed:05d}"
            shutil.rmtree(ckpt, ignore_errors=True)
            counters = RecoveryCounters()
            res = SoakResult(
                seed=seed, classification="failed", final_ranks=nranks,
                events_planned=len(plan.events),
            )
            max_restarts = len(plan.events) + 2
            seed_tel = None
            if tel_cfg is not None:
                seed_tel = _replace(
                    tel_cfg,
                    directory=pathlib.Path(tel_cfg.directory) / f"soak-{seed:05d}",
                )
            try:
                full, log = run_supervised_spmd(
                    nranks, config, pa, pb, n_steps, ckpt,
                    checkpoint_every=checkpoint_every,
                    max_restarts=max_restarts,
                    # same stateful plan on every attempt: unfired events persist
                    fault_plans=[plan] * (max_restarts + 1),
                    timeout=timeout,
                    counters=counters,
                    elastic=True,
                    integrity=True,
                    telemetry=seed_tel,
                    method=method,
                    wire_precision=wire_precision,
                )
            except Exception as exc:  # noqa: BLE001 - classified, not propagated
                hung = "timed out" in str(exc)
                res.classification = "hung" if hung else "failed"
                res.detail = f"{type(exc).__name__}: {exc}"
            else:
                shrinks = [e for e in log if e.kind == "shrink"]
                if shrinks:
                    res.final_ranks = int(shrinks[-1].info["ranks"])
                if not _matches(full, ref, atol):
                    res.classification = "diverged"
                    res.detail = "final state does not match the serial oracle"
                elif counters.shrinks:
                    res.classification = "degraded"
                elif counters.restarts:
                    res.classification = "recovered"
                else:
                    res.classification = "completed"
            res.restarts = counters.restarts
            res.shrinks = counters.shrinks
            res.events_fired = len(plan.triggered)
            results.append(res)
            if soak_rec is not None:
                from dataclasses import asdict

                soak_rec.record_event(
                    "soak_result",
                    step=-1,
                    detail=f"seed {seed}: {res.classification}",
                    info=asdict(res),
                )
            if verbose:
                print(
                    f"seed {seed:5d}: {res.classification:<10} "
                    f"fired={res.events_fired}/{res.events_planned} "
                    f"restarts={res.restarts} shrinks={res.shrinks} "
                    f"ranks={nranks}->{res.final_ranks} {res.detail}"
                )
            shutil.rmtree(ckpt, ignore_errors=True)
        if soak_rec is not None:
            soak_rec.record_event(
                "soak_summary",
                step=-1,
                detail=f"{len(results)} seeded runs",
                info=soak_summary(results),
            )
    finally:
        if soak_rec is not None:
            soak_rec.close()
    return results


def soak_summary(results) -> dict:
    """Histogram of classifications plus aggregate recovery counts."""
    hist: dict[str, int] = {}
    for r in results:
        hist[r.classification] = hist.get(r.classification, 0) + 1
    return {
        "runs": len(results),
        "classifications": hist,
        "all_graceful": all(r.ok for r in results),
        "restarts": sum(r.restarts for r in results),
        "shrinks": sum(r.shrinks for r in results),
        "events_fired": sum(r.events_fired for r in results),
    }


# ---------------------------------------------------------------------------
# scheduler-level soak: concurrent jobs on one pool
# ---------------------------------------------------------------------------

#: graceful terminal outcomes of a scheduled job (the manager's
#: classification precedence; anything else is a visible failure)
JOB_HEALTHY = ("completed", "recovered", "degraded", "grown", "preempted-resumed")


@dataclass
class SchedulerSoakResult:
    """Outcome of one seeded multi-job scheduler run."""

    seed: int
    #: job name -> manager outcome (``failed`` included verbatim)
    outcomes: dict
    #: the manager-level zero-hang guard tripped, or a job never finished
    hung: bool = False
    #: every *completed* job matched its serial oracle bit-for-bit
    isolated: bool = True
    preemptions: int = 0
    shrinks: int = 0
    grows: int = 0
    restarts: int = 0
    retries: int = 0
    #: validated records in the manager's events.jsonl
    manager_events: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return (
            not self.hung
            and self.isolated
            and all(o in JOB_HEALTHY for o in self.outcomes.values())
        )


def run_scheduler_soak(
    seeds,
    workdir,
    *,
    config: ChannelConfig | None = None,
    pool_size: int = 6,
    n_steps: int = 6,
    checkpoint_every: int = 2,
    max_events: int = 3,
    timeout: float = 300.0,
    preemptor_delay: float = 0.05,
    verbose: bool = False,
) -> list[SchedulerSoakResult]:
    """Soak the multi-job scheduler: one seeded scenario per seed.

    Every scenario runs two concurrent jobs on a shared ``pool_size``
    pool through a :class:`~repro.core.jobs.JobManager`:

    * ``alpha`` (4 ranks) always carries a :func:`random_fault_plan`;
    * ``beta`` (2 ranks) is the *isolation witness* — clean on half the
      seeds, faulted (with an independent schedule) on the other half;
    * on half the seeds a high-priority ``gamma`` arrives
      ``preemptor_delay`` seconds in and must preempt a running job
      (checkpoint + requeue — never lost work);
    * half the seeds run a health prober, so quarantined ranks return
      and jobs grow back; the other half leave the quarantine sticky.

    Classification is the manager's (``completed`` / ``recovered`` /
    ``degraded`` / ``grown`` / ``preempted-resumed``); the isolation
    assertion is *exact*: a completed job's final state must equal its
    own uninterrupted serial trajectory bit-for-bit — the distributed
    solver is grid-invariant to the bit and restores are bit-exact, so
    any cross-job interference whatsoever shows up here.  ``timeout``
    is the per-seed zero-hang guard.  Each scenario leaves its manager
    ``events.jsonl`` (validated, schema v4) and per-job streams under
    ``workdir/sched-NNNNN/``; checkpoints are cleaned up.
    """
    from dataclasses import replace

    from repro.core.jobs import JobManager, JobSpec
    from repro.mpi.pool import RankPool
    from repro.telemetry import read_stream

    config = config or ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)
    workdir = pathlib.Path(workdir)
    cfg = {
        "alpha": replace(config, seed=config.seed),
        "beta": replace(config, seed=config.seed + 13),
        "gamma": replace(config, seed=config.seed + 26),
    }
    steps = {"alpha": n_steps, "beta": n_steps, "gamma": max(2, n_steps // 2)}
    # one oracle per job config, shared by every seed (exact, atol=0)
    oracles = {name: _serial_reference(cfg[name], steps[name]) for name in cfg}
    results: list[SchedulerSoakResult] = []
    for seed in seeds:
        rng = np.random.default_rng(seed + 777_000)
        fault_beta = bool(rng.integers(0, 2))
        with_gamma = bool(rng.integers(0, 2))
        with_prober = bool(rng.integers(0, 2))
        directory = workdir / f"sched-{seed:05d}"
        shutil.rmtree(directory, ignore_errors=True)
        mgr = JobManager(
            RankPool(pool_size),
            directory=directory,
            prober=(lambda _r: True) if with_prober else None,
            backoff_base=0.01,
            backoff_max=0.05,
        )

        def _spec(name, ranks, priority=0, plan=None, start_after=0.0):
            budget = (len(plan.events) + 2) if plan is not None else 3
            return JobSpec(
                name,
                cfg[name],
                n_steps=steps[name],
                ranks=ranks,
                priority=priority,
                min_ranks=min(2, ranks) if name == "gamma" else 1,
                checkpoint_every=checkpoint_every,
                max_restarts=budget,
                max_retries=2,
                # same stateful plan on every attempt of the placement
                fault_plans=[plan] * (budget + 1) if plan is not None else (),
                start_after=start_after,
            )

        mgr.submit(_spec("alpha", 4, plan=random_fault_plan(seed, 4, max_events=max_events)))
        mgr.submit(
            _spec(
                "beta",
                2,
                plan=random_fault_plan(seed + 10_000, 2, max_events=max_events)
                if fault_beta
                else None,
            )
        )
        if with_gamma:
            mgr.submit(_spec("gamma", 2, priority=5, start_after=preemptor_delay))
        records = mgr.run(timeout=timeout)

        res = SchedulerSoakResult(
            seed=seed,
            outcomes={n: (r.outcome or r.state) for n, r in records.items()},
            hung=mgr.timed_out or not all(r.finished for r in records.values()),
        )
        mismatches = []
        for name, rec in records.items():
            res.preemptions += rec.preemptions
            res.shrinks += rec.counters.shrinks
            res.grows += rec.counters.grows
            res.restarts += rec.counters.restarts
            res.retries += rec.retries
            if rec.state == "completed":
                ref = oracles[name]
                exact = all(
                    np.array_equal(a, b)
                    for a, b in (
                        (rec.result.v, ref.v),
                        (rec.result.omega_y, ref.omega_y),
                        (rec.result.u00, ref.u00),
                        (rec.result.w00, ref.w00),
                    )
                ) and rec.result.time == ref.time
                if not exact:
                    mismatches.append(name)
        if mismatches:
            res.isolated = False
            res.detail = f"bit divergence vs serial oracle: {mismatches}"
        # the manager stream must validate record-for-record (schema v4)
        res.manager_events = sum(
            1 for r in read_stream(directory / "events.jsonl") if r["type"] == "event"
        )
        results.append(res)
        if verbose:
            print(
                f"seed {seed:5d}: {res.outcomes} "
                f"hung={res.hung} isolated={res.isolated} "
                f"preempt={res.preemptions} shrinks={res.shrinks} "
                f"grows={res.grows} retries={res.retries} {res.detail}"
            )
        # keep the event streams (CI artifact), drop the bulky snapshots
        for ckpt in directory.glob("job-*/checkpoints"):
            shutil.rmtree(ckpt, ignore_errors=True)
    return results


def scheduler_soak_summary(results) -> dict:
    """Aggregate a scheduler soak sweep: outcome histogram + invariants."""
    hist: dict[str, int] = {}
    for r in results:
        for outcome in r.outcomes.values():
            hist[outcome] = hist.get(outcome, 0) + 1
    return {
        "runs": len(results),
        "jobs": sum(len(r.outcomes) for r in results),
        "outcomes": hist,
        "all_ok": all(r.ok for r in results),
        "hangs": sum(1 for r in results if r.hung),
        "isolation_breaks": sum(1 for r in results if not r.isolated),
        "preemptions": sum(r.preemptions for r in results),
        "shrinks": sum(r.shrinks for r in results),
        "grows": sum(r.grows for r in results),
        "restarts": sum(r.restarts for r in results),
        "retries": sum(r.retries for r in results),
        "manager_events": sum(r.manager_events for r in results),
    }
