"""Gauss quadrature rules that integrate splines exactly.

Statistics of the channel (bulk velocity, energy balance terms) need
integrals of spline-represented profiles in y.  A Gauss–Legendre rule with
``ceil((degree+1)/2)`` points per knot interval integrates any spline of
the basis degree exactly.
"""

from __future__ import annotations

import numpy as np


def spline_quadrature(breakpoints: np.ndarray, degree: int) -> tuple[np.ndarray, np.ndarray]:
    """Composite Gauss–Legendre rule exact for piecewise degree-``degree`` polynomials.

    Returns ``(points, weights)`` over the whole breakpoint range.
    """
    breakpoints = np.asarray(breakpoints, dtype=float)
    ngauss = (degree + 2) // 2  # exact for polynomials of degree <= 2*ngauss - 1
    gx, gw = np.polynomial.legendre.leggauss(ngauss)
    pts = []
    wts = []
    for a, b in zip(breakpoints[:-1], breakpoints[1:]):
        half = 0.5 * (b - a)
        mid = 0.5 * (a + b)
        pts.append(mid + half * gx)
        wts.append(half * gw)
    return np.concatenate(pts), np.concatenate(wts)
