"""de Boor recursion for B-spline basis functions and their derivatives.

These are the textbook algorithms (de Boor 1978; Piegl & Tiller A2.2/A2.3)
written against a clamped knot vector.  They return only the ``degree+1``
basis functions that are non-zero at the evaluation point, together with
the knot *span* locating them, which is what the banded collocation matrix
assembly needs.
"""

from __future__ import annotations

import numpy as np


def find_span(knots: np.ndarray, degree: int, x: float) -> int:
    """Index ``i`` such that ``knots[i] <= x < knots[i+1]`` (basis support span).

    For ``x`` equal to the right endpoint the last non-empty span is
    returned so that evaluation at the wall is well defined.
    """
    n = len(knots) - degree - 1  # number of basis functions
    if x < knots[degree] or x > knots[n]:
        raise ValueError(f"x={x} outside knot range [{knots[degree]}, {knots[n]}]")
    if x >= knots[n]:
        # Right endpoint: clamp into the final non-degenerate span.
        span = n - 1
        while knots[span] == knots[span + 1]:
            span -= 1
        return span
    # binary search over the interior knots
    lo, hi = degree, n
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if x < knots[mid]:
            hi = mid
        else:
            lo = mid
    return lo


def basis_functions(knots: np.ndarray, degree: int, x: float, span: int | None = None) -> tuple[int, np.ndarray]:
    """Values of the ``degree+1`` non-zero basis functions at ``x``.

    Returns ``(span, vals)`` with ``vals[j] = B_{span-degree+j}(x)``.
    """
    if span is None:
        span = find_span(knots, degree, x)
    vals = np.empty(degree + 1)
    left = np.empty(degree + 1)
    right = np.empty(degree + 1)
    vals[0] = 1.0
    for j in range(1, degree + 1):
        left[j] = x - knots[span + 1 - j]
        right[j] = knots[span + j] - x
        saved = 0.0
        for r in range(j):
            denom = right[r + 1] + left[j - r]
            temp = vals[r] / denom
            vals[r] = saved + right[r + 1] * temp
            saved = left[j - r] * temp
        vals[j] = saved
    return span, vals


def basis_function_derivatives(
    knots: np.ndarray,
    degree: int,
    x: float,
    nderiv: int,
    span: int | None = None,
) -> tuple[int, np.ndarray]:
    """Values and derivatives of the non-zero basis functions at ``x``.

    Returns ``(span, ders)`` where ``ders[m, j]`` is the ``m``-th derivative
    of ``B_{span-degree+j}`` at ``x`` for ``m = 0 .. nderiv``.

    This is Piegl & Tiller algorithm A2.3 ("DersBasisFuns").
    """
    if span is None:
        span = find_span(knots, degree, x)
    p = degree
    nd = min(nderiv, p)
    ndu = np.empty((p + 1, p + 1))
    left = np.empty(p + 1)
    right = np.empty(p + 1)
    ndu[0, 0] = 1.0
    for j in range(1, p + 1):
        left[j] = x - knots[span + 1 - j]
        right[j] = knots[span + j] - x
        saved = 0.0
        for r in range(j):
            # lower triangle: knot differences
            ndu[j, r] = right[r + 1] + left[j - r]
            temp = ndu[r, j - 1] / ndu[j, r]
            # upper triangle: basis function values
            ndu[r, j] = saved + right[r + 1] * temp
            saved = left[j - r] * temp
        ndu[j, j] = saved

    ders = np.zeros((nderiv + 1, p + 1))
    ders[0, :] = ndu[:, p]

    a = np.empty((2, p + 1))
    for r in range(p + 1):
        s1, s2 = 0, 1
        a[0, 0] = 1.0
        for k in range(1, nd + 1):
            d = 0.0
            rk = r - k
            pk = p - k
            if r >= k:
                a[s2, 0] = a[s1, 0] / ndu[pk + 1, rk]
                d = a[s2, 0] * ndu[rk, pk]
            j1 = 1 if rk >= -1 else -rk
            j2 = k - 1 if r - 1 <= pk else p - r
            for j in range(j1, j2 + 1):
                a[s2, j] = (a[s1, j] - a[s1, j - 1]) / ndu[pk + 1, rk + j]
                d += a[s2, j] * ndu[rk + j, pk]
            if r <= pk:
                a[s2, k] = -a[s1, k - 1] / ndu[pk + 1, r]
                d += a[s2, k] * ndu[r, pk]
            ders[k, r] = d
            s1, s2 = s2, s1

    # multiply through by the factorial factors p! / (p-k)!
    fac = float(p)
    for k in range(1, nd + 1):
        ders[k, :] *= fac
        fac *= p - k
    return span, ders


def all_basis_functions(
    knots: np.ndarray,
    degree: int,
    x: np.ndarray,
    nderiv: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate all non-zero basis functions (and derivatives) at many points.

    Returns ``(spans, ders)``: ``spans`` has shape ``(npts,)`` and ``ders``
    has shape ``(npts, nderiv+1, degree+1)``.
    """
    x = np.atleast_1d(np.asarray(x, dtype=float))
    npts = x.size
    spans = np.empty(npts, dtype=np.intp)
    ders = np.empty((npts, nderiv + 1, degree + 1))
    for i, xi in enumerate(x):
        span, d = basis_function_derivatives(knots, degree, xi, nderiv)
        spans[i] = span
        ders[i] = d
    return spans, ders
