"""Knot vectors and breakpoint distributions for the channel wall-normal grid.

The channel occupies ``y in [-1, 1]`` (half-width 1).  DNS resolution
requirements cluster points near the walls where the viscous scales live;
the classic choice is a hyperbolic-tangent stretching of otherwise uniform
breakpoints.  The splines themselves are *clamped*: the first and last
knots are repeated ``degree + 1`` times so that exactly one basis function
is non-zero at each wall, which makes Dirichlet rows of collocation
matrices trivially sparse.
"""

from __future__ import annotations

import numpy as np


def uniform_breakpoints(nintervals: int, a: float = -1.0, b: float = 1.0) -> np.ndarray:
    """Uniformly spaced breakpoints: ``nintervals + 1`` values spanning [a, b]."""
    if nintervals < 1:
        raise ValueError(f"need at least one interval, got {nintervals}")
    return np.linspace(a, b, nintervals + 1)


def channel_breakpoints(
    nintervals: int,
    stretch: float = 2.0,
    a: float = -1.0,
    b: float = 1.0,
) -> np.ndarray:
    """Wall-clustered breakpoints via tanh stretching.

    ``stretch = 0`` degenerates to a uniform distribution; larger values
    concentrate intervals near both walls.  The mapping is

    ``y(s) = tanh(stretch * s) / tanh(stretch)``,  ``s`` uniform in [-1, 1],

    rescaled to ``[a, b]``.
    """
    if nintervals < 1:
        raise ValueError(f"need at least one interval, got {nintervals}")
    if stretch < 0:
        raise ValueError(f"stretch must be non-negative, got {stretch}")
    s = np.linspace(-1.0, 1.0, nintervals + 1)
    if stretch == 0.0:
        y = s
    else:
        y = np.tanh(stretch * s) / np.tanh(stretch)
    # Pin endpoints exactly despite rounding.
    y[0], y[-1] = -1.0, 1.0
    return a + (y + 1.0) * 0.5 * (b - a)


def clamped_knots(breakpoints: np.ndarray, degree: int) -> np.ndarray:
    """Clamped (open) knot vector over the given breakpoints.

    For ``m`` breakpoints and degree ``p`` this yields ``m + 2p`` knots and
    therefore ``m + p - 1`` basis functions.
    """
    breakpoints = np.asarray(breakpoints, dtype=float)
    if breakpoints.ndim != 1 or breakpoints.size < 2:
        raise ValueError("breakpoints must be a 1-D array of at least 2 values")
    if np.any(np.diff(breakpoints) <= 0):
        raise ValueError("breakpoints must be strictly increasing")
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    first = np.full(degree, breakpoints[0])
    last = np.full(degree, breakpoints[-1])
    return np.concatenate([first, breakpoints, last])


def num_basis(breakpoints: np.ndarray, degree: int) -> int:
    """Number of B-spline basis functions on a clamped knot vector."""
    return len(breakpoints) + degree - 1
