"""High-level B-spline basis facade used by the DNS core.

A :class:`BSplineBasis` bundles the knot vector, Greville collocation
points, cached collocation/derivative matrices and their factorizations,
and batched transforms between *physical values at collocation points*
and *spline coefficients*.  Batched operations put y on the **last** axis,
matching the DNS state layout ``(nkx, nkz, ny)``.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.linalg

from repro.bsplines.basis import all_basis_functions, find_span
from repro.bsplines.collocation import (
    collocation_bandwidths,
    collocation_matrix,
    greville_points,
    to_scipy_banded,
)
from repro.bsplines.knots import channel_breakpoints, clamped_knots, uniform_breakpoints
from repro.bsplines.quadrature import spline_quadrature


class BSplineBasis:
    """Clamped B-spline basis on an interval, collocated at Greville points.

    Parameters
    ----------
    n:
        Number of basis functions (degrees of freedom in y).  The paper's
        production run uses ``n = 1536`` of degree 7.
    degree:
        Polynomial degree (paper: 7).
    stretch:
        tanh wall-clustering strength for the breakpoints; 0 = uniform.
    domain:
        ``(a, b)`` interval; the channel is ``(-1, 1)``.
    """

    def __init__(
        self,
        n: int,
        degree: int = 7,
        stretch: float = 2.0,
        domain: tuple[float, float] = (-1.0, 1.0),
    ) -> None:
        if n < degree + 1:
            raise ValueError(f"need n >= degree+1 = {degree + 1} basis functions, got {n}")
        self.n = int(n)
        self.degree = int(degree)
        self.domain = (float(domain[0]), float(domain[1]))
        nintervals = n - degree  # so that num_basis == n
        if stretch == 0.0:
            self.breakpoints = uniform_breakpoints(nintervals, *self.domain)
        else:
            self.breakpoints = channel_breakpoints(nintervals, stretch, *self.domain)
        self.knots = clamped_knots(self.breakpoints, self.degree)
        assert len(self.knots) - self.degree - 1 == self.n

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @cached_property
    def collocation_points(self) -> np.ndarray:
        """Greville abscissae; ``collocation_points[0]`` / ``[-1]`` are the walls."""
        return greville_points(self.knots, self.degree)

    @cached_property
    def bandwidths(self) -> tuple[int, int]:
        """(kl, ku) of the collocation matrices."""
        spans, _ = all_basis_functions(self.knots, self.degree, self.collocation_points, 0)
        return collocation_bandwidths(spans, self.degree)

    # ------------------------------------------------------------------
    # matrices
    # ------------------------------------------------------------------

    def colloc_matrix(self, deriv: int = 0) -> np.ndarray:
        """Dense ``(n, n)`` matrix of ``deriv``-th derivatives at collocation points."""
        return self._colloc_matrices(deriv)

    def _colloc_matrices(self, deriv: int) -> np.ndarray:
        cache = self.__dict__.setdefault("_colloc_cache", {})
        if deriv not in cache:
            cache[deriv] = collocation_matrix(
                self.knots, self.degree, self.collocation_points, deriv
            )
        return cache[deriv]

    @cached_property
    def _interp_banded(self) -> tuple[tuple[int, int], np.ndarray]:
        kl, ku = self.bandwidths
        ab = to_scipy_banded(self.colloc_matrix(0), kl, ku)
        return (kl, ku), ab

    # ------------------------------------------------------------------
    # transforms between collocated values and spline coefficients
    # ------------------------------------------------------------------

    def interpolate(self, values: np.ndarray) -> np.ndarray:
        """Spline coefficients whose collocated values equal ``values``.

        ``values`` may be batched with y on the last axis; complex input is
        handled by solving the real collocation system against a complex
        right-hand side (the matrix is real — the same structure the
        paper's custom solver exploits).
        """
        values = np.asarray(values)
        (kl, ku), ab = self._interp_banded
        flat = np.moveaxis(values, -1, 0).reshape(self.n, -1)
        if np.iscomplexobj(flat):
            re = scipy.linalg.solve_banded((kl, ku), ab, np.ascontiguousarray(flat.real))
            im = scipy.linalg.solve_banded((kl, ku), ab, np.ascontiguousarray(flat.imag))
            sol = re + 1j * im
        else:
            sol = scipy.linalg.solve_banded((kl, ku), ab, flat)
        sol = sol.reshape((self.n,) + values.shape[:-1])
        return np.moveaxis(sol, 0, -1)

    def values_at_collocation(self, coeffs: np.ndarray, deriv: int = 0) -> np.ndarray:
        """Collocated values (or derivative values) of spline coefficients.

        Batched over leading axes; y on the last axis.
        """
        mat = self.colloc_matrix(deriv)
        return np.einsum("ij,...j->...i", mat, coeffs)

    # ------------------------------------------------------------------
    # pointwise evaluation & integration
    # ------------------------------------------------------------------

    def evaluate(self, coeffs: np.ndarray, x: np.ndarray, deriv: int = 0) -> np.ndarray:
        """Evaluate the spline (batched coefficients, y last) at arbitrary points."""
        coeffs = np.asarray(coeffs)
        x = np.atleast_1d(np.asarray(x, dtype=float))
        spans, ders = all_basis_functions(self.knots, self.degree, x, nderiv=deriv)
        out = np.zeros(coeffs.shape[:-1] + (x.size,), dtype=coeffs.dtype)
        for i in range(x.size):
            lo = spans[i] - self.degree
            out[..., i] = np.einsum(
                "j,...j->...", ders[i, deriv], coeffs[..., lo : lo + self.degree + 1]
            )
        return out

    @cached_property
    def quadrature(self) -> tuple[np.ndarray, np.ndarray]:
        """(points, weights) integrating splines of this degree exactly."""
        return spline_quadrature(self.breakpoints, self.degree)

    @cached_property
    def basis_integrals(self) -> np.ndarray:
        """``w[j] = integral of B_j`` over the domain (exact)."""
        pts, wts = self.quadrature
        mat = collocation_matrix(self.knots, self.degree, pts, 0)
        return wts @ mat

    def integrate(self, coeffs: np.ndarray) -> np.ndarray:
        """Exact integral of the spline over the domain (batched, y last)."""
        return np.einsum("j,...j->...", self.basis_integrals, np.asarray(coeffs))

    @cached_property
    def collocation_weights(self) -> np.ndarray:
        """Quadrature-like weights for integrating *collocated values*.

        ``w @ f(colloc_points)`` integrates the interpolating spline of
        ``f`` exactly: ``w = basis_integrals @ inv(B)``.
        """
        (kl, ku), ab = self._interp_banded
        # Solve B^T w = basis_integrals: transpose banded system.
        bt = to_scipy_banded(self.colloc_matrix(0).T, ku, kl)
        return scipy.linalg.solve_banded((ku, kl), bt, self.basis_integrals)

    # ------------------------------------------------------------------

    def span_of(self, x: float) -> int:
        """Knot span containing ``x`` (exposed for tests)."""
        return find_span(self.knots, self.degree, x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BSplineBasis(n={self.n}, degree={self.degree}, "
            f"domain={self.domain}, intervals={len(self.breakpoints) - 1})"
        )
