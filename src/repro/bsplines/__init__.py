"""B-spline substrate for the wall-normal (y) direction.

The paper represents the velocity in y with 7th-degree basis splines
(B-splines), "selected for their excellent error characteristics as well
as a straightforward formulation using the recursive relation of DeBoor"
(section 2).  This subpackage provides:

* clamped knot vectors with optional wall-clustering stretch
  (:mod:`repro.bsplines.knots`),
* de Boor evaluation of basis functions and derivatives
  (:mod:`repro.bsplines.basis`),
* Greville collocation points and banded collocation matrices
  (:mod:`repro.bsplines.collocation`),
* Gauss quadrature rules exact for splines (:mod:`repro.bsplines.quadrature`),
* a high-level :class:`~repro.bsplines.spline.BSplineBasis` facade used by
  the DNS core.
"""

from repro.bsplines.basis import all_basis_functions, basis_functions, find_span
from repro.bsplines.collocation import collocation_matrix, greville_points
from repro.bsplines.knots import channel_breakpoints, clamped_knots, uniform_breakpoints
from repro.bsplines.quadrature import spline_quadrature
from repro.bsplines.spline import BSplineBasis

__all__ = [
    "BSplineBasis",
    "all_basis_functions",
    "basis_functions",
    "channel_breakpoints",
    "clamped_knots",
    "collocation_matrix",
    "find_span",
    "greville_points",
    "spline_quadrature",
    "uniform_breakpoints",
]
