"""Greville collocation points and banded collocation matrices.

The paper's wall-normal discretization is B-spline *collocation*: the PDE
is enforced pointwise at the Greville abscissae.  The resulting matrices
are banded — each row touches only the ``degree+1`` basis functions alive
at its collocation point — with wider rows near the walls, which is
exactly the "banded matrix with extra non-zero values in the first and
last few rows" of the paper's figure 3.
"""

from __future__ import annotations

import numpy as np

from repro.bsplines.basis import all_basis_functions


def greville_points(knots: np.ndarray, degree: int) -> np.ndarray:
    """Greville abscissae: running means of ``degree`` consecutive interior knots.

    These are the canonical collocation points for spline collocation; the
    Schoenberg–Whitney conditions hold for them on a clamped knot vector,
    so the collocation matrix is non-singular.
    """
    n = len(knots) - degree - 1
    pts = np.empty(n)
    for i in range(n):
        pts[i] = knots[i + 1 : i + 1 + degree].sum() / degree
    # Guard against rounding drift at the clamped ends.
    pts[0] = knots[degree]
    pts[-1] = knots[n]
    return pts


def collocation_matrix(
    knots: np.ndarray,
    degree: int,
    points: np.ndarray,
    deriv: int = 0,
) -> np.ndarray:
    """Dense collocation matrix ``C[i, j] = (d/dx)^deriv B_j(points[i])``."""
    points = np.asarray(points, dtype=float)
    n = len(knots) - degree - 1
    spans, ders = all_basis_functions(knots, degree, points, nderiv=deriv)
    mat = np.zeros((points.size, n))
    for i in range(points.size):
        lo = spans[i] - degree
        mat[i, lo : lo + degree + 1] = ders[i, deriv]
    return mat


def collocation_bandwidths(spans: np.ndarray, degree: int) -> tuple[int, int]:
    """(kl, ku) such that row ``i`` touches columns ``[i-kl, i+ku]`` only."""
    idx = np.arange(spans.size)
    lo = spans - degree
    hi = spans
    kl = int(np.max(idx - lo))
    ku = int(np.max(hi - idx))
    return kl, ku


def to_scipy_banded(dense: np.ndarray, kl: int, ku: int) -> np.ndarray:
    """Pack a dense banded matrix into scipy's diagonal-ordered form.

    ``ab[ku + i - j, j] = a[i, j]`` — the layout consumed by
    :func:`scipy.linalg.solve_banded`.
    """
    n = dense.shape[0]
    ab = np.zeros((kl + ku + 1, n))
    for i in range(n):
        jlo = max(0, i - kl)
        jhi = min(n, i + ku + 1)
        for j in range(jlo, jhi):
            ab[ku + i - j, j] = dense[i, j]
    return ab
