"""Section timers and transform counters for the per-timestep breakdown.

The benchmarks of Tables 9-10 report elapsed time split into
``Transpose`` / ``FFT`` / ``N-S time advance`` (plus Total).  Both the
serial and the distributed drivers instrument themselves with a
:class:`SectionTimers` so the same breakdown can be printed for any run.
The paper used ``MPI_wtime``; we use :func:`time.perf_counter`.

:class:`TransformCounters` is the cheap bookkeeping attached to the
planned transform pipeline (:mod:`repro.fft.pipeline`): workspace bytes
allocated, transforms executed and per-stage wall time.  The workspace
counters are how the zero-allocation property of the hot path is
asserted — after warm-up, repeated substeps must not grow them.

:class:`OverlapCounters` is the communication/compute overlap
bookkeeping of the pipelined transposes
(:class:`repro.pencil.transpose.PipelinedTranspose`): bytes posted
through nonblocking exchanges, bytes already delivered when the wait
first checked (fully hidden communication), time blocked in waits and
compute seconds executed while an exchange was in flight.  The matching
``OVERLAP`` timer section is *nested* — it measures FFT time hidden
inside the transpose section, not additional time.

:class:`PrecisionCounters` is the mixed-precision wire bookkeeping of
the global transposes: bytes staged at reduced precision versus the
full-precision payload they carry, so the "≤ 55% of the float64 wire
bytes" claim is a counter assertion.

:class:`SolveCounters` is the same discipline for the batched banded
solve engine (:mod:`repro.linalg.engine`): engine-owned workspace is
counted once at construction and must stay frozen across steady-state
solves, while the execution counters (solves, sweeps, columns) keep
moving.

:class:`RecoveryCounters` is the fault-tolerance bookkeeping shared by
the checkpoint rotations (:mod:`repro.core.checkpoint`), the run
supervisor (:mod:`repro.core.supervisor`) and the elastic job loop
(:func:`repro.pencil.distributed.run_supervised_spmd`): snapshots
saved/pruned, verification failures, watchdog trips, rollbacks,
restarts, dt reductions — and, from the elastic layer, ``shrinks``
(agreed survivor-set reductions after a rank death), ``grows``
(re-expansions of a degraded run onto returned ranks) and
``reshard_restores`` (snapshots reassembled onto a different process
grid).  Together with the ``CHECKPOINT``/``RECOVERY``/``ELASTIC`` timer
sections this is how a campaign's recovery history is surfaced.

:class:`TelemetryCounters` is the same discipline for the structured
run recorder (:mod:`repro.telemetry`): records and bytes emitted keep
moving while the recorder-owned scratch (``workspace_allocs``) freezes
after the first record — the recorder must not allocate on the hot
path.  ``overhead_seconds`` accumulates the recorder's own wall time so
its <1%-of-step budget is checkable from the stream itself.

Every timer additionally accepts an optional ``tracer`` (a
:class:`repro.telemetry.trace.TraceWriter`): when set, each timed
section is also emitted as a Chrome ``trace_event`` span, giving the
per-rank Transpose/FFT/N-S-advance/solve nesting in Perfetto without
touching any driver code.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


class SectionTimers:
    """Named cumulative wall-clock timers.

    Sections listed in :attr:`NESTED` are timed *inside* another section
    (``solve`` runs within ``ns_advance``) and are therefore excluded
    from :meth:`total`, which otherwise sums disjoint sections.
    """

    #: canonical section names used by the drivers
    TRANSPOSE = "transpose"
    FFT = "fft"
    ADVANCE = "ns_advance"
    NONLINEAR = "nonlinear_products"
    REORDER = "reorder"
    SOLVE = "solve"
    #: fault-tolerance sections: checkpoint writes and rollback/restart
    #: work of the run supervisor (disjoint from the per-step sections)
    CHECKPOINT = "checkpoint"
    RECOVERY = "recovery"
    #: elastic-recovery section: survivor re-planning and reshard restores
    #: after a shrink (disjoint, like CHECKPOINT/RECOVERY)
    ELASTIC = "elastic"
    #: streaming-statistics section: accumulator sampling inside the step
    #: loop (disjoint — it runs after the RK3 advance returned)
    STATS = "stats"
    #: compute executed while a nonblocking exchange was in flight (the
    #: pipelined transposes run FFT slabs inside the transpose section,
    #: so this is nested — it measures hidden time, not extra time)
    OVERLAP = "overlap"

    #: sections nested inside another section (not added to the total)
    NESTED = frozenset({SOLVE, OVERLAP})

    def __init__(self) -> None:
        self.elapsed: dict[str, float] = defaultdict(float)
        self.calls: dict[str, int] = defaultdict(int)
        #: optional span sink (``repro.telemetry.trace.TraceWriter``); when
        #: set, every timed section is also emitted as a trace span
        self.tracer = None

    @contextmanager
    def section(self, name: str):
        """Time a ``with``-block under ``name`` (cumulative)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.elapsed[name] += dt
            self.calls[name] += 1
            tracer = self.tracer
            if tracer is not None:
                tracer.add_complete(name, t0, dt)

    def total(self) -> float:
        return sum(v for k, v in self.elapsed.items() if k not in self.NESTED)

    def reset(self) -> None:
        self.elapsed.clear()
        self.calls.clear()

    def report(self) -> str:
        """Table-9-style one-liner: per-section seconds plus total."""
        parts = [f"{k}={v:.4f}s" for k, v in sorted(self.elapsed.items())]
        parts.append(f"total={self.total():.4f}s")
        return "  ".join(parts)

    def merge(self, other: "SectionTimers") -> None:
        for k, v in other.elapsed.items():
            self.elapsed[k] += v
        for k, v in other.calls.items():
            self.calls[k] += v


class TransformCounters:
    """Allocation / execution / timing counters of a transform pipeline.

    ``workspace_bytes`` and ``workspace_allocs`` count only pipeline-owned
    scratch (pad buffers, transpose staging); transform *outputs* are
    caller-owned fresh arrays and are not workspace.  A warmed-up pipeline
    holds both constant across calls — the zero-allocation invariant.
    """

    def __init__(self) -> None:
        self.workspace_bytes = 0
        self.workspace_allocs = 0
        self.transforms = 0
        self.fields_forward = 0
        self.fields_backward = 0
        self.stage_seconds: dict[str, float] = defaultdict(float)
        self.stage_calls: dict[str, int] = defaultdict(int)

    def count_workspace(self, arr) -> None:
        """Record a newly allocated workspace array."""
        self.workspace_bytes += int(arr.nbytes)
        self.workspace_allocs += 1

    @contextmanager
    def stage(self, name: str):
        """Time one pipeline stage (cumulative per stage name)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.stage_seconds[name] += time.perf_counter() - t0
            self.stage_calls[name] += 1

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (for before/after deltas)."""
        return {
            "workspace_bytes": self.workspace_bytes,
            "workspace_allocs": self.workspace_allocs,
            "transforms": self.transforms,
            "fields_forward": self.fields_forward,
            "fields_backward": self.fields_backward,
            "stage_seconds": dict(self.stage_seconds),
            "stage_calls": dict(self.stage_calls),
        }

    def report(self) -> str:
        parts = [
            f"workspace={self.workspace_bytes}B/{self.workspace_allocs} allocs",
            f"transforms={self.transforms}",
            f"fields={self.fields_forward}fwd/{self.fields_backward}bwd",
        ]
        parts += [f"{k}={v:.4f}s" for k, v in sorted(self.stage_seconds.items())]
        return "  ".join(parts)


class OverlapCounters:
    """Communication/compute overlap accounting of the pipelined transposes.

    ``bytes_posted`` counts off-rank payload posted through nonblocking
    exchanges, ``bytes_completed`` the portion whose requests finished,
    and ``bytes_overlapped`` the portion already delivered when the wait
    first checked — communication fully hidden behind the FFT compute
    that ran between post and wait.  ``wait_seconds`` is time blocked in
    ``Request.wait`` (exposed comm), ``overlap_seconds`` compute executed
    while an exchange was in flight (hidden comm window).  ``posts`` and
    ``waits`` count the staged exchanges.
    """

    def __init__(self) -> None:
        self.posts = 0
        self.waits = 0
        self.bytes_posted = 0
        self.bytes_completed = 0
        self.bytes_overlapped = 0
        self.wait_seconds = 0.0
        self.overlap_seconds = 0.0

    def hidden_fraction(self) -> float:
        """Fraction of completed exchange bytes fully hidden behind compute."""
        if not self.bytes_completed:
            return 0.0
        return self.bytes_overlapped / self.bytes_completed

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (for before/after deltas)."""
        return {
            "posts": self.posts,
            "waits": self.waits,
            "bytes_posted": self.bytes_posted,
            "bytes_completed": self.bytes_completed,
            "bytes_overlapped": self.bytes_overlapped,
            "wait_seconds": self.wait_seconds,
            "overlap_seconds": self.overlap_seconds,
        }

    def report(self) -> str:
        return (
            f"posts={self.posts}  waits={self.waits}  "
            f"bytes={self.bytes_posted} posted/{self.bytes_overlapped} overlapped "
            f"({self.hidden_fraction():.0%} hidden)  "
            f"wait={self.wait_seconds:.4f}s  overlap={self.overlap_seconds:.4f}s"
        )


class PrecisionCounters:
    """Mixed-precision wire accounting of the global transposes.

    When a :class:`~repro.pencil.transpose.GlobalTranspose` runs in
    ``wire="mixed"`` mode, float64/complex128 payloads are staged down to
    float32/complex64 before the exchange and accumulated back at full
    precision on assembly.  ``bytes_full`` counts what the full-precision
    payload would have moved, ``bytes_wire`` what was actually staged —
    their ratio is the counter-asserted wire saving (≤ 0.55 of the
    float64 bytes for pure float payloads; the tiny excess over 0.5 in a
    mixed stream comes from exchanges too narrow to down-cast).
    ``casts`` counts exchanges that actually narrowed, ``exchanges`` all
    staged exchanges.
    """

    def __init__(self) -> None:
        self.exchanges = 0
        self.casts = 0
        self.bytes_wire = 0
        self.bytes_full = 0

    def wire_fraction(self) -> float:
        """bytes_wire / bytes_full (1.0 before any exchange)."""
        if not self.bytes_full:
            return 1.0
        return self.bytes_wire / self.bytes_full

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> dict:
        return {
            "exchanges": self.exchanges,
            "casts": self.casts,
            "bytes_wire": self.bytes_wire,
            "bytes_full": self.bytes_full,
        }

    def report(self) -> str:
        return (
            f"exchanges={self.exchanges} ({self.casts} down-cast)  "
            f"wire={self.bytes_wire}B of {self.bytes_full}B full "
            f"({self.wire_fraction():.0%} on the wire)"
        )


class SolveCounters:
    """Workspace / execution counters of a batched banded solve engine.

    ``workspace_bytes``/``workspace_allocs`` count only engine-owned
    scratch (the pair/group right-hand-side panels); solve *outputs* are
    caller-owned fresh arrays and are not workspace.  A built engine
    holds both frozen across steady-state solves — the zero-allocation
    invariant asserted by the tests.  ``sweeps`` counts blocked
    forward+backward passes, ``columns`` the real RHS columns swept
    (a complex right-hand side is two columns).
    """

    def __init__(self) -> None:
        self.workspace_bytes = 0
        self.workspace_allocs = 0
        self.solves = 0
        self.sweeps = 0
        self.columns = 0

    def count_workspace(self, arr) -> None:
        """Record a newly allocated engine workspace array."""
        self.workspace_bytes += int(arr.nbytes)
        self.workspace_allocs += 1

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (for before/after deltas)."""
        return {
            "workspace_bytes": self.workspace_bytes,
            "workspace_allocs": self.workspace_allocs,
            "solves": self.solves,
            "sweeps": self.sweeps,
            "columns": self.columns,
        }

    def report(self) -> str:
        return (
            f"workspace={self.workspace_bytes}B/{self.workspace_allocs} allocs  "
            f"solves={self.solves}  sweeps={self.sweeps}  columns={self.columns}"
        )


class RecoveryCounters:
    """Checkpoint / recovery bookkeeping of the fault-tolerant harness.

    ``checkpoints_saved``/``checkpoints_pruned`` move with the rotation,
    ``verify_failures`` counts snapshots rejected by checksum or manifest
    verification, ``failures`` counts watchdog/collective trips the
    supervisor caught, ``rollbacks`` successful restores, ``restarts``
    job-level relaunches of an SPMD program, and ``dt_reductions`` the
    graceful-degradation steps taken after instability.  The elastic
    path adds ``shrinks`` (agreed survivor-set reductions after a rank
    death), ``grows`` (re-expansions of a degraded run back onto a
    larger grid once ranks return) and ``reshard_restores`` (snapshots
    reassembled onto a decomposition different from the one that wrote
    them).
    """

    def __init__(self) -> None:
        self.checkpoints_saved = 0
        self.checkpoints_pruned = 0
        self.verify_failures = 0
        self.failures = 0
        self.rollbacks = 0
        self.restarts = 0
        self.dt_reductions = 0
        self.shrinks = 0
        self.grows = 0
        self.reshard_restores = 0

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (for before/after deltas)."""
        return {
            "checkpoints_saved": self.checkpoints_saved,
            "checkpoints_pruned": self.checkpoints_pruned,
            "verify_failures": self.verify_failures,
            "failures": self.failures,
            "rollbacks": self.rollbacks,
            "restarts": self.restarts,
            "dt_reductions": self.dt_reductions,
            "shrinks": self.shrinks,
            "grows": self.grows,
            "reshard_restores": self.reshard_restores,
        }

    def report(self) -> str:
        return (
            f"checkpoints={self.checkpoints_saved} saved/{self.checkpoints_pruned} pruned  "
            f"verify_failures={self.verify_failures}  failures={self.failures}  "
            f"rollbacks={self.rollbacks}  restarts={self.restarts}  "
            f"dt_reductions={self.dt_reductions}  shrinks={self.shrinks}  "
            f"grows={self.grows}  reshard_restores={self.reshard_restores}"
        )


class StatsCounters:
    """Bookkeeping of a streaming-statistics accumulator
    (:class:`repro.serving.StreamingStatistics`).

    ``samples`` counts states folded into the running sums, ``merges``
    the collective partial-sum reductions performed (one ``allreduce``
    per merge, regardless of how many profiles/spectra it carries),
    ``publishes`` results pushed into a results store, and ``restores``
    accumulator sidecars loaded back after a checkpoint restart or
    reshard.  ``sample_seconds`` accumulates the accumulator's own wall
    time — the numerator of the same <1%-of-step-time budget the
    telemetry recorder enforces on itself, checkable from the ``stats``
    telemetry group and asserted by ``scripts/stats_service_smoke.py``.
    """

    def __init__(self) -> None:
        self.samples = 0
        self.merges = 0
        self.publishes = 0
        self.restores = 0
        self.sample_seconds = 0.0

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (for before/after deltas)."""
        return {
            "samples": self.samples,
            "merges": self.merges,
            "publishes": self.publishes,
            "restores": self.restores,
            "sample_seconds": self.sample_seconds,
        }

    def report(self) -> str:
        return (
            f"samples={self.samples}  merges={self.merges}  "
            f"publishes={self.publishes}  restores={self.restores}  "
            f"sample_time={self.sample_seconds:.4f}s"
        )


class TelemetryCounters:
    """Emission / workspace counters of a :class:`repro.telemetry.RunRecorder`.

    ``records``/``events``/``bytes_written``/``flushes`` move with the
    stream; ``overhead_seconds`` accumulates the recorder's own wall
    time (the numerator of the <1%-per-step overhead budget).
    ``workspace_allocs`` counts recorder-owned scratch entries (the
    reused record dict, per-section delta slots, counter-delta slots)
    and must freeze after the first record of a warmed-up run — the
    same zero-allocation discipline :class:`TransformCounters` enforces
    on the transform pipeline.
    """

    def __init__(self) -> None:
        self.records = 0
        self.events = 0
        self.bytes_written = 0
        self.flushes = 0
        self.overhead_seconds = 0.0
        self.workspace_allocs = 0

    def reset(self) -> None:
        self.__init__()

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (for before/after deltas)."""
        return {
            "records": self.records,
            "events": self.events,
            "bytes_written": self.bytes_written,
            "flushes": self.flushes,
            "overhead_seconds": self.overhead_seconds,
            "workspace_allocs": self.workspace_allocs,
        }

    def report(self) -> str:
        return (
            f"records={self.records}  events={self.events}  "
            f"bytes={self.bytes_written}  flushes={self.flushes}  "
            f"overhead={self.overhead_seconds:.4f}s  "
            f"workspace_allocs={self.workspace_allocs}"
        )
