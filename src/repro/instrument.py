"""Section timers mirroring the paper's per-timestep breakdown.

The benchmarks of Tables 9-10 report elapsed time split into
``Transpose`` / ``FFT`` / ``N-S time advance`` (plus Total).  Both the
serial and the distributed drivers instrument themselves with a
:class:`SectionTimers` so the same breakdown can be printed for any run.
The paper used ``MPI_wtime``; we use :func:`time.perf_counter`.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


class SectionTimers:
    """Named cumulative wall-clock timers."""

    #: canonical section names used by the drivers
    TRANSPOSE = "transpose"
    FFT = "fft"
    ADVANCE = "ns_advance"
    NONLINEAR = "nonlinear_products"
    REORDER = "reorder"

    def __init__(self) -> None:
        self.elapsed: dict[str, float] = defaultdict(float)
        self.calls: dict[str, int] = defaultdict(int)

    @contextmanager
    def section(self, name: str):
        """Time a ``with``-block under ``name`` (cumulative)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.elapsed[name] += time.perf_counter() - t0
            self.calls[name] += 1

    def total(self) -> float:
        return sum(self.elapsed.values())

    def reset(self) -> None:
        self.elapsed.clear()
        self.calls.clear()

    def report(self) -> str:
        """Table-9-style one-liner: per-section seconds plus total."""
        parts = [f"{k}={v:.4f}s" for k, v in sorted(self.elapsed.items())]
        parts.append(f"total={self.total():.4f}s")
        return "  ".join(parts)

    def merge(self, other: "SectionTimers") -> None:
        for k, v in other.elapsed.items():
            self.elapsed[k] += v
        for k, v in other.calls.items():
            self.calls[k] += v
