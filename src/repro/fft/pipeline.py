"""Planned, buffer-reusing serial transform pipeline (steps (b)-(f)/(h)).

This is the serial analogue of the paper's planned FFT machinery: FFTW
3.3 plans chosen by measurement (§4.3), threaded FFTs (Table 3) and the
1x-buffer discipline of the custom parallel FFT (§4.4).  The naive
reference in :mod:`repro.core.transforms` allocates two zero-filled pad
arrays, two scaling temporaries and two truncation copies per field per
direction, and runs every FFT along a strided axis of a C-ordered
``(x, z, y)`` array; at three velocity fields forward and five quadratic
products backward per RK substep that traffic dominates the Python-level
cost of the nonlinear term.  :class:`TransformPipeline` removes it:

* **Transform-major workspaces** — the padded spectra live in
  pipeline-owned buffers laid out so the transform axis is always the
  *contiguous last axis* (``(x, y, z)`` for the z stages, ``(z, y, x)``
  for the x stages).  pocketfft is 2-3x faster on contiguous lines, and
  the axis permutation is folded into the pad/truncate writes the naive
  path performs anyway — no separate transpose pass exists.
* **Persistent pad buffers** — both pads are allocated once; each call
  writes only the retained-mode slots (fused with the normalization
  scaling via ``np.multiply(..., out=...)``).  The dealiasing bands are
  zeroed at allocation and never rewritten: the forward z transform runs
  out of place, so nothing ever dirties its pad.
* **In-place / destination-hinted execution** — the backward complex z
  transform runs with ``overwrite=True`` (numpy's ``out=``, scipy's
  ``overwrite_x``) and transforms its scratch buffer in place; the other
  interior stages pass persistent destination hints, which the numpy
  backend honours via pocketfft's ``out=``.  After warm-up the hot
  loop's only fresh allocations are the caller-owned output arrays.
* **Planned transforms** — every FFT goes through a
  :class:`~repro.fft.plans.FFTPlan` drawn from a shared
  :class:`~repro.fft.plans.Planner` cache, so strategy selection and
  backend threading follow the FFTW plan-once/execute-many contract.
  The pencil-decomposed parallel FFT draws from the same cache.
* **Batched stack execution** — :meth:`to_physical_many` /
  :meth:`from_physical_many` run the whole 3-velocity / 5-product stack
  through one call.  Fields are transformed one at a time *inside* the
  batch: measurement shows pocketfft over a stacked 4-D axis is slower
  than per-field 3-D transforms here (the per-field working set stays
  cache-resident), so the batch buys shared workspaces and one
  Python-level entry per substep, not a wider FFT.
* **Counters** — a :class:`~repro.instrument.TransformCounters` records
  workspace bytes/allocations, transforms executed and per-stage wall
  time.  After warm-up the workspace counters are constant: the hot path
  performs zero new workspace allocations.

Numerics: the pipeline is bit-for-bit identical to the naive reference
on every backend — pocketfft results do not depend on input strides or
in-place execution, the fused scaling writes the exact same scaled
values into the same padded mode slots the reference builds, and the
truncation divide applies the same elementwise operation to the same
values.  Forward outputs are fresh arrays returned as ``(x, z, y)``
views of ``(z, y, x)``-contiguous storage; elementwise products of such
views preserve the layout, which is what keeps the backward transform on
the fast contiguous path through the whole nonlinear chain.
"""

from __future__ import annotations

import numpy as np

from repro.fft.plans import FFTPlan, PlanFlags, Planner, default_planner, resolve_backend
from repro.instrument import TransformCounters


class TransformPipeline:
    """Planned spectral <-> quadrature-grid transforms for one grid.

    Parameters
    ----------
    grid:
        The :class:`~repro.core.grid.ChannelGrid` fixing all shapes.
    backend:
        ``"numpy"`` (default), ``"scipy"`` (pocketfft with in-place
        execution and a thread pool), or ``"auto"``.
    workers:
        Thread count for the scipy backend (the paper's OpenMP-threaded
        FFTs, Table 3); ignored by the numpy backend.
    flags:
        :class:`~repro.fft.plans.PlanFlags` or its string value —
        ``"estimate"`` (deterministic, default) or ``"measure"``
        (best-of-:data:`~repro.fft.plans.MEASURE_RUNS` candidate timing).
    planner:
        Plan cache to draw from; defaults to the process-wide
        :func:`~repro.fft.plans.default_planner`.
    counters:
        Optional shared :class:`~repro.instrument.TransformCounters`.
    wisdom:
        Optional :class:`~repro.tuning.WisdomStore` persisting MEASURE
        outcomes across processes; ``None`` defers to the planner's
        store (itself defaulting to the ``REPRO_WISDOM`` env selection),
        so a warm start re-plans the four stages without re-timing.
    """

    def __init__(
        self,
        grid,
        backend: str = "numpy",
        workers: int | None = None,
        flags: PlanFlags | str = PlanFlags.ESTIMATE,
        planner: Planner | None = None,
        counters: TransformCounters | None = None,
        wisdom=None,
    ) -> None:
        self.grid = grid
        self.planner = planner if planner is not None else default_planner()
        self.flags = PlanFlags(flags) if isinstance(flags, str) else flags
        self.backend = backend
        self.workers = workers
        self.wisdom = wisdom
        self.counters = counters if counters is not None else TransformCounters()

        g = grid
        self._mx, self._mz, self._ny = g.spectral_shape
        self._nxq, self._nzq = g.nxq, g.nzq
        self._half = g.nz // 2  # stored non-negative z modes
        self._nneg = self._mz - self._half  # stored negative z modes
        self._mxq = self._nxq // 2 + 1  # half-spectrum length at quadrature size
        self._ws: dict[str, np.ndarray] = {}
        # destination hints only pay off on the backend that honours them
        self._use_hints = resolve_backend(backend) == "numpy"

        # plan-once: the four 1-D stages of the (b)-(f)/(h) chain, each on
        # the contiguous last axis of its transform-major workspace layout
        kw = dict(backend=backend, workers=workers, flags=self.flags, wisdom=wisdom)
        zshape = (self._mx, self._ny, self._nzq)  # (x, y, z)
        self._plan_ifft_z = self.planner.plan("ifft", zshape, 2, **kw)
        self._plan_irfft_x = self.planner.plan(
            "irfft", (self._nzq, self._ny, self._mxq), 2, nout=self._nxq, **kw
        )
        self._plan_rfft_x = self.planner.plan(
            "rfft", (self._nzq, self._ny, self._nxq), 2, **kw
        )
        self._plan_fft_z = self.planner.plan("fft", zshape, 2, **kw)

    # ------------------------------------------------------------------
    # workspace management
    # ------------------------------------------------------------------

    def _workspace(self, name: str, shape: tuple[int, ...], zero: bool) -> np.ndarray:
        """Persistent named scratch; allocated (and counted) at most once."""
        buf = self._ws.get(name)
        if buf is None:
            buf = np.zeros(shape, dtype=complex) if zero else np.empty(shape, dtype=complex)
            self._ws[name] = buf
            self.counters.count_workspace(buf)
        return buf

    def workspace_bytes(self) -> int:
        """Current footprint of the pipeline-owned workspaces."""
        return sum(int(b.nbytes) for b in self._ws.values())

    def plans(self) -> tuple[FFTPlan, FFTPlan, FFTPlan, FFTPlan]:
        """The four stage plans (ifft-z, irfft-x, rfft-x, fft-z)."""
        return (self._plan_ifft_z, self._plan_irfft_x, self._plan_rfft_x, self._plan_fft_z)

    def _hint(self, name: str, shape: tuple[int, ...]) -> np.ndarray | None:
        """Persistent destination hint, or ``None`` where hints are moot."""
        if not self._use_hints:
            return None
        return self._workspace(name, shape, zero=False)

    # ------------------------------------------------------------------
    # forward: spectral -> quadrature grid (steps (b)-(f))
    # ------------------------------------------------------------------

    def to_physical(self, spec: np.ndarray) -> np.ndarray:
        """Spectral ``(mx, mz, ny)`` -> physical ``(nxq, nzq, ny)`` (real)."""
        g = self.grid
        if spec.shape != g.spectral_shape:
            raise ValueError(f"expected {g.spectral_shape}, got {spec.shape}")
        c = self.counters
        half, nneg, nzq, nxq, mx = self._half, self._nneg, self._nzq, self._nxq, self._mx

        with c.stage("pad_z"):
            # step (b): scaled mode slots into the forward z pad,
            # permuting (x, z, y) -> (x, y, z) in the same write.  The
            # dealiasing band was zeroed at allocation and stays zero —
            # the z transform below never runs in place on this buffer.
            zbuf = self._workspace("zpad", (self._mx, self._ny, self._nzq), zero=True)
            np.multiply(spec[:, :half, :].transpose(0, 2, 1), nzq, out=zbuf[:, :, :half])
            np.multiply(spec[:, half:, :].transpose(0, 2, 1), nzq, out=zbuf[:, :, nzq - nneg :])
        with c.stage("ifft_z"):
            # step (c), out of place so the pad's zero band survives; the
            # numpy backend lands the result in a persistent hint buffer
            zphys = self._plan_ifft_z.execute(zbuf, out=self._hint("zphys", zbuf.shape))
            c.transforms += 1
        with c.stage("pad_x"):
            # step (e): scaled half-spectrum into the persistent x pad,
            # permuting (x, y, z) -> (z, y, x); the x-dealiasing columns
            # beyond mx were zeroed at allocation and are never touched.
            xbuf = self._workspace("xpad", (nzq, self._ny, self._mxq), zero=True)
            np.multiply(zphys.transpose(2, 1, 0), nxq, out=xbuf[:, :, :mx])
        with c.stage("irfft_x"):
            physT = self._plan_irfft_x.execute(xbuf)  # step (f), fresh output
            c.transforms += 1
        c.fields_forward += 1
        return physT.transpose(2, 0, 1)  # (nxq, nzq, ny) view, caller-owned

    # ------------------------------------------------------------------
    # backward: quadrature grid -> spectral (step (h))
    # ------------------------------------------------------------------

    def from_physical(self, phys: np.ndarray) -> np.ndarray:
        """Physical ``(nxq, nzq, ny)`` (real) -> spectral ``(mx, mz, ny)``."""
        g = self.grid
        if phys.shape != g.quadrature_shape:
            raise ValueError(f"expected {g.quadrature_shape}, got {phys.shape}")
        c = self.counters
        half, nneg, nzq, nxq, mx = self._half, self._nneg, self._nzq, self._nxq, self._mx

        with c.stage("rfft_x"):
            # (z, y, x) lines; contiguous (and fast) when phys descends
            # from pipeline outputs, still correct for any strides.
            xh = self._plan_rfft_x.execute(
                phys.transpose(1, 2, 0),
                out=self._hint("xspec", (self._nzq, self._ny, self._mxq)),
            )
            c.transforms += 1
        with c.stage("truncate_x"):
            # keep the Nyquist-free modes, fusing the x normalization and
            # the (z, y, x) -> (x, y, z) permutation into one write; the
            # divide overwrites every element, so no zeroing is needed.
            zbuf = self._workspace("zwork", (mx, self._ny, nzq), zero=False)
            np.divide(xh[:, :, :mx].transpose(2, 1, 0), nxq, out=zbuf)
        with c.stage("fft_z"):
            zh = self._plan_fft_z.execute(zbuf, overwrite=True)  # in place
            c.transforms += 1
        with c.stage("truncate_z"):
            # fuse z normalization with the truncation writes back to the
            # C-ordered (x, z, y) spectral layout
            out = np.empty(g.spectral_shape, dtype=complex)
            np.divide(zh[:, :, :half].transpose(0, 2, 1), nzq, out=out[:, :half, :])
            np.divide(zh[:, :, nzq - nneg :].transpose(0, 2, 1), nzq, out=out[:, half:, :])
        c.fields_backward += 1
        return out

    # ------------------------------------------------------------------
    # batched stacks (one entry per RK substep)
    # ------------------------------------------------------------------

    def to_physical_many(self, specs) -> list[np.ndarray]:
        """Transform a stack of spectral fields (the 3 velocities)."""
        return [self.to_physical(s) for s in specs]

    def from_physical_many(self, physes) -> list[np.ndarray]:
        """Project a stack of quadrature-grid fields (the 5 products)."""
        return [self.from_physical(p) for p in physes]
