"""FFT substrate: Nyquist-free real/complex transforms and 3/2 dealiasing.

Two properties of the paper's customized FFT kernel (§4.4) are implemented
here:

* **Nyquist dropping** — "our parallel FFT library, unlike P3DFFT,
  recognizes that the Nyquist mode is not necessary and does not store it
  or include it in transposes."  The transforms in
  :mod:`repro.fft.fourier` keep ``N/2`` complex modes for a length-``N``
  real line (x direction) and ``N-1`` modes for a complex line
  (z direction), reinstating a zero Nyquist coefficient on the way back.
* **3/2-rule dealiasing** (§2.1) — Galerkin quadratures of the quadratic
  nonlinearity are done on a grid 3/2 finer in each periodic direction;
  :func:`pad_for_quadrature`/:func:`truncate_from_quadrature` implement
  the zero-padding of steps (b)/(e) of the simulation loop.

:mod:`repro.fft.plans` provides an FFTW-style plan/planner API (the paper
relies on FFTW 3.3 planning to pick transform and transpose variants) with
numpy and threaded-scipy execution backends, and
:mod:`repro.fft.pipeline` the planned, buffer-reusing transform pipeline
that executes the dealiased (b)-(f)/(h) chain for the serial solver.
"""

from repro.fft.fourier import (
    complex_modes,
    fft_wavenumbers,
    forward_c2c,
    forward_r2c,
    inverse_c2c,
    inverse_c2r,
    pad_for_quadrature_c,
    pad_for_quadrature_r,
    quadrature_points,
    real_modes,
    rfft_wavenumbers,
    truncate_from_quadrature_c,
    truncate_from_quadrature_r,
)
from repro.fft.pipeline import TransformPipeline
from repro.fft.plans import (
    FFTPlan,
    PlanFlags,
    Planner,
    available_backends,
    default_planner,
    resolve_backend,
)

__all__ = [
    "FFTPlan",
    "PlanFlags",
    "Planner",
    "TransformPipeline",
    "available_backends",
    "default_planner",
    "resolve_backend",
    "complex_modes",
    "fft_wavenumbers",
    "forward_c2c",
    "forward_r2c",
    "inverse_c2c",
    "inverse_c2r",
    "pad_for_quadrature_c",
    "pad_for_quadrature_r",
    "quadrature_points",
    "real_modes",
    "rfft_wavenumbers",
    "truncate_from_quadrature_c",
    "truncate_from_quadrature_r",
]
