"""Nyquist-free Fourier transforms and 3/2-rule dealiasing helpers.

Conventions
-----------

* A *real line* of ``N`` points (the streamwise x direction) is
  represented by ``real_modes(N) = N // 2`` complex coefficients for
  wavenumbers ``k = 0 .. N/2 - 1``: the Nyquist mode ``N/2`` is dropped
  (paper §4.4).  Storage-wise this is exactly ``N`` real numbers — the
  same footprint as the physical line.
* A *complex line* of ``N`` points (the spanwise z direction, applied
  after x used up the reality condition) keeps
  ``complex_modes(N) = N - 1`` coefficients in FFT order
  ``[0, 1, .., N/2-1, -(N/2-1), .., -1]`` — again Nyquist-free.
* Coefficients are **mathematical** Fourier coefficients:
  ``u(x_j) = sum_k uhat_k exp(i k x_j)``; forward transforms divide by
  the number of points, so coefficients are grid-size independent, which
  is what makes zero-padding between grids a pure pad/truncate.

The 3/2 rule: products of two fields with ``K`` retained modes need
``>= 3K`` quadrature points for an alias-free Galerkin integral; padding
to ``M = 3N/2`` points does exactly that (Orszag 1971).
"""

from __future__ import annotations

import numpy as np


def real_modes(npoints: int) -> int:
    """Retained complex modes of a real line (Nyquist dropped)."""
    _check_even(npoints)
    return npoints // 2


def complex_modes(npoints: int) -> int:
    """Retained modes of a complex line (Nyquist dropped)."""
    _check_even(npoints)
    return npoints - 1


def quadrature_points(npoints: int) -> int:
    """3/2-rule quadrature grid size for a line of ``npoints`` points."""
    _check_even(npoints)
    m = (3 * npoints) // 2
    return m


def rfft_wavenumbers(npoints: int, length: float = 2.0 * np.pi) -> np.ndarray:
    """Wavenumbers ``0 .. N/2-1`` of the stored real-line modes."""
    k0 = 2.0 * np.pi / length
    return k0 * np.arange(real_modes(npoints))


def fft_wavenumbers(npoints: int, length: float = 2.0 * np.pi) -> np.ndarray:
    """FFT-ordered wavenumbers of the stored complex-line modes."""
    k0 = 2.0 * np.pi / length
    m = complex_modes(npoints)
    half = npoints // 2  # modes 0..half-1 then -(half-1)..-1
    return k0 * np.concatenate([np.arange(half), np.arange(-(half - 1), 0)]).astype(float)[:m]


def _check_even(npoints: int) -> None:
    if npoints < 4 or npoints % 2:
        raise ValueError(f"line length must be even and >= 4, got {npoints}")


# ----------------------------------------------------------------------
# real (x) direction
# ----------------------------------------------------------------------


def forward_r2c(u: np.ndarray, axis: int = -1) -> np.ndarray:
    """Physical real line -> Nyquist-free spectral coefficients."""
    n = u.shape[axis]
    _check_even(n)
    uh = np.fft.rfft(u, axis=axis) / n
    sl = [slice(None)] * uh.ndim
    sl[axis] = slice(0, n // 2)
    return np.ascontiguousarray(uh[tuple(sl)])


def inverse_c2r(uh: np.ndarray, npoints: int, axis: int = -1) -> np.ndarray:
    """Nyquist-free spectral coefficients -> physical real line of ``npoints``."""
    m = uh.shape[axis]
    if npoints // 2 < m:
        raise ValueError(f"cannot fit {m} modes into {npoints} points")
    return np.fft.irfft(uh * npoints, n=npoints, axis=axis)


def pad_for_quadrature_r(uh: np.ndarray, npoints: int, axis: int = -1) -> np.ndarray:
    """Step (e): zero-pad stored x modes for the 3/2 quadrature grid.

    Returns the padded *spectral* array sized for ``irfft`` on
    ``quadrature_points(npoints)`` points (``3N/4 + 1`` complex entries).
    """
    m = uh.shape[axis]
    if m != real_modes(npoints):
        raise ValueError(f"expected {real_modes(npoints)} stored modes, got {m}")
    mq = quadrature_points(npoints) // 2 + 1
    shape = list(uh.shape)
    shape[axis] = mq
    out = np.zeros(shape, dtype=complex)
    sl = [slice(None)] * uh.ndim
    sl[axis] = slice(0, m)
    out[tuple(sl)] = uh
    return out


def truncate_from_quadrature_r(uhq: np.ndarray, npoints: int, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`pad_for_quadrature_r`: keep the retained modes."""
    sl = [slice(None)] * uhq.ndim
    sl[axis] = slice(0, real_modes(npoints))
    return np.ascontiguousarray(uhq[tuple(sl)])


# ----------------------------------------------------------------------
# complex (z) direction
# ----------------------------------------------------------------------


def forward_c2c(u: np.ndarray, axis: int = -1) -> np.ndarray:
    """Physical complex line -> Nyquist-free FFT-ordered coefficients."""
    n = u.shape[axis]
    _check_even(n)
    uh = np.fft.fft(u, axis=axis) / n
    return _drop_nyquist_c(uh, n, axis)


def inverse_c2c(uh: np.ndarray, npoints: int, axis: int = -1) -> np.ndarray:
    """Nyquist-free FFT-ordered coefficients -> physical complex line."""
    full = _insert_modes_c(uh, npoints, axis)
    return np.fft.ifft(full * npoints, axis=axis)


def pad_for_quadrature_c(uh: np.ndarray, npoints: int, axis: int = -1) -> np.ndarray:
    """Step (b): zero-pad stored z modes for the 3/2 quadrature grid."""
    m = uh.shape[axis]
    if m != complex_modes(npoints):
        raise ValueError(f"expected {complex_modes(npoints)} stored modes, got {m}")
    return _insert_modes_c(uh, quadrature_points(npoints), axis)


def truncate_from_quadrature_c(uhq: np.ndarray, npoints: int, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`pad_for_quadrature_c`: keep the retained modes."""
    m = complex_modes(npoints)
    half = npoints // 2
    nq = uhq.shape[axis]
    idx = np.concatenate([np.arange(half), nq + np.arange(-(half - 1), 0)])
    return np.take(uhq, idx[:m], axis=axis)


def _drop_nyquist_c(uh_full: np.ndarray, npoints: int, axis: int) -> np.ndarray:
    """Remove the Nyquist entry from a full FFT-ordered spectrum."""
    half = npoints // 2
    idx = np.concatenate([np.arange(half), np.arange(half + 1, npoints)])
    return np.take(uh_full, idx, axis=axis)


def _insert_modes_c(uh: np.ndarray, npoints: int, axis: int) -> np.ndarray:
    """Place Nyquist-free FFT-ordered modes into a length-``npoints`` spectrum.

    Positive modes go to the front, negative modes to the back, everything
    in between (including the Nyquist slot) is zero — this is both the
    Nyquist re-insertion and the dealiasing pad, depending on ``npoints``.
    """
    m = uh.shape[axis]
    half = (m + 1) // 2  # number of non-negative modes stored
    if npoints < m + 1:
        raise ValueError(f"cannot fit {m} modes into {npoints} points")
    shape = list(uh.shape)
    shape[axis] = npoints
    out = np.zeros(shape, dtype=complex)
    src = [slice(None)] * uh.ndim
    dst = [slice(None)] * uh.ndim
    src[axis] = slice(0, half)
    dst[axis] = slice(0, half)
    out[tuple(dst)] = uh[tuple(src)]
    src[axis] = slice(half, m)
    dst[axis] = slice(npoints - (m - half), npoints)
    out[tuple(dst)] = uh[tuple(src)]
    return out
