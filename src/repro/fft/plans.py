"""FFTW-style planning for the transform kernels.

The paper leans on FFTW 3.3's planner twice: for the 1-D transforms and
for the global transposes ("multiple implementations ... are tested.  In
this planning stage, the implementation with the best performance on
simple tests is selected and used for production", §4.3).  NumPy's
pocketfft has no planner, but the *strategy* choice it hides still
exists: transforming along a strided axis directly versus copying the
axis contiguous first can differ by large factors.  :class:`Planner`
reproduces the FFTW contract — build a plan once (optionally measuring),
execute it many times.

Two execution backends are supported, mirroring the paper's serial vs
OpenMP-threaded FFTs (Table 3):

* ``"numpy"`` — :mod:`numpy.fft` (always available, single-threaded);
* ``"scipy"`` — :mod:`scipy.fft` pocketfft with a ``workers=`` thread
  knob; gated behind an import so the package works without scipy.

``backend="auto"`` resolves to scipy when importable, else numpy.  The
module-level :func:`default_planner` is the process-wide plan cache (the
FFTW "wisdom" analogue) shared by the serial transform pipeline and the
pencil-decomposed parallel FFT.

MEASURE outcomes persist across processes through the
:class:`~repro.tuning.WisdomStore` (FFTW's on-disk wisdom contract): a
plan keyed identically in the store skips candidate timing entirely and
adopts the recorded strategy — bit-identical to what a cold run would
pick, since the strategy *is* the decision.  Every timed candidate run
is counted in :data:`repro.tuning.MEASURE_STATS`, which is how warm
starts assert they measured nothing.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

try:  # optional threaded backend (pocketfft with a workers pool)
    import scipy.fft as _scipy_fft
except ImportError:  # pragma: no cover - environment without scipy
    _scipy_fft = None

#: timed runs per candidate under MEASURE; the best (minimum) is kept so
#: a single noisy sample cannot decide the plan.
MEASURE_RUNS = 3


class PlanFlags(enum.Enum):
    """Planning rigor, mirroring FFTW's FFTW_ESTIMATE / FFTW_MEASURE."""

    ESTIMATE = "estimate"
    MEASURE = "measure"


def available_backends() -> tuple[str, ...]:
    """Execution backends usable in this environment."""
    return ("numpy", "scipy") if _scipy_fft is not None else ("numpy",)


def resolve_backend(backend: str) -> str:
    """Map ``"auto"`` to the preferred available backend; validate names."""
    if backend == "auto":
        return "scipy" if _scipy_fft is not None else "numpy"
    if backend not in ("numpy", "scipy"):
        raise ValueError(f"unknown FFT backend {backend!r}")
    if backend == "scipy" and _scipy_fft is None:
        raise ValueError("scipy backend requested but scipy is not installed")
    return backend


@dataclass
class _Candidate:
    name: str
    fn: Callable[[np.ndarray], np.ndarray]


class FFTPlan:
    """An executable 1-D FFT plan bound to an array shape, dtype and axis.

    ``kind`` is one of ``"fft"``, ``"ifft"``, ``"rfft"``, ``"irfft"``.
    For inverse kinds, ``nout`` gives the physical line length.

    Like an FFTW plan, the plan owns its scratch: the copy-contiguous
    strategy keeps a persistent transpose buffer, so repeated execution
    performs no new workspace allocations.  Outputs are always freshly
    allocated, C-contiguous arrays in the input's axis order (callers may
    keep them across executions).
    """

    def __init__(
        self,
        kind: str,
        shape: tuple[int, ...],
        axis: int,
        nout: int | None = None,
        flags: PlanFlags = PlanFlags.ESTIMATE,
        backend: str = "numpy",
        workers: int | None = None,
        wisdom=None,
    ) -> None:
        if kind not in ("fft", "ifft", "rfft", "irfft"):
            raise ValueError(f"unknown transform kind {kind!r}")
        self.kind = kind
        self.shape = tuple(shape)
        self.axis = axis if axis >= 0 else len(shape) + axis
        self.nout = nout
        self.flags = flags
        self.backend = resolve_backend(backend)
        self.workers = workers
        #: True when the strategy was loaded from a wisdom store instead
        #: of measured in this process
        self.from_wisdom = False
        # copy-contiguous workspace; thread-local because cached plans are
        # shared across SimMPI rank threads in the pencil path
        self._tlocal = threading.local()
        self.strategy, self.measured = self._plan(wisdom)

    # ------------------------------------------------------------------

    def _base(
        self,
        a: np.ndarray,
        axis: int,
        overwrite: bool = False,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        if self.backend == "scipy":
            # scipy.fft has no ``out=``; ``overwrite_x`` covers the
            # in-place case (same-size complex transforms reuse the input
            # buffer), other destination hints are simply not taken.
            kw = {} if self.workers is None else {"workers": self.workers}
            if overwrite:
                kw["overwrite_x"] = True
            if self.kind == "fft":
                return _scipy_fft.fft(a, axis=axis, **kw)
            if self.kind == "ifft":
                return _scipy_fft.ifft(a, axis=axis, **kw)
            if self.kind == "rfft":
                return _scipy_fft.rfft(a, axis=axis, **kw)
            return _scipy_fft.irfft(a, n=self.nout, axis=axis, **kw)
        if out is None and overwrite and self.kind in ("fft", "ifft"):
            out = a  # same-size c2c: transform the buffer in place
        if self.kind == "fft":
            return np.fft.fft(a, axis=axis, out=out)
        if self.kind == "ifft":
            return np.fft.ifft(a, axis=axis, out=out)
        if self.kind == "rfft":
            return np.fft.rfft(a, axis=axis, out=out)
        return np.fft.irfft(a, n=self.nout, axis=axis, out=out)

    def _direct(
        self, a: np.ndarray, overwrite: bool = False, out: np.ndarray | None = None
    ) -> np.ndarray:
        return self._base(a, self.axis, overwrite, out)

    def _copy_contiguous(self, a: np.ndarray) -> np.ndarray:
        moved = np.moveaxis(a, self.axis, -1)
        tbuf = getattr(self._tlocal, "buf", None)
        if tbuf is None or tbuf.shape != moved.shape or tbuf.dtype != a.dtype:
            tbuf = self._tlocal.buf = np.empty(moved.shape, dtype=a.dtype)
        np.copyto(tbuf, moved)
        out = self._base(tbuf, -1, overwrite=True)  # tbuf is plan scratch
        # hand back the natural axis order, materialized: downstream
        # stages (and the MEASURE timings) then see a contiguous array.
        return np.ascontiguousarray(np.moveaxis(out, -1, self.axis))

    def _candidates(self) -> list[_Candidate]:
        cands = [_Candidate("direct", self._direct)]
        if self.axis != len(self.shape) - 1:
            cands.append(_Candidate("copy-contiguous", self._copy_contiguous))
        return cands

    def _wisdom_key(self) -> list:
        return [self.kind, list(self.shape), self.axis, self.nout, self.backend, self.workers]

    def _plan(self, wisdom=None) -> tuple[str, dict[str, float]]:
        cands = self._candidates()
        if self.flags is PlanFlags.ESTIMATE or len(cands) == 1:
            # Heuristic: pocketfft handles strided input well enough that
            # direct is the default guess, like FFTW_ESTIMATE's cost model.
            return cands[0].name, {}
        from repro.tuning import MEASURE_STATS, default_store

        wisdom = wisdom if wisdom is not None else default_store()
        names = [c.name for c in cands]
        if wisdom is not None:
            hit = wisdom.lookup("fft", self._wisdom_key())
            if hit is not None and hit.get("strategy") in names:
                self.from_wisdom = True
                return hit["strategy"], dict(hit.get("timings") or {})
        dtype = complex if self.kind in ("fft", "ifft") else float
        probe = np.zeros(self.shape, dtype=dtype)
        timings: dict[str, float] = {}
        for cand in cands:
            cand.fn(probe)  # warm-up
            best = np.inf
            for _ in range(MEASURE_RUNS):
                t0 = time.perf_counter()
                cand.fn(probe)
                best = min(best, time.perf_counter() - t0)
                MEASURE_STATS.fft_candidates_timed += 1
            timings[cand.name] = best
        best = min(timings, key=timings.get)
        if wisdom is not None:
            wisdom.record(
                "fft", self._wisdom_key(), {"strategy": best, "timings": timings}, timings
            )
        return best, timings

    # ------------------------------------------------------------------

    def execute(
        self, a: np.ndarray, overwrite: bool = False, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Run the planned transform on an array of the planned shape.

        ``overwrite=True`` grants the backend permission to destroy (and,
        for same-size complex transforms, reuse) the input buffer — pass
        it only for arrays the caller owns, e.g. pipeline workspaces.
        ``out`` is a *destination hint*: a preallocated result buffer the
        backend may write into (numpy's pocketfft honours it; scipy has
        no such parameter and allocates).  Callers must always use the
        returned array, which may or may not alias ``a``/``out``.
        Bit-wise results are identical either way.
        """
        if a.shape != self.shape:
            raise ValueError(f"plan built for shape {self.shape}, got {a.shape}")
        if self.strategy == "direct":
            return self._direct(a, overwrite, out)
        return self._copy_contiguous(a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FFTPlan({self.kind}, shape={self.shape}, axis={self.axis}, "
            f"backend={self.backend!r}, strategy={self.strategy!r})"
        )


@dataclass
class Planner:
    """Plan cache, keyed by (kind, shape, axis, nout, backend, workers) —
    the FFTW wisdom analogue.

    ``backend``/``workers`` set the defaults for plans created through
    this planner; per-call overrides key separate cache entries, so one
    cache can serve mixed numpy/scipy users.

    ``wisdom`` is the persistent :class:`~repro.tuning.WisdomStore`
    consulted (and fed) by MEASURE-mode plans; ``None`` defers to the
    process-wide ``REPRO_WISDOM``-selected store.
    """

    flags: PlanFlags = PlanFlags.ESTIMATE
    backend: str = "numpy"
    workers: int | None = None
    wisdom: object | None = None
    _cache: dict = field(default_factory=dict)

    def plan(
        self,
        kind: str,
        shape: tuple[int, ...],
        axis: int,
        nout: int | None = None,
        backend: str | None = None,
        workers: int | None = None,
        flags: PlanFlags | None = None,
        wisdom=None,
    ) -> FFTPlan:
        backend = resolve_backend(self.backend if backend is None else backend)
        workers = self.workers if workers is None else workers
        flags = self.flags if flags is None else flags
        wisdom = self.wisdom if wisdom is None else wisdom
        key = (kind, tuple(shape), axis, nout, backend, workers, flags)
        if key not in self._cache:
            self._cache[key] = FFTPlan(
                kind, shape, axis, nout=nout, flags=flags, backend=backend,
                workers=workers, wisdom=wisdom,
            )
        return self._cache[key]

    def execute(
        self, kind: str, a: np.ndarray, axis: int, nout: int | None = None, **kw
    ) -> np.ndarray:
        return self.plan(kind, a.shape, axis, nout, **kw).execute(a)

    def __len__(self) -> int:
        return len(self._cache)


_DEFAULT_PLANNER: Planner | None = None


def default_planner() -> Planner:
    """The process-wide shared plan cache.

    Both the serial :class:`~repro.fft.pipeline.TransformPipeline` and
    the pencil :class:`~repro.pencil.parallel_fft.PencilTransforms` draw
    their plans from here by default, so a shape planned once (e.g. by a
    per-pencil 1-D stage) is reused everywhere.
    """
    global _DEFAULT_PLANNER
    if _DEFAULT_PLANNER is None:
        _DEFAULT_PLANNER = Planner()
    return _DEFAULT_PLANNER
