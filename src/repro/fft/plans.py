"""FFTW-style planning for the transform kernels.

The paper leans on FFTW 3.3's planner twice: for the 1-D transforms and
for the global transposes ("multiple implementations ... are tested.  In
this planning stage, the implementation with the best performance on
simple tests is selected and used for production", §4.3).  NumPy's
pocketfft has no planner, but the *strategy* choice it hides still
exists: transforming along a strided axis directly versus copying the
axis contiguous first can differ by large factors.  :class:`Planner`
reproduces the FFTW contract — build a plan once (optionally measuring),
execute it many times.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np


class PlanFlags(enum.Enum):
    """Planning rigor, mirroring FFTW's FFTW_ESTIMATE / FFTW_MEASURE."""

    ESTIMATE = "estimate"
    MEASURE = "measure"


@dataclass
class _Candidate:
    name: str
    fn: Callable[[np.ndarray], np.ndarray]


class FFTPlan:
    """An executable 1-D FFT plan bound to an array shape, dtype and axis.

    ``kind`` is one of ``"fft"``, ``"ifft"``, ``"rfft"``, ``"irfft"``.
    For inverse kinds, ``nout`` gives the physical line length.
    """

    def __init__(
        self,
        kind: str,
        shape: tuple[int, ...],
        axis: int,
        nout: int | None = None,
        flags: PlanFlags = PlanFlags.ESTIMATE,
    ) -> None:
        if kind not in ("fft", "ifft", "rfft", "irfft"):
            raise ValueError(f"unknown transform kind {kind!r}")
        self.kind = kind
        self.shape = tuple(shape)
        self.axis = axis if axis >= 0 else len(shape) + axis
        self.nout = nout
        self.flags = flags
        self.strategy, self.measured = self._plan()

    # ------------------------------------------------------------------

    def _base(self, a: np.ndarray, axis: int) -> np.ndarray:
        if self.kind == "fft":
            return np.fft.fft(a, axis=axis)
        if self.kind == "ifft":
            return np.fft.ifft(a, axis=axis)
        if self.kind == "rfft":
            return np.fft.rfft(a, axis=axis)
        return np.fft.irfft(a, n=self.nout, axis=axis)

    def _direct(self, a: np.ndarray) -> np.ndarray:
        return self._base(a, self.axis)

    def _copy_contiguous(self, a: np.ndarray) -> np.ndarray:
        moved = np.ascontiguousarray(np.moveaxis(a, self.axis, -1))
        out = self._base(moved, -1)
        return np.moveaxis(out, -1, self.axis)

    def _candidates(self) -> list[_Candidate]:
        cands = [_Candidate("direct", self._direct)]
        if self.axis != len(self.shape) - 1:
            cands.append(_Candidate("copy-contiguous", self._copy_contiguous))
        return cands

    def _plan(self) -> tuple[str, dict[str, float]]:
        cands = self._candidates()
        if self.flags is PlanFlags.ESTIMATE or len(cands) == 1:
            # Heuristic: pocketfft handles strided input well enough that
            # direct is the default guess, like FFTW_ESTIMATE's cost model.
            return cands[0].name, {}
        dtype = complex if self.kind in ("fft", "ifft") else float
        probe = np.zeros(self.shape, dtype=dtype)
        timings: dict[str, float] = {}
        for cand in cands:
            cand.fn(probe)  # warm-up
            t0 = time.perf_counter()
            cand.fn(probe)
            timings[cand.name] = time.perf_counter() - t0
        best = min(timings, key=timings.get)
        return best, timings

    # ------------------------------------------------------------------

    def execute(self, a: np.ndarray) -> np.ndarray:
        """Run the planned transform on an array of the planned shape."""
        if a.shape != self.shape:
            raise ValueError(f"plan built for shape {self.shape}, got {a.shape}")
        if self.strategy == "direct":
            return self._direct(a)
        return self._copy_contiguous(a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FFTPlan({self.kind}, shape={self.shape}, axis={self.axis}, "
            f"strategy={self.strategy!r})"
        )


@dataclass
class Planner:
    """Plan cache, keyed by (kind, shape, axis, nout) — the FFTW wisdom analogue."""

    flags: PlanFlags = PlanFlags.ESTIMATE
    _cache: dict = field(default_factory=dict)

    def plan(
        self, kind: str, shape: tuple[int, ...], axis: int, nout: int | None = None
    ) -> FFTPlan:
        key = (kind, tuple(shape), axis, nout)
        if key not in self._cache:
            self._cache[key] = FFTPlan(kind, shape, axis, nout=nout, flags=self.flags)
        return self._cache[key]

    def execute(
        self, kind: str, a: np.ndarray, axis: int, nout: int | None = None
    ) -> np.ndarray:
        return self.plan(kind, a.shape, axis, nout).execute(a)
