"""Time stepper tests: scheme coefficients, steady states, convergence, decay."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.initial import laminar_profile
from repro.core.timestepper import ChannelState, SMR91


class TestSMR91:
    def test_coefficients_consistent(self):
        s = SMR91()
        for i in range(3):
            assert abs(s.alpha[i] + s.beta[i] - s.gamma[i] - s.zeta[i]) < 1e-15
        assert abs(sum(s.gamma) + sum(s.zeta) - 1.0) < 1e-15

    def test_first_substep_has_no_zeta(self):
        assert SMR91().zeta[0] == 0.0


def laminar_state(grid, nu, forcing=1.0):
    return ChannelState(
        v=np.zeros(grid.spectral_shape, complex),
        omega_y=np.zeros(grid.spectral_shape, complex),
        u00=laminar_profile(grid, nu, forcing),
        w00=np.zeros(grid.ny),
    )


class TestSteadyStates:
    def test_laminar_poiseuille_is_steady(self):
        cfg = ChannelConfig(nx=16, ny=24, nz=16, re_tau=180.0, dt=1e-3)
        dns = ChannelDNS(cfg)
        dns.initialize(laminar_state(dns.grid, cfg.nu, cfg.forcing))
        u_init = dns.state.u00.copy()
        dns.run(5)
        drift = np.abs(dns.state.u00 - u_init).max() / np.abs(u_init).max()
        assert drift < 1e-12

    def test_quiescent_fluid_spins_up_under_forcing(self):
        cfg = ChannelConfig(nx=16, ny=24, nz=16, re_tau=180.0, dt=1e-3)
        dns = ChannelDNS(cfg)
        g = dns.grid
        dns.initialize(
            ChannelState(
                v=np.zeros(g.spectral_shape, complex),
                omega_y=np.zeros(g.spectral_shape, complex),
                u00=np.zeros(g.ny),
                w00=np.zeros(g.ny),
            )
        )
        dns.run(10)
        # acceleration du/dt = F = 1 initially -> u ~ t in the core
        t = 10 * cfg.dt
        centre = dns.state.u00 @ dns.grid.basis.colloc_matrix(0)[dns.grid.ny // 2]
        assert centre == pytest.approx(t, rel=0.05)


class TestStokesDecay:
    def test_exact_viscous_decay_rate(self):
        """u = cos(kz z) cos(pi y/2) decays at exactly nu (kz² + pi²/4)."""
        cfg = ChannelConfig(
            nx=16, ny=32, nz=16, dt=1e-3, forcing=0.0, nu_value=0.01, lz=np.pi
        )
        dns = ChannelDNS(cfg)
        g = dns.grid
        af = g.basis.interpolate(np.cos(np.pi * g.y / 2))
        omega = np.zeros(g.spectral_shape, complex)
        kz1 = g.kz[1]
        omega[0, 1] = 1j * kz1 * 5e-4 * af
        omega[0, g.mz - 1] = np.conj(omega[0, 1])
        dns.initialize(
            ChannelState(
                v=np.zeros(g.spectral_shape, complex),
                omega_y=omega,
                u00=np.zeros(g.ny),
                w00=np.zeros(g.ny),
            )
        )
        e0 = dns.kinetic_energy()
        n = 50
        dns.run(n)
        rate = -np.log(dns.kinetic_energy() / e0) / (2 * n * cfg.dt)
        exact = cfg.nu * (kz1**2 + (np.pi / 2) ** 2)
        assert rate == pytest.approx(exact, rel=1e-6)


class TestInvariants:
    def test_divergence_free_through_steps(self):
        cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=2)
        dns = ChannelDNS(cfg)
        dns.initialize()
        dns.run(5)
        assert dns.divergence_norm() < 1e-10

    def test_mean_mode_of_v_omega_stays_zero(self):
        cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=2)
        dns = ChannelDNS(cfg)
        dns.initialize()
        dns.run(3)
        assert np.abs(dns.state.v[0, 0]).max() == 0.0
        assert np.abs(dns.state.omega_y[0, 0]).max() == 0.0

    def test_physical_field_stays_real(self):
        cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=4)
        dns = ChannelDNS(cfg)
        dns.initialize()
        dns.run(3)
        u, v, w = dns.physical_velocity()
        for f in (u, v, w):
            assert np.isrealobj(f)

    def test_time_advances(self):
        cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=5e-4)
        dns = ChannelDNS(cfg)
        dns.initialize()
        dns.run(4)
        assert dns.state.time == pytest.approx(4 * cfg.dt)


class TestFusedSolves:
    def test_fused_equals_unfused_bit_for_bit(self):
        """The fused omega/phi sweep must not change the trajectory at all:
        every state array identical after several full steps."""
        cfg = ChannelConfig(nx=8, ny=17, nz=8, dt=5e-4, init_amplitude=0.3, seed=5)
        fused = ChannelDNS(cfg)
        unfused = ChannelDNS(cfg)
        unfused.stepper.fused_solves = False
        assert fused.stepper.fused_solves
        fused.initialize()
        unfused.initialize()
        fused.run(4)
        unfused.run(4)
        for name in ("v", "omega_y", "u00", "w00", "u", "w"):
            a = getattr(fused.state, name)
            b = getattr(unfused.state, name)
            assert np.array_equal(a, b), f"{name} diverged between solve paths"

    def test_solve_section_timed_inside_advance(self):
        cfg = ChannelConfig(nx=8, ny=17, nz=8, dt=5e-4, init_amplitude=0.3, seed=5)
        dns = ChannelDNS(cfg)
        dns.initialize()
        dns.run(1)
        t = dns.stepper.timers
        assert 0.0 < t.elapsed[t.SOLVE] < t.elapsed[t.ADVANCE]
        assert t.calls[t.SOLVE] >= 3  # at least one per substep
        # nested: the total must not double-count the solve time
        assert t.total() == pytest.approx(sum(
            v for k, v in t.elapsed.items() if k != t.SOLVE
        ))


class TestTemporalConvergence:
    def test_third_order_in_time(self):
        """Richardson: halving dt shrinks the error by ~2³ (allow >= 2²)."""

        def run(dt, nsteps):
            cfg = ChannelConfig(
                nx=16, ny=24, nz=16, re_tau=180.0, dt=dt, init_amplitude=0.3, seed=3
            )
            dns = ChannelDNS(cfg)
            dns.initialize()
            dns.run(nsteps)
            return dns.state

        T = 0.008
        s1 = run(T / 8, 8)
        s2 = run(T / 16, 16)
        s4 = run(T / 32, 32)
        e1 = np.abs(s1.v - s4.v).max() + np.abs(s1.omega_y - s4.omega_y).max()
        e2 = np.abs(s2.v - s4.v).max() + np.abs(s2.omega_y - s4.omega_y).max()
        order = np.log2(e1 / e2)
        assert order > 2.0, f"observed temporal order {order:.2f}"

    def test_cfl_number_positive_after_step(self):
        cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5)
        dns = ChannelDNS(cfg)
        dns.initialize()
        dns.run(1)
        assert 0.0 < dns.cfl_number() < 1.0
