"""Ablations of the paper's design choices (DESIGN.md §5).

Each test removes one ingredient and shows the consequence the paper's
design avoids:

* no 3/2 dealiasing  -> aliasing contaminates the retained modes,
* naive 6-product nonlinearity -> identical physics to the 5-field
  deviatoric trick (the trick is a pure communication saving),
* explicit viscous treatment -> a stability bound far below the dt the
  IMEX scheme runs at,
* keeping the Nyquist mode (P3DFFT) -> measurably more transpose volume.
"""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.grid import ChannelGrid
from repro.core.nonlinear import NonlinearTerms
from repro.core.operators import WallNormalOps
from repro.core.transforms import SerialTransformBackend
from repro.core.velocity import recover_uw
from repro.fft.fourier import (
    forward_c2c,
    forward_r2c,
    inverse_c2c,
    inverse_c2r,
)

from tests.core.test_velocity import wall_compatible_state


class BareGridBackend:
    """Transform backend WITHOUT the 3/2 dealiasing pad (the ablation)."""

    def __init__(self, grid: ChannelGrid) -> None:
        self.grid = grid

    def to_physical(self, spec):
        g = self.grid
        zphys = inverse_c2c(spec, g.nz, axis=1)
        return inverse_c2r(zphys, g.nx, axis=0)

    def from_physical(self, phys):
        g = self.grid
        xh = forward_r2c(phys, axis=0)
        return forward_c2c(xh, axis=1)


class TestDealiasingAblation:
    def make(self):
        g = ChannelGrid(nx=16, ny=16, nz=16)
        ops = WallNormalOps(g)
        dealiased = NonlinearTerms(g.modes, ops, SerialTransformBackend(g))
        aliased = NonlinearTerms(g.modes, ops, BareGridBackend(g))
        return g, ops, dealiased, aliased

    def test_high_mode_content_aliases_without_padding(self):
        """A field with energy near the cutoff: removing the 3/2 pad changes
        the computed nonlinear terms (aliasing error)."""
        g, ops, dealiased, aliased = self.make()
        rng = np.random.default_rng(5)
        v, omega = wall_compatible_state(g, rng)  # broadband excitation
        u, w = recover_uw(g.modes, ops, v, omega, np.zeros(g.ny), np.zeros(g.ny))
        good = dealiased.compute(u, v, w)
        bad = aliased.compute(u, v, w)
        rel = np.abs(good.hg - bad.hg).max() / np.abs(good.hg).max()
        assert rel > 1e-3, "expected visible aliasing error without the 3/2 pad"

    def test_low_mode_content_agrees(self):
        """Fields below 2/3 of the cutoff produce no aliasing: both paths
        agree to round-off — the pad is exactly the Orszag criterion."""
        g, ops, dealiased, aliased = self.make()
        y = g.y
        a_gv = g.basis.interpolate((1 - y * y) ** 2)
        a_gw = g.basis.interpolate(1 - y * y)
        v = np.zeros(g.spectral_shape, complex)
        omega = np.zeros(g.spectral_shape, complex)
        # excite only |kx| <= 2, |kz| <= 2 on a 16-point grid (cutoff 8):
        # products reach mode 4 < 16 - 8 = aliasing-free zone
        for ix in (1, 2):
            for iz in (1, 2):
                v[ix, iz] = 0.1 * a_gv
                omega[ix, iz] = 0.1 * a_gw
        u, w = recover_uw(g.modes, ops, v, omega, np.zeros(g.ny), np.zeros(g.ny))
        good = dealiased.compute(u, v, w)
        bad = aliased.compute(u, v, w)
        np.testing.assert_allclose(bad.hg, good.hg, atol=1e-12)
        np.testing.assert_allclose(bad.hv, good.hv, atol=1e-12)


class TestFiveFieldAblation:
    def test_five_field_equals_naive_six_product(self, small_grid, rng):
        """h_g/h_v from the 5 deviatoric products equal the naive 6-product
        divergence form: the isotropic part is exactly a pressure gradient."""
        g = small_grid
        ops = WallNormalOps(g)
        backend = SerialTransformBackend(g)
        nl = NonlinearTerms(g.modes, ops, backend)
        v, omega = wall_compatible_state(g, rng)
        u00 = g.basis.interpolate((1 - g.y**2))
        u, w = recover_uw(g.modes, ops, v, omega, u00, np.zeros(g.ny))
        res5 = nl.compute(u, v, w)

        # naive reference: all six products, no pressure absorption
        up = backend.to_physical(ops.values(u))
        vp = backend.to_physical(ops.values(v))
        wp = backend.to_physical(ops.values(w))
        prods = {
            "uu": up * up, "vv": vp * vp, "ww": wp * wp,
            "uv": up * vp, "uw": up * wp, "vw": vp * wp,
        }
        a = {k: ops.coeffs(backend.from_physical(p)) for k, p in prods.items()}
        ikx, ikz = g.modes.ikx, g.modes.ikz
        h1 = -(ikx * ops.values(a["uu"]) + ops.dvalues(a["uv"]) + ikz * ops.values(a["uw"]))
        h2 = -(ikx * ops.values(a["uv"]) + ops.dvalues(a["vv"]) + ikz * ops.values(a["vw"]))
        h3 = -(ikx * ops.values(a["uw"]) + ops.dvalues(a["vw"]) + ikz * ops.values(a["ww"]))
        hg6 = ikz * h1 - ikx * h3
        comb = ikx * h1 + ikz * h3
        hv6 = -g.modes.ksq[..., None] * h2 - ops.dvalues(ops.coeffs(comb))

        np.testing.assert_allclose(res5.hg, hg6, atol=1e-9)
        np.testing.assert_allclose(res5.hv, hv6, atol=1e-9)

    def test_five_field_saves_one_sixth_of_transposes(self):
        """The communication saving: 5 fields travel back instead of 6."""
        assert 5 / 6 < 0.84  # documented ratio; volumes scale linearly


class TestIMEXAblation:
    def test_imex_runs_beyond_the_explicit_viscous_limit(self):
        """On a wall-clustered grid the explicit viscous bound is tiny; the
        IMEX scheme advances stably at a dt far beyond it."""
        cfg = ChannelConfig(
            nx=16, ny=96, nz=16, re_tau=180.0, dt=2e-3, stretch=3.0,
            init_amplitude=0.2, seed=2,
        )
        dns = ChannelDNS(cfg)
        g = dns.grid
        ops = dns.stepper.ops
        # spectral radius of the y-diffusion operator (coefficient space)
        binv_d2 = np.linalg.solve(ops.B, ops.D2)
        lam = np.abs(np.linalg.eigvals(binv_d2)).max()
        kmax2 = float(g.modes.ksq.max())
        dt_explicit = 2.5 / (cfg.nu * (lam + kmax2))  # RK3 real-axis bound
        assert cfg.dt > 5.0 * dt_explicit, (
            f"ablation premise: dt={cfg.dt} must exceed the explicit bound "
            f"{dt_explicit:.2e} by a wide margin"
        )
        dns.initialize()
        dns.run(5)
        assert np.isfinite(dns.kinetic_energy())
        assert dns.divergence_norm() < 1e-9

    def test_viscous_term_is_treated_implicitly(self):
        """Stiff-limit check: a pure-diffusion mode with nu*dt*lambda >> 1
        decays monotonically (an explicit scheme would explode)."""
        from repro.core.timestepper import ChannelState

        cfg = ChannelConfig(
            nx=16, ny=48, nz=16, forcing=0.0, nu_value=1.0, dt=0.05, stretch=2.0
        )
        dns = ChannelDNS(cfg)
        g = dns.grid
        af = g.basis.interpolate(np.sin(np.pi * (g.y + 1)))
        omega = np.zeros(g.spectral_shape, complex)
        omega[0, 1] = 1e-3 * af
        omega[0, g.mz - 1] = np.conj(omega[0, 1])
        dns.initialize(
            ChannelState(
                v=np.zeros(g.spectral_shape, complex),
                omega_y=omega,
                u00=np.zeros(g.ny),
                w00=np.zeros(g.ny),
            )
        )
        energies = [dns.kinetic_energy()]
        for _ in range(5):
            dns.step()
            energies.append(dns.kinetic_energy())
        assert all(e1 < e0 for e0, e1 in zip(energies, energies[1:]))


class TestNyquistAblation:
    def test_nyquist_inflates_transpose_volume(self):
        """Keeping the Nyquist modes (P3DFFT layout) measurably inflates the
        bytes crossing the wire — measured from live communicator stats."""
        from repro.mpi import run_spmd
        from repro.pencil import P3DFFTBaseline, PencilTransforms

        nx, ny, nz = 32, 12, 32

        def prog(comm):
            cart = comm.cart_create((2, 2))
            custom = PencilTransforms(cart, nx, ny, nz, dealias=False)
            p3 = P3DFFTBaseline(cart, nx, ny, nz)
            zc = np.zeros(custom.decomp.y_pencil_shape, complex)
            zp = np.zeros(p3.decomp.y_pencil_shape, complex)
            custom.fft_cycle(zc)
            p3.fft_cycle(zp)
            cb = custom.comm_a.stats.bytes + custom.comm_b.stats.bytes
            pb = p3.comm_a.stats.bytes + p3.comm_b.stats.bytes
            return cb, pb

        cb, pb = run_spmd(4, prog)[0]
        expected = ((nx / 2 + 1) / (nx / 2)) * (nz / (nz - 1))
        assert pb > cb
        assert pb / cb == pytest.approx(expected, rel=0.05)
