"""ChannelDNS facade tests."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS


class TestConfig:
    def test_nu_from_re_tau(self):
        cfg = ChannelConfig(re_tau=180.0, forcing=1.0)
        assert cfg.nu == pytest.approx(1.0 / 180.0)

    def test_nu_override(self):
        cfg = ChannelConfig(nu_value=0.05)
        assert cfg.nu == 0.05

    def test_forcing_scales_u_tau(self):
        cfg = ChannelConfig(re_tau=100.0, forcing=4.0)
        assert cfg.nu == pytest.approx(2.0 / 100.0)


class TestLifecycle:
    def test_step_before_initialize_raises(self):
        dns = ChannelDNS(ChannelConfig(nx=16, ny=24, nz=16))
        with pytest.raises(RuntimeError):
            dns.step()

    def test_diagnostics_before_initialize_raise(self):
        dns = ChannelDNS(ChannelConfig(nx=16, ny=24, nz=16))
        with pytest.raises(RuntimeError):
            dns.divergence_norm()

    def test_run_counts_steps(self):
        dns = ChannelDNS(ChannelConfig(nx=16, ny=24, nz=16, dt=5e-4))
        dns.initialize()
        dns.run(3)
        assert dns.step_count == 3

    def test_callback_invoked(self):
        dns = ChannelDNS(ChannelConfig(nx=16, ny=24, nz=16, dt=5e-4))
        dns.initialize()
        seen = []
        dns.run(2, callback=lambda d: seen.append(d.step_count))
        assert seen == [1, 2]


class TestDiagnostics:
    @pytest.fixture(scope="class")
    def dns(self):
        d = ChannelDNS(ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.4, seed=6))
        d.initialize()
        d.run(2)
        return d

    def test_physical_velocity_shapes(self, dns):
        u, v, w = dns.physical_velocity()
        assert u.shape == dns.grid.quadrature_shape
        assert v.shape == w.shape == u.shape

    def test_kinetic_energy_positive(self, dns):
        assert dns.kinetic_energy() > 0.0

    def test_divergence_machine_zero(self, dns):
        assert dns.divergence_norm() < 1e-10

    def test_wall_shear_velocity_near_unity(self, dns):
        assert 0.3 < dns.wall_shear_velocity() < 3.0

    def test_energy_finite_and_stable(self, dns):
        """No blow-up over further steps."""
        e0 = dns.kinetic_energy()
        dns.run(2)
        assert np.isfinite(dns.kinetic_energy())
        assert dns.kinetic_energy() < 10 * e0 + 10
