"""Channel grid bookkeeping tests."""

import numpy as np
import pytest

from repro.core.grid import ChannelGrid


class TestShapes:
    def test_spectral_shape(self):
        g = ChannelGrid(nx=32, ny=24, nz=16)
        assert g.spectral_shape == (16, 15, 24)

    def test_quadrature_shape(self):
        g = ChannelGrid(nx=32, ny=24, nz=16)
        assert g.quadrature_shape == (48, 24, 24)

    def test_odd_grid_rejected(self):
        with pytest.raises(ValueError):
            ChannelGrid(nx=15, ny=24, nz=16)

    def test_paper_production_dof(self):
        """The paper's 242-billion-DOF claim follows from its mode counts.

        §6: "10,240 modes in the x direction, 1,536 in the y direction and
        7,680 in the z direction ... for a total of 242 billion degrees of
        freedom" — 3 velocity components x 10240/2 x (7680-1) x 1536.
        We only construct the bookkeeping (no allocation).
        """
        mx = 10240 // 2
        mz = 7680 - 1
        dof = 3 * mx * mz * 1536
        assert abs(dof - 242e9) / 242e9 < 0.35  # order-of-magnitude bookkeeping


class TestWavenumbers:
    def test_ksq_zero_at_mean_mode(self):
        g = ChannelGrid(nx=16, ny=24, nz=16)
        assert g.ksq[0, 0] == 0.0
        assert np.all(g.ksq.ravel()[1:] > 0)

    def test_kx_spacing_from_lx(self):
        g = ChannelGrid(nx=16, ny=24, nz=16, lx=4 * np.pi)
        assert abs(g.kx[1] - 0.5) < 1e-14

    def test_broadcast_helpers(self):
        g = ChannelGrid(nx=16, ny=24, nz=16)
        assert g.ikx.shape == (g.mx, 1, 1)
        assert g.ikz.shape == (1, g.mz, 1)


class TestCoordinates:
    def test_y_spans_walls(self):
        g = ChannelGrid(nx=16, ny=24, nz=16)
        assert g.y[0] == -1.0 and g.y[-1] == 1.0

    def test_x_z_periodic_grids(self):
        g = ChannelGrid(nx=16, ny=24, nz=16)
        assert g.x[0] == 0.0 and g.x[-1] < g.lx
        assert len(g.x) == g.nxq and len(g.z) == g.nzq

    def test_dof_count(self):
        g = ChannelGrid(nx=16, ny=24, nz=16)
        assert g.degrees_of_freedom() == 3 * 8 * 15 * 24
