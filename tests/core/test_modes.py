"""ModeSet (wavenumber block) tests."""

import numpy as np
import pytest

from repro.core.grid import ChannelGrid
from repro.core.modes import ModeSet


class TestFullModeSet:
    def test_grid_modes_shape(self, small_grid):
        m = small_grid.modes
        assert m.shape == (small_grid.mx, small_grid.mz)
        assert m.state_shape(small_grid.ny) == small_grid.spectral_shape

    def test_ksq_matches_grid(self, small_grid):
        np.testing.assert_array_equal(small_grid.modes.ksq, small_grid.ksq)

    def test_owns_mean(self, small_grid):
        assert small_grid.modes.owns_mean
        assert small_grid.modes.mean_index == (0, 0)

    def test_broadcast_shapes(self, small_grid):
        m = small_grid.modes
        assert m.ikx.shape == (m.shape[0], 1, 1)
        assert m.ikz.shape == (1, m.shape[1], 1)
        assert np.all(m.ikx.real == 0.0)


class TestSlabs:
    def test_slab_without_mean(self, small_grid):
        m = small_grid.modes.slab(slice(1, 4), slice(0, 5))
        assert not m.owns_mean
        assert m.mean_index is None
        assert m.shape == (3, 5)

    def test_slab_with_mean(self, small_grid):
        m = small_grid.modes.slab(slice(0, 2), slice(0, 3))
        assert m.owns_mean
        assert m.mean_index == (0, 0)

    def test_slabs_tile_ksq(self, small_grid):
        full = small_grid.modes
        top = full.slab(slice(0, 4), slice(None))
        bottom = full.slab(slice(4, None), slice(None))
        np.testing.assert_array_equal(
            np.concatenate([top.ksq, bottom.ksq], axis=0), full.ksq
        )

    def test_negative_kz_mean_detection(self):
        """A slab containing kz=0 but kx only > 0 does not own the mean."""
        g = ChannelGrid(nx=16, ny=12, nz=16)
        m = g.modes.slab(slice(1, 3), slice(0, 2))
        assert not m.owns_mean


class TestStandalone:
    def test_custom_modeset(self):
        m = ModeSet(kx=np.array([0.0, 1.0]), kz=np.array([-1.0, 0.0, 1.0]))
        assert m.mean_index == (0, 1)
        np.testing.assert_allclose(m.ksq[1], [2.0, 1.0, 2.0])
