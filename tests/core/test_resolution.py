"""Wall-unit resolution report tests."""

import numpy as np
import pytest

from repro.core.grid import ChannelGrid
from repro.core.resolution import (
    LIMITS,
    paper_production_report,
    resolution_report,
)


class TestResolutionReport:
    def test_paper_production_grid_values(self):
        """The Re_tau ~ 5200 production grid: dx+ ~ 12.7, dz+ ~ 6.4."""
        rep = paper_production_report()
        assert rep.dx_plus == pytest.approx(12.7, abs=0.2)
        assert rep.dz_plus == pytest.approx(6.4, abs=0.2)

    def test_paper_production_grid_resolved_horizontally(self):
        rep = paper_production_report()
        grades = rep.grades()
        assert grades["dx_plus"] and grades["dz_plus"]

    def test_wall_clustering_pays_off(self):
        """Stretched grids resolve the wall far better than uniform ones."""
        re_tau = 180.0
        stretched = resolution_report(ChannelGrid(32, 65, 32, stretch=2.0), re_tau)
        uniform = resolution_report(ChannelGrid(32, 65, 32, stretch=0.0), re_tau)
        assert stretched.dy_wall_plus < 0.5 * uniform.dy_wall_plus
        assert stretched.dy_centre_plus > uniform.dy_centre_plus

    def test_coarse_grid_flagged(self):
        rep = resolution_report(ChannelGrid(16, 17, 16), re_tau=5200.0)
        assert not rep.resolved
        assert rep.dx_plus > LIMITS["dx_plus"]

    def test_adequate_low_re_grid_passes(self):
        rep = resolution_report(
            ChannelGrid(128, 129, 128, lx=2 * np.pi, lz=np.pi, stretch=2.0),
            re_tau=180.0,
        )
        assert rep.resolved, str(rep)

    def test_invalid_re_tau(self):
        with pytest.raises(ValueError):
            resolution_report(ChannelGrid(16, 17, 16), re_tau=0.0)

    def test_str_renders(self):
        rep = resolution_report(ChannelGrid(16, 17, 16), 180.0)
        assert "resolution at Re_tau" in str(rep)
