"""Checkpoint/restart tests: exact continuation, durability, rotation."""

import json

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS, SMR91
from repro.core.checkpoint import (
    FORMAT_HISTORY,
    CheckpointCorruptError,
    CheckpointRotation,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from repro.instrument import RecoveryCounters

CFG = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=13)


def _permuted_scheme() -> SMR91:
    """A valid SMR91 variant: the first two substeps swapped (consistency
    is per-substep, so permutation preserves the dataclass invariants)."""

    def swap(t):
        return (t[1], t[0], t[2])

    base = SMR91()
    return SMR91(
        alpha=swap(base.alpha),
        beta=swap(base.beta),
        gamma=swap(base.gamma),
        zeta=swap(base.zeta),
    )


def _flip_byte(path, offset_fraction=0.5):
    data = bytearray(path.read_bytes())
    data[int(len(data) * offset_fraction)] ^= 0xFF
    path.write_bytes(bytes(data))


@pytest.fixture
def ckpt_path(tmp_path):
    return tmp_path / "state.npz"


class TestRoundTrip:
    def test_state_preserved(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        dns.run(3)
        save_checkpoint(dns, ckpt_path)
        restored = load_checkpoint(ckpt_path)
        np.testing.assert_array_equal(restored.state.v, dns.state.v)
        np.testing.assert_array_equal(restored.state.omega_y, dns.state.omega_y)
        np.testing.assert_array_equal(restored.state.u00, dns.state.u00)
        assert restored.state.time == dns.state.time
        assert restored.step_count == 3

    def test_restart_is_bit_exact_continuation(self, ckpt_path):
        """Run 6 steps straight vs 3 + checkpoint + restart + 3."""
        straight = ChannelDNS(CFG)
        straight.initialize()
        straight.run(6)

        first = ChannelDNS(CFG)
        first.initialize()
        first.run(3)
        save_checkpoint(first, ckpt_path)
        second = load_checkpoint(ckpt_path)
        second.run(3)

        np.testing.assert_array_equal(second.state.v, straight.state.v)
        np.testing.assert_array_equal(second.state.omega_y, straight.state.omega_y)
        np.testing.assert_array_equal(second.state.u00, straight.state.u00)

    def test_config_reconstructed(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        restored = load_checkpoint(ckpt_path)
        assert restored.config.nx == CFG.nx
        assert restored.config.re_tau == CFG.re_tau
        assert restored.config.nu == pytest.approx(CFG.nu)

    def test_explicit_config_must_match_grid(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        other = ChannelConfig(nx=32, ny=24, nz=16)
        with pytest.raises(ValueError, match="grid mismatch"):
            load_checkpoint(ckpt_path, config=other)

    def test_dt_may_change_on_restart(self, ckpt_path):
        """Restarting with a different dt is legitimate (grid must match)."""
        dns = ChannelDNS(CFG)
        dns.initialize()
        dns.run(1)
        save_checkpoint(dns, ckpt_path)
        new_cfg = ChannelConfig(**{**CFG.__dict__, "dt": 1e-4})
        restored = load_checkpoint(ckpt_path, config=new_cfg)
        restored.run(1)
        assert restored.state.time == pytest.approx(dns.state.time + 1e-4)

    def test_uninitialized_raises(self, ckpt_path):
        dns = ChannelDNS(CFG)
        with pytest.raises(RuntimeError):
            save_checkpoint(dns, ckpt_path)

    def test_unsupported_version_raises(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        data = dict(np.load(ckpt_path, allow_pickle=False))
        data["format_version"] = 99
        np.savez_compressed(ckpt_path, **data)
        with pytest.raises(ValueError, match="format"):
            load_checkpoint(ckpt_path)


class TestSuffixHandling:
    """Paths with or without ``.npz`` must agree between save and load."""

    def test_save_without_suffix_load_either_way(self, tmp_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        dns.run(1)
        written = save_checkpoint(dns, tmp_path / "segment")
        assert written == tmp_path / "segment.npz"
        assert written.exists()
        for name in ("segment", "segment.npz"):
            restored = load_checkpoint(tmp_path / name)
            np.testing.assert_array_equal(restored.state.v, dns.state.v)

    def test_save_with_suffix_load_without(self, tmp_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, tmp_path / "seg.npz")
        restored = load_checkpoint(tmp_path / "seg")
        assert restored.step_count == 0


class TestFingerprint:
    def test_manifest_records_history_scheme_and_checksums(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        with np.load(ckpt_path, allow_pickle=False) as data:
            manifest = json.loads(str(data["manifest_json"]))
        assert manifest["format_history"] == list(FORMAT_HISTORY)
        assert set(manifest["config"]["scheme"]) == {"alpha", "beta", "gamma", "zeta"}
        for name in ("v", "omega_y", "u00", "w00"):
            assert "crc32" in manifest["arrays"][name]

    def test_scheme_mismatch_rejected(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        other = ChannelConfig(**{**CFG.__dict__, "scheme": _permuted_scheme()})
        with pytest.raises(ValueError, match="scheme mismatch"):
            load_checkpoint(ckpt_path, config=other)

    def test_runtime_dt_restored_by_default(self, ckpt_path):
        """A controller-drifted dt must survive the restart for exact
        continuation when the config is reconstructed from the file."""
        dns = ChannelDNS(CFG)
        dns.initialize()
        dns.run(1)
        dns.set_dt(5e-5)
        save_checkpoint(dns, ckpt_path)
        restored = load_checkpoint(ckpt_path)
        assert restored.stepper.dt == 5e-5


class TestCorruption:
    def test_bitflip_rejected(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        _flip_byte(ckpt_path)
        ok, reason = verify_checkpoint(ckpt_path)
        assert not ok and reason
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(ckpt_path)

    def test_truncation_rejected(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        data = ckpt_path.read_bytes()
        ckpt_path.write_bytes(data[: len(data) // 2])
        assert not verify_checkpoint(ckpt_path)[0]
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(ckpt_path)

    def test_payload_swap_caught_by_our_checksum(self, ckpt_path):
        """A well-formed zip whose array bytes changed must fail OUR crc."""
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        data = dict(np.load(ckpt_path, allow_pickle=False))
        v = data["v"].copy()
        v.flat[0] += 1.0
        data["v"] = v
        np.savez_compressed(ckpt_path, **data)  # valid container, stale manifest
        with pytest.raises(CheckpointCorruptError, match="checksum mismatch"):
            load_checkpoint(ckpt_path)

    def test_atomic_save_preserves_previous_on_failure(self, ckpt_path, monkeypatch):
        """A crash mid-write must leave the previous checkpoint intact."""
        dns = ChannelDNS(CFG)
        dns.initialize()
        dns.run(1)
        save_checkpoint(dns, ckpt_path)
        before = ckpt_path.read_bytes()
        dns.run(1)
        import repro.core.checkpoint as ck

        def boom(fh, **kw):
            fh.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(ck.np, "savez_compressed", boom)
        with pytest.raises(OSError):
            save_checkpoint(dns, ckpt_path)
        assert ckpt_path.read_bytes() == before
        assert verify_checkpoint(ckpt_path)[0]


class TestRotation:
    def _advance_and_save(self, rot, dns, nsteps=1):
        dns.run(nsteps)
        return rot.save(dns)

    def test_keep_prunes_and_latest_points_to_newest(self, tmp_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        rot = CheckpointRotation(tmp_path, keep=2)
        for _ in range(4):
            self._advance_and_save(rot, dns)
        snaps = rot.snapshots()
        assert len(snaps) == 2
        assert rot.latest_path == snaps[0]
        restored = rot.load_latest()
        assert restored.step_count == 4

    def test_corrupt_head_falls_back_to_previous(self, tmp_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        counters = RecoveryCounters()
        rot = CheckpointRotation(tmp_path, keep=3, counters=counters)
        for _ in range(3):
            self._advance_and_save(rot, dns)
        _flip_byte(rot.latest_path)
        restored = rot.load_latest()
        assert restored.step_count == 2  # fell back one snapshot
        assert counters.verify_failures >= 1

    def test_all_corrupt_raises(self, tmp_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        rot = CheckpointRotation(tmp_path, keep=3)
        for _ in range(2):
            self._advance_and_save(rot, dns)
        for snap in rot.snapshots():
            _flip_byte(snap)
        with pytest.raises(CheckpointCorruptError, match="no verifiable"):
            rot.load_latest()

    def test_fallback_continuation_is_exact(self, tmp_path):
        """Restarting off the fallback snapshot reproduces the trajectory."""
        straight = ChannelDNS(CFG)
        straight.initialize()
        straight.run(6)

        dns = ChannelDNS(CFG)
        dns.initialize()
        rot = CheckpointRotation(tmp_path, keep=3)
        for _ in range(3):
            self._advance_and_save(rot, dns, 2)  # snapshots at 2, 4, 6
        _flip_byte(rot.latest_path)  # corrupt step-6 snapshot
        restored = rot.load_latest(config=CFG)
        assert restored.step_count == 4
        restored.run(2)
        np.testing.assert_array_equal(restored.state.v, straight.state.v)
        np.testing.assert_array_equal(restored.state.omega_y, straight.state.omega_y)
