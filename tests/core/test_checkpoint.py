"""Checkpoint/restart tests: exact continuation."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.checkpoint import save_checkpoint, load_checkpoint

CFG = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=13)


@pytest.fixture
def ckpt_path(tmp_path):
    return tmp_path / "state.npz"


class TestRoundTrip:
    def test_state_preserved(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        dns.run(3)
        save_checkpoint(dns, ckpt_path)
        restored = load_checkpoint(ckpt_path)
        np.testing.assert_array_equal(restored.state.v, dns.state.v)
        np.testing.assert_array_equal(restored.state.omega_y, dns.state.omega_y)
        np.testing.assert_array_equal(restored.state.u00, dns.state.u00)
        assert restored.state.time == dns.state.time
        assert restored.step_count == 3

    def test_restart_is_bit_exact_continuation(self, ckpt_path):
        """Run 6 steps straight vs 3 + checkpoint + restart + 3."""
        straight = ChannelDNS(CFG)
        straight.initialize()
        straight.run(6)

        first = ChannelDNS(CFG)
        first.initialize()
        first.run(3)
        save_checkpoint(first, ckpt_path)
        second = load_checkpoint(ckpt_path)
        second.run(3)

        np.testing.assert_array_equal(second.state.v, straight.state.v)
        np.testing.assert_array_equal(second.state.omega_y, straight.state.omega_y)
        np.testing.assert_array_equal(second.state.u00, straight.state.u00)

    def test_config_reconstructed(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        restored = load_checkpoint(ckpt_path)
        assert restored.config.nx == CFG.nx
        assert restored.config.re_tau == CFG.re_tau
        assert restored.config.nu == pytest.approx(CFG.nu)

    def test_explicit_config_must_match_grid(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        other = ChannelConfig(nx=32, ny=24, nz=16)
        with pytest.raises(ValueError, match="grid mismatch"):
            load_checkpoint(ckpt_path, config=other)

    def test_dt_may_change_on_restart(self, ckpt_path):
        """Restarting with a different dt is legitimate (grid must match)."""
        dns = ChannelDNS(CFG)
        dns.initialize()
        dns.run(1)
        save_checkpoint(dns, ckpt_path)
        new_cfg = ChannelConfig(**{**CFG.__dict__, "dt": 1e-4})
        restored = load_checkpoint(ckpt_path, config=new_cfg)
        restored.run(1)
        assert restored.state.time == pytest.approx(dns.state.time + 1e-4)

    def test_uninitialized_raises(self, ckpt_path):
        dns = ChannelDNS(CFG)
        with pytest.raises(RuntimeError):
            save_checkpoint(dns, ckpt_path)

    def test_unsupported_version_raises(self, ckpt_path):
        dns = ChannelDNS(CFG)
        dns.initialize()
        save_checkpoint(dns, ckpt_path)
        data = dict(np.load(ckpt_path, allow_pickle=False))
        data["format_version"] = 99
        np.savez_compressed(ckpt_path, **data)
        with pytest.raises(ValueError, match="format"):
            load_checkpoint(ckpt_path)
