"""HealthMonitor watchdog tests: typed failures, cadence, thresholds."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.health import DivergedError, HealthCheckError, HealthMonitor, UnstableError

CFG = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=13)


@pytest.fixture(scope="module")
def dns():
    d = ChannelDNS(CFG)
    d.initialize()
    d.run(2)
    return d


class TestHealthyTrajectory:
    def test_passes_and_reports(self, dns):
        monitor = HealthMonitor()
        monitor(dns)
        assert monitor.checks == 1
        rep = monitor.last_report
        assert rep["step"] == dns.step_count
        assert rep["divergence"] <= monitor.max_divergence
        assert np.isfinite(rep["cfl"])

    def test_cadence_skips_off_steps(self, dns):
        monitor = HealthMonitor(every=4)
        monitor(dns)  # step_count == 2, not a multiple of 4
        assert monitor.checks == 0
        assert monitor.last_report == {}

    def test_as_controller_in_run(self):
        d = ChannelDNS(CFG)
        d.initialize()
        monitor = HealthMonitor(every=2)
        d.run(4, controllers=[monitor])
        assert monitor.checks == 2

    def test_every_validated(self):
        with pytest.raises(ValueError, match="every"):
            HealthMonitor(every=0)


class TestTypedFailures:
    def test_nan_state_raises_diverged(self):
        d = ChannelDNS(CFG)
        d.initialize()
        d.run(1)
        d.state.v[0, 0, 0] = np.nan
        with pytest.raises(DivergedError, match="non-finite"):
            HealthMonitor()(d)

    def test_divergence_threshold_raises_diverged(self, dns):
        with pytest.raises(DivergedError, match="divergence"):
            HealthMonitor(max_divergence=-1.0)(dns)

    def test_cfl_threshold_raises_unstable(self, dns):
        with pytest.raises(UnstableError, match="CFL"):
            HealthMonitor(max_cfl=-1.0)(dns)

    def test_exceptions_carry_step_and_share_base(self):
        d = ChannelDNS(CFG)
        d.initialize()
        d.run(3)
        d.state.omega_y[0, 0, 0] = np.inf
        with pytest.raises(HealthCheckError) as info:
            HealthMonitor()(d)
        assert info.value.step == 3
        assert isinstance(info.value, DivergedError)

    def test_finite_check_can_be_disabled(self):
        """With check_finite off, NaN state is caught by the divergence
        check instead (`not nan <= x` is True) — never silently passed."""
        d = ChannelDNS(CFG)
        d.initialize()
        d.run(1)
        d.state.v[:] = np.nan
        with pytest.raises(DivergedError, match="divergence"):
            HealthMonitor(check_finite=False)(d)
