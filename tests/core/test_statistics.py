"""Turbulence statistics accumulation tests."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.statistics import RunningStatistics, mode_weights, plane_covariance
from repro.core.operators import WallNormalOps


class TestModeWeights:
    def test_kx0_counts_once(self, small_grid):
        w = mode_weights(small_grid)
        assert np.all(w[0, :] == 1.0)
        assert np.all(w[1:, :] == 2.0)


class TestPlaneCovariance:
    def test_matches_physical_average(self, small_grid, rng):
        """Spectral covariance equals the physical plane average (Parseval)."""
        from tests.core.test_transforms import random_spectral
        from repro.core.transforms import to_quadrature_grid

        g = small_grid
        f = random_spectral(g, rng)
        cov = plane_covariance(g, f, f)
        phys = to_quadrature_grid(f, g)
        mean = phys.mean(axis=(0, 1))
        expected = (phys**2).mean(axis=(0, 1)) - mean**2
        np.testing.assert_allclose(cov, expected, rtol=1e-8, atol=1e-12)


class TestRunningStatistics:
    @pytest.fixture
    def sampled(self):
        cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=5)
        dns = ChannelDNS(cfg)
        dns.initialize()
        dns.run(4, sample_every=2)
        return dns

    def test_sample_count(self, sampled):
        assert sampled.statistics.nsamples == 2

    def test_no_samples_raises(self, small_grid):
        with pytest.raises(RuntimeError):
            RunningStatistics(small_grid).profile("U")

    def test_variances_nonnegative(self, sampled):
        for name in ("uu", "vv", "ww"):
            assert np.all(sampled.statistics.profile(name) >= -1e-14)

    def test_variances_vanish_at_walls(self, sampled):
        for name in ("uu", "vv", "ww", "uv"):
            prof = sampled.statistics.profile(name)
            assert abs(prof[0]) < 1e-12 and abs(prof[-1]) < 1e-12

    def test_friction_velocity_near_unity(self, sampled):
        """With forcing = 1 the equilibrium friction velocity is 1."""
        u_tau = sampled.statistics.friction_velocity(sampled.config.nu)
        assert 0.5 < u_tau < 2.0

    def test_wall_units_monotone(self, sampled):
        yplus, uplus = sampled.statistics.wall_units(sampled.config.nu)
        assert yplus[0] < 1e-12
        assert np.all(np.diff(yplus) > 0)
        assert abs(uplus[0]) < 1e-10

    def test_bulk_velocity_positive(self, sampled):
        assert sampled.statistics.bulk_velocity() > 0.0

    def test_mean_profile_symmetric_for_symmetric_ic(self):
        """A z-independent symmetric start stays symmetric in the mean."""
        cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.0, seed=0)
        dns = ChannelDNS(cfg)
        dns.initialize()
        dns.run(3, sample_every=1)
        u = dns.statistics.mean_velocity()
        # evaluate on a symmetric sampling grid to compare halves
        yy = np.linspace(-0.9, 0.9, 19)
        a = dns.grid.basis.interpolate(u)
        prof = dns.grid.basis.evaluate(a, yy)
        np.testing.assert_allclose(prof, prof[::-1], atol=1e-8)
