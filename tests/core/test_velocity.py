"""Velocity recovery (step j) and divergence diagnostics."""

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.operators import WallNormalOps
from repro.core.velocity import divergence, recover_uw, wall_normal_vorticity


def wall_compatible_state(grid, rng):
    """Random (v, omega_y) satisfying v = v' = 0 and omega_y = 0 at walls."""
    y = grid.y
    a_gv = grid.basis.interpolate((1 - y * y) ** 2)
    a_gw = grid.basis.interpolate(1 - y * y)
    shape = grid.spectral_shape
    cv = (rng.standard_normal(shape[:2]) + 1j * rng.standard_normal(shape[:2]))[..., None]
    cw = (rng.standard_normal(shape[:2]) + 1j * rng.standard_normal(shape[:2]))[..., None]
    v = cv * a_gv
    omega = cw * a_gw
    v[0, 0] = 0.0
    omega[0, 0] = 0.0
    return v, omega


class TestRecovery:
    def test_divergence_free(self, small_grid, rng):
        g = small_grid
        ops = WallNormalOps(g)
        v, omega = wall_compatible_state(g, rng)
        u00 = g.basis.interpolate(1 - g.y**2)
        w00 = np.zeros(g.ny)
        u, w = recover_uw(g.modes, ops, v, omega, u00, w00)
        div = divergence(g.modes, ops, u, v, w)
        assert np.abs(div).max() < 1e-10

    def test_vorticity_roundtrip(self, small_grid, rng):
        """omega_y(recovered u, w) reproduces the input omega_y."""
        g = small_grid
        ops = WallNormalOps(g)
        v, omega = wall_compatible_state(g, rng)
        u, w = recover_uw(g.modes, ops, v, omega, np.zeros(g.ny), np.zeros(g.ny))
        omega2 = wall_normal_vorticity(g.modes, u, w)
        omega2[0, 0] = 0.0
        np.testing.assert_allclose(omega2, omega, atol=1e-10)

    def test_mean_mode_passthrough(self, small_grid, rng):
        g = small_grid
        ops = WallNormalOps(g)
        v, omega = wall_compatible_state(g, rng)
        u00 = rng.standard_normal(g.ny)
        w00 = rng.standard_normal(g.ny)
        u, w = recover_uw(g.modes, ops, v, omega, u00, w00)
        np.testing.assert_array_equal(u[0, 0], u00)
        np.testing.assert_array_equal(w[0, 0], w00)

    def test_known_single_mode(self):
        """u = cos(kz z) f(y): recovery from omega_y = ikz u must return it."""
        g = ChannelGrid(nx=16, ny=24, nz=16, lz=2 * np.pi)
        ops = WallNormalOps(g)
        af = g.basis.interpolate(np.cos(np.pi * g.y / 2))
        v = np.zeros(g.spectral_shape, complex)
        omega = np.zeros(g.spectral_shape, complex)
        kz1 = g.kz[1]
        omega[0, 1] = 1j * kz1 * 0.5 * af
        omega[0, g.mz - 1] = np.conj(omega[0, 1])
        u, w = recover_uw(g.modes, ops, v, omega, np.zeros(g.ny), np.zeros(g.ny))
        np.testing.assert_allclose(u[0, 1], 0.5 * af, atol=1e-12)
        np.testing.assert_allclose(np.abs(w).max(), 0.0, atol=1e-12)

    def test_no_slip_at_walls(self, small_grid, rng):
        g = small_grid
        ops = WallNormalOps(g)
        v, omega = wall_compatible_state(g, rng)
        u, w = recover_uw(g.modes, ops, v, omega, np.zeros(g.ny), np.zeros(g.ny))
        for f in (u, w, v):
            vals = ops.values(f)
            assert np.abs(vals[..., 0]).max() < 1e-10
            assert np.abs(vals[..., -1]).max() < 1e-10
