"""Property-based invariants of the solver stack (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChannelConfig, ChannelDNS
from repro.core.grid import ChannelGrid
from repro.core.operators import WallNormalOps
from repro.core.transforms import from_quadrature_grid, to_quadrature_grid
from repro.core.velocity import divergence, recover_uw, wall_normal_vorticity
from repro.linalg.helmholtz import HelmholtzOperator


class TestSolverInvariants:
    @given(seed=st.integers(0, 2**31), amplitude=st.floats(0.01, 1.5))
    @settings(max_examples=5, deadline=None)
    def test_any_initial_condition_stays_solenoidal_and_real(self, seed, amplitude):
        cfg = ChannelConfig(
            nx=16, ny=20, nz=16, dt=2e-4, init_amplitude=amplitude, seed=seed
        )
        dns = ChannelDNS(cfg)
        dns.initialize()
        dns.run(2)
        assert dns.divergence_norm() < 1e-9
        u, v, w = dns.physical_velocity()
        for f in (u, v, w):
            assert np.isrealobj(f)
            assert np.all(np.isfinite(f))
        # the mean of v and omega_y never leaves zero
        assert np.abs(dns.state.v[0, 0]).max() == 0.0
        assert np.abs(dns.state.omega_y[0, 0]).max() == 0.0

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=8, deadline=None)
    def test_recovery_identities(self, seed):
        """For any wall-compatible state: div u = 0 and omega_y round-trips."""
        g = ChannelGrid(16, 20, 16)
        ops = WallNormalOps(g)
        rng = np.random.default_rng(seed)
        y = g.y
        a_gv = g.basis.interpolate((1 - y * y) ** 2)
        a_gw = g.basis.interpolate(1 - y * y)
        cv = rng.standard_normal(g.spectral_shape[:2]) + 1j * rng.standard_normal(
            g.spectral_shape[:2]
        )
        cw = rng.standard_normal(g.spectral_shape[:2]) + 1j * rng.standard_normal(
            g.spectral_shape[:2]
        )
        v = cv[..., None] * a_gv
        omega = cw[..., None] * a_gw
        v[0, 0] = 0.0
        omega[0, 0] = 0.0
        u, w = recover_uw(g.modes, ops, v, omega, np.zeros(g.ny), np.zeros(g.ny))
        assert np.abs(divergence(g.modes, ops, u, v, w)).max() < 1e-9
        back = wall_normal_vorticity(g.modes, u, w)
        back[0, 0] = 0.0
        np.testing.assert_allclose(back, omega, atol=1e-9)


class TestTransformProperties:
    @given(
        seed=st.integers(0, 2**31),
        nx=st.sampled_from([8, 16, 24]),
        nz=st.sampled_from([8, 16, 24]),
    )
    @settings(max_examples=12, deadline=None)
    def test_roundtrip_any_grid(self, seed, nx, nz):
        g = ChannelGrid(nx, 10, nz)
        rng = np.random.default_rng(seed)
        f = rng.standard_normal(g.spectral_shape) + 1j * rng.standard_normal(
            g.spectral_shape
        )
        f[0, 0] = rng.standard_normal(g.ny)
        half = nz // 2
        for j in range(1, half):
            f[0, g.mz - j] = np.conj(f[0, j])
        back = from_quadrature_grid(to_quadrature_grid(f, g), g)
        np.testing.assert_allclose(back, f, atol=1e-11)

    @given(seed=st.integers(0, 2**31), scale=st.floats(1e-6, 1e6))
    @settings(max_examples=10, deadline=None)
    def test_transform_linearity(self, seed, scale):
        g = ChannelGrid(16, 8, 16)
        rng = np.random.default_rng(seed)
        f = rng.standard_normal(g.spectral_shape) + 1j * rng.standard_normal(
            g.spectral_shape
        )
        a = to_quadrature_grid(f, g)
        b = to_quadrature_grid(scale * f, g)
        # rtol alone would demand 1e-10 relative accuracy of near-zero
        # entries, which FFT roundoff cannot deliver; anchor the absolute
        # floor to the field's magnitude instead.
        atol = 1e-12 * scale * np.abs(a).max()
        np.testing.assert_allclose(b, scale * a, rtol=1e-10, atol=atol)


class TestHelmholtzProperties:
    @given(
        seed=st.integers(0, 2**31),
        ksq=st.floats(0.0, 1e4),
        c=st.floats(1e-6, 1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_solve_then_apply_is_identity(self, seed, ksq, c):
        """Helmholtz solve followed by the operator returns the RHS at the
        interior collocation points."""
        from repro.bsplines import BSplineBasis

        basis = BSplineBasis(20, degree=7)
        op = HelmholtzOperator(basis)
        rng = np.random.default_rng(seed)
        rhs = rng.standard_normal(basis.n)
        rhs[0] = rhs[-1] = 0.0
        a = op.factor_helmholtz(np.array([ksq]), c).solve(rhs[None])[0]
        # apply [ (1 + c k²) B - c D2 ] and compare interior rows
        applied = (1 + c * ksq) * basis.values_at_collocation(a) - c * (
            basis.values_at_collocation(a, 2)
        )
        np.testing.assert_allclose(applied[1:-1], rhs[1:-1], atol=1e-7 * max(1, ksq * c))
        # boundary rows are Dirichlet
        vals = basis.values_at_collocation(a)
        assert abs(vals[0]) < 1e-9 and abs(vals[-1]) < 1e-9
