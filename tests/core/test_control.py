"""Adaptive-dt and mass-flux controller tests."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.control import CFLController, MassFluxController, current_bulk_velocity


def make_dns(**kw):
    cfg = ChannelConfig(nx=16, ny=24, nz=16, init_amplitude=0.5, seed=4, **kw)
    dns = ChannelDNS(cfg)
    dns.initialize()
    return dns


class TestCFLController:
    def test_raises_tiny_dt(self):
        """A far-too-small dt gets grown toward the target CFL."""
        dns = make_dns(dt=1e-6)
        ctrl = CFLController(target=0.5, low=0.3, high=0.8)
        dns.run(6, controllers=[ctrl])
        assert ctrl.adjustments >= 1
        assert dns.stepper.dt > 1e-6

    def test_shrinks_too_large_dt(self):
        dns = make_dns(dt=5e-3)  # CFL well above the band
        ctrl = CFLController(target=0.5, low=0.3, high=0.8)
        dns.run(3, controllers=[ctrl])
        assert dns.stepper.dt < 5e-3

    def test_settles_into_band(self):
        dns = make_dns(dt=1e-5)
        ctrl = CFLController(target=0.5, low=0.3, high=0.8)
        dns.run(15, controllers=[ctrl])
        assert 0.25 < dns.cfl_number() < 0.9

    def test_no_adjustment_inside_band(self):
        dns = make_dns(dt=2e-4)
        dns.run(1)
        cfl = dns.cfl_number()
        ctrl = CFLController(target=cfl, low=cfl * 0.5, high=cfl * 2.0)
        dns.run(2, controllers=[ctrl])
        assert ctrl.adjustments == 0

    def test_bounded_change_per_step(self):
        dns = make_dns(dt=1e-6)
        ctrl = CFLController(target=0.5, low=0.3, high=0.8, max_change=2.0)
        dt0 = dns.stepper.dt
        dns.run(1, controllers=[ctrl])
        assert dns.stepper.dt <= 2.0 * dt0 + 1e-15

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            CFLController(target=0.5, low=0.8, high=0.3)
        with pytest.raises(ValueError):
            CFLController(target=2.0, low=0.3, high=0.8)

    def test_set_dt_validates(self):
        dns = make_dns(dt=2e-4)
        with pytest.raises(ValueError):
            dns.stepper.set_dt(-1.0)

    def test_set_dt_preserves_solution_quality(self):
        """After a dt change the scheme still conserves its invariants."""
        dns = make_dns(dt=2e-4)
        dns.run(2)
        dns.stepper.set_dt(1e-4)
        dns.run(2)
        assert dns.divergence_norm() < 1e-10
        assert np.isfinite(dns.kinetic_energy())


class TestMassFluxController:
    def test_holds_bulk_velocity(self):
        dns = make_dns(dt=2e-4)
        q0 = current_bulk_velocity(dns)
        ctrl = MassFluxController(target=q0, gain=5.0)
        dns.run(10, controllers=[ctrl])
        assert current_bulk_velocity(dns) == pytest.approx(q0, rel=0.02)

    def test_drives_bulk_toward_target(self):
        dns = make_dns(dt=5e-4)
        q0 = current_bulk_velocity(dns)
        target = q0 * 1.02
        ctrl = MassFluxController(target=target, gain=50.0, integral_gain=20.0)
        gap0 = abs(current_bulk_velocity(dns) - target)
        dns.run(40, controllers=[ctrl])
        assert abs(current_bulk_velocity(dns) - target) < gap0

    def test_forcing_clamped(self):
        dns = make_dns(dt=2e-4)
        ctrl = MassFluxController(target=1e6, gain=1e9, max_forcing=2.0)
        dns.run(1, controllers=[ctrl])
        assert dns.stepper.forcing <= 2.0

    def test_forcing_floats_freely_without_controller(self):
        dns = make_dns(dt=2e-4)
        f0 = dns.stepper.forcing
        dns.run(2)
        assert dns.stepper.forcing == f0
