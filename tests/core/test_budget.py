"""Energy-budget statistics tests."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.budget import EnergyBudget
from repro.core.initial import laminar_profile
from repro.core.timestepper import ChannelState


def laminar_dns():
    cfg = ChannelConfig(nx=16, ny=32, nz=16, re_tau=180.0, dt=1e-3)
    dns = ChannelDNS(cfg)
    g = dns.grid
    dns.initialize(
        ChannelState(
            v=np.zeros(g.spectral_shape, complex),
            omega_y=np.zeros(g.spectral_shape, complex),
            u00=laminar_profile(g, cfg.nu, cfg.forcing),
            w00=np.zeros(g.ny),
        )
    )
    return dns


def turbulent_like_dns():
    cfg = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.6, seed=9)
    dns = ChannelDNS(cfg)
    dns.initialize()
    dns.run(3)
    return dns


class TestLaminarBalance:
    def test_laminar_budget_is_exact(self):
        """Poiseuille: no fluctuations, and nu (dU/dy)² exactly balances
        the forcing power F * U_bulk * 2."""
        dns = laminar_dns()
        budget = EnergyBudget(dns.grid)
        budget.sample(dns.state, dns.config.nu)
        assert np.abs(budget.production()).max() < 1e-12
        assert np.abs(budget.dissipation()).max() < 1e-12
        from repro.core.control import current_bulk_velocity

        res = budget.balance_residual(dns.config.forcing, current_bulk_velocity(dns))
        assert abs(res) < 1e-10

    def test_mean_dissipation_profile_shape(self):
        """nu (dU/dy)² = (F y / nu)² nu = F² y² / nu for Poiseuille."""
        dns = laminar_dns()
        budget = EnergyBudget(dns.grid)
        budget.sample(dns.state, dns.config.nu)
        y = dns.grid.y
        expected = dns.config.forcing**2 * y**2 / dns.config.nu
        np.testing.assert_allclose(budget.mean_dissipation(), expected, atol=1e-6)


class TestFluctuatingBudget:
    def test_dissipation_nonnegative(self):
        dns = turbulent_like_dns()
        budget = EnergyBudget(dns.grid)
        budget.sample(dns.state, dns.config.nu)
        assert np.all(budget.dissipation() >= -1e-14)

    def test_production_matches_independent_formula(self):
        dns = turbulent_like_dns()
        budget = EnergyBudget(dns.grid)
        budget.sample(dns.state, dns.config.nu)
        ops = dns.stepper.ops
        from repro.core.statistics import plane_covariance

        uv = plane_covariance(dns.grid, ops.values(dns.state.u), ops.values(dns.state.v))
        dudy = ops.dvalues(dns.state.u00)
        np.testing.assert_allclose(budget.production(), -uv * dudy, atol=1e-12)

    def test_dissipation_vanishes_at_walls_with_flow(self):
        """Fluctuating gradients at the wall are dominated by du/dy of the
        no-slip fluctuations — finite; the *velocities* vanish but the
        dissipation need not.  Just require finiteness and wall-positivity."""
        dns = turbulent_like_dns()
        budget = EnergyBudget(dns.grid)
        budget.sample(dns.state, dns.config.nu)
        eps = budget.dissipation()
        assert np.all(np.isfinite(eps))
        assert eps[0] >= 0 and eps[-1] >= 0

    def test_averaging(self):
        dns = turbulent_like_dns()
        budget = EnergyBudget(dns.grid)
        budget.sample(dns.state, dns.config.nu)
        one = budget.dissipation().copy()
        budget.sample(dns.state, dns.config.nu)
        np.testing.assert_allclose(budget.dissipation(), one)  # same sample twice
        assert budget.nsamples == 2

    def test_no_samples_raises(self, small_grid):
        with pytest.raises(RuntimeError):
            EnergyBudget(small_grid).production()
