"""Multi-job scheduler tests: placement, preemption, quarantine, retry.

The isolation contract under test: concurrently scheduled jobs run on
disjoint leases of one pool, and every job that completes — whatever
happened to its neighbours — lands bit-for-bit on its own serial
oracle trajectory.
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.jobs import JobManager, JobSpec
from repro.mpi.pool import RankPool
from repro.mpi.simmpi import FaultEvent, FaultPlan, PreemptRequired
from repro.telemetry import read_manifest, read_stream

CFG_A = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=8)
CFG_B = dataclasses.replace(CFG_A, seed=21)


def _serial(config, n_steps):
    dns = ChannelDNS(config)
    dns.initialize()
    dns.run(n_steps)
    return dns.state


def _assert_bit_exact(full, ref):
    np.testing.assert_array_equal(full.v, ref.v)
    np.testing.assert_array_equal(full.omega_y, ref.omega_y)
    np.testing.assert_array_equal(full.u00, ref.u00)
    np.testing.assert_array_equal(full.w00, ref.w00)
    assert full.time == ref.time


def _events(directory):
    # validate the whole stream, keep the event records (drop the summary)
    records = list(read_stream(directory / "events.jsonl"))
    return [e for e in records if e["type"] == "event"]


class TestConcurrentPlacement:
    def test_two_jobs_run_disjoint_and_bit_exact(self, tmp_path):
        """Two jobs share a 4-rank pool concurrently; each finishes on
        its own serial trajectory, leases never overlap."""
        mgr = JobManager(4, directory=tmp_path)
        mgr.submit(JobSpec("alpha", CFG_A, n_steps=6, ranks=2, checkpoint_every=3))
        mgr.submit(JobSpec("beta", CFG_B, n_steps=6, ranks=2, checkpoint_every=3))
        records = mgr.run(timeout=300.0)

        assert not mgr.timed_out
        assert records["alpha"].state == "completed"
        assert records["beta"].state == "completed"
        assert records["alpha"].outcome == "completed"
        assert records["beta"].outcome == "completed"
        _assert_bit_exact(records["alpha"].result, _serial(CFG_A, 6))
        _assert_bit_exact(records["beta"].result, _serial(CFG_B, 6))

        placed = [e for e in _events(tmp_path) if e["kind"] == "placed"]
        leases = {e["job"]: set(e["info"]["pool_ranks"]) for e in placed}
        assert leases["alpha"].isdisjoint(leases["beta"])

    def test_manager_events_validate_and_carry_job_tags(self, tmp_path):
        mgr = JobManager(4, directory=tmp_path)
        mgr.submit(JobSpec("alpha", CFG_A, n_steps=4, ranks=2))
        mgr.submit(JobSpec("beta", CFG_B, n_steps=4, ranks=2))
        mgr.run(timeout=300.0)

        # read_stream validates every record against schema v4
        events = _events(tmp_path)
        by_kind = {}
        for e in events:
            if e["type"] == "event":
                assert e["job"] in ("alpha", "beta")
                by_kind.setdefault(e["kind"], []).append(e)
        assert len(by_kind["submitted"]) == 2
        assert len(by_kind["placed"]) == 2
        assert len(by_kind["completed"]) == 2

    def test_manifest_carries_pool_census_and_job_table(self, tmp_path):
        mgr = JobManager(RankPool(4), directory=tmp_path)
        mgr.submit(JobSpec("alpha", CFG_A, n_steps=4, ranks=2, priority=3))
        mgr.run(timeout=300.0)
        manifest = read_manifest(tmp_path)
        assert manifest["pool"]["size"] == 4
        assert manifest["pool"]["jobs"]["alpha"]["ranks"] == 2
        assert manifest["pool"]["jobs"]["alpha"]["priority"] == 3

    def test_per_job_streams_nest_under_manager_directory(self, tmp_path):
        mgr = JobManager(4, directory=tmp_path)
        mgr.submit(JobSpec("alpha", CFG_A, n_steps=4, ranks=2))
        mgr.run(timeout=300.0)
        placement = tmp_path / "job-alpha" / "placement-00"
        # the placement's own supervised-run event stream validates too
        assert (placement / "events.jsonl").exists()
        list(read_stream(placement / "events.jsonl"))
        assert (placement / "attempt-00" / "telemetry-rank000.jsonl").exists()


class TestPreemption:
    def test_high_priority_preempts_checkpoint_then_resumes(self, tmp_path):
        """A late high-priority arrival evicts the running job at a
        checkpoint boundary; the victim requeues, resumes from the
        snapshot and still lands bit-for-bit on its oracle."""
        mgr = JobManager(2, directory=tmp_path)
        low = mgr.submit(
            JobSpec(
                "low", CFG_A, n_steps=40, ranks=2, min_ranks=2,
                checkpoint_every=5, priority=0,
            )
        )
        high = mgr.submit(
            JobSpec(
                "high", CFG_B, n_steps=4, ranks=2, min_ranks=2,
                checkpoint_every=2, priority=10, start_after=0.02,
            )
        )
        records = mgr.run(timeout=600.0)

        assert not mgr.timed_out
        assert high.state == "completed"
        assert low.state == "completed"
        assert low.preemptions >= 1
        assert low.placements >= 2
        assert low.outcome == "preempted-resumed"
        # no checkpointed progress lost: both trajectories exact
        _assert_bit_exact(low.result, _serial(CFG_A, 40))
        _assert_bit_exact(high.result, _serial(CFG_B, 4))

        kinds = [(e["job"], e["kind"]) for e in _events(tmp_path)]
        assert ("low", "requeued") in kinds


class TestQuarantineIsolation:
    def test_failed_rank_invisible_to_other_jobs_until_probed(self, tmp_path):
        """Job alpha loses a rank; without a prober the backing pool rank
        stays quarantined forever — alpha grows back using a *different*
        free rank and beta is never handed the poisoned one."""
        pool = RankPool(5)
        mgr = JobManager(pool, directory=tmp_path)  # no prober
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        alpha = mgr.submit(
            JobSpec(
                "alpha", CFG_A, n_steps=10, ranks=4, min_ranks=2,
                checkpoint_every=5, fault_plans=[plan],
            )
        )
        beta = mgr.submit(
            JobSpec("beta", CFG_B, n_steps=4, ranks=2, min_ranks=2)
        )
        records = mgr.run(timeout=600.0)

        assert not mgr.timed_out
        assert plan.triggered
        # alpha: 4 ranks -> shrink to 3 (pool rank 1 quarantined) -> grow
        # back to 4 on the spare pool rank
        assert alpha.state == "completed"
        assert alpha.counters.shrinks == 1
        assert alpha.counters.grows == 1
        assert alpha.outcome == "grown"
        assert pool.quarantined_ranks() == (1,)
        _assert_bit_exact(alpha.result, _serial(CFG_A, 10))
        # beta never saw pool rank 1 and is bit-exact on its own oracle
        assert beta.state == "completed"
        placed = [e for e in _events(tmp_path) if e["kind"] == "placed"]
        for e in placed:
            if e["job"] == "beta":
                assert 1 not in e["info"]["pool_ranks"]
        _assert_bit_exact(beta.result, _serial(CFG_B, 4))

    def test_prober_heals_quarantine_and_emits_probe_events(self, tmp_path):
        pool = RankPool(4)
        mgr = JobManager(pool, directory=tmp_path, prober=lambda r: True)
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        alpha = mgr.submit(
            JobSpec(
                "alpha", CFG_A, n_steps=10, ranks=4, min_ranks=2,
                checkpoint_every=5, fault_plans=[plan],
            )
        )
        records = mgr.run(timeout=600.0)

        assert alpha.state == "completed"
        assert alpha.outcome == "grown"
        assert pool.quarantined_ranks() == ()
        kinds = [e["kind"] for e in _events(tmp_path)]
        assert "quarantine" in kinds
        assert "probe" in kinds
        _assert_bit_exact(alpha.result, _serial(CFG_A, 10))


class TestRetryAndDeadline:
    def test_hard_failure_retried_then_recovered(self, tmp_path):
        """A shrink below min_ranks kills the placement outright; the
        manager requeues with backoff and the clean retry completes."""
        pool = RankPool(3)
        mgr = JobManager(pool, directory=tmp_path, backoff_base=0.01, backoff_max=0.02)
        plan = FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)])
        job = mgr.submit(
            JobSpec(
                "flaky", CFG_A, n_steps=6, ranks=2, min_ranks=2,
                checkpoint_every=3, fault_plans=[plan], max_retries=1,
            )
        )
        records = mgr.run(timeout=600.0)

        assert job.state == "completed"
        assert job.retries == 1
        assert job.placements == 2
        assert job.outcome == "recovered"
        assert pool.quarantined_ranks() == (1,)
        _assert_bit_exact(job.result, _serial(CFG_A, 6))
        requeued = [e for e in _events(tmp_path) if e["kind"] == "requeued"]
        assert requeued and requeued[0]["info"]["retry"] == 1
        assert requeued[0]["info"]["delay_s"] > 0.0

    def test_retry_budget_exhausted_fails_visibly(self, tmp_path):
        pool = RankPool(3)
        mgr = JobManager(pool, directory=tmp_path, backoff_base=0.01)
        plans = [
            FaultPlan([FaultEvent(action="kill", rank=1, op="alltoall", call=150)]),
        ]
        job = mgr.submit(
            JobSpec(
                "doomed", CFG_A, n_steps=6, ranks=2, min_ranks=2,
                checkpoint_every=3, fault_plans=plans, max_retries=0,
            )
        )
        records = mgr.run(timeout=600.0)
        assert job.state == "failed"
        assert job.outcome == "failed"
        assert job.error is not None
        kinds = [e["kind"] for e in _events(tmp_path)]
        assert "failed" in kinds

    def test_deadline_stops_at_boundary_without_losing_checkpoint(self, tmp_path):
        mgr = JobManager(2, directory=tmp_path)
        job = mgr.submit(
            JobSpec(
                "late", CFG_A, n_steps=50, ranks=2, min_ranks=2,
                checkpoint_every=5, deadline=0.0,
            )
        )
        mgr.run(timeout=600.0)
        assert job.state == "failed"
        assert isinstance(job.error, PreemptRequired)
        assert job.error.reason == "deadline exceeded"
        # the boundary snapshot landed before the stop
        ckpt = tmp_path / "job-late" / "checkpoints"
        assert (ckpt / f"step-{job.error.step:09d}").is_dir()

    def test_manager_timeout_is_a_zero_hang_guard(self, tmp_path):
        mgr = JobManager(2, directory=tmp_path)
        job = mgr.submit(
            JobSpec(
                "runaway", CFG_A, n_steps=10_000, ranks=2, min_ranks=2,
                checkpoint_every=5,
            )
        )
        t0 = time.monotonic()
        mgr.run(timeout=0.2)
        assert mgr.timed_out
        assert job.state == "failed"
        # the guard fires promptly: one boundary, not 10k steps
        assert time.monotonic() - t0 < 120.0

    def test_unplaceable_job_fails_instead_of_hanging(self, tmp_path):
        pool = RankPool(4)
        for r in (1, 2, 3):
            pool.quarantine(r)
        mgr = JobManager(pool, directory=tmp_path)  # no prober: nothing heals
        job = mgr.submit(JobSpec("big", CFG_A, n_steps=4, ranks=2, min_ranks=2))
        mgr.run(timeout=60.0)
        assert job.state == "failed"
        assert "unplaceable" in str(job.error)

    def test_duplicate_submit_rejected(self, tmp_path):
        mgr = JobManager(2, directory=tmp_path)
        mgr.submit(JobSpec("twin", CFG_A, n_steps=2, ranks=2))
        with pytest.raises(ValueError, match="already submitted"):
            mgr.submit(JobSpec("twin", CFG_B, n_steps=2, ranks=2))
