"""Nonlinear (convective) term tests."""

import numpy as np

from repro.core.grid import ChannelGrid
from repro.core.nonlinear import NonlinearTerms
from repro.core.transforms import SerialTransformBackend
from repro.core.operators import WallNormalOps

from tests.core.test_velocity import wall_compatible_state
from repro.core.velocity import recover_uw


class TestZeroFields:
    def test_quiescent_fluid(self, small_grid):
        g = small_grid
        ops = WallNormalOps(g)
        nl = NonlinearTerms(g.modes, ops, SerialTransformBackend(g))
        zero = np.zeros(g.spectral_shape, complex)
        res = nl.compute(zero, zero, zero)
        assert np.abs(res.hg).max() == 0.0
        assert np.abs(res.hv).max() == 0.0

    def test_pure_mean_flow_has_no_fluctuating_source(self, small_grid):
        """Mean u(y) alone: h_g = h_v = 0 and mean sources vanish too."""
        g = small_grid
        ops = WallNormalOps(g)
        nl = NonlinearTerms(g.modes, ops, SerialTransformBackend(g))
        u = np.zeros(g.spectral_shape, complex)
        u[0, 0] = g.basis.interpolate(1 - g.y**2)
        zero = np.zeros_like(u)
        res = nl.compute(u, zero, zero)
        assert np.abs(res.hg).max() < 1e-12
        assert np.abs(res.hv).max() < 1e-12
        # <uv> = <vw> = 0 for this field
        assert np.abs(res.h1_mean).max() < 1e-12
        assert np.abs(res.h3_mean).max() < 1e-12


class TestSpanwiseShearMode:
    def test_z_dependent_u_has_zero_convection(self):
        """u = f(y) cos(kz z), v = w = 0 is exactly advection-free."""
        g = ChannelGrid(nx=16, ny=24, nz=16)
        ops = WallNormalOps(g)
        nl = NonlinearTerms(g.modes, ops, SerialTransformBackend(g))
        af = g.basis.interpolate(np.cos(np.pi * g.y / 2))
        u = np.zeros(g.spectral_shape, complex)
        u[0, 1] = 0.5 * af
        u[0, g.mz - 1] = 0.5 * af
        zero = np.zeros_like(u)
        res = nl.compute(u, zero, zero)
        # uu is the only nonzero product, and it only enters through
        # gradient terms that the formulation annihilates.
        assert np.abs(res.hg).max() < 1e-11
        assert np.abs(res.hv).max() < 1e-11
        assert np.abs(res.h1_mean).max() < 1e-11


class TestMeanSources:
    def test_mean_source_is_minus_d_uv_dy(self, small_grid, rng):
        """h1_mean must equal -d<u'v'>/dy computed independently."""
        g = small_grid
        ops = WallNormalOps(g)
        nl = NonlinearTerms(g.modes, ops, SerialTransformBackend(g))
        v, omega = wall_compatible_state(g, rng)
        u, w = recover_uw(g.modes, ops, v, omega, np.zeros(g.ny), np.zeros(g.ny))
        res = nl.compute(u, v, w)

        # independent computation from the physical fields
        up, vp, wp = nl.physical_velocity(u, v, w)
        uv_mean = (up * vp).mean(axis=(0, 1))
        a = g.basis.interpolate(uv_mean)
        expected = -ops.dvalues(a)
        np.testing.assert_allclose(res.h1_mean, expected, atol=1e-10)

    def test_cfl_speeds_reported(self, small_grid, rng):
        g = small_grid
        ops = WallNormalOps(g)
        nl = NonlinearTerms(g.modes, ops, SerialTransformBackend(g))
        u = np.zeros(g.spectral_shape, complex)
        u[0, 0] = g.basis.interpolate(np.full(g.ny, 3.0) * (1 - g.y**2))
        zero = np.zeros_like(u)
        res = nl.compute(u, zero, zero)
        assert 2.0 < res.cfl_speeds[0] <= 3.1
        assert res.cfl_speeds[1] == 0.0


class TestEnergyConservation:
    def test_nonlinear_terms_conserve_energy(self, small_grid, rng):
        """The convective terms redistribute but do not create energy.

        Run two inviscid-limit micro-steps and verify the energy change is
        O(dt³) rather than O(dt) (the scheme's dissipation-free check).
        """
        from repro.core import ChannelConfig, ChannelDNS

        cfg_kwargs = dict(nx=16, ny=24, nz=16, re_tau=1e6, forcing=0.0,
                          nu_value=1e-9, init_amplitude=0.2, seed=7)
        drifts = []
        for dt in (2e-3, 1e-3):
            dns = ChannelDNS(ChannelConfig(dt=dt, **cfg_kwargs))
            dns.initialize()
            e0 = dns.kinetic_energy()
            dns.run(1)
            drifts.append(abs(dns.kinetic_energy() - e0) / e0)
        # superlinear decay of the energy drift with dt
        assert drifts[1] < drifts[0] * 0.55
