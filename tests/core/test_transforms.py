"""Serial spectral <-> physical transform tests."""

import numpy as np
import pytest

from repro.core.grid import ChannelGrid
from repro.core.transforms import from_quadrature_grid, to_quadrature_grid


def random_spectral(grid, rng):
    """Random spectral field with the kx=0 reality symmetry enforced."""
    f = rng.standard_normal(grid.spectral_shape) + 1j * rng.standard_normal(grid.spectral_shape)
    half = grid.nz // 2
    f[0, 0] = rng.standard_normal(grid.ny)  # mean mode real
    for j in range(1, half):
        f[0, grid.mz - j] = np.conj(f[0, j])
    return f


class TestRoundTrip:
    def test_spectral_roundtrip_identity(self, small_grid, rng):
        f = random_spectral(small_grid, rng)
        phys = to_quadrature_grid(f, small_grid)
        back = from_quadrature_grid(phys, small_grid)
        np.testing.assert_allclose(back, f, atol=1e-12)

    def test_physical_field_is_real(self, small_grid, rng):
        f = random_spectral(small_grid, rng)
        phys = to_quadrature_grid(f, small_grid)
        assert np.isrealobj(phys) or np.abs(phys.imag).max() < 1e-13

    def test_shape_validation(self, small_grid):
        with pytest.raises(ValueError):
            to_quadrature_grid(np.zeros((3, 3, 3), complex), small_grid)
        with pytest.raises(ValueError):
            from_quadrature_grid(np.zeros((3, 3, 3)), small_grid)


class TestKnownFields:
    def test_single_mode_becomes_cosine(self):
        g = ChannelGrid(nx=16, ny=8, nz=16)
        f = np.zeros(g.spectral_shape, complex)
        f[2, 0, :] = 0.5  # 0.5 e^{2ix} + c.c. = cos(2x), uniform in y,z
        phys = to_quadrature_grid(f, g)
        expected = np.cos(2 * g.x)[:, None, None] * np.ones((1, g.nzq, g.ny))
        np.testing.assert_allclose(phys, expected, atol=1e-12)

    def test_mean_mode_is_constant_in_xz(self, small_grid):
        g = small_grid
        f = np.zeros(g.spectral_shape, complex)
        f[0, 0, :] = g.y  # mean profile = y
        phys = to_quadrature_grid(f, g)
        np.testing.assert_allclose(phys, np.broadcast_to(g.y, g.quadrature_shape), atol=1e-13)

    def test_z_mode_orientation(self):
        g = ChannelGrid(nx=16, ny=8, nz=16, lz=2 * np.pi)
        f = np.zeros(g.spectral_shape, complex)
        f[0, 1, :] = 0.5
        f[0, g.mz - 1, :] = 0.5  # cos(z)
        phys = to_quadrature_grid(f, g)
        expected = np.cos(g.z)[None, :, None] * np.ones((g.nxq, 1, g.ny))
        np.testing.assert_allclose(phys, expected, atol=1e-12)

    def test_parseval(self, small_grid, rng):
        """Plane-mean of f² equals the weighted spectral sum."""
        g = small_grid
        f = random_spectral(g, rng)
        phys = to_quadrature_grid(f, g)
        phys_mean_sq = (phys**2).mean(axis=(0, 1))
        w = np.full((g.mx, g.mz), 2.0)
        w[0, :] = 1.0
        spec_sum = (np.abs(f) ** 2 * w[..., None]).sum(axis=(0, 1))
        np.testing.assert_allclose(phys_mean_sq, spec_sum, rtol=1e-10)
