"""RunSupervisor tests: crash/rollback/retry, degradation, giving up.

The acceptance property of the fault-tolerant harness is pinned here:
a trajectory that crashes and is auto-restarted by the supervisor is
bit-for-bit identical to the uninterrupted one.
"""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.checkpoint import CheckpointRotation, load_checkpoint
from repro.core.control import CFLController
from repro.core.health import HealthMonitor, UnstableError
from repro.core.supervisor import (
    RunSupervisor,
    SupervisorGivingUp,
    SupervisorPolicy,
)
from repro.instrument import SectionTimers

CFG = ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, init_amplitude=0.5, seed=13)


def _fresh_dns():
    dns = ChannelDNS(CFG)
    dns.initialize()
    return dns


def _straight_run(nsteps):
    dns = _fresh_dns()
    dns.run(nsteps)
    return dns


def _nan_once_at(step):
    """One-shot fault hook: poison the state the first time ``step`` is hit."""
    fired = []

    def hook(dns):
        if dns.step_count == step and not fired:
            fired.append(step)
            dns.state.v[0, 0, 0] = np.nan

    return hook


def _flip_byte(path, offset_fraction=0.5):
    data = bytearray(path.read_bytes())
    data[int(len(data) * offset_fraction)] ^= 0xFF
    path.write_bytes(bytes(data))


class TestBitForBitRecovery:
    def test_crash_restart_matches_uninterrupted(self, tmp_path):
        """THE acceptance criterion: NaN at step 8, checkpoint every 5 —
        the supervised run rolls back to step 5, retries, and lands at
        step 12 bit-for-bit identical to a run that never crashed."""
        straight = _straight_run(12)

        sup = RunSupervisor(
            _fresh_dns(),
            CheckpointRotation(tmp_path),
            monitor=HealthMonitor(),
            policy=SupervisorPolicy(checkpoint_every=5),
        )
        dns = sup.run(12, callback=_nan_once_at(8))

        assert dns.step_count == 12
        np.testing.assert_array_equal(dns.state.v, straight.state.v)
        np.testing.assert_array_equal(dns.state.omega_y, straight.state.omega_y)
        np.testing.assert_array_equal(dns.state.u00, straight.state.u00)
        assert dns.state.time == straight.state.time

        assert sup.counters.failures == 1
        assert sup.counters.rollbacks == 1
        kinds = [e.kind for e in sup.log]
        assert kinds == ["failure", "rollback"]
        assert sup.log[0].step == 8
        assert sup.log[1].step == 5

    def test_recovery_surfaced_through_instrumentation(self, tmp_path):
        timers = SectionTimers()
        sup = RunSupervisor(
            _fresh_dns(),
            CheckpointRotation(tmp_path),
            monitor=HealthMonitor(),
            policy=SupervisorPolicy(checkpoint_every=5),
            timers=timers,
        )
        sup.run(12, callback=_nan_once_at(8))
        assert timers.calls[SectionTimers.CHECKPOINT] >= 3  # baseline, 5, 10, 12
        assert timers.calls[SectionTimers.RECOVERY] == 1
        rep = sup.report()
        assert "rollbacks=1" in rep and "last_event=rollback" in rep

    def test_checkpoint_time_guard_without_monitor(self, tmp_path):
        """Even with no watchdog, a poisoned state must never enter the
        rotation: the checkpoint-time finiteness guard trips instead."""
        straight = _straight_run(6)
        sup = RunSupervisor(
            _fresh_dns(),
            CheckpointRotation(tmp_path),
            monitor=None,
            policy=SupervisorPolicy(checkpoint_every=5),
        )
        dns = sup.run(6, callback=_nan_once_at(5))
        np.testing.assert_array_equal(dns.state.v, straight.state.v)
        for snap in sup.rotation.snapshots():
            restored = load_checkpoint(snap)
            assert restored.state_finite()
        assert sup.counters.rollbacks == 1


class TestCorruptHeadFallback:
    def test_rollback_skips_corrupt_snapshot(self, tmp_path):
        """Corrupting the newest snapshot on disk must not strand the
        supervisor: rollback falls back to the previous verifiable one
        and the retried trajectory still matches the uninterrupted run."""
        straight = _straight_run(8)
        rotation = CheckpointRotation(tmp_path)
        sup = RunSupervisor(
            _fresh_dns(),
            rotation,
            monitor=HealthMonitor(),
            policy=SupervisorPolicy(checkpoint_every=2),
        )

        def hook(dns):
            hook_nan(dns)
            # corrupt the step-6 snapshot just before the crash at step 7
            if dns.step_count == 7 and not getattr(hook, "zapped", False):
                hook.zapped = True
                _flip_byte(rotation.latest_path)

        hook_nan = _nan_once_at(7)
        dns = sup.run(8, callback=hook)

        assert dns.step_count == 8
        np.testing.assert_array_equal(dns.state.v, straight.state.v)
        assert sup.counters.verify_failures >= 1
        rollback = [e for e in sup.log if e.kind == "rollback"][0]
        assert rollback.step == 4  # fell back past the corrupt step-6 head

    def test_all_snapshots_corrupt_gives_up(self, tmp_path):
        rotation = CheckpointRotation(tmp_path)
        sup = RunSupervisor(
            _fresh_dns(),
            rotation,
            monitor=HealthMonitor(),
            policy=SupervisorPolicy(checkpoint_every=2),
        )

        def hook(dns):
            if dns.step_count == 3:
                for snap in rotation.snapshots():
                    _flip_byte(snap)
                dns.state.v[0, 0, 0] = np.nan

        with pytest.raises(SupervisorGivingUp, match="rollback impossible"):
            sup.run(6, callback=hook)


class TestRetryAccounting:
    def test_gives_up_after_max_retries_without_progress(self, tmp_path):
        """A fault that re-fires at the same step every attempt makes no
        forward progress; after max_retries the supervisor surrenders."""

        def always_nan_at_3(dns):
            if dns.step_count == 3:
                dns.state.v[0, 0, 0] = np.nan

        sup = RunSupervisor(
            _fresh_dns(),
            CheckpointRotation(tmp_path),
            monitor=HealthMonitor(),
            policy=SupervisorPolicy(checkpoint_every=10, max_retries=2),
        )
        with pytest.raises(SupervisorGivingUp, match="no forward progress"):
            sup.run(6, callback=always_nan_at_3)
        assert sup.counters.failures == 3  # initial + 2 retries
        assert sup.log[-1].kind == "giving_up"

    def test_forward_progress_resets_the_retry_budget(self, tmp_path):
        """Failures at *advancing* steps are distinct incidents, not a
        retry streak: more total failures than max_retries must still
        complete as long as each one is past the previous frontier."""
        straight = _straight_run(8)
        steps = iter([2, 4, 6])
        armed = [next(steps)]

        def hook(dns):
            if armed and dns.step_count == armed[0]:
                armed.pop()
                nxt = next(steps, None)
                if nxt is not None:
                    armed.append(nxt)
                dns.state.v[0, 0, 0] = np.nan

        sup = RunSupervisor(
            _fresh_dns(),
            CheckpointRotation(tmp_path),
            monitor=HealthMonitor(),
            policy=SupervisorPolicy(checkpoint_every=1, max_retries=1),
        )
        dns = sup.run(8, callback=hook)
        assert dns.step_count == 8
        assert sup.counters.failures == 3
        np.testing.assert_array_equal(dns.state.v, straight.state.v)

    def test_backoff_grows_and_saturates(self, tmp_path):
        delays = []

        def always_nan_at_1(dns):
            if dns.step_count == 1:
                dns.state.v[0, 0, 0] = np.nan

        sup = RunSupervisor(
            _fresh_dns(),
            CheckpointRotation(tmp_path),
            monitor=HealthMonitor(),
            policy=SupervisorPolicy(
                checkpoint_every=10,
                max_retries=3,
                backoff_base=0.1,
                backoff_factor=2.0,
                backoff_max=0.25,
            ),
            sleep=delays.append,
        )
        with pytest.raises(SupervisorGivingUp):
            sup.run(4, callback=always_nan_at_1)
        assert delays == [0.1, 0.2, 0.25]

    def test_backoff_jitter_schedule_pinned_by_seed(self, tmp_path):
        """Jittered delays are ± jitter around the bounded nominal delay,
        with the draw sequence pinned by the run seed — reproducible per
        job, desynchronized across co-scheduled jobs."""
        import random

        def run_once(cfg):
            delays = []

            def always_nan_at_1(dns):
                if dns.step_count == 1:
                    dns.state.v[0, 0, 0] = np.nan

            dns = ChannelDNS(cfg)
            dns.initialize()
            sup = RunSupervisor(
                dns,
                CheckpointRotation(tmp_path / f"seed-{cfg.seed}-{len(list(tmp_path.iterdir()))}"),
                monitor=HealthMonitor(),
                policy=SupervisorPolicy(
                    checkpoint_every=10,
                    max_retries=3,
                    backoff_base=0.1,
                    backoff_factor=2.0,
                    backoff_max=0.25,
                    backoff_jitter=0.5,
                ),
                sleep=delays.append,
            )
            with pytest.raises(SupervisorGivingUp):
                sup.run(4, callback=always_nan_at_1)
            return delays

        delays = run_once(CFG)
        rng = random.Random(CFG.seed)
        expected = [
            d * (1.0 + 0.5 * (2.0 * rng.random() - 1.0)) for d in (0.1, 0.2, 0.25)
        ]
        assert delays == expected  # the exact jittered schedule, pinned
        for got, nominal in zip(delays, (0.1, 0.2, 0.25)):
            assert 0.5 * nominal <= got <= 1.5 * nominal
        # same seed -> same schedule; different seed -> a different one
        assert run_once(CFG) == delays
        import dataclasses

        other = run_once(dataclasses.replace(CFG, seed=14))
        assert other != delays

    def test_jitter_bounds_validated(self):
        with pytest.raises(ValueError, match="backoff_jitter"):
            SupervisorPolicy(backoff_jitter=1.0)

    def test_unexpected_exceptions_propagate_raw(self, tmp_path):
        def boom(dns):
            raise KeyError("not a recoverable failure")

        sup = RunSupervisor(_fresh_dns(), CheckpointRotation(tmp_path))
        with pytest.raises(KeyError):
            sup.run(3, callback=boom)
        assert sup.counters.failures == 0


class TestGracefulDegradation:
    def test_unstable_reduces_dt_and_clamps_controllers(self, tmp_path):
        unstable_once = []

        def hook(dns):
            if dns.step_count == 3 and not unstable_once:
                unstable_once.append(True)
                raise UnstableError("synthetic CFL blow-up", step=3)

        # a wide-open band keeps the controller passive so the test sees
        # only the supervisor's dt change (plus the clamp hook)
        ctrl = CFLController(target=1.0, low=1e-9, high=1e9, max_dt=1.0)
        sup = RunSupervisor(
            _fresh_dns(),
            CheckpointRotation(tmp_path),
            policy=SupervisorPolicy(checkpoint_every=2, dt_factor=0.5),
            controllers=[ctrl],
        )
        dns = sup.run(6, callback=hook)
        assert dns.stepper.dt == pytest.approx(CFG.dt * 0.5)
        assert ctrl.max_dt == pytest.approx(CFG.dt * 0.5)
        assert sup.counters.dt_reductions == 1
        assert [e.kind for e in sup.log] == ["failure", "rollback", "dt_reduction"]

    def test_dt_floor_respected(self, tmp_path):
        def hook(dns):
            if dns.step_count == 1:
                raise UnstableError("synthetic", step=1)

        sup = RunSupervisor(
            _fresh_dns(),
            CheckpointRotation(tmp_path),
            policy=SupervisorPolicy(
                checkpoint_every=10, max_retries=3, dt_factor=0.5, min_dt=1e-4
            ),
        )
        with pytest.raises(SupervisorGivingUp):
            sup.run(4, callback=hook)
        assert sup.dns.stepper.dt == pytest.approx(1e-4)  # clamped, not 2e-4/8


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"checkpoint_every": 0},
            {"max_retries": 0},
            {"dt_factor": 0.0},
            {"dt_factor": 1.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kwargs)
