"""Initial condition tests."""

import numpy as np
import pytest

from repro.core.grid import ChannelGrid
from repro.core.initial import laminar_profile, perturbed_state, reichardt_profile
from repro.core.operators import WallNormalOps
from repro.core.velocity import divergence, recover_uw


class TestBaseProfiles:
    def test_laminar_profile_values(self, small_grid):
        nu = 1.0 / 180.0
        a = laminar_profile(small_grid, nu)
        vals = small_grid.basis.values_at_collocation(a)
        y = small_grid.y
        np.testing.assert_allclose(vals, (1 - y * y) / (2 * nu), atol=1e-8)

    def test_reichardt_no_slip(self, small_grid):
        a = reichardt_profile(small_grid, 180.0)
        vals = small_grid.basis.values_at_collocation(a)
        assert abs(vals[0]) < 1e-6 and abs(vals[-1]) < 1e-6

    def test_reichardt_log_layer_slope(self):
        """In the log layer dU+/dy+ ~ 1/(kappa y+)."""
        g = ChannelGrid(nx=16, ny=96, nz=16)
        re_tau = 5200.0
        a = reichardt_profile(g, re_tau)
        y1, y2 = -1 + 100 / re_tau, -1 + 1000 / re_tau  # y+ = 100 .. 1000
        u1, u2 = g.basis.evaluate(a, [y1, y2])
        slope = (u2 - u1) / (np.log(1000) - np.log(100))
        assert slope == pytest.approx(1 / 0.41, rel=0.1)


class TestPerturbedState:
    def test_solenoidal(self, small_grid):
        st = perturbed_state(small_grid, nu=1 / 180, amplitude=0.5, seed=1)
        ops = WallNormalOps(small_grid)
        u, w = recover_uw(small_grid.modes, ops, st.v, st.omega_y, st.u00, st.w00)
        div = divergence(small_grid.modes, ops, u, st.v, w)
        assert np.abs(div).max() < 1e-10

    def test_physical_field_real(self, small_grid):
        """kx=0 conjugate symmetry holds, so physical fields are real."""
        from repro.core.transforms import to_quadrature_grid

        st = perturbed_state(small_grid, nu=1 / 180, amplitude=0.5, seed=2)
        ops = WallNormalOps(small_grid)
        phys = to_quadrature_grid(ops.values(st.v), small_grid)
        assert np.isrealobj(phys)

    def test_reproducible_by_seed(self, small_grid):
        s1 = perturbed_state(small_grid, nu=1 / 180, seed=9)
        s2 = perturbed_state(small_grid, nu=1 / 180, seed=9)
        np.testing.assert_array_equal(s1.v, s2.v)

    def test_amplitude_scaling(self, small_grid):
        lo = perturbed_state(small_grid, nu=1 / 180, amplitude=0.01, seed=3)
        hi = perturbed_state(small_grid, nu=1 / 180, amplitude=1.0, seed=3)
        assert np.abs(hi.v).max() > 10 * np.abs(lo.v).max()

    def test_zero_amplitude_is_pure_mean(self, small_grid):
        st = perturbed_state(small_grid, nu=1 / 180, amplitude=0.0, seed=0)
        assert np.abs(st.v).max() == 0.0
        assert np.abs(st.omega_y).max() == 0.0
        assert np.abs(st.u00).max() > 0.0

    def test_unknown_base_raises(self, small_grid):
        with pytest.raises(ValueError):
            perturbed_state(small_grid, nu=1 / 180, base="plug")

    def test_mean_mode_untouched_by_perturbations(self, small_grid):
        st = perturbed_state(small_grid, nu=1 / 180, amplitude=0.7, seed=11)
        assert np.abs(st.v[0, 0]).max() == 0.0
        assert np.abs(st.omega_y[0, 0]).max() == 0.0
