"""Spectral regridding / pointwise evaluation / snapshot IO tests."""

import numpy as np
import pytest

from repro.core import ChannelConfig, ChannelDNS
from repro.core.grid import ChannelGrid
from repro.core.operators import WallNormalOps
from repro.core.regrid import (
    evaluate_at,
    load_snapshot,
    regrid_state,
    save_snapshot,
)
from repro.core.transforms import to_quadrature_grid
from repro.core.velocity import divergence


def running_dns(nx=16, ny=24, nz=16, steps=2):
    cfg = ChannelConfig(nx=nx, ny=ny, nz=nz, dt=2e-4, init_amplitude=0.5, seed=21)
    dns = ChannelDNS(cfg)
    dns.initialize()
    dns.run(steps)
    return dns


class TestRegrid:
    def test_refine_preserves_shared_modes(self):
        dns = running_dns()
        gin = dns.grid
        gout = ChannelGrid(nx=32, ny=36, nz=32, stretch=gin.basis and 2.0)
        refined = regrid_state(dns.state, gin, gout)
        # the physical field on the coarse grid is unchanged by refinement
        coarse_phys = to_quadrature_grid(
            WallNormalOps(gin).values(dns.state.v), gin
        )
        fine_phys = to_quadrature_grid(WallNormalOps(gout).values(refined.v), gout)
        # sample both at shared physical locations via pointwise evaluation
        xs = np.array([0.3, 1.1, 2.2])
        zs = np.array([0.2, 0.9, 1.7])
        ys = np.array([-0.5, 0.0, 0.4])
        a = evaluate_at(gin, dns.state.v, xs, zs, ys)
        b = evaluate_at(gout, refined.v, xs, zs, ys)
        np.testing.assert_allclose(b, a, atol=1e-6)
        assert coarse_phys.shape != fine_phys.shape

    def test_refined_state_is_divergence_free(self):
        dns = running_dns()
        gout = ChannelGrid(nx=32, ny=36, nz=32)
        refined = regrid_state(dns.state, dns.grid, gout)
        div = divergence(gout.modes, WallNormalOps(gout), refined.u, refined.v, refined.w)
        assert np.abs(div).max() < 1e-9

    def test_refined_dns_continues(self):
        """Grid sequencing: refine and keep time-stepping stably."""
        dns = running_dns()
        gout_cfg = ChannelConfig(nx=32, ny=36, nz=32, dt=2e-4)
        fine = ChannelDNS(gout_cfg)
        fine.initialize(regrid_state(dns.state, dns.grid, fine.grid))
        fine.run(2)
        assert np.isfinite(fine.kinetic_energy())
        assert fine.divergence_norm() < 1e-9

    def test_refine_then_coarsen_is_identity(self):
        dns = running_dns()
        gin = dns.grid
        gout = ChannelGrid(nx=32, ny=24, nz=32)
        up = regrid_state(dns.state, gin, gout)
        back = regrid_state(up, gout, gin)
        np.testing.assert_allclose(back.v, dns.state.v, atol=1e-12)
        np.testing.assert_allclose(back.omega_y, dns.state.omega_y, atol=1e-12)

    def test_coarsening_is_lowpass(self):
        dns = running_dns(nx=32, ny=24, nz=32)
        gout = ChannelGrid(nx=16, ny=24, nz=16)
        down = regrid_state(dns.state, dns.grid, gout)
        # retained modes intact
        np.testing.assert_allclose(down.v[:4, :4], dns.state.v[:4, :4], atol=1e-12)

    def test_partial_state_rejected(self):
        from repro.core.timestepper import ChannelState

        dns = running_dns()
        partial = ChannelState(
            v=dns.state.v, omega_y=dns.state.omega_y, u00=None, w00=None
        )
        with pytest.raises(ValueError):
            regrid_state(partial, dns.grid, dns.grid)


class TestEvaluateAt:
    def test_single_mode_exact(self):
        g = ChannelGrid(nx=16, ny=16, nz=16)
        coeffs = np.zeros(g.spectral_shape, complex)
        a = g.basis.interpolate(1 - g.y**2)
        coeffs[2, 0] = 0.5 * a  # cos(2x) (1 - y²)
        xs = np.array([0.1, 0.7, 2.0])
        zs = np.zeros(3)
        ys = np.array([-0.3, 0.0, 0.6])
        vals = evaluate_at(g, coeffs, xs, zs, ys)
        np.testing.assert_allclose(vals, np.cos(2 * xs) * (1 - ys**2), atol=1e-10)

    def test_matches_collocated_values(self):
        dns = running_dns()
        g = dns.grid
        ops = WallNormalOps(g)
        phys = to_quadrature_grid(ops.values(dns.state.u), g)
        i, j, k = 3, 5, 7
        val = evaluate_at(
            g, dns.state.u, np.array([g.x[i]]), np.array([g.z[j]]), np.array([g.y[k]])
        )[0]
        assert val == pytest.approx(phys[i, j, k], abs=1e-9)

    def test_shape_mismatch(self):
        g = ChannelGrid(nx=16, ny=12, nz=16)
        with pytest.raises(ValueError):
            evaluate_at(g, np.zeros(g.spectral_shape, complex), np.zeros(2), np.zeros(3), np.zeros(2))


class TestSnapshotIO:
    def test_roundtrip(self, tmp_path):
        dns = running_dns()
        path = tmp_path / "snap.npz"
        save_snapshot(dns, path)
        snap = load_snapshot(path)
        u, v, w = dns.physical_velocity()
        np.testing.assert_array_equal(snap["u"], u)
        assert snap["time"] == dns.state.time
        assert snap["re_tau"] == dns.config.re_tau
        assert snap["x"].shape == (dns.grid.nxq,)
