"""SectionTimers / SolveCounters / RecoveryCounters instrumentation tests."""

import time

import numpy as np

from repro.instrument import RecoveryCounters, SectionTimers, SolveCounters


class TestSectionTimers:
    def test_accumulates(self):
        t = SectionTimers()
        with t.section("fft"):
            time.sleep(0.01)
        with t.section("fft"):
            time.sleep(0.01)
        assert t.elapsed["fft"] >= 0.02
        assert t.calls["fft"] == 2

    def test_total(self):
        t = SectionTimers()
        with t.section("a"):
            pass
        with t.section("b"):
            pass
        assert t.total() == t.elapsed["a"] + t.elapsed["b"]

    def test_records_on_exception(self):
        t = SectionTimers()
        try:
            with t.section("x"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert t.calls["x"] == 1

    def test_reset(self):
        t = SectionTimers()
        with t.section("a"):
            pass
        t.reset()
        assert t.total() == 0.0
        assert not t.calls

    def test_merge(self):
        t1, t2 = SectionTimers(), SectionTimers()
        with t1.section("a"):
            time.sleep(0.002)
        with t2.section("a"):
            time.sleep(0.002)
        with t2.section("b"):
            pass
        t1.merge(t2)
        assert t1.calls["a"] == 2
        assert "b" in t1.elapsed

    def test_report_format(self):
        t = SectionTimers()
        with t.section("transpose"):
            pass
        rep = t.report()
        assert "transpose=" in rep and "total=" in rep

    def test_canonical_names(self):
        assert SectionTimers.TRANSPOSE == "transpose"
        assert SectionTimers.FFT == "fft"
        assert SectionTimers.ADVANCE == "ns_advance"
        assert SectionTimers.SOLVE == "solve"
        assert SectionTimers.CHECKPOINT == "checkpoint"
        assert SectionTimers.RECOVERY == "recovery"

    def test_recovery_sections_count_toward_total(self):
        """CHECKPOINT/RECOVERY are disjoint from the per-step sections,
        so they belong in the wall-clock total (unlike nested SOLVE)."""
        t = SectionTimers()
        with t.section(t.CHECKPOINT):
            pass
        with t.section(t.RECOVERY):
            pass
        assert t.CHECKPOINT not in t.NESTED and t.RECOVERY not in t.NESTED
        assert t.total() == t.elapsed[t.CHECKPOINT] + t.elapsed[t.RECOVERY]

    def test_nested_sections_excluded_from_total(self):
        """SOLVE runs inside ADVANCE; summing both would double-count."""
        t = SectionTimers()
        with t.section(t.ADVANCE):
            with t.section(t.SOLVE):
                time.sleep(0.002)
        assert t.elapsed[t.SOLVE] > 0.0
        assert t.total() == t.elapsed[t.ADVANCE]
        assert t.SOLVE in t.NESTED


class TestSolveCounters:
    def test_workspace_and_execution_counters(self):
        c = SolveCounters()
        c.count_workspace(np.empty((4, 8)))
        assert c.workspace_allocs == 1
        assert c.workspace_bytes == 4 * 8 * 8
        c.solves += 2
        c.sweeps += 3
        c.columns += 5
        snap = c.snapshot()
        assert snap == {
            "workspace_bytes": 256,
            "workspace_allocs": 1,
            "solves": 2,
            "sweeps": 3,
            "columns": 5,
        }
        rep = c.report()
        assert "workspace=256B" in rep and "solves=2" in rep
        c.reset()
        assert c.snapshot()["workspace_bytes"] == 0


class TestRecoveryCounters:
    def test_counters_snapshot_report_reset(self):
        c = RecoveryCounters()
        c.checkpoints_saved += 4
        c.checkpoints_pruned += 1
        c.verify_failures += 2
        c.failures += 3
        c.rollbacks += 2
        c.restarts += 1
        c.dt_reductions += 1
        c.shrinks += 2
        c.grows += 1
        c.reshard_restores += 1
        assert c.snapshot() == {
            "checkpoints_saved": 4,
            "checkpoints_pruned": 1,
            "verify_failures": 2,
            "failures": 3,
            "rollbacks": 2,
            "restarts": 1,
            "dt_reductions": 1,
            "shrinks": 2,
            "grows": 1,
            "reshard_restores": 1,
        }
        rep = c.report()
        assert "checkpoints=4 saved/1 pruned" in rep
        assert "verify_failures=2" in rep and "rollbacks=2" in rep
        c.reset()
        assert all(v == 0 for v in c.snapshot().values())

    def test_rotation_moves_save_and_prune_counters(self, tmp_path):
        from repro.core import ChannelConfig, ChannelDNS
        from repro.core.checkpoint import CheckpointRotation

        dns = ChannelDNS(ChannelConfig(nx=16, ny=24, nz=16, dt=2e-4, seed=3))
        dns.initialize()
        c = RecoveryCounters()
        rot = CheckpointRotation(tmp_path, keep=2, counters=c)
        for _ in range(3):
            dns.run(1)
            rot.save(dns)
        assert c.checkpoints_saved == 3
        assert c.checkpoints_pruned == 1
