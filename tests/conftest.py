"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bsplines import BSplineBasis
from repro.core.grid import ChannelGrid


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def basis() -> BSplineBasis:
    """Moderate-size degree-7 basis with wall clustering."""
    return BSplineBasis(24, degree=7, stretch=2.0)


@pytest.fixture
def small_grid() -> ChannelGrid:
    """Small channel grid for integration-level tests."""
    return ChannelGrid(nx=16, ny=24, nz=16)
