"""Documentation coverage of the serving layer.

Mirrors the observability-guide enforcement
(``tests/telemetry/test_schema.py``): every schema field the code
defines must be named in the operator docs, and every benchmark module
must have its section in ``docs/benchmarks.md`` — so the docs cannot
silently drift from the code.
"""

import pathlib

import pytest

from repro.serving import QUERY_FIELDS, RESULT_ARRAYS, RESULT_FIELDS
from repro.telemetry.baseline import HOT_PATH_CASES

ROOT = pathlib.Path(__file__).resolve().parents[2]
SERVICE_DOC = ROOT / "docs" / "statistics_service.md"
BENCH_DOC = ROOT / "docs" / "benchmarks.md"


@pytest.fixture(scope="module")
def service_doc() -> str:
    return SERVICE_DOC.read_text()


@pytest.fixture(scope="module")
def bench_doc() -> str:
    return BENCH_DOC.read_text()


def test_every_result_manifest_field_documented(service_doc):
    for name in RESULT_FIELDS:
        assert f"`{name}`" in service_doc, (
            f"store manifest field {name!r} missing from {SERVICE_DOC.name}"
        )


def test_every_result_array_documented(service_doc):
    for name in RESULT_ARRAYS:
        assert f"`{name}`" in service_doc, (
            f"store array {name!r} missing from {SERVICE_DOC.name}"
        )


def test_every_query_field_documented(service_doc):
    for name in QUERY_FIELDS:
        assert f"`{name}`" in service_doc, (
            f"query response field {name!r} missing from {SERVICE_DOC.name}"
        )


def test_service_doc_covers_the_contract_surface(service_doc):
    """The merge/accuracy/caching sections the code relies on by name."""
    for anchor in (
        "REDUCTION_RTOL",
        "`cache_size`",
        "`dataset_cache_size`",
        "stats_query_32",
        "attach_streaming",
        "bit-exact",
    ):
        assert anchor in service_doc, anchor


def test_every_benchmark_has_a_section(bench_doc):
    benches = sorted((ROOT / "benchmarks").glob("bench_*.py"))
    assert benches, "no benchmarks found"
    for path in benches:
        assert f"`{path.name}`" in bench_doc, (
            f"benchmark {path.name} has no section in {BENCH_DOC.name}"
        )


def test_every_gated_case_named_in_benchmarks_doc(bench_doc):
    for case in HOT_PATH_CASES:
        assert f"`{case.name}`" in bench_doc, (
            f"perf-gated case {case.name!r} missing from {BENCH_DOC.name}"
        )


def test_benchmark_results_exist_for_documented_numbers():
    """Every bench_* module has a results file backing its doc numbers."""
    results = ROOT / "benchmarks" / "results"
    for path in sorted((ROOT / "benchmarks").glob("bench_*.py")):
        name = path.stem.removeprefix("bench_")
        assert (results / f"{name}.txt").exists(), (
            f"no recorded results for {path.name}"
        )
