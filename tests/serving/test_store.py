"""Versioned results store: atomic publish, rotation, verification."""

import numpy as np
import pytest

from repro.core import ChannelConfig
from repro.core.checkpoint import CheckpointCorruptError
from repro.serving import RESULT_ARRAYS, RESULT_FIELDS, StatsStore
from repro.serving.store import STORE_FORMAT_VERSION, _retau_dirname
from repro.serving.synthetic import synthetic_result


@pytest.fixture
def published(tmp_path):
    """A store with one synthetic Re_tau=180 result published."""
    result, config = synthetic_result(180.0)
    store = StatsStore(tmp_path, keep=3)
    path = store.publish(result, config, step_count=100, sim_time=0.25)
    return store, path, result, config


def test_publish_roundtrip(published):
    store, path, result, config = published
    assert path.exists()
    manifest, arrays = store.load(180.0)
    assert manifest["kind"] == "stats-result"
    assert manifest["store_version"] == STORE_FORMAT_VERSION
    assert manifest["re_tau"] == 180.0
    assert manifest["nsamples"] == result["nsamples"]
    assert manifest["step_count"] == 100
    assert manifest["sim_time"] == 0.25
    assert manifest["u_tau"] == result["u_tau"]
    for name in RESULT_ARRAYS:
        np.testing.assert_array_equal(arrays[name], np.asarray(result[name]))


def test_manifest_carries_every_required_field(published):
    store, _, _, _ = published
    manifest, _ = store.load(180.0)
    for name, (required, _desc) in RESULT_FIELDS.items():
        if required:
            assert name in manifest, name


def test_fingerprint_keys_filenames(tmp_path):
    """Two configs at the same Re_tau publish to distinct files."""
    store = StatsStore(tmp_path)
    r1, c1 = synthetic_result(180.0)
    r2, _ = synthetic_result(180.0)
    c2 = dict(c1, nx=2 * c1["nx"])
    p1 = store.publish(r1, c1, step_count=10)
    p2 = store.publish(r2, c2, step_count=10)
    assert p1 != p2
    assert p1.exists() and p2.exists()


def test_missing_required_array_rejected(tmp_path):
    result, config = synthetic_result(180.0)
    del result["spec_z_w"]
    with pytest.raises(ValueError, match="spec_z_w"):
        StatsStore(tmp_path).publish(result, config)


def test_rotation_keeps_k_newest(tmp_path):
    store = StatsStore(tmp_path, keep=2)
    result, config = synthetic_result(180.0)
    for step in (10, 20, 30, 40):
        store.publish(result, config, step_count=step)
    directory = tmp_path / _retau_dirname(180.0)
    names = sorted(p.name for p in directory.glob("result-*.npz"))
    assert len(names) == 2
    assert "step000000030" in names[0] and "step000000040" in names[1]
    manifest, _ = store.load(180.0)
    assert manifest["step_count"] == 40


def test_keep_zero_disables_rotation(tmp_path):
    store = StatsStore(tmp_path, keep=0)
    result, config = synthetic_result(180.0)
    for step in (1, 2, 3, 4, 5):
        store.publish(result, config, step_count=step)
    directory = tmp_path / _retau_dirname(180.0)
    assert len(list(directory.glob("result-*.npz"))) == 5


def test_latest_pointer_fallback(published):
    """A stale/missing pointer falls back to the lexically newest file."""
    store, path, result, config = published
    store.publish(result, config, step_count=200)
    pointer = path.parent / "latest"
    pointer.write_text("result-step999999999-deadbeef.npz\n")  # dangling
    manifest, _ = store.load(180.0)
    assert manifest["step_count"] == 200
    pointer.unlink()
    manifest, _ = store.load(180.0)
    assert manifest["step_count"] == 200


def test_re_taus_enumeration(tmp_path):
    store = StatsStore(tmp_path)
    assert store.re_taus() == []
    for re_tau in (550.0, 180.0):
        result, config = synthetic_result(re_tau)
        store.publish(result, config)
    assert store.re_taus() == [180.0, 550.0]


def test_load_missing_re_tau_raises(published):
    store, _, _, _ = published
    with pytest.raises(FileNotFoundError):
        store.load(5200.0)


def test_corrupt_result_detected(published):
    store, path, _, _ = published
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(CheckpointCorruptError):
        store.load(180.0)


def test_unknown_store_version_rejected(published, monkeypatch):
    store, path, result, config = published
    import repro.serving.store as store_mod

    monkeypatch.setattr(store_mod, "STORE_FORMAT_VERSION", 99)
    store.publish(result, config, step_count=300)
    with pytest.raises(ValueError, match="store_version 99"):
        store.load(180.0)


def test_wrong_kind_rejected(published, monkeypatch):
    store, path, _, _ = published
    import repro.core.checkpoint as ck

    manifest, arrays = ck._read_npz(path, verify=True)
    manifest["kind"] = "not-a-result"
    ck._atomic_write_npz(path, manifest, arrays)
    with pytest.raises(ValueError, match="not a stats-result"):
        store.load(180.0)
